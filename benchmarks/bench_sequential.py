"""E10 (extension) — sequential ECO via the transition view ([10]).

Measures the sequential extension end-to-end: counters of growing width
with corrupted carry chains are repaired through the combinational
reduction, then verified both by transition-relation CEC (unbounded)
and by BMC over the unrolled frames.  The unrolling cost itself is also
benchmarked (frames × core size).
"""

import pytest

from repro.network import GateType, Network
from repro.seq import Latch, SeqNetwork, run_sequential_eco, unroll

from conftest import write_result

WIDTHS = (3, 4, 6)
_results = {}


def counter(width, bug_bit=None):
    core = Network(f"cnt{width}")
    en = core.add_pi("en")
    q = [core.add_pi(f"q{i}") for i in range(width)]
    carry = en
    nxt = []
    for i in range(width):
        nxt.append(core.add_gate(GateType.XOR, [q[i], carry], f"n{i}"))
        gtype = GateType.OR if bug_bit == i else GateType.AND
        carry = core.add_gate(gtype, [q[i], carry], f"c{i}")
    for i in range(width):
        core.add_po(q[i], f"count{i}")
    latches = [Latch(f"q{i}", q[i], nxt[i], init=0) for i in range(width)]
    return SeqNetwork(core, latches)


@pytest.mark.parametrize("width", WIDTHS)
def bench_sequential_eco(benchmark, width):
    impl = counter(width, bug_bit=width // 2)
    spec = counter(width)

    def run():
        return run_sequential_eco(
            impl,
            spec,
            targets=[f"c{width // 2}"],
            bmc_frames=min(2 ** width, 12),
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.transition_verified and res.bmc_verified
    _results[width] = res


@pytest.mark.parametrize("frames", (4, 16, 64))
def bench_unrolling(benchmark, frames):
    seq = counter(4)

    def run():
        return unroll(seq, frames)

    net = benchmark(run)
    assert net.num_pos == 4 * frames


def bench_sequential_report(benchmark):
    if not _results:
        pytest.skip("no data (use --benchmark-only)")
    lines = [
        "E10: sequential ECO (fixed register correspondence)",
        f"{'width':>6} {'cost':>6} {'gates':>6} {'bmc frames':>11} {'runtime(s)':>11}",
    ]
    for width in WIDTHS:
        r = _results[width]
        lines.append(
            f"{width:>6} {r.cost:>6} {r.gate_count:>6} "
            f"{r.bmc_frames:>11} {r.runtime_seconds:>11.3f}"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e10_sequential.txt", "\n".join(lines))
