"""E2 — SAT-call complexity of ``minimize_assumptions`` (Section 3.4.1).

The paper claims O(max(log N, M)) SAT calls for Algorithm 1 against the
O(N) of the naive one-at-a-time minimization.  This bench counts the
actual calls over growing candidate counts N with small final supports
M, and benchmarks the wall time of both routines.
"""

import pytest

from repro.core import SupportStats, minimize_assumptions, minimize_linear
from repro.sat import Solver, mklit

from conftest import write_result

SIZES = (16, 64, 256, 512)
_call_counts = {}


def cover_instance(group, n_sel):
    """UNSAT under an assumption set iff it includes all of ``group``."""
    solver = Solver()
    sels = solver.new_vars(n_sel)
    e = solver.new_var()
    solver.add_clause([mklit(e)])
    solver.add_clause([mklit(sels[i], True) for i in group] + [mklit(e, True)])
    return solver, [mklit(v) for v in sels]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algo", ["minassump", "linear"])
def bench_minimize(benchmark, n, algo):
    group = [n // 3, n // 2, n - 2]  # M = 3 needed literals

    def run():
        solver, lits = cover_instance(group, n)
        stats = SupportStats()
        if algo == "minassump":
            kept = minimize_assumptions(solver, [], lits, stats=stats)
        else:
            kept = minimize_linear(solver, [], lits, stats=stats)
        assert sorted(kept) == sorted(lits[i] for i in group)
        return stats.sat_calls

    calls = benchmark.pedantic(run, rounds=3, iterations=1)
    _call_counts[(algo, n)] = calls


def bench_complexity_report(benchmark):
    if not _call_counts:
        pytest.skip("no data (use --benchmark-only)")
    lines = [
        "E2: minimize_assumptions SAT-call complexity (M = 3 needed)",
        f"{'N':>6}  {'Algorithm 1':>12}  {'naive linear':>12}  {'paper model':>28}",
    ]
    import math

    for n in SIZES:
        ma = _call_counts.get(("minassump", n))
        ln = _call_counts.get(("linear", n))
        model = f"O(max(log N, M)) ~ {max(math.ceil(math.log2(n)), 3)}"
        lines.append(f"{n:>6}  {ma!s:>12}  {ln!s:>12}  {model:>28}")
    # the claimed separation: Algorithm 1 grows ~M log N, linear grows ~N
    large_n = SIZES[-1]
    ma_large = _call_counts[("minassump", large_n)]
    ln_large = _call_counts[("linear", large_n)]
    assert ln_large == large_n  # naive is exactly N calls
    assert ma_large < ln_large / 4, "Algorithm 1 not clearly sublinear"
    assert ma_large <= 10 * math.ceil(math.log2(large_n)) + 20
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e2_minassump_complexity.txt", "\n".join(lines))
