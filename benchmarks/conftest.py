"""Shared fixtures for the benchmark harness.

Suite instances are built once per session and shared across benchmark
modules; every bench writes its human-readable result table to
``benchmarks/results/``.
"""

import os
from typing import Dict

import pytest

from repro.benchgen import SUITE, build_unit
from repro.io.weights import EcoInstance

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> None:
    """Persist a bench's table under benchmarks/results/ and print it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text if text.endswith("\n") else text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def suite_instances() -> Dict[str, EcoInstance]:
    """All 20 suite units, built once."""
    return {spec.name: build_unit(spec) for spec in SUITE}
