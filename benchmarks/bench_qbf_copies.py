"""E5 — QBF certificates reduce structural-miter copies (Section 3.6.2).

Paper claim: constructing a structural patch for k targets needs
2^k − 1 miter copies with naive sequential cofactoring, but only as
many copies as CEGAR countermoves when guided by QBF certificate
information (255 → 40 for one 8-target unit).  This bench measures both
counts for k = 2..8 targets on a shared base circuit.
"""

import pytest

from repro.benchgen import corrupt, generate_weights, make_specification, random_dag
from repro.core import build_miter, check_feasibility
from repro.io.weights import EcoInstance

from conftest import write_result

TARGET_COUNTS = (2, 3, 4, 6, 8)
_copies = {}


def make_instance(k):
    golden = random_dag(16, 120, 8, seed=500 + k, name=f"qbf{k}")
    impl, targets, _ = corrupt(golden, k, seed=900 + k)
    return EcoInstance(
        name=f"qbf{k}",
        impl=impl,
        spec=make_specification(golden),
        targets=targets,
        weights=generate_weights(impl, "T4", seed=k),
    )


@pytest.mark.parametrize("k", TARGET_COUNTS)
def bench_certificate_copies(benchmark, k):
    inst = make_instance(k)

    def run():
        ids = [inst.impl.node_by_name(t) for t in inst.targets]
        miter = build_miter(inst.impl, inst.spec, ids)
        feas = check_feasibility(miter, method="qbf")
        assert feas.feasible
        return len(feas.countermoves)

    moves = benchmark.pedantic(run, rounds=1, iterations=1)
    naive = 2**k - 1
    _copies[k] = (naive, moves)
    assert moves <= naive


def bench_qbf_copies_report(benchmark):
    if not _copies:
        pytest.skip("no data (use --benchmark-only)")
    lines = [
        "E5: miter copies for multi-target structural patches",
        "(paper: 255 naive -> 40 certificate-guided at k = 8)",
        f"{'#targets':>9} {'naive 2^k-1':>12} {'certificate':>12}",
    ]
    for k in TARGET_COUNTS:
        naive, moves = _copies[k]
        lines.append(f"{k:>9} {naive:>12} {moves:>12}")
    # shape check: at k = 8 the certificate must be far below 255
    naive8, moves8 = _copies[max(TARGET_COUNTS)]
    assert moves8 < naive8 / 2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e5_qbf_copies.txt", "\n".join(lines))
