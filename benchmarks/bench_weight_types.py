"""E8 (extension) — patch-cost sensitivity across weight types T1-T8.

Section 4.1 motivates eight weight distributions modeling different
physical-design pressures; the contest mixed them across units.  This
bench fixes one circuit + corruption and sweeps every distribution,
producing the cost/support-profile series the contest design implies:
distance-aware regimes shift the chosen support between shallow and
deep signals, path/locality regimes route around the expensive regions.
"""

import pytest

from repro import EcoEngine, contest_config
from repro.benchgen import corrupt, generate_weights, make_specification, random_dag
from repro.io.weights import EcoInstance
from repro.network.traversal import levels

from conftest import write_result

WEIGHT_TYPES = ("T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8")
_results = {}


def shared_instance(wtype):
    golden = random_dag(20, 160, 8, seed=4242, name="wsweep")
    impl, targets, _ = corrupt(golden, 1, seed=78)
    return EcoInstance(
        name=f"wsweep_{wtype}",
        impl=impl,
        spec=make_specification(golden),
        targets=targets,
        weights=generate_weights(impl, wtype, seed=5),
    )


@pytest.mark.parametrize("wtype", WEIGHT_TYPES)
def bench_weight_type(benchmark, wtype):
    inst = shared_instance(wtype)

    def run():
        return EcoEngine(contest_config()).run(inst)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.verified
    lev = levels(inst.impl)
    depths = [
        lev[inst.impl.node_by_name(s)] for s in res.support
    ]
    _results[wtype] = (res.cost, res.gate_count, depths)


def bench_weight_types_report(benchmark):
    if not _results:
        pytest.skip("no data (use --benchmark-only)")
    lines = [
        "E8: weight-distribution sweep (one fixed corruption, T1-T8)",
        f"{'type':>5} {'cost':>7} {'gates':>6} {'support levels':>30}",
    ]
    for wtype in WEIGHT_TYPES:
        cost, gates, depths = _results[wtype]
        lines.append(
            f"{wtype:>5} {cost:>7} {gates:>6} {str(sorted(depths)):>30}"
        )
    # sanity: the same functional problem is solved under every regime,
    # and the costs genuinely respond to the weights
    costs = {w: _results[w][0] for w in WEIGHT_TYPES}
    assert len(set(costs.values())) > 1, "weights had no effect on cost"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e8_weight_types.txt", "\n".join(lines))
