"""E6 — cube enumeration vs general interpolation (Section 3.5).

The paper replaces the interpolation-based patch extraction of [15]
with SAT-model cube enumeration plus prime expansion, claiming faster
computation and smaller patches.  This bench runs both routes on the
same single-target instances and compares patch gate counts and wall
time.
"""

import dataclasses

import pytest

from repro import EcoEngine, contest_config
from repro.benchgen import corrupt, generate_weights, make_specification, random_dag
from repro.io.weights import EcoInstance

from conftest import write_result

SEEDS = (0, 1, 2, 3)
_results = {}


def make_instance(seed):
    golden = random_dag(14, 100, 6, seed=700 + seed, name=f"ci{seed}")
    impl, targets, _ = corrupt(golden, 1, seed=300 + seed)
    return EcoInstance(
        name=f"ci{seed}",
        impl=impl,
        spec=make_specification(golden),
        targets=targets,
        weights=generate_weights(impl, "T8", seed=seed),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("method", ["cubes", "interpolation"])
def bench_patch_function(benchmark, seed, method):
    inst = make_instance(seed)
    cfg = dataclasses.replace(contest_config(), patch_function_method=method)

    def run():
        return EcoEngine(cfg).run(inst)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.verified
    _results[(seed, method)] = res


def bench_cube_vs_interp_report(benchmark):
    if not _results:
        pytest.skip("no data (use --benchmark-only)")
    lines = [
        "E6: patch size/time — cube enumeration vs interpolation",
        f"{'seed':>5} {'gates(cubes)':>13} {'gates(itp)':>11} "
        f"{'t(cubes)':>9} {'t(itp)':>8}",
    ]
    cube_total = itp_total = 0
    for seed in SEEDS:
        c = _results.get((seed, "cubes"))
        i = _results.get((seed, "interpolation"))
        if c is None or i is None:
            continue
        cube_total += c.gate_count
        itp_total += i.gate_count
        lines.append(
            f"{seed:>5} {c.gate_count:>13} {i.gate_count:>11} "
            f"{c.runtime_seconds:>9.3f} {i.runtime_seconds:>8.3f}"
        )
    lines.append(
        f"total patch gates: cubes={cube_total} interpolation={itp_total}"
    )
    # paper shape: enumeration never larger in aggregate
    assert cube_total <= itp_total
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e6_cube_vs_interp.txt", "\n".join(lines))
