"""E7 — SAT substrate performance and the fraig ablation.

Not a paper table, but the substrate the whole reproduction stands on:
raw CDCL throughput on random 3-SAT and pigeonhole instances, CEC of
restructured netlists, and the effect of SAT sweeping (fraig) on the
expansion-based feasibility instance — the ablation that justifies the
[12]-style sweeping in Section 3.2's check.
"""

import random

import pytest

from repro.benchgen import random_dag
from repro.core import build_miter, build_quantified_miter
from repro.network import strash_network
from repro.network.fraig import fraig_network
from repro.sat import CnfTemplate, Solver, encode_network, mklit

from conftest import write_result


def bench_random_3sat_sat(benchmark):
    """Satisfiable random 3-SAT at clause ratio 4.0 (n = 120)."""
    rng = random.Random(11)
    n, m = 120, 480
    clauses = [
        [mklit(v, rng.random() < 0.5) for v in rng.sample(range(n), 3)]
        for _ in range(m)
    ]

    def run():
        s = Solver()
        s.new_vars(n)
        for c in clauses:
            s.add_clause(c)
        return s.solve()

    assert benchmark(run) is True


def bench_random_3sat_unsat(benchmark):
    """Unsatisfiable random 3-SAT at clause ratio 6.0 (n = 80)."""
    rng = random.Random(13)
    n, m = 80, 480
    clauses = [
        [mklit(v, rng.random() < 0.5) for v in rng.sample(range(n), 3)]
        for _ in range(m)
    ]

    def run():
        s = Solver()
        s.new_vars(n)
        for c in clauses:
            s.add_clause(c)
        return s.solve()

    assert benchmark(run) is False


def bench_pigeonhole(benchmark):
    """PHP(7, 6): a classic resolution-hard UNSAT family."""

    def run():
        s = Solver()
        v = [[s.new_var() for _ in range(6)] for _ in range(7)]
        for p in range(7):
            s.add_clause([mklit(v[p][h]) for h in range(6)])
        for h in range(6):
            for p1 in range(7):
                for p2 in range(p1 + 1, 7):
                    s.add_clause([mklit(v[p1][h], True), mklit(v[p2][h], True)])
        return s.solve()

    assert benchmark(run) is False


@pytest.mark.parametrize("path", ["encode", "stamp"], ids=["encode", "stamp"])
def bench_encode_vs_stamp(benchmark, path):
    """Two miter copies into one solver: graph encode vs template stamp.

    This is the exact shape of the engine's support computation
    (expression (2) needs two copies of the quantified miter); the
    template pays one compile and then copies by literal arithmetic.
    """
    net = random_dag(24, 220, 12, seed=21)
    template = CnfTemplate(net)

    def run_encode():
        s = Solver()
        encode_network(s, net)
        encode_network(s, net)
        return s.nvars

    def run_stamp():
        s = Solver()
        template.stamp(s)
        template.stamp(s)
        return s.nvars

    nvars = benchmark(run_stamp if path == "stamp" else run_encode)
    assert nvars > 0


def bench_cec_restructured(benchmark):
    """Equivalence proof of a netlist against its strashed rebuild."""
    net = random_dag(24, 220, 12, seed=21)
    rebuilt = strash_network(net)
    miter = build_miter(net, rebuilt, targets=[])
    po = dict(miter.net.pos)["miter"]

    def run():
        s = Solver()
        varmap = encode_network(s, miter.net)
        return s.solve([mklit(varmap[po])])

    assert benchmark(run) is False


@pytest.mark.parametrize("sweep", [False, True], ids=["plain", "fraig"])
def bench_feasibility_instance(benchmark, sweep):
    """The Section 3.2 expansion check, with/without SAT sweeping."""
    from repro.benchgen import corrupt, make_specification

    golden = random_dag(20, 150, 10, seed=31)
    impl, targets, _ = corrupt(golden, 3, seed=77)
    spec = make_specification(golden)
    ids = [impl.node_by_name(t) for t in targets]
    miter = build_miter(impl, spec, ids)
    qm = build_quantified_miter(miter, None)
    net = fraig_network(qm.net) if sweep else qm.net
    po = dict(net.pos)["qmiter"]

    def run():
        s = Solver()
        varmap = encode_network(s, net)
        return s.solve([mklit(varmap[po])])

    assert benchmark(run) is False
    write_result(
        f"e7_feasibility_{'fraig' if sweep else 'plain'}.txt",
        f"gates={'%d' % net.num_gates} (sweep={sweep})",
    )
