#!/usr/bin/env python3
"""Bench regression guard: compare a fresh Table 1 export to the baseline.

Usage::

    python benchmarks/bench_guard.py CURRENT.json \
        [--baseline benchmarks/results/BENCH_table1.json] \
        [--threshold 0.25] [--ignore-context] [--json]

Both files are ``repro.obs.bench/v1`` exports from
``benchmarks/bench_table1.py``.  The guard sums ``runtime_s`` over the
(unit, method) pairs present in *both* files — rows added or removed
since the baseline don't skew the comparison — and fails (exit 1) when
the current total exceeds the baseline total by more than the
threshold (default: 25% slower).  Per-pair deltas are printed so a
regression points at the responsible unit immediately.

Wall clock is only comparable when it was measured the same way: a
parallel harness run (``--jobs N``) on a small runner inflates every
unit's wall clock through CPU contention while the solver counters stay
identical (this exact artifact once masqueraded as a 0.46x "pipeline
regression" in the committed baseline — see docs/PERFORMANCE.md).
Exports record their measurement settings in a ``context`` block; when
both files carry one and the ``jobs`` values differ, the guard refuses
the comparison (exit 2) unless ``--ignore-context`` is given.

Wired into the CI telemetry job as a *hard gate*: a >25% slowdown on
the sequential subset fails the build.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

Key = Tuple[str, str]


def load_document(path: str) -> Dict[str, Any]:
    """Load and schema-check a bench export."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "repro.obs.bench/v1":
        raise ValueError(
            f"{path}: unexpected schema {doc.get('schema')!r}"
            " (want repro.obs.bench/v1)"
        )
    return doc


def extract_runtimes(doc: Dict[str, Any]) -> Dict[Key, float]:
    """Map (unit, method) -> runtime_s from a bench export."""
    runtimes: Dict[Key, float] = {}
    for row in doc.get("units", []):
        runtimes[(row["unit"], row["method"])] = float(row["runtime_s"])
    return runtimes


def load_runtimes(path: str) -> Dict[Key, float]:
    """Map (unit, method) -> runtime_s from a bench export file."""
    return extract_runtimes(load_document(path))


def context_mismatch(
    baseline_doc: Dict[str, Any], current_doc: Dict[str, Any]
) -> Optional[str]:
    """A human-readable reason the two measurements are incomparable.

    Returns ``None`` when they are comparable.  Legacy exports without
    a ``context`` block are accepted (nothing to compare against).
    """
    base_ctx = baseline_doc.get("context")
    cur_ctx = current_doc.get("context")
    if not isinstance(base_ctx, dict) or not isinstance(cur_ctx, dict):
        return None
    base_jobs, cur_jobs = base_ctx.get("jobs"), cur_ctx.get("jobs")
    if base_jobs is not None and cur_jobs is not None and base_jobs != cur_jobs:
        return (
            f"measurement contexts differ: baseline jobs={base_jobs},"
            f" current jobs={cur_jobs} — parallel workers contend for"
            " cores and inflate wall clock; re-run with matching --jobs"
            " or pass --ignore-context"
        )
    return None


def compare(
    baseline: Dict[Key, float],
    current: Dict[Key, float],
    threshold: float,
) -> dict:
    """Totals over the shared (unit, method) pairs, plus per-pair deltas."""
    shared = sorted(set(baseline) & set(current))
    base_total = sum(baseline[k] for k in shared)
    cur_total = sum(current[k] for k in shared)
    ratio = cur_total / base_total if base_total > 0 else float("inf")
    pairs: List[dict] = []
    for key in shared:
        unit, method = key
        base, cur = baseline[key], current[key]
        pairs.append(
            {
                "unit": unit,
                "method": method,
                "baseline_s": base,
                "current_s": cur,
                "ratio": cur / base if base > 0 else float("inf"),
            }
        )
    return {
        "shared_pairs": len(shared),
        "only_in_baseline": sorted(
            f"{u}/{m}" for u, m in set(baseline) - set(current)
        ),
        "only_in_current": sorted(
            f"{u}/{m}" for u, m in set(current) - set(baseline)
        ),
        "baseline_total_s": base_total,
        "current_total_s": cur_total,
        "ratio": ratio,
        "threshold": threshold,
        "ok": bool(shared) and ratio <= 1.0 + threshold,
        "pairs": pairs,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh bench_table1.py export")
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/BENCH_table1.json",
        help="committed baseline export",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown of the total (default: 0.25)",
    )
    parser.add_argument(
        "--ignore-context",
        action="store_true",
        help="compare even when the measurement contexts (e.g. --jobs) differ",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )
    args = parser.parse_args(argv)

    try:
        baseline_doc = load_document(args.baseline)
        current_doc = load_document(args.current)
        baseline = extract_runtimes(baseline_doc)
        current = extract_runtimes(current_doc)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"bench_guard: error: {exc}", file=sys.stderr)
        return 2

    mismatch = context_mismatch(baseline_doc, current_doc)
    if mismatch is not None:
        if not args.ignore_context:
            print(f"bench_guard: error: {mismatch}", file=sys.stderr)
            return 2
        print(f"bench_guard: warning: {mismatch} (ignored)", file=sys.stderr)

    result = compare(baseline, current, args.threshold)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        for pair in result["pairs"]:
            print(
                f"  {pair['unit']:>8s}/{pair['method']:<18s}"
                f" {pair['baseline_s']:9.4f}s -> {pair['current_s']:9.4f}s"
                f"  x{pair['ratio']:.2f}"
            )
        for tag in ("only_in_baseline", "only_in_current"):
            if result[tag]:
                print(f"  {tag}: {', '.join(result[tag])}")
        print(
            f"total over {result['shared_pairs']} shared rows:"
            f" {result['baseline_total_s']:.3f}s ->"
            f" {result['current_total_s']:.3f}s"
            f" (x{result['ratio']:.3f}, allowed x{1 + args.threshold:.2f})"
        )
    if not result["shared_pairs"]:
        print("bench_guard: FAIL — no shared (unit, method) rows",
              file=sys.stderr)
        return 1
    if not result["ok"]:
        print(
            f"bench_guard: FAIL — total wall-clock regressed by"
            f" {(result['ratio'] - 1) * 100:.1f}%"
            f" (threshold {args.threshold * 100:.0f}%)",
            file=sys.stderr,
        )
        return 1
    if not args.json:
        print("bench_guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
