"""E11 — Batch front-end throughput (shared-arena, wave-scheduled).

Runs a unit set twice over the ``repro.batch`` front-end — once
sequentially (``jobs=1``) and once across a worker pool — and reports
wall clock, speedup, per-item p50/p99 latency, and the zero-re-encode
counter audit (for every arena-resident structural hash a worker's
``sat.template_compiles`` stays flat).  The parallel run's bench
document (schema ``repro.obs.bench/v1``, with ``latency`` and
``shards`` blocks) lands in ``benchmarks/results/BENCH_batch.json``::

    PYTHONPATH=src python benchmarks/bench_batch.py \
        [--units unit1,unit2,...] [--method satprune_cegarmin] \
        [--jobs 4] [--out benchmarks/results/BENCH_batch.json]

Speedup on a multi-core host comes from process parallelism; on a
single-core host the two runs tie (the document still records honest
numbers — the ``comparison`` block is sequential-vs-parallel wall
clock of *this* invocation, never a carried-over figure).
"""

import argparse
import json
import os
import sys

from repro.batch import items_from_suite, run_batch

from conftest import RESULTS_DIR

BASELINE_NAME = "BENCH_batch.json"

#: default unit set: every non-structural unit that solves in seconds
#: (the structural units bypass the SAT flow and profit nothing from
#: the clause arena; the heavy multi-target tail would dominate wall
#: clock without adding coverage)
DEFAULT_UNITS = (
    "unit1",
    "unit2",
    "unit3",
    "unit4",
    "unit7",
    "unit8",
    "unit13",
    "unit15",
)


def audit_re_encodes(report):
    """(arena hits, worker template compiles) across all unit rows."""
    hits = compiles = 0
    for rec in report.results:
        counters = rec["entry"]["counters"]
        hits += counters.get("batch.arena_hit", 0)
        compiles += counters.get("sat.template_compiles", 0)
    return hits, compiles


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="measure the batch front-end against sequential runs"
    )
    parser.add_argument(
        "--units",
        default=",".join(DEFAULT_UNITS),
        help="comma-separated unit names",
    )
    parser.add_argument(
        "--method", default="satprune_cegarmin", help="Table 1 method column"
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="pool size for the parallel leg"
    )
    parser.add_argument(
        "--out",
        default=None,
        help=f"output JSON path (default: benchmarks/results/{BASELINE_NAME})",
    )
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.units.split(",") if n.strip()]
    items = items_from_suite(names, method=args.method)

    seq = run_batch(items, jobs=1, suite="batch")
    par = run_batch(items, jobs=args.jobs, suite="batch")

    def strip(doc):
        return [
            {
                k: v
                for k, v in e.items()
                if k not in ("phases", "passes", "runtime_s")
            }
            for e in doc["units"]
        ]

    identical = json.dumps(strip(seq.document), sort_keys=True) == json.dumps(
        strip(par.document), sort_keys=True
    )
    hits, compiles = audit_re_encodes(par)
    speedup = seq.wall_s / par.wall_s if par.wall_s > 0 else 0.0

    doc = par.document
    doc["comparison"] = {
        "before_total_runtime_s": round(
            sum(e["runtime_s"] for e in seq.document["units"]), 6
        ),
        "after_total_runtime_s": round(
            sum(e["runtime_s"] for e in doc["units"]), 6
        ),
    }
    doc["context"].update(
        {
            "sequential_wall_s": round(seq.wall_s, 6),
            "parallel_wall_s": round(par.wall_s, 6),
            "wall_speedup": round(speedup, 4),
            "results_identical": identical,
            "arena_hits": hits,
            "worker_template_compiles": compiles,
            "cpu_count": os.cpu_count(),
        }
    )

    from repro.obs.export import validate_bench_document

    validate_bench_document(doc)
    out_path = args.out or os.path.join(RESULTS_DIR, BASELINE_NAME)
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")

    lat = doc["latency"]
    print(
        f"batch: {len(items)} unit(s) x {args.method}\n"
        f"  sequential (jobs=1): {seq.wall_s:.2f}s\n"
        f"  parallel  (jobs={args.jobs}): {par.wall_s:.2f}s "
        f"(speedup {speedup:.2f}x on {os.cpu_count()} CPU(s))\n"
        f"  latency: p50 {lat['p50_s']:.3f}s p99 {lat['p99_s']:.3f}s "
        f"max {lat['max_s']:.3f}s\n"
        f"  arena: {par.arena_entries} entr"
        f"{'y' if par.arena_entries == 1 else 'ies'}, "
        f"{par.arena_bytes} B, {hits} hit(s), "
        f"{compiles} worker re-encode(s)\n"
        f"  results byte-identical across jobs: {identical}"
    )
    if not identical:
        print("batch: parallel results diverged from sequential", file=sys.stderr)
        return 1
    if not (seq.ok and par.ok):
        print("batch: unit failures", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
