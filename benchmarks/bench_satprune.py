"""E3 — SAT_prune optimality on single-target units (Section 3.4.2).

The paper's claim: for a single target, SAT_prune returns the
cost-minimum support (unit13: 3467 → 2656), while on multi-target units
its greedy per-target application can be trapped (unit9/unit17 worse
than minimize_assumptions).  This bench compares the two support methods
on single- and multi-target units and checks the single-target ordering.
"""


import pytest

from repro.benchgen import run_unit, unit_spec

from conftest import write_result

SINGLE = ("unit2", "unit4", "unit13")
MULTI = ("unit9", "unit17")
_results = {}


@pytest.mark.parametrize("name", SINGLE + MULTI)
def bench_satprune_vs_minassump(benchmark, suite_instances, name):
    spec = unit_spec(name)

    def run():
        return run_unit(
            spec,
            methods=["minassump", "satprune_cegarmin"],
            instance=suite_instances[name],
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[name] = row


def bench_satprune_report(benchmark):
    if not _results:
        pytest.skip("no data (use --benchmark-only)")
    lines = [
        "E3: SAT_prune (exact) vs minimize_assumptions (minimal) support cost",
        f"{'unit':>8} {'#targets':>9} {'minassump':>10} {'satprune':>10} {'note':>26}",
    ]
    for name, row in _results.items():
        ma = row.cost("minassump")
        sp = row.cost("satprune_cegarmin")
        note = ""
        if row.n_targets == 1:
            note = "single target: sp <= ma"
            assert sp <= ma, (name, ma, sp)
        else:
            note = "multi target: may regress"
        lines.append(
            f"{name:>8} {row.n_targets:>9} {ma:>10} {sp:>10} {note:>26}"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e3_satprune.txt", "\n".join(lines))
