"""E1 — Regenerate Table 1 (with machine-readable telemetry).

For every suite unit, runs the three method columns of the paper's
Table 1 (baseline without ``minimize_assumptions``, the contest-winning
``minimize_assumptions`` configuration, and ``SAT_prune + CEGAR_min``)
and prints per-unit cost / patch gates / runtime plus the geomean ratio
row.  Wall-clock per method is measured by pytest-benchmark; the
assembled table lands in ``benchmarks/results/table1.txt``.

Every engine run is executed with the :mod:`repro.obs` registry enabled,
and the collected per-unit telemetry (phase wall times, solver
decision/propagation/conflict/restart counters) is assembled into the
schema-validated baseline ``benchmarks/results/BENCH_table1.json``
(schema ``repro.obs.bench/v1``).

The module doubles as a plain script — no pytest-benchmark required —
for CI and for regenerating the committed baseline::

    PYTHONPATH=src python benchmarks/bench_table1.py \
        [--units unit1,unit2] [--methods baseline,minassump] \
        [--jobs 4] [--timeout 120] \
        [--out benchmarks/results/BENCH_table1.json]

``--jobs N`` fans units across a process pool (with per-unit
``--timeout`` degradation — a slow unit reports a placeholder row, it
never kills the run), and the emitted JSON carries a ``comparison``
section with the aggregate wall clock of the previously committed
baseline next to this run's.
"""

import argparse
import json
import os
import sys

import pytest

from repro.benchgen import (
    METHODS,
    SUITE,
    UnitRow,
    format_table,
    run_suite,
    run_unit,
    telemetry_document,
)

from conftest import RESULTS_DIR, write_result

BASELINE_NAME = "BENCH_table1.json"

_rows = {}


def _merge_row(row):
    merged = _rows.setdefault(
        row.name,
        UnitRow(
            name=row.name,
            n_pi=row.n_pi,
            n_po=row.n_po,
            gates_impl=row.gates_impl,
            gates_spec=row.gates_spec,
            n_targets=row.n_targets,
        ),
    )
    merged.results.update(row.results)
    merged.telemetry.update(row.telemetry)
    return merged


@pytest.mark.parametrize("method", METHODS)
def bench_table1_method(benchmark, suite_instances, method):
    """One Table 1 method column over the full 20-unit suite."""

    def run_column():
        rows = []
        for spec in SUITE:
            rows.append(
                run_unit(
                    spec,
                    methods=[method],
                    instance=suite_instances[spec.name],
                    collect_telemetry=True,
                )
            )
        return rows

    rows = benchmark.pedantic(run_column, rounds=1, iterations=1)
    for row in rows:
        _merge_row(row)
    for row in rows:
        assert row.results[method].verified


def bench_table1_report(benchmark, suite_instances):
    """Assemble and persist Table 1 + the telemetry baseline JSON."""
    complete = [
        _rows[spec.name]
        for spec in SUITE
        if spec.name in _rows and len(_rows[spec.name].results) == len(METHODS)
    ]
    if not complete:
        pytest.skip("method columns did not run (use --benchmark-only)")
    table = benchmark.pedantic(
        lambda: format_table(complete), rounds=1, iterations=1
    )
    write_result("table1.txt", "Table 1 reproduction\n" + table)
    doc = telemetry_document(complete)
    write_result(BASELINE_NAME, json.dumps(doc, indent=2, sort_keys=True))
    assert len(complete) == len(SUITE)


def _previous_total_runtime(path):
    """Aggregate ``runtime_s`` of the committed baseline, if readable."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        return sum(entry["runtime_s"] for entry in doc["units"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def main(argv=None):
    """Script entry point: run the suite and write the telemetry JSON."""
    parser = argparse.ArgumentParser(
        description="regenerate the Table 1 telemetry baseline"
    )
    parser.add_argument(
        "--units", help="comma-separated unit subset (default: all 20)"
    )
    parser.add_argument(
        "--methods",
        default=",".join(METHODS),
        help=f"comma-separated method columns (default: {','.join(METHODS)})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (default: 1, sequential)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-unit timeout in seconds; a timed-out unit degrades to "
        "a placeholder row instead of killing the run",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: benchmarks/results/BENCH_table1.json)",
    )
    args = parser.parse_args(argv)

    names = (
        [n.strip() for n in args.units.split(",") if n.strip()]
        if args.units
        else None
    )
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    for m in methods:
        if m not in METHODS:
            print(f"unknown method {m!r}; choose from {METHODS}", file=sys.stderr)
            return 2
    out_path = args.out or os.path.join(RESULTS_DIR, BASELINE_NAME)
    before_total = _previous_total_runtime(out_path)

    rows = run_suite(
        names=names,
        methods=methods,
        jobs=args.jobs,
        unit_timeout=args.timeout,
        collect_telemetry=True,
    )
    if not rows:
        print("no units matched --units", file=sys.stderr)
        return 2
    for row in rows:
        runtimes = ", ".join(
            f"{m}: cost={row.results[m].cost} "
            f"t={row.results[m].runtime_seconds:.2f}s"
            for m in methods
        )
        print(f"{row.name}: {runtimes}", file=sys.stderr)

    after_total = sum(
        row.results[m].runtime_seconds for row in rows for m in methods
    )
    comparison = None
    if before_total is not None and after_total > 0:
        comparison = {
            "before_total_runtime_s": round(before_total, 6),
            "after_total_runtime_s": round(after_total, 6),
            "speedup": round(before_total / after_total, 4),
        }
    suite_tag = "benchgen-20" if names is None else "benchgen-subset"
    doc = telemetry_document(
        rows,
        suite=suite_tag,
        comparison=comparison,
        context={"jobs": args.jobs},
    )
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(payload + "\n")
        print(f"telemetry baseline written to {args.out}", file=sys.stderr)
    else:
        write_result(BASELINE_NAME, payload)
    if comparison is not None:
        print(
            f"aggregate wall clock: {before_total:.2f}s committed -> "
            f"{after_total:.2f}s this run "
            f"({comparison['speedup']:.2f}x)",
            file=sys.stderr,
        )
    print(format_table(rows, methods))
    return 0


if __name__ == "__main__":
    sys.exit(main())
