"""E1 — Regenerate Table 1.

For every suite unit, runs the three method columns of the paper's
Table 1 (baseline without ``minimize_assumptions``, the contest-winning
``minimize_assumptions`` configuration, and ``SAT_prune + CEGAR_min``)
and prints per-unit cost / patch gates / runtime plus the geomean ratio
row.  Wall-clock per method is measured by pytest-benchmark; the
assembled table lands in ``benchmarks/results/table1.txt``.
"""

import pytest

from repro.benchgen import METHODS, SUITE, UnitRow, format_table, run_unit

from conftest import write_result

_rows = {}


@pytest.mark.parametrize("method", METHODS)
def bench_table1_method(benchmark, suite_instances, method):
    """One Table 1 method column over the full 20-unit suite."""

    def run_column():
        rows = []
        for spec in SUITE:
            rows.append(
                run_unit(spec, methods=[method], instance=suite_instances[spec.name])
            )
        return rows

    rows = benchmark.pedantic(run_column, rounds=1, iterations=1)
    for row in rows:
        merged = _rows.setdefault(
            row.name,
            UnitRow(
                name=row.name,
                n_pi=row.n_pi,
                n_po=row.n_po,
                gates_impl=row.gates_impl,
                gates_spec=row.gates_spec,
                n_targets=row.n_targets,
            ),
        )
        merged.results.update(row.results)
    for row in rows:
        assert row.results[method].verified


def bench_table1_report(benchmark, suite_instances):
    """Assemble and persist the full Table 1 (after the method columns)."""
    complete = [
        _rows[spec.name]
        for spec in SUITE
        if spec.name in _rows and len(_rows[spec.name].results) == len(METHODS)
    ]
    if not complete:
        pytest.skip("method columns did not run (use --benchmark-only)")
    table = benchmark.pedantic(
        lambda: format_table(complete), rounds=1, iterations=1
    )
    write_result("table1.txt", "Table 1 reproduction\n" + table)
    assert len(complete) == len(SUITE)
