"""E1 — Regenerate Table 1 (with machine-readable telemetry).

For every suite unit, runs the three method columns of the paper's
Table 1 (baseline without ``minimize_assumptions``, the contest-winning
``minimize_assumptions`` configuration, and ``SAT_prune + CEGAR_min``)
and prints per-unit cost / patch gates / runtime plus the geomean ratio
row.  Wall-clock per method is measured by pytest-benchmark; the
assembled table lands in ``benchmarks/results/table1.txt``.

Every engine run is executed with the :mod:`repro.obs` registry enabled,
and the collected per-unit telemetry (phase wall times, solver
decision/propagation/conflict/restart counters) is assembled into the
schema-validated baseline ``benchmarks/results/BENCH_table1.json``
(schema ``repro.obs.bench/v1``).

The module doubles as a plain script — no pytest-benchmark required —
for CI and for regenerating the committed baseline::

    PYTHONPATH=src python benchmarks/bench_table1.py \
        [--units unit1,unit2] [--methods baseline,minassump] \
        [--out benchmarks/results/BENCH_table1.json]
"""

import argparse
import json
import sys

import pytest

from repro.benchgen import (
    METHODS,
    SUITE,
    UnitRow,
    format_table,
    run_unit,
    telemetry_document,
)

from conftest import write_result

BASELINE_NAME = "BENCH_table1.json"

_rows = {}


def _merge_row(row):
    merged = _rows.setdefault(
        row.name,
        UnitRow(
            name=row.name,
            n_pi=row.n_pi,
            n_po=row.n_po,
            gates_impl=row.gates_impl,
            gates_spec=row.gates_spec,
            n_targets=row.n_targets,
        ),
    )
    merged.results.update(row.results)
    merged.telemetry.update(row.telemetry)
    return merged


@pytest.mark.parametrize("method", METHODS)
def bench_table1_method(benchmark, suite_instances, method):
    """One Table 1 method column over the full 20-unit suite."""

    def run_column():
        rows = []
        for spec in SUITE:
            rows.append(
                run_unit(
                    spec,
                    methods=[method],
                    instance=suite_instances[spec.name],
                    collect_telemetry=True,
                )
            )
        return rows

    rows = benchmark.pedantic(run_column, rounds=1, iterations=1)
    for row in rows:
        _merge_row(row)
    for row in rows:
        assert row.results[method].verified


def bench_table1_report(benchmark, suite_instances):
    """Assemble and persist Table 1 + the telemetry baseline JSON."""
    complete = [
        _rows[spec.name]
        for spec in SUITE
        if spec.name in _rows and len(_rows[spec.name].results) == len(METHODS)
    ]
    if not complete:
        pytest.skip("method columns did not run (use --benchmark-only)")
    table = benchmark.pedantic(
        lambda: format_table(complete), rounds=1, iterations=1
    )
    write_result("table1.txt", "Table 1 reproduction\n" + table)
    doc = telemetry_document(complete)
    write_result(BASELINE_NAME, json.dumps(doc, indent=2, sort_keys=True))
    assert len(complete) == len(SUITE)


def main(argv=None):
    """Script entry point: run the suite and write the telemetry JSON."""
    parser = argparse.ArgumentParser(
        description="regenerate the Table 1 telemetry baseline"
    )
    parser.add_argument(
        "--units", help="comma-separated unit subset (default: all 20)"
    )
    parser.add_argument(
        "--methods",
        default=",".join(METHODS),
        help=f"comma-separated method columns (default: {','.join(METHODS)})",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: benchmarks/results/BENCH_table1.json)",
    )
    args = parser.parse_args(argv)

    names = (
        [n.strip() for n in args.units.split(",") if n.strip()]
        if args.units
        else None
    )
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    for m in methods:
        if m not in METHODS:
            print(f"unknown method {m!r}; choose from {METHODS}", file=sys.stderr)
            return 2
    rows = []
    for spec in SUITE:
        if names is not None and spec.name not in names:
            continue
        row = run_unit(spec, methods=methods, collect_telemetry=True)
        rows.append(row)
        runtimes = ", ".join(
            f"{m}: cost={row.results[m].cost} "
            f"t={row.results[m].runtime_seconds:.2f}s"
            for m in methods
        )
        print(f"{spec.name}: {runtimes}", file=sys.stderr)
    if not rows:
        print("no units matched --units", file=sys.stderr)
        return 2
    suite_tag = "benchgen-20" if names is None else "benchgen-subset"
    doc = telemetry_document(rows, suite=suite_tag)
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(payload + "\n")
        print(f"telemetry baseline written to {args.out}", file=sys.stderr)
    else:
        write_result(BASELINE_NAME, payload)
    print(format_table(rows, methods))
    return 0


if __name__ == "__main__":
    sys.exit(main())
