"""E9 (extension) — target localization quality (paper Section 5).

The paper's future work is an integrated flow that *detects* targets.
This bench measures the detector on corrupted units: how often the true
culprit is ranked first / top-5, how often a confirmed-sufficient set is
found, and the end-to-end localize-then-patch success rate.
"""

import pytest

from repro import EcoEngine, contest_config
from repro.benchgen import corrupt, make_specification, random_dag
from repro.core import localize_targets
from repro.io.weights import EcoInstance

from conftest import write_result

SEEDS = tuple(range(12))
_stats = {"total": 0, "top1": 0, "top5": 0, "confirmed": 0, "patched": 0}


@pytest.mark.parametrize("seed", SEEDS)
def bench_localize_unit(benchmark, seed):
    golden = random_dag(16, 120, 8, seed=6000 + seed)
    impl, targets, _ = corrupt(golden, 1, seed=31 + seed)
    spec = make_specification(golden)

    def run():
        return localize_targets(impl, spec)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    if not res.ranked:
        return  # unobservable corruption
    _stats["total"] += 1
    names = [n for n, _ in res.ranked]
    if names and names[0] == targets[0]:
        _stats["top1"] += 1
    if targets[0] in names[:5]:
        _stats["top5"] += 1
    if res.targets:
        _stats["confirmed"] += 1
        inst = EcoInstance(f"loc{seed}", impl, spec, res.targets)
        out = EcoEngine(contest_config()).run(inst)
        if out.verified:
            _stats["patched"] += 1


def bench_localize_report(benchmark):
    if not _stats["total"]:
        pytest.skip("no data (use --benchmark-only)")
    t = _stats["total"]
    lines = [
        "E9: target localization on corrupted units",
        f"observable corruptions:        {t}",
        f"true culprit ranked #1:        {_stats['top1']}/{t}",
        f"true culprit in top 5:         {_stats['top5']}/{t}",
        f"sufficient set confirmed:      {_stats['confirmed']}/{t}",
        f"localize->patch verified:      {_stats['patched']}/{t}",
    ]
    assert _stats["confirmed"] >= t * 0.7
    assert _stats["patched"] == _stats["confirmed"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e9_localize.txt", "\n".join(lines))
