"""E4 — CEGAR_min on structurally solved units (Section 3.6.3).

unit6 / unit10 / unit11 / unit19 are the units the paper routes through
the structural patch; CEGAR_min's max-flow re-support is what improves
them in the last method column (e.g. unit11: 4142/1063 → 956/368).
This bench runs the structural flow with and without CEGAR_min.
"""

import dataclasses

import pytest

from repro import EcoEngine
from repro.benchgen import config_for, unit_spec

from conftest import write_result

UNITS = ("unit6", "unit10", "unit11", "unit19")
VARIANTS = ("plain", "cegarmin", "resub")
_results = {}


@pytest.mark.parametrize("name", UNITS)
@pytest.mark.parametrize("variant", VARIANTS)
def bench_structural(benchmark, suite_instances, name, variant):
    spec = unit_spec(name)
    cfg = dataclasses.replace(
        config_for(spec, "minassump"),
        structural_only=True,
        feasibility_method="qbf",
        use_cegar_min=(variant == "cegarmin"),
        use_resub=(variant == "resub"),
    )

    def run():
        return EcoEngine(cfg).run(suite_instances[name])

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.verified
    _results[(name, variant)] = res


def bench_cegarmin_report(benchmark):
    if not _results:
        pytest.skip("no data (use --benchmark-only)")
    lines = [
        "E4: structural patches — plain vs CEGAR_min vs SAT resubstitution",
        f"{'unit':>8}"
        + "".join(f" {'c(' + v + ')':>10} {'g(' + v + ')':>10}" for v in VARIANTS),
    ]
    improved = 0
    for name in UNITS:
        row = [f"{name:>8}"]
        plain = _results.get((name, "plain"))
        for v in VARIANTS:
            res = _results.get((name, v))
            if res is None:
                row.append(f" {'-':>10} {'-':>10}")
                continue
            row.append(f" {res.cost:>10} {res.gate_count:>10}")
        cm = _results.get((name, "cegarmin"))
        if plain and cm:
            assert cm.cost <= plain.cost, (name, plain.cost, cm.cost)
            if cm.cost < plain.cost or cm.gate_count < plain.gate_count:
                improved += 1
        rs = _results.get((name, "resub"))
        if plain and rs:
            assert rs.cost <= plain.cost, (name, plain.cost, rs.cost)
        lines.append("".join(row))
    lines.append(f"units improved by CEGAR_min: {improved}/{len(UNITS)}")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result("e4_cegarmin.txt", "\n".join(lines))
