"""Shared test utilities: random network builders and brute-force oracles."""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.network import GateType, Network

RANDOM_GATE_TYPES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
    GateType.MUX,
]


def random_network(
    n_pi: int = 5,
    n_gates: int = 25,
    n_po: int = 3,
    seed: int = 0,
    name: str = "t",
) -> Network:
    """A seeded random network with named gates."""
    rng = random.Random(seed)
    net = Network(name)
    nodes = [net.add_pi(f"i{k}") for k in range(n_pi)]
    for g in range(n_gates):
        gtype = rng.choice(RANDOM_GATE_TYPES)
        if gtype in (GateType.NOT, GateType.BUF):
            ins = [rng.choice(nodes)]
        elif gtype is GateType.MUX:
            ins = [rng.choice(nodes) for _ in range(3)]
        else:
            ins = [rng.choice(nodes) for _ in range(rng.randint(2, 3))]
        nodes.append(net.add_gate(gtype, ins, f"g{g}"))
    for p in range(n_po):
        net.add_po(rng.choice(nodes), f"o{p}")
    return net


def all_minterms(n: int) -> Iterable[Tuple[int, ...]]:
    return itertools.product((0, 1), repeat=n)


def po_truth_tables(net: Network) -> Dict[str, Tuple[int, ...]]:
    """Exhaustive PO truth tables keyed by PO name (PIs in id order)."""
    pis = net.pis
    tables: Dict[str, List[int]] = {name: [] for name, _ in net.pos}
    for bits in all_minterms(len(pis)):
        vals = net.evaluate_pos(dict(zip(pis, bits)))
        for name, v in vals.items():
            tables[name].append(v)
    return {k: tuple(v) for k, v in tables.items()}


def networks_equivalent_brute(a: Network, b: Network) -> bool:
    """Exhaustive equivalence by PI/PO name matching (small nets only)."""
    a_pis = {a.node(p).name: p for p in a.pis}
    b_pis = {b.node(p).name: p for p in b.pis}
    names = sorted(set(a_pis) | set(b_pis))
    if {n for n, _ in a.pos} != {n for n, _ in b.pos}:
        return False
    for bits in all_minterms(len(names)):
        assign = dict(zip(names, bits))
        va = a.evaluate_pos({p: assign[n] for n, p in a_pis.items()})
        vb = b.evaluate_pos({p: assign[n] for n, p in b_pis.items()})
        if va != vb:
            return False
    return True


def brute_sat(clauses: Sequence[Sequence[int]], nvars: int) -> bool:
    """Brute-force CNF satisfiability over internal literals."""
    for bits in itertools.product((0, 1), repeat=nvars):
        if all(any(bits[l >> 1] ^ (l & 1) for l in c) for c in clauses):
            return True
    return False
