"""Unit and property tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    SatBudgetExceeded,
    Solver,
    check_proof,
    from_dimacs,
    mklit,
    neg,
    to_dimacs,
)

from helpers import brute_sat


class TestLiterals:
    def test_mklit_neg_roundtrip(self):
        for v in range(5):
            assert neg(mklit(v)) == mklit(v, True)
            assert neg(neg(mklit(v))) == mklit(v)

    def test_dimacs_roundtrip(self):
        for d in (1, -1, 5, -9):
            assert to_dimacs(from_dimacs(d)) == d

    def test_dimacs_zero_rejected(self):
        with pytest.raises(ValueError):
            from_dimacs(0)


class TestBasicSolving:
    def test_empty_problem_is_sat(self):
        assert Solver().solve()

    def test_unit_clause(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([mklit(a)])
        assert s.solve()
        assert s.model_value(mklit(a)) == 1

    def test_contradictory_units(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([mklit(a)])
        assert not s.add_clause([mklit(a, True)])
        assert not s.solve()

    def test_empty_clause_unsat(self):
        s = Solver()
        assert not s.add_clause([])
        assert not s.solve()

    def test_duplicate_literals_collapsed(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([mklit(a), mklit(a)])
        assert s.solve()
        assert s.model_value(mklit(a)) == 1

    def test_tautology_ignored(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([mklit(a), mklit(a, True)])
        assert s.solve()

    def test_implication_chain(self):
        s = Solver()
        vs = s.new_vars(30)
        for i in range(29):
            s.add_clause([mklit(vs[i], True), mklit(vs[i + 1])])
        s.add_clause([mklit(vs[0])])
        assert s.solve()
        assert s.model_value(mklit(vs[29])) == 1

    def test_xor_unsat(self):
        # x != y, y != z, z != x over booleans is UNSAT
        s = Solver()
        x, y, z = s.new_vars(3)
        for a, b in ((x, y), (y, z), (z, x)):
            s.add_clause([mklit(a), mklit(b)])
            s.add_clause([mklit(a, True), mklit(b, True)])
        assert not s.solve()


class TestAssumptions:
    def _chain(self):
        s = Solver()
        a, b, c = s.new_vars(3)
        s.add_clause([mklit(a, True), mklit(b)])
        s.add_clause([mklit(b, True), mklit(c)])
        return s, a, b, c

    def test_sat_under_assumptions(self):
        s, a, b, c = self._chain()
        assert s.solve([mklit(a)])
        assert s.model_value(mklit(c)) == 1

    def test_unsat_under_assumptions_with_core(self):
        s, a, b, c = self._chain()
        assert not s.solve([mklit(a), mklit(c, True)])
        core = set(s.failed_core())
        assert core <= {mklit(a), mklit(c, True)}
        assert core  # non-empty

    def test_solver_usable_after_unsat_assumptions(self):
        s, a, b, c = self._chain()
        assert not s.solve([mklit(a), mklit(c, True)])
        assert s.solve([mklit(a)])
        assert s.solve([mklit(c, True)])
        assert s.model_value(mklit(a)) == 0

    def test_contradictory_assumptions(self):
        s = Solver()
        a = s.new_var()
        assert not s.solve([mklit(a), mklit(a, True)])
        core = set(s.failed_core())
        assert mklit(a) in core or mklit(a, True) in core

    def test_core_is_sound(self):
        # the core, asserted alone, must still be UNSAT
        rng = random.Random(11)
        for _ in range(25):
            nv = rng.randint(3, 9)
            s = Solver()
            s.new_vars(nv)
            for _ in range(rng.randint(5, 25)):
                c = [
                    mklit(rng.randrange(nv), rng.random() < 0.5)
                    for _ in range(rng.randint(1, 3))
                ]
                if not s.add_clause(c):
                    break
            assum = [
                mklit(v, rng.random() < 0.5)
                for v in rng.sample(range(nv), min(nv, 4))
            ]
            if s.solve(assum):
                continue
            core = s.failed_core()
            assert set(core) <= set(assum)
            assert not s.solve(core)


class TestBudget:
    def test_budget_raises(self):
        # pigeonhole 7/6 needs far more than 3 conflicts
        s = Solver()
        v = [[s.new_var() for _ in range(6)] for _ in range(7)]
        for p in range(7):
            s.add_clause([mklit(v[p][h]) for h in range(6)])
        for h in range(6):
            for p1 in range(7):
                for p2 in range(p1 + 1, 7):
                    s.add_clause([mklit(v[p1][h], True), mklit(v[p2][h], True)])
        with pytest.raises(SatBudgetExceeded):
            s.solve(budget_conflicts=3)
        # and succeeds without a budget
        assert not s.solve()


class TestAgainstBruteForce:
    def test_random_instances(self):
        rng = random.Random(2018)
        for trial in range(150):
            nv = rng.randint(1, 8)
            clauses = [
                [
                    mklit(rng.randrange(nv), rng.random() < 0.5)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 32))
            ]
            s = Solver()
            s.new_vars(nv)
            ok = all(s.add_clause(c) for c in clauses)
            got = s.solve() if ok else False
            assert got == brute_sat(clauses, nv), clauses
            if got:
                for c in clauses:
                    assert any(s.model_value(l) for l in c)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_hypothesis_instances(self, data):
        nv = data.draw(st.integers(min_value=1, max_value=7))
        clauses = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=2 * nv - 1),
                    min_size=1,
                    max_size=4,
                ),
                min_size=0,
                max_size=24,
            )
        )
        s = Solver()
        s.new_vars(nv)
        ok = all(s.add_clause(c) for c in clauses)
        got = s.solve() if ok else False
        assert got == brute_sat(clauses, nv)


class TestStructured:
    def test_pigeonhole_unsat(self):
        for n in (4, 5, 6):
            s = Solver()
            v = [[s.new_var() for _ in range(n - 1)] for _ in range(n)]
            for p in range(n):
                s.add_clause([mklit(v[p][h]) for h in range(n - 1)])
            for h in range(n - 1):
                for p1 in range(n):
                    for p2 in range(p1 + 1, n):
                        s.add_clause(
                            [mklit(v[p1][h], True), mklit(v[p2][h], True)]
                        )
            assert not s.solve()

    def test_incremental_reuse(self):
        s = Solver()
        vs = s.new_vars(20)
        rng = random.Random(5)
        for _ in range(60):
            s.add_clause(
                [mklit(rng.choice(vs), rng.random() < 0.5) for _ in range(3)]
            )
        r1 = s.solve()
        for _ in range(20):
            assert s.solve() == r1
        # adding clauses after solving is allowed
        a = s.new_var()
        s.add_clause([mklit(a)])
        assert s.solve() == r1


class TestProofLogging:
    def _random_unsat_solver(self, seed):
        rng = random.Random(seed)
        nv = rng.randint(4, 10)
        s = Solver(proof_logging=True)
        s.new_vars(nv)
        for _ in range(int(6.5 * nv)):
            c = [
                mklit(rng.randrange(nv), rng.random() < 0.5)
                for _ in range(3)
            ]
            if not s.add_clause(c):
                return s
        return s

    def test_proofs_check(self):
        checked_any = False
        for seed in range(30):
            s = self._random_unsat_solver(seed)
            if s.solve():
                continue
            check_proof(s)
            checked_any = True
        assert checked_any

    def test_empty_clause_derivation(self):
        s = Solver(proof_logging=True)
        a, b = s.new_vars(2)
        s.add_clause([mklit(a), mklit(b)])
        s.add_clause([mklit(a), mklit(b, True)])
        s.add_clause([mklit(a, True), mklit(b)])
        s.add_clause([mklit(a, True), mklit(b, True)])
        assert not s.solve()
        assert s.empty_clause_cid is not None
        check_proof(s)
