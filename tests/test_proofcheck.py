"""Tests for the independent DRUP-style proof checker
(``repro.check.proofcheck``) and for the iterative chain replay in
``repro.sat.proof.derive_clause``.
"""

import pytest

from repro.check import (
    ProofCheckError,
    RupChecker,
    check_drup,
    drup_findings,
)
from repro.sat.proof import ProofError, check_proof, derive_clause
from repro.sat.solver import Solver


def pos(v):
    return 2 * v


def neg(v):
    return 2 * v + 1


def php_solver(pigeons=3, holes=2, proof_logging=True):
    """Pigeonhole instance: UNSAT whenever pigeons > holes."""
    s = Solver(proof_logging=proof_logging)
    grid = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause([pos(grid[p][h]) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([neg(grid[p1][h]), neg(grid[p2][h])])
    assert s.solve() is False
    return s


class TestRupChecker:
    def test_unit_chain_is_rup(self):
        c = RupChecker()
        c.add_clause([pos(0)])
        c.add_clause([neg(0), pos(1)])
        assert c.check_rup([pos(1)])  # x0, x0->x1 |- x1
        assert not c.check_rup([neg(0)])  # ~x0 is not implied

    def test_check_is_rolled_back(self):
        c = RupChecker()
        c.add_clause([pos(0), pos(1)])
        trail_before = len(c._trail)
        assert not c.check_rup([pos(0)])
        assert len(c._trail) == trail_before  # temporary propagation undone

    def test_conflict_detection(self):
        c = RupChecker()
        assert c.add_clause([pos(0)])
        assert c.add_clause([neg(0), pos(1)])
        assert not c.add_clause([neg(1)])  # x1 and ~x1: top-level conflict
        assert c.top_conflict
        assert c.check_rup([pos(5)])  # ex falso quodlibet

    def test_empty_clause_is_conflict(self):
        c = RupChecker()
        assert not c.add_clause([])
        assert c.top_conflict

    def test_tautology_and_duplicates(self):
        c = RupChecker()
        assert c.add_clause([pos(0), neg(0)])  # ignored tautology
        assert not c.check_rup([pos(0)])  # ... so x0 is not implied
        assert c.add_clause([pos(1), pos(1)])  # merged to the unit x1
        assert c.check_rup([pos(1)])

    def test_multiliteral_rup(self):
        # (a|b) & (~a|c) & (~b|c) |- c, hence also the weaker (c|d)
        c = RupChecker()
        c.add_clause([pos(0), pos(1)])
        c.add_clause([neg(0), pos(2)])
        c.add_clause([neg(1), pos(2)])
        assert c.check_rup([pos(2), pos(3)])
        assert not c.check_rup([pos(3)])


class TestCheckDrup:
    def test_php_run_certifies(self):
        s = php_solver()
        assert drup_findings(s) == []
        assert check_drup(s) >= 0

    def test_larger_php_certifies(self):
        s = php_solver(pigeons=4, holes=3)
        assert drup_findings(s) == []

    def test_pc001_tampered_learned_clause(self):
        s = php_solver()
        learned = sorted(set(s.proof_chains) & set(s.clause_lits))
        assert learned, "the PHP run must learn clauses"
        # replace the first learned clause by an unsupported unit claim
        s.clause_lits[learned[0]] = (pos(s.nvars + 40),)
        findings = drup_findings(s)
        assert [f.rule for f in findings] == ["PC001"]
        with pytest.raises(ProofCheckError):
            check_drup(s)

    def test_pc002_missing_conclusion(self):
        s = php_solver()
        assert s.empty_clause_cid is not None
        for cid in list(s.proof_chains):
            s.clause_lits.pop(cid, None)  # drop every learned clause
        findings = drup_findings(s)
        assert [f.rule for f in findings] == ["PC002"]

    def test_pc003_without_proof_logging(self):
        s = Solver()
        s.add_clause([pos(s.new_var())])
        assert s.solve() is True
        findings = drup_findings(s)
        assert [f.rule for f in findings] == ["PC003"]
        with pytest.raises(ProofCheckError):
            check_drup(s)

    def test_sat_run_has_nothing_to_conclude(self):
        s = Solver(proof_logging=True)
        v0, v1 = s.new_var(), s.new_var()
        s.add_clause([pos(v0), pos(v1)])
        s.add_clause([neg(v0), pos(v1)])
        assert s.solve() is True
        assert drup_findings(s) == []


class _FakeProofSource:
    """Duck-typed stand-in: derive_clause reads only these two dicts."""

    def __init__(self):
        self.proof_chains = {}
        self.clause_lits = {}


class TestDeriveClause:
    def test_deep_linear_chain_does_not_recurse(self):
        # D_i = resolve(D_{i-1}, (~x_{i-1} | x_i)) with D_0 = (x0): a
        # 30000-deep antecedent chain, far beyond the recursion limit
        n = 30000
        src = _FakeProofSource()
        src.clause_lits[0] = (pos(0),)
        for i in range(1, n + 1):
            src.clause_lits[i] = (neg(i - 1), pos(i))
        src.proof_chains[n + 1] = [(-1, 0), (0, 1)]
        for i in range(2, n + 1):
            src.proof_chains[n + i] = [(-1, n + i - 1), (i - 1, i)]
        derived = derive_clause(src, 2 * n, {})
        assert derived == frozenset({pos(n)})

    def test_diamond_is_not_a_cycle(self):
        # B and C both resolve against A; D consumes both — the shared
        # antecedent must not be mistaken for a cyclic derivation
        src = _FakeProofSource()
        src.clause_lits[0] = (pos(0),)  # x0
        src.clause_lits[1] = (neg(0), pos(1))  # x0 -> x1
        src.clause_lits[2] = (neg(1), pos(2))  # x1 -> x2
        src.clause_lits[3] = (neg(1), pos(3))  # x1 -> x3
        src.clause_lits[4] = (neg(2), neg(3), pos(4))  # x2 & x3 -> x4
        src.proof_chains[10] = [(-1, 0), (0, 1)]  # A = (x1)
        src.proof_chains[11] = [(-1, 10), (1, 2)]  # B = (x2)
        src.proof_chains[12] = [(-1, 10), (1, 3)]  # C = (x3)
        src.proof_chains[13] = [(-1, 12), (3, 4), (2, 11)]  # D = (x4)
        assert derive_clause(src, 13, {}) == frozenset({pos(4)})

    def test_cyclic_chain_is_rejected(self):
        src = _FakeProofSource()
        src.clause_lits[0] = (pos(0),)
        src.proof_chains[5] = [(-1, 6), (0, 0)]
        src.proof_chains[6] = [(-1, 5), (0, 0)]
        with pytest.raises(ProofError, match="cyclic"):
            derive_clause(src, 5, {})

    def test_missing_antecedent_is_rejected(self):
        src = _FakeProofSource()
        src.proof_chains[7] = [(-1, 99), (0, 98)]
        with pytest.raises(ProofError, match="neither"):
            derive_clause(src, 7, {})

    def test_bad_pivot_is_rejected(self):
        src = _FakeProofSource()
        src.clause_lits[0] = (pos(0),)
        src.clause_lits[1] = (pos(1),)
        src.proof_chains[2] = [(-1, 0), (0, 1)]  # pivot x0 not in (x1)
        with pytest.raises(ProofError, match="pivot"):
            derive_clause(src, 2, {})

    def test_real_chains_replay(self):
        s = php_solver()
        assert check_proof(s) == len(s.proof_chains)
