"""Bench regression guard tests (benchmarks/bench_guard.py).

The guard compares a fresh ``BENCH_table1.json`` export to the
committed baseline over their shared (unit, method) rows and fails on a
total wall-clock regression past the threshold.  It lives outside the
package (a CI script), so it is imported by path here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_guard",
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_guard.py",
)
bench_guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_guard)


def export(units, context=None):
    doc = {
        "schema": "repro.obs.bench/v1",
        "units": [
            {"unit": u, "method": m, "runtime_s": t} for u, m, t in units
        ],
    }
    if context is not None:
        doc["context"] = context
    return doc


@pytest.fixture
def write_json(tmp_path):
    def _write(name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    return _write


class TestCompare:
    def test_identical_totals_pass(self):
        runs = {("u1", "baseline"): 1.0, ("u2", "minassump"): 2.0}
        result = bench_guard.compare(runs, dict(runs), threshold=0.25)
        assert result["ok"]
        assert result["ratio"] == pytest.approx(1.0)
        assert result["shared_pairs"] == 2

    def test_regression_past_threshold_fails(self):
        base = {("u1", "baseline"): 1.0, ("u2", "baseline"): 1.0}
        cur = {("u1", "baseline"): 1.0, ("u2", "baseline"): 1.6}
        result = bench_guard.compare(base, cur, threshold=0.25)
        assert not result["ok"]
        assert result["ratio"] == pytest.approx(1.3)

    def test_only_shared_rows_count(self):
        base = {("u1", "baseline"): 1.0, ("gone", "baseline"): 50.0}
        cur = {("u1", "baseline"): 1.1, ("new", "baseline"): 50.0}
        result = bench_guard.compare(base, cur, threshold=0.25)
        assert result["ok"]
        assert result["shared_pairs"] == 1
        assert result["only_in_baseline"] == ["gone/baseline"]
        assert result["only_in_current"] == ["new/baseline"]

    def test_speedup_passes(self):
        base = {("u1", "baseline"): 2.0}
        cur = {("u1", "baseline"): 1.0}
        assert bench_guard.compare(base, cur, threshold=0.25)["ok"]


class TestCli:
    def test_self_compare_exits_zero(self, write_json, capsys):
        doc = export([("u1", "baseline", 1.0), ("u2", "minassump", 2.0)])
        base = write_json("base.json", doc)
        cur = write_json("cur.json", doc)
        assert bench_guard.main([cur, "--baseline", base]) == 0
        assert "bench_guard: OK" in capsys.readouterr().out

    def test_regression_exits_one(self, write_json, capsys):
        base = write_json(
            "base.json", export([("u1", "baseline", 1.0)])
        )
        cur = write_json(
            "cur.json", export([("u1", "baseline", 2.0)])
        )
        assert bench_guard.main([cur, "--baseline", base]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_threshold_is_configurable(self, write_json):
        base = write_json("base.json", export([("u1", "baseline", 1.0)]))
        cur = write_json("cur.json", export([("u1", "baseline", 2.0)]))
        assert bench_guard.main(
            [cur, "--baseline", base, "--threshold", "1.5"]
        ) == 0

    def test_no_shared_rows_fails(self, write_json, capsys):
        base = write_json("base.json", export([("u1", "baseline", 1.0)]))
        cur = write_json("cur.json", export([("u2", "baseline", 1.0)]))
        assert bench_guard.main([cur, "--baseline", base]) == 1

    def test_bad_schema_exits_two(self, write_json):
        base = write_json(
            "base.json",
            {"schema": "something/else", "units": []},
        )
        cur = write_json("cur.json", export([("u1", "baseline", 1.0)]))
        assert bench_guard.main([cur, "--baseline", base]) == 2

    def test_missing_file_exits_two(self, write_json):
        cur = write_json("cur.json", export([("u1", "baseline", 1.0)]))
        assert bench_guard.main([cur, "--baseline", "/nope.json"]) == 2

    def test_json_output(self, write_json, capsys):
        doc = export([("u1", "baseline", 1.0)])
        base = write_json("base.json", doc)
        cur = write_json("cur.json", doc)
        assert bench_guard.main([cur, "--baseline", base, "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["ok"] and parsed["shared_pairs"] == 1

    def test_committed_baseline_compares_to_itself(self, capsys):
        baseline = "benchmarks/results/BENCH_table1.json"
        assert bench_guard.main([baseline, "--baseline", baseline]) == 0


class TestMeasurementContext:
    """Exports measured under different --jobs settings are incomparable.

    Parallel workers contending for cores inflate wall clock uniformly
    (the committed 0.46x "regression" artifact): the guard must refuse
    such a comparison instead of reporting a bogus verdict.
    """

    def test_jobs_mismatch_exits_two(self, write_json, capsys):
        rows = [("u1", "baseline", 1.0)]
        base = write_json("base.json", export(rows, context={"jobs": 1}))
        cur = write_json("cur.json", export(rows, context={"jobs": 2}))
        assert bench_guard.main([cur, "--baseline", base]) == 2
        assert "contexts differ" in capsys.readouterr().err

    def test_jobs_mismatch_overridable(self, write_json, capsys):
        rows = [("u1", "baseline", 1.0)]
        base = write_json("base.json", export(rows, context={"jobs": 1}))
        cur = write_json("cur.json", export(rows, context={"jobs": 2}))
        assert (
            bench_guard.main([cur, "--baseline", base, "--ignore-context"])
            == 0
        )
        assert "warning" in capsys.readouterr().err

    def test_matching_contexts_compare(self, write_json):
        rows = [("u1", "baseline", 1.0)]
        base = write_json("base.json", export(rows, context={"jobs": 1}))
        cur = write_json("cur.json", export(rows, context={"jobs": 1}))
        assert bench_guard.main([cur, "--baseline", base]) == 0

    def test_legacy_export_without_context_compares(self, write_json):
        rows = [("u1", "baseline", 1.0)]
        base = write_json("base.json", export(rows))
        cur = write_json("cur.json", export(rows, context={"jobs": 2}))
        assert bench_guard.main([cur, "--baseline", base]) == 0

    def test_injected_slowdown_fails_hard(self, write_json, capsys):
        # the acceptance scenario: a 30% uniform slowdown (same jobs
        # setting) must fail the guard, which CI now treats as a hard
        # build failure
        base_rows = [("u1", "baseline", 1.0), ("u2", "minassump", 2.0)]
        slow_rows = [(u, m, t * 1.3) for u, m, t in base_rows]
        base = write_json("base.json", export(base_rows, context={"jobs": 1}))
        cur = write_json("cur.json", export(slow_rows, context={"jobs": 1}))
        assert bench_guard.main([cur, "--baseline", base]) == 1
        assert "FAIL" in capsys.readouterr().err
