"""SAT_prune exactness cross-checked against the symbolic oracle.

For tiny single-target instances the BDD oracle can image the care sets
into divisor space, so the true minimum-cost support is computable by
exhaustive subset enumeration.  SAT_prune (§3.4.2) must match it.
"""

import itertools


from repro import EcoEngine, EcoInstance, best_config, contest_config
from repro.bdd import ZERO, image_over_divisors, single_target_interval
from repro.benchgen import corrupt, generate_weights, make_specification
from repro.network.window import compute_window

from helpers import random_network


def tiny_instance(seed):
    golden = random_network(n_pi=4, n_gates=14, n_po=2, seed=seed)
    impl, targets, _ = corrupt(golden, 1, seed=seed + 9)
    spec = make_specification(golden)
    weights = generate_weights(impl, "T8", seed=seed)
    return EcoInstance(f"ex{seed}", impl, spec, targets, weights)


def exact_minimum_cost(inst):
    """Brute-force minimum support cost via the BDD oracle, or None."""
    impl = inst.impl
    target = impl.node_by_name(inst.targets[0])
    window = compute_window(impl, inst.spec, [target])
    interval = single_target_interval(
        impl, inst.spec, target, window.po_indices
    )
    if not interval.feasible:
        return None
    divisors = window.divisors[:10]  # keep enumeration tractable
    costs = {
        d: inst.weights.get(impl.node(d).name or "", inst.default_weight)
        for d in divisors
    }
    # image once over the full divisor set; a subset S is feasible iff
    # the projections onto S stay disjoint (quantify the complement)
    bdd, onset_d, offset_d = image_over_divisors(interval, impl, divisors)
    index = {d: i for i, d in enumerate(divisors)}
    best = None
    for r in range(len(divisors) + 1):
        for combo in itertools.combinations(divisors, r):
            cost = sum(costs[d] for d in combo)
            if best is not None and cost >= best:
                continue
            drop = [index[d] for d in divisors if d not in combo]
            on_p = bdd.exists(onset_d, drop)
            off_p = bdd.exists(offset_d, drop)
            if bdd.and_(on_p, off_p) == ZERO:
                best = cost
    return best


class TestSatPruneExactness:
    def test_matches_bdd_brute_force(self):
        checked = 0
        for seed in range(12):
            inst = tiny_instance(seed)
            window = compute_window(
                inst.impl, inst.spec, [inst.impl.node_by_name(inst.targets[0])]
            )
            if len(window.divisors) > 10:
                continue  # brute force budget
            expect = exact_minimum_cost(inst)
            if expect is None:
                continue
            res = EcoEngine(best_config()).run(inst)
            assert res.cost == expect, (seed, res.cost, expect)
            checked += 1
        assert checked >= 3

    def test_minassump_never_below_exact(self):
        for seed in range(12):
            inst = tiny_instance(seed)
            window = compute_window(
                inst.impl, inst.spec, [inst.impl.node_by_name(inst.targets[0])]
            )
            if len(window.divisors) > 10:
                continue
            expect = exact_minimum_cost(inst)
            if expect is None:
                continue
            res = EcoEngine(contest_config()).run(inst)
            assert res.cost >= expect, (seed, res.cost, expect)
