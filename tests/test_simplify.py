"""Tests for the CNF preprocessor (equisatisfiability + model rebuild)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import Solver, mklit
from repro.sat.simplify import Preprocessor, PreprocessorError

from helpers import brute_sat


def solve_with_preprocessing(clauses, nvars, frozen=()):
    pre = Preprocessor(nvars, frozen=frozen)
    for c in clauses:
        pre.add_clause(c)
    if not pre.run():
        return False, None
    solver = Solver()
    solver.new_vars(nvars)
    for c in pre.clauses():
        if not solver.add_clause(c):
            return False, None
    if not solver.solve():
        return False, None
    return True, pre.reconstruct(solver.model)


class TestBasics:
    def test_unit_propagation(self):
        pre = Preprocessor(3)
        pre.add_clause([mklit(0)])
        pre.add_clause([mklit(0, True), mklit(1)])
        assert pre.run()
        sat, model = solve_with_preprocessing(
            [[mklit(0)], [mklit(0, True), mklit(1)]], 3
        )
        assert sat
        assert model[0] == 1 and model[1] == 1

    def test_contradictory_units_unsat(self):
        pre = Preprocessor(1)
        pre.add_clause([mklit(0)])
        pre.add_clause([mklit(0, True)])
        assert not pre.run()
        assert pre.is_unsat

    def test_tautologies_dropped(self):
        pre = Preprocessor(2)
        pre.add_clause([mklit(0), mklit(0, True)])
        assert pre.run()
        assert pre.clauses() == []

    def test_subsumption(self):
        pre = Preprocessor(3)
        pre.add_clause([mklit(0), mklit(1)])
        pre.add_clause([mklit(0), mklit(1), mklit(2)])
        assert pre.run()
        remaining = [set(c) for c in pre.clauses()]
        assert {mklit(0), mklit(1), mklit(2)} not in remaining

    def test_out_of_range_literal_rejected(self):
        pre = Preprocessor(1)
        with pytest.raises(PreprocessorError):
            pre.add_clause([mklit(5)])

    def test_variable_elimination_respects_frozen(self):
        clauses = [[mklit(0), mklit(1)], [mklit(0, True), mklit(2)]]
        pre = Preprocessor(3, frozen={0, 1, 2})
        for c in clauses:
            pre.add_clause(c)
        pre.run()
        vars_left = {l >> 1 for c in pre.clauses() for l in c}
        assert 0 in vars_left  # frozen var survives


class TestEquisatisfiability:
    def test_random_instances(self):
        rng = random.Random(31)
        for trial in range(120):
            nv = rng.randint(1, 8)
            clauses = [
                [
                    mklit(rng.randrange(nv), rng.random() < 0.5)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 30))
            ]
            expect = brute_sat(clauses, nv)
            sat, model = solve_with_preprocessing(clauses, nv)
            assert sat == expect, (trial, clauses)
            if sat:
                for c in clauses:
                    assert any(model[l >> 1] ^ (l & 1) for l in c), (
                        trial,
                        clauses,
                        model,
                    )

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_hypothesis_instances(self, data):
        nv = data.draw(st.integers(min_value=1, max_value=6))
        clauses = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=2 * nv - 1),
                    min_size=1,
                    max_size=4,
                ),
                min_size=0,
                max_size=20,
            )
        )
        expect = brute_sat(clauses, nv) if clauses else True
        sat, model = solve_with_preprocessing(clauses, nv)
        assert sat == expect
        if sat and clauses:
            for c in clauses:
                assert any(model[l >> 1] ^ (l & 1) for l in c)

    def test_frozen_vars_keep_projection(self):
        """With frozen query variables, satisfying values must agree with
        some model of the original formula."""
        rng = random.Random(41)
        for trial in range(40):
            nv = rng.randint(2, 7)
            clauses = [
                [
                    mklit(rng.randrange(nv), rng.random() < 0.5)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 20))
            ]
            frozen = set(rng.sample(range(nv), 2))
            sat, model = solve_with_preprocessing(clauses, nv, frozen=frozen)
            assert sat == brute_sat(clauses, nv)
            if sat:
                for c in clauses:
                    assert any(model[l >> 1] ^ (l & 1) for l in c)


class TestReductionPower:
    def test_chain_collapses(self):
        # x0 -> x1 -> ... -> x9 with x0 asserted: all eliminated/propagated
        n = 10
        pre = Preprocessor(n)
        pre.add_clause([mklit(0)])
        for i in range(n - 1):
            pre.add_clause([mklit(i, True), mklit(i + 1)])
        assert pre.run()
        # everything reduces to unit facts
        assert all(len(c) == 1 for c in pre.clauses())

    def test_elimination_reduces_clause_count(self):
        # a fresh variable defined as AND of two frozen ones disappears
        pre = Preprocessor(3, frozen={0, 1})
        # v2 = v0 & v1 (Tseitin)
        pre.add_clause([mklit(2, True), mklit(0)])
        pre.add_clause([mklit(2, True), mklit(1)])
        pre.add_clause([mklit(2), mklit(0, True), mklit(1, True)])
        assert pre.run()
        vars_left = {l >> 1 for c in pre.clauses() for l in c}
        assert 2 not in vars_left
