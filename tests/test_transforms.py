"""Tests for network transforms (sweep, buffer collapse, balance)."""


from repro.network import GateType, Network, depth
from repro.network.transforms import (
    balance,
    collapse_buffers,
    resynthesize,
    sweep,
)

from helpers import networks_equivalent_brute, random_network


class TestSweep:
    def test_preserves_function(self):
        for seed in range(6):
            net = random_network(n_pi=4, n_gates=20, seed=seed)
            assert networks_equivalent_brute(net, sweep(net)), seed

    def test_folds_constants(self):
        net = Network()
        a = net.add_pi("a")
        c1 = net.add_const(1)
        g = net.add_gate(GateType.AND, [a, c1])
        net.add_po(g, "o")
        swept = sweep(net)
        assert swept.num_gates == 0  # o == a

    def test_drops_dangling(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        net.add_gate(GateType.AND, [a, b])  # dangling
        net.add_po(a, "o")
        assert sweep(net).num_gates == 0


class TestCollapseBuffers:
    def test_chain_collapsed(self):
        net = Network()
        a = net.add_pi("a")
        b1 = net.add_gate(GateType.BUF, [a])
        b2 = net.add_gate(GateType.BUF, [b1])
        g = net.add_gate(GateType.NOT, [b2])
        net.add_po(g, "o")
        n = collapse_buffers(net)
        assert n == 2
        assert net.node(g).fanins == [a]
        net.cleanup()
        assert net.num_gates == 1

    def test_po_rebound(self):
        net = Network()
        a = net.add_pi("a")
        b = net.add_gate(GateType.BUF, [a])
        net.add_po(b, "o")
        collapse_buffers(net)
        assert dict(net.pos)["o"] == a

    def test_function_preserved(self):
        for seed in range(4):
            net = random_network(n_pi=4, n_gates=18, seed=seed + 30)
            copy = net.clone()
            collapse_buffers(copy)
            copy.cleanup()
            assert networks_equivalent_brute(net, copy), seed


class TestBalance:
    def test_preserves_function(self):
        for seed in range(8):
            net = random_network(n_pi=4, n_gates=22, seed=seed + 60)
            assert networks_equivalent_brute(net, balance(net)), seed

    def test_reduces_chain_depth(self):
        # a linear AND chain over 16 inputs: depth 15 -> ~log2(16)+consts
        net = Network()
        pis = [net.add_pi(f"x{i}") for i in range(16)]
        acc = pis[0]
        for p in pis[1:]:
            acc = net.add_gate(GateType.AND, [acc, p])
        net.add_po(acc, "o")
        bal = balance(net)
        assert networks_equivalent_brute(net, bal)
        assert depth(bal) <= 5
        assert depth(net) == 15

    def test_respects_shared_fanout_boundaries(self):
        # shared internal node used twice: still correct after balance
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        shared = net.add_gate(GateType.AND, [a, b], "sh")
        g1 = net.add_gate(GateType.AND, [shared, c])
        g2 = net.add_gate(GateType.OR, [shared, c])
        net.add_po(g1, "o1")
        net.add_po(g2, "o2")
        assert networks_equivalent_brute(net, balance(net))


class TestResynthesize:
    def test_equivalent_but_restructured(self):
        net = random_network(n_pi=5, n_gates=30, seed=91)
        resyn = resynthesize(net)
        assert networks_equivalent_brute(net, resyn)
