"""Cross-module integration and property-based end-to-end tests.

The central invariant of the whole system: for any corrupted golden
circuit, the engine's patches make the implementation equivalent to the
specification again — under every configuration and every weight
distribution.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    EcoEngine,
    EcoInstance,
    baseline_config,
    best_config,
    cec,
    contest_config,
)
from repro.benchgen import corrupt, generate_weights, make_specification
from repro.core import apply_patches
from repro.io import parse_verilog, write_verilog

from helpers import random_network


def build_random_instance(seed, n_targets, n_gates=30, wtype="T8"):
    golden = random_network(
        n_pi=4 + seed % 3, n_gates=n_gates, n_po=3, seed=seed
    )
    impl, targets, _ = corrupt(golden, n_targets, seed=seed * 7 + 1)
    spec = make_specification(golden)
    weights = generate_weights(impl, wtype, seed=seed)
    return EcoInstance(
        name=f"prop{seed}", impl=impl, spec=spec, targets=targets, weights=weights
    )


class TestEndToEndProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_targets=st.integers(min_value=1, max_value=3),
        wtype=st.sampled_from(["T1", "T3", "T4", "T8"]),
    )
    def test_patch_restores_equivalence(self, seed, n_targets, wtype):
        inst = build_random_instance(seed, n_targets, wtype=wtype)
        res = EcoEngine(contest_config()).run(inst)
        assert res.verified
        patched = apply_patches(inst.impl, res.patches)
        assert cec(patched, inst.spec).equivalent

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_all_configs_agree_on_verification(self, seed):
        inst = build_random_instance(seed, n_targets=1, n_gates=24)
        for cfg in (baseline_config(), contest_config(), best_config()):
            res = EcoEngine(cfg).run(inst)
            assert res.verified

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_structural_flow_property(self, seed):
        inst = build_random_instance(seed, n_targets=2, n_gates=26)
        cfg = dataclasses.replace(
            best_config(), structural_only=True, feasibility_method="qbf"
        )
        res = EcoEngine(cfg).run(inst)
        assert res.verified

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_patch_support_is_never_in_target_tfo(self, seed):
        from repro.network.traversal import tfo

        inst = build_random_instance(seed, n_targets=2)
        res = EcoEngine(contest_config()).run(inst)
        target_ids = [inst.impl.node_by_name(t) for t in inst.targets]
        forbidden = tfo(inst.impl, target_ids)
        forbidden_names = {
            inst.impl.node(n).name for n in forbidden if inst.impl.node(n).name
        }
        for p in res.patches:
            assert not (set(p.support) & forbidden_names)


class TestRoundTripIntegration:
    def test_instance_survives_disk_roundtrip_and_solves(self, tmp_path):
        inst = build_random_instance(42, n_targets=2)
        d = str(tmp_path / "unit")
        inst.save(d)
        again = EcoInstance.load(d)
        res = EcoEngine(contest_config()).run(again)
        assert res.verified

    def test_patched_netlist_exports_to_verilog(self):
        inst = build_random_instance(17, n_targets=1)
        res = EcoEngine(contest_config()).run(inst)
        patched = apply_patches(inst.impl, res.patches)
        patched.cleanup()
        text = write_verilog(patched)
        back = parse_verilog(text)
        assert cec(back, inst.spec).equivalent


class TestCostMonotonicity:
    def test_uniform_weights_cost_equals_support_size(self):
        inst = build_random_instance(5, n_targets=1)
        inst.weights = {k: 1 for k in inst.weights}
        res = EcoEngine(contest_config()).run(inst)
        assert res.cost == len(res.support)

    def test_scaling_weights_scales_cost(self):
        inst1 = build_random_instance(6, n_targets=1)
        inst2 = build_random_instance(6, n_targets=1)
        inst2.weights = {k: v * 10 for k, v in inst1.weights.items()}
        r1 = EcoEngine(contest_config()).run(inst1)
        r2 = EcoEngine(contest_config()).run(inst2)
        # same preference order => same supports => 10x cost
        assert r2.cost == 10 * r1.cost
