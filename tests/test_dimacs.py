"""Tests for DIMACS CNF I/O."""

import random

import pytest

from repro.sat import mklit
from repro.sat.dimacs import (
    DimacsError,
    parse_dimacs,
    solve_dimacs,
    write_dimacs,
)

from helpers import brute_sat


class TestParse:
    def test_simple(self):
        nvars, clauses = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        assert nvars == 3
        assert clauses == [[mklit(0), mklit(1, True)], [mklit(1), mklit(2)]]

    def test_comments_and_blank_lines(self):
        text = "c hello\n\np cnf 2 1\nc mid comment\n1 2 0\n"
        nvars, clauses = parse_dimacs(text)
        assert nvars == 2
        assert len(clauses) == 1

    def test_multiline_clause(self):
        nvars, clauses = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n")
        assert clauses == [[mklit(0), mklit(1, True), mklit(2)]]

    def test_missing_header_inferred(self):
        nvars, clauses = parse_dimacs("1 -3 0\n")
        assert nvars == 3

    def test_bad_header_rejected(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p sat 3 1\n1 0\n")

    def test_bad_token_rejected(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1 1\nx 0\n")

    def test_var_out_of_range_rejected(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1 1\n5 0\n")

    def test_satlib_trailer(self):
        nvars, clauses = parse_dimacs("p cnf 1 1\n1 0\n%\n0\n")
        assert len(clauses) == 1


class TestRoundTripAndSolve:
    def test_roundtrip(self):
        rng = random.Random(5)
        nv = 6
        clauses = [
            [mklit(rng.randrange(nv), rng.random() < 0.5) for _ in range(3)]
            for _ in range(12)
        ]
        text = write_dimacs(nv, clauses, comment="round trip")
        nv2, clauses2 = parse_dimacs(text)
        assert nv2 == nv
        assert clauses2 == [list(c) for c in clauses]

    def test_solve_matches_brute_force(self):
        rng = random.Random(9)
        for _ in range(40):
            nv = rng.randint(1, 7)
            clauses = [
                [
                    mklit(rng.randrange(nv), rng.random() < 0.5)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 25))
            ]
            text = write_dimacs(nv, clauses)
            sat, model = solve_dimacs(text)
            assert sat == brute_sat(clauses, nv)
            if sat:
                for c in clauses:
                    assert any(model[l >> 1] ^ (l & 1) for l in c)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "x.cnf")
        write_dimacs(2, [[mklit(0)], [mklit(1, True)]], path=path)
        from repro.sat.dimacs import read_dimacs

        nv, clauses = read_dimacs(path)
        assert nv == 2
        assert len(clauses) == 2
