"""Tests for ECO miter construction and windowing."""


import pytest

from repro.core import MITER_PO, build_miter
from repro.network import GateType, Network, compute_window

from helpers import all_minterms, random_network


def two_versions():
    """Golden f=(a&b)|c, g=a^c; impl corrupts 'ab' into OR."""

    def build(corrupt):
        net = Network("n")
        a, b, c = (net.add_pi(x) for x in "abc")
        gt = GateType.OR if corrupt else GateType.AND
        ab = net.add_gate(gt, [a, b], "ab")
        f = net.add_gate(GateType.OR, [ab, c], "f")
        g = net.add_gate(GateType.XOR, [a, c], "g")
        net.add_po(f, "of")
        net.add_po(g, "og")
        return net

    return build(True), build(False)


class TestBuildMiter:
    def test_miter_detects_difference(self):
        impl, spec = two_versions()
        m = build_miter(impl, spec, targets=[])
        hit = False
        for bits in all_minterms(3):
            assign = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
            out = m.net.evaluate_pos(assign)[MITER_PO]
            names = [m.net.node(p).name for p in m.x_pis]
            ref = dict(zip(names, bits))
            diff = (
                impl.evaluate_pos(
                    {impl.node_by_name(n): v for n, v in ref.items()}
                )
                != spec.evaluate_pos(
                    {spec.node_by_name(n): v for n, v in ref.items()}
                )
            )
            assert out == (1 if diff else 0)
            hit = hit or out
        assert hit  # the corruption is observable

    def test_equivalent_circuits_miter_is_zero(self):
        net = random_network(n_pi=4, n_gates=15, seed=2)
        m = build_miter(net, net.clone(), targets=[])
        for bits in all_minterms(4):
            assign = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
            assert m.net.evaluate_pos(assign)[MITER_PO] == 0

    def test_freed_target_makes_miter_fixable(self):
        impl, spec = two_versions()
        target = impl.node_by_name("ab")
        m = build_miter(impl, spec, targets=[target])
        assert len(m.target_pis) == 1
        n = m.target_pis[0]
        # with n = a&b the miter must be 0 everywhere
        for bits in all_minterms(3):
            assign = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
            names = {m.net.node(p).name: bits[i] for i, p in enumerate(m.x_pis)}
            assign[n] = names["a"] & names["b"]
            assert m.net.evaluate_pos(assign)[MITER_PO] == 0

    def test_po_restriction(self):
        impl, spec = two_versions()
        # compare only 'og' (index 1): the corruption in 'ab' is invisible
        m = build_miter(impl, spec, targets=[], po_indices=[1])
        for bits in all_minterms(3):
            assign = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
            assert m.net.evaluate_pos(assign)[MITER_PO] == 0

    def test_po_name_mismatch_rejected(self):
        impl, _ = two_versions()
        other = Network("o")
        other.add_pi("a")
        other.add_po(other.add_const(0), "different")
        with pytest.raises(ValueError):
            build_miter(impl, other, targets=[])

    def test_target_driving_po_directly(self):
        impl = Network("i")
        a, b = impl.add_pi("a"), impl.add_pi("b")
        g = impl.add_gate(GateType.AND, [a, b], "g")
        impl.add_po(g, "o")
        spec = Network("s")
        a2, b2 = spec.add_pi("a"), spec.add_pi("b")
        spec.add_po(spec.add_gate(GateType.OR, [a2, b2], "g2"), "o")
        m = build_miter(impl, spec, targets=[g])
        n = m.target_pis[0]
        # the PO compares the *freed* variable, so n = a|b fixes it
        for bits in all_minterms(2):
            assign = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
            assign[n] = bits[0] | bits[1]
            assert m.net.evaluate_pos(assign)[MITER_PO] == 0


class TestWindow:
    def test_window_pos_are_target_tfo(self):
        impl, spec = two_versions()
        target = impl.node_by_name("ab")
        w = compute_window(impl, spec, [target])
        # 'ab' reaches only 'of' (PO index 0)
        assert w.po_indices == [0]

    def test_divisors_exclude_target_tfo(self):
        impl, spec = two_versions()
        target = impl.node_by_name("ab")
        w = compute_window(impl, spec, [target])
        assert target not in w.divisors
        assert impl.node_by_name("f") not in w.divisors
        # 'g' is outside the TFO and has window-PI support
        assert impl.node_by_name("g") in w.divisors

    def test_window_pis(self):
        impl, spec = two_versions()
        target = impl.node_by_name("ab")
        w = compute_window(impl, spec, [target])
        names = {impl.node(p).name for p in w.impl_window_pis}
        assert names == {"a", "b", "c"}

    def test_po_mismatch_rejected(self):
        impl, _ = two_versions()
        bad = Network("b")
        bad.add_pi("a")
        bad.add_po(bad.add_const(1), "zzz")
        with pytest.raises(ValueError):
            compute_window(impl, bad, [impl.node_by_name("ab")])

    def test_multi_target_window(self):
        impl, spec = two_versions()
        t1 = impl.node_by_name("ab")
        t2 = impl.node_by_name("g")
        w = compute_window(impl, spec, [t1, t2])
        assert w.po_indices == [0, 1]
        assert t1 not in w.divisors and t2 not in w.divisors
