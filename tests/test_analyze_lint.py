"""Project-invariant AST linter tests (repro.analyze.lint, RA rules).

Each rule is exercised on synthetic snippets materialized under a tmp
directory whose layout mimics the repo (the path-scoped rules — clone
allowlist, deterministic modules, stats discipline — key off relative
path fragments such as ``repro/core/``), and the whole linter is run
over the real ``src/repro`` to prove the repo itself is clean.
"""

import textwrap

import pytest

from repro.analyze.lint import (
    CLONE_ALLOWLIST,
    DETERMINISTIC_MODULES,
    iter_source_files,
    lint_paths,
    main as lint_main,
)

CATALOGUE = textwrap.dedent(
    """\
    | key | kind | unit | emitted by | presence |
    |---|---|---|---|---|
    | `engine.runs` | counter | runs | engine | always |
    | `engine.fallback.*` | counter | falls | engine | conditional |
    | `sat.solves` | counter | calls | solver | always |
    """
)


@pytest.fixture
def docs(tmp_path):
    path = tmp_path / "OBSERVABILITY.md"
    path.write_text(CATALOGUE, encoding="utf-8")
    return path


def lint_snippet(tmp_path, docs, source, rel="repro/misc/mod.py",
                 check_reverse_drift=False):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path], docs, check_reverse_drift=check_reverse_drift)


def rules(report):
    return [f.rule for f in report]


# ---------------------------------------------------------------------------
# RA001/RA002: obs-key catalogue drift
# ---------------------------------------------------------------------------


class TestObsKeys:
    def test_uncatalogued_key_is_ra001(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "obs.inc('engine.bogus_counter')\n"
        )
        assert rules(report) == ["RA001"]
        assert "engine.bogus_counter" in report.findings[0].message

    def test_catalogued_key_is_clean(self, tmp_path, docs):
        report = lint_snippet(tmp_path, docs, "obs.inc('engine.runs')\n")
        assert report.ok and not report.findings

    def test_fstring_prefix_matches_wildcard_row(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs,
            "obs.inc(f'engine.fallback.{exc_name}')\n",
        )
        assert not report.findings

    def test_fstring_prefix_without_coverage_is_ra001(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "obs.span(f'mystery.{name}')\n"
        )
        assert rules(report) == ["RA001"]

    def test_variable_key_is_not_checkable(self, tmp_path, docs):
        report = lint_snippet(tmp_path, docs, "obs.inc(key_var)\n")
        assert not report.findings

    def test_obs_framework_itself_is_exempt(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "obs.inc('totally.private')\n",
            rel="repro/obs/registry.py",
        )
        assert not report.findings

    def test_stale_catalogue_row_is_ra002(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "obs.inc('engine.runs')\n",
            check_reverse_drift=True,
        )
        # sat.solves and engine.fallback.* have no emitting site here
        stale = [f for f in report if f.rule == "RA002"]
        assert {f.name for f in stale} == {"sat.solves", "engine.fallback.*"}
        assert report.ok  # warnings only

    def test_repo_src_is_clean(self):
        report = lint_paths(["src/repro"], "docs/OBSERVABILITY.md")
        assert report.ok
        assert not report.findings, [f.format() for f in report]


# ---------------------------------------------------------------------------
# RA003: clause-group discipline
# ---------------------------------------------------------------------------


class TestClauseGroups:
    def test_leaked_group_is_ra003(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs,
            """\
            def leak(solver):
                gid = solver.new_group()
                return gid
            """,
        )
        assert rules(report) == ["RA003"]

    def test_released_group_is_clean(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs,
            """\
            def fine(solver):
                gid = solver.new_group()
                try:
                    pass
                finally:
                    solver.release_group(gid)
            """,
        )
        assert not report.findings

    def test_release_in_nested_function_does_not_count(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs,
            """\
            def outer(solver):
                gid = solver.new_group()

                def inner():
                    solver.release_group(gid)

                return inner
            """,
        )
        assert rules(report) == ["RA003"]


# ---------------------------------------------------------------------------
# RA004: clone allowlist
# ---------------------------------------------------------------------------


class TestCloneAllowlist:
    def test_clone_outside_allowlist_is_ra004(self, tmp_path, docs):
        report = lint_snippet(tmp_path, docs, "net2 = net.clone()\n")
        assert rules(report) == ["RA004"]

    def test_allowlisted_file_is_clean(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "net2 = net.clone()\n",
            rel=CLONE_ALLOWLIST[0],
        )
        assert not report.findings

    def test_clone_with_args_is_a_different_method(self, tmp_path, docs):
        report = lint_snippet(tmp_path, docs, "repo.clone(url)\n")
        assert not report.findings


# ---------------------------------------------------------------------------
# RA005: determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_time_time_in_core_is_ra005(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "t = time.time()\n",
            rel="repro/core/mod.py",
        )
        assert rules(report) == ["RA005"]

    def test_perf_counter_is_fine(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "t = time.perf_counter()\n",
            rel="repro/core/mod.py",
        )
        assert not report.findings

    def test_global_random_in_sat_is_ra005(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "x = random.random()\n",
            rel="repro/sat/mod.py",
        )
        assert rules(report) == ["RA005"]

    def test_seeded_random_instance_is_fine(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "rng = random.Random(42)\n",
            rel="repro/sat/mod.py",
        )
        assert not report.findings

    def test_from_random_import_is_ra005(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "from random import choice\n",
            rel="repro/sop/mod.py",
        )
        assert rules(report) == ["RA005"]

    def test_from_random_import_Random_is_fine(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "from random import Random\n",
            rel="repro/sop/mod.py",
        )
        assert not report.findings

    def test_outside_deterministic_modules_is_fine(self, tmp_path, docs):
        assert not any("repro/bench" in m for m in DETERMINISTIC_MODULES)
        report = lint_snippet(
            tmp_path, docs, "t = time.time()\nx = random.random()\n",
            rel="repro/benchgen/mod.py",
        )
        assert not report.findings


# ---------------------------------------------------------------------------
# RA006: typed stats
# ---------------------------------------------------------------------------


class TestStatsDiscipline:
    def test_stats_subscript_in_core_is_ra006(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "stats['cubes'] = 1\n",
            rel="repro/core/mod.py",
        )
        assert rules(report) == ["RA006"]

    def test_attribute_stats_subscript_is_ra006(self, tmp_path, docs):
        report = lint_snippet(
            tmp_path, docs, "ctx.stats['cubes'] = 1\n",
            rel="repro/core/mod.py",
        )
        assert rules(report) == ["RA006"]

    def test_outside_core_is_fine(self, tmp_path, docs):
        report = lint_snippet(tmp_path, docs, "stats['cubes'] = 1\n")
        assert not report.findings


# ---------------------------------------------------------------------------
# plumbing: RA000, file discovery, CLI exit codes
# ---------------------------------------------------------------------------


class TestPlumbing:
    def test_unparseable_file_is_ra000(self, tmp_path, docs):
        report = lint_snippet(tmp_path, docs, "def broken(:\n")
        assert rules(report) == ["RA000"]

    def test_iter_source_files_recurses_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("", encoding="utf-8")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "a.py").write_text("", encoding="utf-8")
        (sub / "notes.txt").write_text("", encoding="utf-8")
        found = list(iter_source_files([tmp_path / "b.py", sub]))
        assert [p.name for p in found] == ["b.py", "a.py"]

    def test_missing_catalogue_rows_is_error(self, tmp_path):
        empty = tmp_path / "empty.md"
        empty.write_text("no tables here\n", encoding="utf-8")
        report = lint_paths([], empty)
        assert not report.ok

    def test_cli_exits_nonzero_on_uncatalogued_key(self, tmp_path, docs,
                                                   capsys):
        bad = tmp_path / "repro" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("obs.inc('never.documented')\n", encoding="utf-8")
        rc = lint_main([str(bad), "--docs", str(docs),
                        "--no-reverse-drift"])
        assert rc == 1
        assert "RA001" in capsys.readouterr().out

    def test_cli_exits_zero_on_clean_file(self, tmp_path, docs, capsys):
        good = tmp_path / "repro" / "x.py"
        good.parent.mkdir(parents=True)
        good.write_text("obs.inc('engine.runs')\n", encoding="utf-8")
        rc = lint_main([str(good), "--docs", str(docs),
                        "--no-reverse-drift"])
        assert rc == 0

    def test_repro_eco_analyze_strict_is_clean(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--strict"]) == 0
