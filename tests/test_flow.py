"""Tests for Dinic max-flow and minimum node cuts."""

import random

import pytest

from repro.flow import FlowNetwork, min_node_cut


class TestMaxFlow:
    def test_single_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 5)
        assert net.max_flow("s", "t") == 5

    def test_series_bottleneck(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 10)
        net.add_edge("a", "t", 3)
        assert net.max_flow("s", "t") == 3

    def test_parallel_paths(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 4)
        net.add_edge("a", "t", 4)
        net.add_edge("s", "b", 6)
        net.add_edge("b", "t", 6)
        assert net.max_flow("s", "t") == 10

    def test_classic_diamond(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 10)
        net.add_edge("s", "b", 10)
        net.add_edge("a", "b", 1)
        net.add_edge("a", "t", 8)
        net.add_edge("b", "t", 10)
        assert net.max_flow("s", "t") == 18

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 4)
        net.add_edge("b", "t", 4)
        assert net.max_flow("s", "t") == 0

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_edge("s", "t", -1)

    def test_residual_reachability_gives_cut(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 2)
        net.add_edge("a", "t", 1)
        net.max_flow("s", "t")
        reach = net.min_cut_reachable("s")
        assert "s" in reach
        assert "a" in reach  # s->a not saturated (2 > 1)
        assert "t" not in reach


class TestMinNodeCut:
    def test_single_chain(self):
        # s -> a -> b -> t; cheapest node wins
        weight, cut = min_node_cut(
            [("a", "b"), ("b", "snk")],
            sources=["a"],
            sink="snk",
            node_weights={"a": 5, "b": 2},
        )
        assert weight == 2
        assert cut == {"b"}

    def test_diamond_prefers_single_articulation(self):
        #   a   b        (sources, weight 3 each)
        #    \ /
        #     c          (weight 4)
        #     |
        #    snk
        edges = [("a", "c"), ("b", "c"), ("c", "snk")]
        weight, cut = min_node_cut(
            edges, ["a", "b"], "snk", {"a": 3, "b": 3, "c": 4}
        )
        assert weight == 4
        assert cut == {"c"}

    def test_uncuttable_node_forces_alternative(self):
        edges = [("a", "c"), ("b", "c"), ("c", "snk")]
        weight, cut = min_node_cut(
            edges, ["a", "b"], "snk", {"a": 3, "b": 3}
        )  # c has no weight -> uncuttable
        assert weight == 6
        assert cut == {"a", "b"}

    def test_no_finite_cut(self):
        edges = [("a", "snk")]
        weight, cut = min_node_cut(edges, ["a"], "snk", {})
        assert weight == float("inf")
        assert cut == set()

    def test_cut_separates(self):
        # random DAG: verify the returned cut actually separates
        rng = random.Random(7)
        for trial in range(20):
            n = rng.randint(4, 10)
            edges = []
            for v in range(1, n):
                for _ in range(rng.randint(1, 2)):
                    u = rng.randrange(v)
                    edges.append((u, v))
            sinks = n - 1
            sources = [0]
            weights = {v: rng.randint(1, 9) for v in range(n)}
            weight, cut = min_node_cut(edges, sources, sinks, weights)
            if weight == float("inf"):
                continue
            # removing cut nodes must disconnect sources from sink
            adj = {}
            for u, v in edges:
                adj.setdefault(u, []).append(v)
            stack = [s for s in sources if s not in cut]
            seen = set(stack)
            while stack:
                u = stack.pop()
                for v in adj.get(u, []):
                    if v not in cut and v not in seen:
                        seen.add(v)
                        stack.append(v)
            assert sinks not in seen, (trial, edges, cut)
            assert weight == sum(weights[v] for v in cut)
