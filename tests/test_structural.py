"""Tests for structural patch computation (Section 3.6)."""


import pytest

from repro.core import (
    build_miter,
    build_quantified_miter,
    certificate_patches,
    check_feasibility,
    structural_patch_single,
)
from repro.network import GateType, Network

from helpers import all_minterms


def single_target_instance():
    """impl corrupts 'u' of golden u=a&b, f=u|c."""

    def build(corrupt):
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        u = net.add_gate(GateType.XOR if corrupt else GateType.AND, [a, b], "u")
        f = net.add_gate(GateType.OR, [u, c], "f")
        net.add_po(f, "o")
        return net

    return build(True), build(False)


def two_target_instance():
    def build(corrupt):
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        u = net.add_gate(GateType.OR if corrupt else GateType.AND, [a, b], "u")
        v = net.add_gate(GateType.AND if corrupt else GateType.OR, [b, c], "v")
        f = net.add_gate(GateType.XOR, [u, v], "f")
        g = net.add_gate(GateType.OR, [u, c], "g")
        net.add_po(f, "o1")
        net.add_po(g, "o2")
        return net

    return build(True), build(False)


def check_patch_fixes(impl, spec, target_names, patch_nets):
    """Exhaustively verify that driving targets with patches restores
    equivalence (patches are functions of the PIs)."""
    pis = [impl.node(p).name for p in impl.pis]
    for bits in all_minterms(len(pis)):
        ref = dict(zip(pis, bits))
        patched = {}
        for tname, pnet in zip(target_names, patch_nets):
            assign = {
                pi: ref[pnet.node(pi).name] for pi in pnet.pis
            }
            patched[tname] = pnet.evaluate_pos(assign)[pnet.pos[0][0]]
        # evaluate impl with targets overridden
        values = {}
        for node in impl.topo_order():
            if node.name in patched:
                values[node.nid] = patched[node.name]
            elif node.is_pi:
                values[node.nid] = ref[node.name]
            else:
                from repro.network import eval_gate

                values[node.nid] = eval_gate(
                    node.gtype, [values[f] for f in node.fanins]
                )
        impl_out = {name: values[nid] for name, nid in impl.pos}
        spec_out = spec.evaluate_pos(
            {p: ref[spec.node(p).name] for p in spec.pis}
        )
        assert impl_out == spec_out, (bits, impl_out, spec_out)


class TestStructuralSingle:
    def test_cofactor_patch_rectifies(self):
        impl, spec = single_target_instance()
        t = impl.node_by_name("u")
        m = build_miter(impl, spec, [t])
        qm = build_quantified_miter(m, m.target_pis[0])
        info = structural_patch_single(qm, "u_patch")
        assert info.miter_copies == 1
        check_patch_fixes(impl, spec, ["u"], [info.network])

    def test_patch_is_over_pis(self):
        impl, spec = single_target_instance()
        t = impl.node_by_name("u")
        m = build_miter(impl, spec, [t])
        qm = build_quantified_miter(m, m.target_pis[0])
        info = structural_patch_single(qm, "p")
        pi_names = {info.network.node(p).name for p in info.network.pis}
        assert pi_names <= {"a", "b", "c"}

    def test_requires_current_target(self):
        impl, spec = single_target_instance()
        t = impl.node_by_name("u")
        m = build_miter(impl, spec, [t])
        qm = build_quantified_miter(m, None)
        with pytest.raises(ValueError):
            structural_patch_single(qm, "p")


class TestCertificatePatches:
    def test_multi_target_certificate_rectifies(self):
        impl, spec = two_target_instance()
        targets = [impl.node_by_name("u"), impl.node_by_name("v")]
        m = build_miter(impl, spec, targets)
        feas = check_feasibility(m, method="qbf")
        assert feas.feasible
        assert feas.countermoves
        moves = [
            {pi: mv.get(pi, 0) for pi in m.target_pis}
            for mv in feas.countermoves
        ]
        infos, copies = certificate_patches(m, moves, ["u", "v"])
        assert copies == len(feas.countermoves)
        check_patch_fixes(
            impl, spec, ["u", "v"], [i.network for i in infos]
        )

    def test_copy_count_is_certificate_size(self):
        impl, spec = two_target_instance()
        targets = [impl.node_by_name("u"), impl.node_by_name("v")]
        m = build_miter(impl, spec, targets)
        feas = check_feasibility(m, method="qbf")
        moves = [
            {pi: mv.get(pi, 0) for pi in m.target_pis}
            for mv in feas.countermoves
        ]
        infos, copies = certificate_patches(m, moves, ["u", "v"])
        # naive sequential expansion would need 2^2 - 1 = 3 copies;
        # the certificate uses exactly one per countermove
        assert copies == len(moves)
        for info in infos:
            assert info.miter_copies == copies

    def test_requires_moves(self):
        impl, spec = two_target_instance()
        targets = [impl.node_by_name("u"), impl.node_by_name("v")]
        m = build_miter(impl, spec, targets)
        with pytest.raises(ValueError):
            certificate_patches(m, [], ["u", "v"])

    def test_requires_matching_names(self):
        impl, spec = two_target_instance()
        targets = [impl.node_by_name("u"), impl.node_by_name("v")]
        m = build_miter(impl, spec, targets)
        with pytest.raises(ValueError):
            certificate_patches(m, [{m.target_pis[0]: 0}], ["u"])


class TestSequentialStructuralMultiTarget:
    def test_sequential_cofactor_patches(self):
        """Process targets one at a time with full expansion, applying
        each structural patch before computing the next."""
        from repro.core import apply_patch, Patch, cec

        impl, spec = two_target_instance()
        current = impl.clone()
        copies = 0
        for tname in ("u", "v"):
            remaining = [n for n in ("u", "v") if n >= tname]
            ids = [current.node_by_name(n) for n in remaining]
            m = build_miter(current, spec, ids)
            qm = build_quantified_miter(m, m.target_pis[0])
            info = structural_patch_single(qm, tname)
            copies += info.miter_copies
            patch = Patch(
                target=tname,
                network=info.network,
                support=[info.network.node(p).name for p in info.network.pis],
                cost=0,
                gate_count=info.network.num_gates,
                method="structural",
            )
            apply_patch(current, patch)
        assert copies == 3  # 2^1 + 2^0 = 2^k - 1 for k = 2
        assert cec(current, spec).equivalent
