"""Tests for the interpolation-based patch route (expression (3))."""

import dataclasses

import pytest

from repro import EcoEngine, contest_config
from repro.core import (
    InterpolationPatchError,
    build_miter,
    build_quantified_miter,
    interpolation_patch,
)
from repro.network import GateType, Network

from helpers import all_minterms


def simple_instance():
    """impl corrupts u = a&b into a|b; f = u ^ c."""

    def build(corrupt):
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        u = net.add_gate(GateType.OR if corrupt else GateType.AND, [a, b], "u")
        f = net.add_gate(GateType.XOR, [u, c], "f")
        net.add_po(f, "o")
        return net

    return build(True), build(False)


class TestInterpolationPatch:
    def _qm(self, divisors):
        impl, spec = simple_instance()
        ids = {impl.node_by_name(n): n for n in divisors}
        t = impl.node_by_name("u")
        m = build_miter(impl, spec, [t])
        qm = build_quantified_miter(
            m, m.target_pis[0], divisors={i: m.impl_map[i] for i in ids}
        )
        return impl, spec, qm, ids

    def test_patch_over_pis_correct(self):
        impl, spec, qm, ids = self._qm(["a", "b"])
        support_ids = sorted(ids)
        res = interpolation_patch(qm, support_ids, {i: n for i, n in ids.items()})
        assert set(res.support) <= {"a", "b"}
        # interpolant must equal a & b on the care set (all minterms here)
        for bits in all_minterms(2):
            assign = {
                res.network.node_by_name(n): v
                for n, v in zip(["a", "b"], bits)
                if res.network.has_name(n)
            }
            got = res.network.evaluate_pos(assign)["itp"]
            assert got == (bits[0] & bits[1])

    def test_insufficient_divisors_raise(self):
        impl, spec, qm, ids = self._qm(["c"])
        with pytest.raises(InterpolationPatchError):
            interpolation_patch(qm, sorted(ids), {i: n for i, n in ids.items()})

    def test_engine_route_verifies(self):
        import sys

        from repro.benchgen import corrupt, generate_weights, make_specification
        from repro.io import EcoInstance

        from helpers import random_network

        for seed in (1, 5, 9):
            golden = random_network(n_pi=5, n_gates=30, n_po=3, seed=seed)
            impl, targets, _ = corrupt(golden, 2, seed=seed + 3)
            inst = EcoInstance(
                "it",
                impl,
                make_specification(golden),
                targets,
                generate_weights(impl, "T4", seed=seed),
            )
            cfg = dataclasses.replace(
                contest_config(), patch_function_method="interpolation"
            )
            res = EcoEngine(cfg).run(inst)
            assert res.verified
            assert all(
                p.method in ("interpolation", "structural", "cegar_min")
                for p in res.patches
            )
