"""Advanced solver-behavior tests: budgets, proofs under assumptions,
incremental interleavings, and statistics."""

import random

import pytest

from repro.sat import SatBudgetExceeded, Solver, check_proof, mklit


def php(solver, pigeons, holes):
    v = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        solver.add_clause([mklit(v[p][h]) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause(
                    [mklit(v[p1][h], True), mklit(v[p2][h], True)]
                )
    return v


class TestBudgetRecovery:
    def test_solver_usable_after_budget_exception(self):
        s = Solver()
        php(s, 7, 6)
        with pytest.raises(SatBudgetExceeded):
            s.solve(budget_conflicts=5)
        # a later unbudgeted solve must still give the right answer
        assert s.solve() is False

    def test_budget_exception_leaves_level_zero(self):
        s = Solver()
        php(s, 7, 6)
        with pytest.raises(SatBudgetExceeded):
            s.solve(budget_conflicts=5)
        # adding clauses requires level 0 — must not raise
        extra = s.new_var()
        assert s.add_clause([mklit(extra)])

    def test_budget_on_sat_instance(self):
        s = Solver()
        vs = s.new_vars(30)
        rng = random.Random(2)
        for _ in range(60):
            s.add_clause(
                [mklit(rng.choice(vs), rng.random() < 0.5) for _ in range(3)]
            )
        # generous budget: should finish
        try:
            result = s.solve(budget_conflicts=100000)
        except SatBudgetExceeded:
            pytest.fail("budget should have sufficed")
        assert result in (True, False)


class TestProofsUnderAssumptions:
    def test_level_zero_unsat_after_assumption_solves(self):
        """Interleaving assumption solves with clause additions keeps
        proof logging coherent until the final refutation."""
        s = Solver(proof_logging=True)
        a, b, c = s.new_vars(3)
        s.add_clause([mklit(a), mklit(b)])
        assert s.solve([mklit(a, True)])
        s.add_clause([mklit(b, True), mklit(c)])
        assert s.solve([mklit(c, True), mklit(a, True)]) is False
        # force a real level-0 refutation
        s.add_clause([mklit(a, True)])
        s.add_clause([mklit(b, True)])
        assert s.solve() is False
        assert s.empty_clause_cid is not None
        check_proof(s)

    def test_proof_checks_on_structured_unsat(self):
        s = Solver(proof_logging=True)
        php(s, 5, 4)
        assert s.solve() is False
        checked = check_proof(s)
        assert checked > 0


class TestIncrementalPatterns:
    def test_alternating_assumption_polarities(self):
        s = Solver()
        x, y = s.new_vars(2)
        s.add_clause([mklit(x), mklit(y)])
        for _ in range(30):
            assert s.solve([mklit(x, True)])
            assert s.model_value(mklit(y)) == 1
            assert s.solve([mklit(y, True)])
            assert s.model_value(mklit(x)) == 1
            assert s.solve([mklit(x, True), mklit(y, True)]) is False

    def test_growing_problem(self):
        """Add implication-chain links between solves; answers track."""
        s = Solver()
        first = s.new_var()
        prev = first
        s.add_clause([mklit(first)])
        for _ in range(40):
            nxt = s.new_var()
            s.add_clause([mklit(prev, True), mklit(nxt)])
            assert s.solve()
            assert s.model_value(mklit(nxt)) == 1
            prev = nxt
        assert s.solve([mklit(prev, True)]) is False

    def test_stats_populated(self):
        s = Solver()
        php(s, 5, 4)
        s.solve()
        assert s.stats["conflicts"] > 0
        assert s.stats["decisions"] > 0
        assert s.stats["propagations"] > 0
        assert s.stats["solves"] == 1


class TestCoreMinimality:
    def test_core_shrinks_with_irrelevant_assumptions(self):
        """Irrelevant assumptions should usually stay out of the core."""
        s = Solver()
        a, b = s.new_vars(2)
        junk = s.new_vars(20)
        s.add_clause([mklit(a, True), mklit(b)])
        assumptions = [mklit(v) for v in junk]
        assumptions += [mklit(a), mklit(b, True)]
        assert s.solve(assumptions) is False
        core = set(s.failed_core())
        assert core <= set(assumptions)
        assert mklit(a) in core or mklit(b, True) in core
        # analyzeFinal over an implication chain of two: core is tiny
        assert len(core) <= 3
