"""Memoized window/divisor extraction (repro.core.divisors).

The prologue's structural extraction is pure in (impl, spec, targets,
weights); these tests pin the memo's contract: a hit on a structurally
identical re-query, a miss once the implementation mutates (the
structural hash changes), and — the safety property — bit-identical
engine results with the memo on vs off across all three presets.
"""

import dataclasses

import pytest

from repro import EcoEngine, EcoInstance, obs
from repro.benchgen import corrupt, generate_weights, make_specification
from repro.core import cec, clear_extraction_memo
from repro.core.engine import baseline_config, best_config, contest_config
from repro.network import GateType

from helpers import random_network


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_extraction_memo()
    yield
    clear_extraction_memo()


def make_instance(seed=0, n_targets=1, n_gates=40):
    golden = random_network(n_pi=5, n_gates=n_gates, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, n_targets, seed=seed + 5)
    spec = make_specification(golden)
    return EcoInstance(
        name=f"memo{seed}",
        impl=impl,
        spec=spec,
        targets=targets,
        weights=generate_weights(impl, "T3", seed=seed),
    )


def first_observable(seeds=range(10), **kwargs):
    for seed in seeds:
        inst = make_instance(seed=seed, **kwargs)
        if cec(inst.impl, inst.spec).equivalent is False:
            return inst
    pytest.skip("no observable instance found")


def run_counted(inst, cfg):
    registry = obs.get_registry()
    registry.reset()
    registry.enable()
    try:
        res = EcoEngine(cfg).run(inst)
    finally:
        registry.disable()
    return res, dict(registry.counters)


def fingerprint(res):
    return (
        res.cost,
        res.gate_count,
        res.method,
        res.verified,
        sorted(tuple(sorted(p.support)) for p in res.patches),
        res.stats.get("window_pos"),
        res.stats.get("divisor_candidates"),
    )


class TestMemoHitMiss:
    def test_hit_on_identical_requery(self):
        inst = first_observable()
        cfg = contest_config()
        res1, c1 = run_counted(inst, cfg)
        assert c1.get("engine.window_memo_hit", 0) == 0
        assert c1["engine.window_memo_miss"] == 1
        assert c1["engine.divisors_memo_miss"] == 1
        res2, c2 = run_counted(inst, cfg)
        assert c2["engine.window_memo_hit"] == 1
        assert c2["engine.divisors_memo_hit"] == 1
        assert c2.get("engine.window_memo_miss", 0) == 0
        assert fingerprint(res1) == fingerprint(res2)

    def test_miss_after_impl_mutation(self):
        inst = first_observable()
        cfg = contest_config()
        run_counted(inst, cfg)
        # structurally change the implementation: the hash moves, so the
        # stale window/divisors must not be served
        pis = inst.impl.pis
        inst.impl.add_gate(GateType.NOT, [pis[0]])
        _, c2 = run_counted(inst, cfg)
        assert c2.get("engine.window_memo_hit", 0) == 0
        assert c2["engine.window_memo_miss"] == 1
        assert c2["engine.divisors_memo_miss"] == 1

    def test_weights_change_misses_divisor_memo(self):
        inst = first_observable()
        cfg = contest_config()
        run_counted(inst, cfg)
        bumped = dict(inst.weights)
        name = next(iter(bumped), None)
        if name is None:
            pytest.skip("instance has no explicit weights")
        bumped[name] += 7
        inst2 = dataclasses.replace(inst, weights=bumped)
        _, c2 = run_counted(inst2, cfg)
        # same netlists: the window is reusable, the costs are not
        assert c2["engine.window_memo_hit"] == 1
        assert c2["engine.divisors_memo_miss"] == 1

    def test_disabled_by_config(self):
        inst = first_observable()
        cfg = dataclasses.replace(contest_config(), memoize_extraction=False)
        run_counted(inst, cfg)
        _, c2 = run_counted(inst, cfg)
        for key in (
            "engine.window_memo_hit",
            "engine.window_memo_miss",
            "engine.divisors_memo_hit",
            "engine.divisors_memo_miss",
        ):
            assert c2.get(key, 0) == 0


class TestMemoEquivalence:
    @pytest.mark.parametrize(
        "preset", [baseline_config, contest_config, best_config]
    )
    def test_results_identical_memo_on_vs_off(self, preset):
        inst = first_observable()
        on = dataclasses.replace(preset(), memoize_extraction=True)
        off = dataclasses.replace(preset(), memoize_extraction=False)
        cold = fingerprint(EcoEngine(on).run(inst))
        warm = fingerprint(EcoEngine(on).run(inst))  # served from memo
        bare = fingerprint(EcoEngine(off).run(inst))
        assert cold == warm == bare
