"""Tests for Verilog/BLIF/.bench/weights I/O and the instance container."""


import pytest

from repro.io import (
    EcoInstance,
    VerilogError,
    parse_bench,
    parse_blif,
    parse_verilog,
    parse_weights,
    write_bench,
    write_blif,
    write_verilog,
    write_weights,
)
from repro.network import Network

from helpers import networks_equivalent_brute, random_network


class TestVerilog:
    def test_parse_simple_module(self):
        text = """
        // a tiny module
        module top (a, b, y);
          input a, b;
          output y;
          wire w;
          and g1 (w, a, b);
          not g2 (y, w);
        endmodule
        """
        net = parse_verilog(text)
        assert net.num_pis == 2
        assert net.num_pos == 1
        a, b = net.node_by_name("a"), net.node_by_name("b")
        assert net.evaluate_pos({a: 1, b: 1})["y"] == 0
        assert net.evaluate_pos({a: 0, b: 1})["y"] == 1

    def test_parse_constants_and_assign(self):
        text = """
        module top (a, y);
          input a;
          output y;
          wire k;
          assign k = 1'b1;
          and g (y, a, k);
        endmodule
        """
        net = parse_verilog(text)
        a = net.node_by_name("a")
        assert net.evaluate_pos({a: 1})["y"] == 1
        assert net.evaluate_pos({a: 0})["y"] == 0

    def test_block_comments_stripped(self):
        text = "module t (a, y); /* c1 \n c2 */ input a; output y; buf g (y, a); endmodule"
        net = parse_verilog(text)
        assert net.num_pis == 1

    def test_missing_driver_rejected(self):
        text = "module t (a, y); input a; output y; and g (y, a, ghost); endmodule"
        with pytest.raises(VerilogError):
            parse_verilog(text)

    def test_double_drive_rejected(self):
        text = (
            "module t (a, y); input a; output y;"
            " not g1 (y, a); not g2 (y, a); endmodule"
        )
        with pytest.raises(VerilogError):
            parse_verilog(text)

    def test_no_module_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("wire x;")

    def test_roundtrip_random(self):
        for seed in range(6):
            net = random_network(n_pi=4, n_gates=20, seed=seed)
            again = parse_verilog(write_verilog(net))
            assert networks_equivalent_brute(net, again), seed

    def test_roundtrip_po_is_pi(self):
        net = Network("t")
        a = net.add_pi("a")
        net.add_po(a, "y")
        again = parse_verilog(write_verilog(net))
        assert networks_equivalent_brute(net, again)


class TestBlif:
    def test_parse_names_block(self):
        text = """
        .model m
        .inputs a b
        .outputs y
        .names a b y
        11 1
        .end
        """
        net = parse_blif(text)
        a, b = net.node_by_name("a"), net.node_by_name("b")
        assert net.evaluate_pos({a: 1, b: 1})["y"] == 1
        assert net.evaluate_pos({a: 1, b: 0})["y"] == 0

    def test_parse_offset_cover(self):
        text = """
        .model m
        .inputs a b
        .outputs y
        .names a b y
        11 0
        .end
        """
        net = parse_blif(text)
        a, b = net.node_by_name("a"), net.node_by_name("b")
        assert net.evaluate_pos({a: 1, b: 1})["y"] == 0
        assert net.evaluate_pos({a: 0, b: 1})["y"] == 1

    def test_parse_constants(self):
        text = ".model m\n.inputs a\n.outputs y z\n.names y\n1\n.names z\n.end"
        net = parse_blif(text)
        a = net.node_by_name("a")
        vals = net.evaluate_pos({a: 0})
        assert vals["y"] == 1
        assert vals["z"] == 0

    def test_roundtrip_random(self):
        for seed in range(6):
            net = random_network(n_pi=4, n_gates=18, seed=seed + 50)
            again = parse_blif(write_blif(net))
            assert networks_equivalent_brute(net, again), seed


class TestBench:
    def test_parse(self):
        text = """
        # comment
        INPUT(a)
        INPUT(b)
        OUTPUT(y)
        w = NAND(a, b)
        y = NOT(w)
        """
        net = parse_bench(text)
        a, b = net.node_by_name("a"), net.node_by_name("b")
        assert net.evaluate_pos({a: 1, b: 1})["y"] == 1
        assert net.evaluate_pos({a: 0, b: 1})["y"] == 0

    def test_roundtrip_random(self):
        for seed in range(6):
            net = random_network(n_pi=4, n_gates=18, seed=seed + 90)
            again = parse_bench(write_bench(net))
            assert networks_equivalent_brute(net, again), seed


class TestWeights:
    def test_parse(self):
        w = parse_weights("a 3\nb 12\n# comment\n\nc 1\n")
        assert w == {"a": 3, "b": 12, "c": 1}

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            parse_weights("a\n")

    def test_roundtrip(self):
        w = {"x": 7, "y": 1}
        assert parse_weights(write_weights(w)) == w


class TestEcoInstance:
    def _instance(self):
        impl = random_network(n_pi=3, n_gates=10, seed=1, name="impl")
        spec = impl.clone("spec")
        return EcoInstance(
            name="t",
            impl=impl,
            spec=spec,
            targets=["g3"],
            weights={"g1": 5},
            default_weight=2,
        )

    def test_target_ids(self):
        inst = self._instance()
        assert inst.target_ids() == [inst.impl.node_by_name("g3")]

    def test_weight_lookup(self):
        inst = self._instance()
        assert inst.weight_of(inst.impl.node_by_name("g1")) == 5
        assert inst.weight_of(inst.impl.node_by_name("g2")) == 2

    def test_save_load_roundtrip(self, tmp_path):
        inst = self._instance()
        d = str(tmp_path / "unit")
        inst.save(d)
        again = EcoInstance.load(d)
        assert again.targets == inst.targets
        assert again.weights == inst.weights
        assert networks_equivalent_brute(inst.impl, again.impl)
        assert networks_equivalent_brute(inst.spec, again.spec)
