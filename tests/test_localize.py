"""Tests for target-point localization (the integrated-flow extension)."""


from repro import EcoEngine, EcoInstance, contest_config
from repro.benchgen import corrupt, make_specification
from repro.core import (
    localize_targets,
    rank_single_fix_candidates,
)
from repro.network import GateType, Network

from helpers import random_network


def corrupted_pair(seed=0, n_targets=1, n_gates=30):
    golden = random_network(n_pi=5, n_gates=n_gates, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, n_targets, seed=seed + 17)
    spec = make_specification(golden)
    return impl, spec, targets


class TestRanking:
    def test_equivalent_netlists_rank_empty(self):
        net = random_network(seed=1)
        assert rank_single_fix_candidates(net, net.clone()) == []

    def test_corrupted_node_ranks_high(self):
        attempts = 0
        hits = 0
        for seed in range(10):
            impl, spec, targets = corrupted_pair(seed=seed)
            ranked = rank_single_fix_candidates(impl, spec)
            if not ranked:
                continue  # silent corruption
            attempts += 1
            top8 = {name for name, _ in ranked[:8]}
            if targets[0] in top8:
                hits += 1
        assert attempts >= 5
        assert hits >= attempts - 2  # culprit (or shadow) nearly always surfaces

    def test_scores_in_unit_interval(self):
        impl, spec, _ = corrupted_pair(seed=3)
        for _name, score in rank_single_fix_candidates(impl, spec):
            assert 0.0 < score <= 1.0

    def test_ranking_is_deterministic(self):
        impl, spec, _ = corrupted_pair(seed=4)
        a = rank_single_fix_candidates(impl, spec, seed=9)
        b = rank_single_fix_candidates(impl, spec, seed=9)
        assert a == b


class TestLocalize:
    def test_single_corruption_localized_and_patchable(self):
        solved = 0
        attempts = 0
        for seed in range(10):
            impl, spec, targets = corrupted_pair(seed=seed)
            res = localize_targets(impl, spec)
            if not res.ranked:
                continue  # corruption unobservable: netlists equivalent
            attempts += 1
            if not res.targets:
                continue
            # the located targets must admit a verified patch
            inst = EcoInstance(
                f"loc{seed}", impl, spec, targets=res.targets
            )
            out = EcoEngine(contest_config()).run(inst)
            assert out.verified, seed
            solved += 1
        assert attempts >= 4
        assert solved >= attempts - 1

    def test_equivalent_netlists_no_targets(self):
        net = random_network(seed=5)
        res = localize_targets(net, net.clone())
        assert res.targets == []
        assert res.ranked == []
        assert res.checks == 0

    def test_multi_corruption_localizable(self):
        found = 0
        for seed in (2, 6, 9, 12):
            impl, spec, targets = corrupted_pair(
                seed=seed, n_targets=2, n_gates=40
            )
            res = localize_targets(impl, spec, max_targets=4)
            if res.targets:
                inst = EcoInstance(f"ml{seed}", impl, spec, res.targets)
                assert EcoEngine(contest_config()).run(inst).verified
                found += 1
        assert found >= 2

    def test_check_budget_respected(self):
        impl, spec, _ = corrupted_pair(seed=1)
        res = localize_targets(impl, spec, max_checks=2)
        assert res.checks <= 2 + 1  # greedy growth may add one final check

    def test_hand_built_example(self):
        # golden: u = a & b feeding f; corrupting u is the only culprit
        def build(corrupt_it):
            net = Network()
            a, b, c = (net.add_pi(x) for x in "abc")
            u = net.add_gate(
                GateType.OR if corrupt_it else GateType.AND, [a, b], "u"
            )
            f = net.add_gate(GateType.XOR, [u, c], "f")
            net.add_po(f, "o")
            return net

        impl, spec = build(True), build(False)
        res = localize_targets(impl, spec)
        assert res.targets == ["u"] or "u" in res.targets
