"""Tests for bit-parallel simulation."""

import pytest

from repro.network import GateType, Network, Simulator, outputs_equal

from helpers import random_network


class TestSimulator:
    def test_values_match_scalar_evaluation(self):
        net = random_network(n_pi=5, n_gates=25, seed=2)
        sim = Simulator(net, nbits=64, seed=4)
        values = sim.values()
        for bit in (0, 13, 63):
            scalar = net.evaluate(
                {pi: (sim.pi_patterns[pi] >> bit) & 1 for pi in net.pis}
            )
            for nid, word in values.items():
                assert ((word >> bit) & 1) == scalar[nid]

    def test_deterministic_given_seed(self):
        net = random_network(seed=3)
        a = Simulator(net, nbits=128, seed=9).values()
        b = Simulator(net, nbits=128, seed=9).values()
        assert a == b

    def test_add_minterm_directs_lowest_bit(self):
        net = random_network(n_pi=4, n_gates=10, seed=5)
        sim = Simulator(net, nbits=32, seed=1)
        directed = {pi: 1 for pi in net.pis}
        sim.add_minterm(directed)
        for pi in net.pis:
            assert sim.pi_patterns[pi] & 1 == 1
        scalar = net.evaluate(directed)
        values = sim.values()
        for nid in net.node_ids():
            assert (values[nid] & 1) == scalar[nid]

    def test_classes_group_equal_functions(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g1 = net.add_gate(GateType.AND, [a, b])
        g2 = net.add_gate(GateType.AND, [b, a])
        g3 = net.add_gate(GateType.NAND, [a, b])  # complement of g1
        g4 = net.add_gate(GateType.XOR, [a, b])
        net.add_po(g4, "o")
        sim = Simulator(net, nbits=256, seed=0)
        classes = sim.classes([g1, g2, g3, g4])
        by_member = {}
        for key, members in classes.items():
            for m in members:
                by_member[m] = key
        assert by_member[g1] == by_member[g2] == by_member[g3]
        assert by_member[g4] != by_member[g1]

    def test_signature_accessor(self):
        net = random_network(seed=6)
        sim = Simulator(net, nbits=16, seed=2)
        nid = net.node_ids()[-1]
        assert sim.signature(nid) == sim.values()[nid]

    def test_set_pattern_on_pi(self):
        net = random_network(n_pi=3, seed=11)
        sim = Simulator(net, nbits=8, seed=0)
        pi = net.pis[0]
        sim.set_pattern(pi, 0b10110101)
        assert sim.pi_patterns[pi] == 0b10110101
        assert sim.values()[pi] == 0b10110101

    def test_set_pattern_masks_to_width(self):
        net = random_network(n_pi=2, seed=11)
        sim = Simulator(net, nbits=4, seed=0)
        sim.set_pattern(net.pis[0], 0xFFFF)
        assert sim.pi_patterns[net.pis[0]] == 0xF

    def test_set_pattern_rejects_non_pi(self):
        """Regression: a gate id used to be accepted and silently ignored."""
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b])
        net.add_po(g, "o")
        sim = Simulator(net, nbits=8, seed=0)
        with pytest.raises(ValueError, match="not a primary input"):
            sim.set_pattern(g, 0b1111)
        with pytest.raises(ValueError, match="not a primary input"):
            sim.set_pattern(10 ** 6, 1)  # nonexistent id
        # the failed calls left the simulator's patterns untouched
        assert set(sim.pi_patterns) == {a, b}


class TestOutputsEqual:
    def test_equal_clone(self):
        net = random_network(seed=8)
        assert outputs_equal(net, net.clone())

    def test_detects_difference(self):
        net = random_network(n_pi=4, n_gates=15, n_po=2, seed=9)
        other = net.clone()
        _, nid = other.pos[0]
        inv = other.add_gate(GateType.NOT, [nid])
        other.set_po(0, inv)  # complement one output
        assert not outputs_equal(net, other)

    def test_po_name_mismatch_is_unequal(self):
        net = random_network(seed=10)
        other = net.clone()
        other.rename_po(0, "__different")
        assert not outputs_equal(net, other)

    @staticmethod
    def _dup_po_nets():
        """Two nets with a duplicated PO name differing only in the
        *first* output under that name."""
        net_a = Network(name="a")
        x, y = net_a.add_pi("x"), net_a.add_pi("y")
        f1 = net_a.add_gate(GateType.AND, [x, y])
        f2 = net_a.add_gate(GateType.OR, [x, y])
        net_a.add_po(f1, "o")
        net_a.add_po(f2, "o")

        net_b = Network(name="b")
        x2, y2 = net_b.add_pi("x"), net_b.add_pi("y")
        g1 = net_b.add_gate(GateType.XOR, [x2, y2])  # differs from f1
        g2 = net_b.add_gate(GateType.OR, [x2, y2])  # same as f2
        net_b.add_po(g1, "o")
        net_b.add_po(g2, "o")
        return net_a, net_b

    def test_duplicate_po_names_not_collapsed(self):
        """Regression: dict(net.pos) kept only the last 'o', so a
        difference in the first duplicate went undetected."""
        net_a, net_b = self._dup_po_nets()
        assert not outputs_equal(net_a, net_b)

    def test_duplicate_po_names_equal_when_all_match(self):
        net_a, _ = self._dup_po_nets()
        assert outputs_equal(net_a, net_a.clone())

    def test_duplicate_po_count_mismatch(self):
        net_a, net_b = self._dup_po_nets()
        _, nid = net_b.pos[0]
        net_b.add_po(nid, "o")
        assert not outputs_equal(net_a, net_b)
