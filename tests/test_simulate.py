"""Tests for bit-parallel simulation."""


from repro.network import GateType, Network, Simulator, outputs_equal

from helpers import random_network


class TestSimulator:
    def test_values_match_scalar_evaluation(self):
        net = random_network(n_pi=5, n_gates=25, seed=2)
        sim = Simulator(net, nbits=64, seed=4)
        values = sim.values()
        for bit in (0, 13, 63):
            scalar = net.evaluate(
                {pi: (sim.pi_patterns[pi] >> bit) & 1 for pi in net.pis}
            )
            for nid, word in values.items():
                assert ((word >> bit) & 1) == scalar[nid]

    def test_deterministic_given_seed(self):
        net = random_network(seed=3)
        a = Simulator(net, nbits=128, seed=9).values()
        b = Simulator(net, nbits=128, seed=9).values()
        assert a == b

    def test_add_minterm_directs_lowest_bit(self):
        net = random_network(n_pi=4, n_gates=10, seed=5)
        sim = Simulator(net, nbits=32, seed=1)
        directed = {pi: 1 for pi in net.pis}
        sim.add_minterm(directed)
        for pi in net.pis:
            assert sim.pi_patterns[pi] & 1 == 1
        scalar = net.evaluate(directed)
        values = sim.values()
        for nid in net.node_ids():
            assert (values[nid] & 1) == scalar[nid]

    def test_classes_group_equal_functions(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g1 = net.add_gate(GateType.AND, [a, b])
        g2 = net.add_gate(GateType.AND, [b, a])
        g3 = net.add_gate(GateType.NAND, [a, b])  # complement of g1
        g4 = net.add_gate(GateType.XOR, [a, b])
        net.add_po(g4, "o")
        sim = Simulator(net, nbits=256, seed=0)
        classes = sim.classes([g1, g2, g3, g4])
        by_member = {}
        for key, members in classes.items():
            for m in members:
                by_member[m] = key
        assert by_member[g1] == by_member[g2] == by_member[g3]
        assert by_member[g4] != by_member[g1]

    def test_signature_accessor(self):
        net = random_network(seed=6)
        sim = Simulator(net, nbits=16, seed=2)
        nid = net.node_ids()[-1]
        assert sim.signature(nid) == sim.values()[nid]


class TestOutputsEqual:
    def test_equal_clone(self):
        net = random_network(seed=8)
        assert outputs_equal(net, net.clone())

    def test_detects_difference(self):
        net = random_network(n_pi=4, n_gates=15, n_po=2, seed=9)
        other = net.clone()
        _, nid = other.pos[0]
        inv = other.add_gate(GateType.NOT, [nid])
        other.set_po(0, inv)  # complement one output
        assert not outputs_equal(net, other)

    def test_po_name_mismatch_is_unequal(self):
        net = random_network(seed=10)
        other = net.clone()
        other.rename_po(0, "__different")
        assert not outputs_equal(net, other)
