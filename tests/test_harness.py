"""Tests for the Table 1 harness (configs, rows, geomeans, formatting)."""

import math

import pytest

from repro.benchgen import (
    METHODS,
    UnitRow,
    config_for,
    format_table,
    geomean,
    geomean_ratios,
    run_unit,
    unit_spec,
)
from repro.core.patch import EcoResult


def fake_result(cost, gates, runtime):
    return EcoResult(
        instance_name="x",
        patches=[],
        cost=cost,
        gate_count=gates,
        verified=True,
        runtime_seconds=runtime,
        method="sat",
    )


def fake_row(name, costs, gates, times):
    row = UnitRow(
        name=name, n_pi=4, n_po=2, gates_impl=10, gates_spec=12, n_targets=1
    )
    for m, c, g, t in zip(METHODS, costs, gates, times):
        row.results[m] = fake_result(c, g, t)
    return row


class TestConfigFor:
    def test_method_presets(self):
        spec = unit_spec("unit2")
        assert config_for(spec, "baseline").support_method == "analyze_final"
        assert config_for(spec, "minassump").support_method == "minassump"
        assert config_for(spec, "satprune_cegarmin").support_method == "satprune"

    def test_force_structural_respected(self):
        spec = unit_spec("unit6")
        cfg = config_for(spec, "minassump")
        assert cfg.structural_only
        assert cfg.feasibility_method == "qbf"

    def test_non_structural_unit_uses_sat_flow(self):
        spec = unit_spec("unit2")
        assert not config_for(spec, "minassump").structural_only


class TestGeomean:
    def test_simple(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([8]) == pytest.approx(8.0)

    def test_skips_nonpositive(self):
        assert geomean([0, 4]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_ratios_normalize_baseline(self):
        rows = [
            fake_row("a", (100, 50, 25), (10, 5, 5), (1.0, 2.0, 4.0)),
            fake_row("b", (200, 50, 50), (20, 10, 8), (1.0, 2.0, 8.0)),
        ]
        ratios = geomean_ratios(rows)
        base = ratios[METHODS[0]]
        assert base["cost"] == pytest.approx(1.0)
        assert base["gates"] == pytest.approx(1.0)
        assert base["time"] == pytest.approx(1.0)
        mid = ratios[METHODS[1]]
        assert mid["cost"] == pytest.approx(math.sqrt(0.5 * 0.25))
        assert mid["time"] == pytest.approx(2.0)

    def test_zero_costs_floored(self):
        rows = [fake_row("a", (0, 0, 0), (0, 0, 0), (1.0, 1.0, 1.0))]
        ratios = geomean_ratios(rows)
        assert ratios[METHODS[1]]["cost"] == pytest.approx(1.0)


class TestFormatTable:
    def test_contains_all_units_and_geomean(self):
        rows = [
            fake_row("unitA", (10, 5, 4), (3, 2, 1), (0.1, 0.2, 0.3)),
            fake_row("unitB", (30, 6, 6), (9, 4, 4), (0.1, 0.2, 0.4)),
        ]
        text = format_table(rows)
        assert "unitA" in text and "unitB" in text
        assert "Geomean" in text
        # header mentions every method column
        for m in METHODS:
            assert f"cost[{m}]" in text


class TestRunUnit:
    def test_single_method_run(self):
        spec = unit_spec("unit1")
        row = run_unit(spec, methods=["minassump"])
        assert row.name == "unit1"
        assert "minassump" in row.results
        assert row.results["minassump"].verified
