"""Tests for Patch objects and patch insertion."""

import pytest

from repro.core import Patch, apply_patch, apply_patches
from repro.network import GateType, Network

from helpers import all_minterms


def host_network():
    net = Network("host")
    a, b, c = (net.add_pi(x) for x in "abc")
    u = net.add_gate(GateType.OR, [a, b], "u")  # to be re-driven
    v = net.add_gate(GateType.AND, [b, c], "v")
    f = net.add_gate(GateType.XOR, [u, v], "f")
    net.add_po(f, "o")
    return net


def and_patch(target="u", support=("a", "b")):
    pnet = Network("p")
    pis = [pnet.add_pi(s) for s in support]
    g = pnet.add_gate(GateType.AND, list(pis))
    pnet.add_po(g, target)
    return Patch(
        target=target,
        network=pnet,
        support=list(support),
        cost=0,
        gate_count=pnet.num_gates,
        method="test",
    )


class TestApplyPatch:
    def test_target_function_replaced(self):
        net = host_network()
        apply_patch(net, and_patch())
        a, b, c = (net.node_by_name(x) for x in "abc")
        for bits in all_minterms(3):
            out = net.evaluate_pos(dict(zip((a, b, c), bits)))["o"]
            u = bits[0] & bits[1]
            v = bits[1] & bits[2]
            assert out == (u ^ v), bits

    def test_fanouts_see_new_function(self):
        net = host_network()
        apply_patch(net, and_patch())
        u = net.node_by_name("u")
        assert net.node(u).gtype is GateType.BUF

    def test_patch_over_internal_signal(self):
        net = host_network()
        # patch u := NOT(v), reading the internal signal v
        pnet = Network("p")
        v = pnet.add_pi("v")
        g = pnet.add_gate(GateType.NOT, [v])
        pnet.add_po(g, "u")
        patch = Patch("u", pnet, ["v"], 0, 1, "test")
        apply_patch(net, patch)
        a, b, c = (net.node_by_name(x) for x in "abc")
        for bits in all_minterms(3):
            out = net.evaluate_pos(dict(zip((a, b, c), bits)))["o"]
            v_val = bits[1] & bits[2]
            assert out == ((1 - v_val) ^ v_val)

    def test_missing_support_rejected(self):
        net = host_network()
        patch = and_patch(support=("a", "ghost"))
        with pytest.raises(ValueError):
            apply_patch(net, patch)

    def test_apply_patches_clones(self):
        net = host_network()
        before = net.num_gates
        patched = apply_patches(net, [and_patch()])
        assert net.num_gates == before  # original untouched
        assert patched.num_gates > before

    def test_patch_whose_output_is_an_input(self):
        # degenerate patch: u := v (a bare wire)
        net = host_network()
        pnet = Network("p")
        v = pnet.add_pi("v")
        pnet.add_po(v, "u")
        apply_patch(net, Patch("u", pnet, ["v"], 0, 0, "test"))
        a, b, c = (net.node_by_name(x) for x in "abc")
        for bits in all_minterms(3):
            out = net.evaluate_pos(dict(zip((a, b, c), bits)))["o"]
            v_val = bits[1] & bits[2]
            assert out == (v_val ^ v_val)

    def test_sequential_patches_stack(self):
        net = host_network()
        apply_patch(net, and_patch("u", ("a", "b")))
        # second patch re-drives v := OR(a, c)
        pnet = Network("p2")
        a = pnet.add_pi("a")
        c = pnet.add_pi("c")
        g = pnet.add_gate(GateType.OR, [a, c])
        pnet.add_po(g, "v")
        apply_patch(net, Patch("v", pnet, ["a", "c"], 0, 1, "test"))
        ai, bi, ci = (net.node_by_name(x) for x in "abc")
        for bits in all_minterms(3):
            out = net.evaluate_pos(dict(zip((ai, bi, ci), bits)))["o"]
            assert out == ((bits[0] & bits[1]) ^ (bits[0] | bits[2]))


class TestEcoResultSupport:
    def test_support_union_sorted_unique(self):
        from repro.core import EcoResult

        res = EcoResult(
            instance_name="x",
            patches=[and_patch("u", ("b", "a")), and_patch("v", ("a", "c"))],
            cost=0,
            gate_count=2,
            verified=True,
            runtime_seconds=0.0,
            method="sat",
        )
        assert res.support == ["a", "b", "c"]
