"""Tests for the pluggable SAT backend layer (repro.sat.backend)."""

import dataclasses
import pickle
import shutil
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.sat.backend import (
    BackendError,
    BackendSelector,
    DimacsProcessBackend,
    NativeBackend,
    QueryTraits,
    SolverBackend,
    available_backends,
    current_selector,
    get_backend,
    install_selector,
    register_backend,
    solver_for,
    unregister_backend,
)
from repro.sat.solver import Solver
from repro.sat.types import mklit

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: stub external DIMACS solver: competition-style output + exit codes,
#: built on the repo's own CDCL engine (always present, so the
#: subprocess round-trip is exercised even without a real binary)
STUB = f"""
import sys
sys.path.insert(0, {SRC!r})
from repro.sat.dimacs import parse_dimacs
from repro.sat.solver import Solver

nvars, clauses = parse_dimacs(open(sys.argv[1]).read())
s = Solver()
s.new_vars(nvars)
ok = all(s.add_clause(c) for c in clauses)
if ok and s.solve():
    print("s SATISFIABLE")
    lits = []
    for v in range(nvars):
        val = s.model[v] if s.model[v] in (0, 1) else 0
        lits.append(str(v + 1) if val else str(-(v + 1)))
    print("v " + " ".join(lits) + " 0")
    sys.exit(10)
print("s UNSATISFIABLE")
sys.exit(20)
"""


@pytest.fixture
def stub_backend(tmp_path):
    script = tmp_path / "stub_solver.py"
    script.write_text(STUB)
    backend = DimacsProcessBackend(
        command=[sys.executable, str(script)], name="stub"
    )
    register_backend(backend, replace=True)
    yield backend
    unregister_backend("stub")


@pytest.fixture
def clean_selector():
    yield
    install_selector(None)


class TestRegistry:
    def test_native_registered_by_default(self):
        assert "native" in available_backends()
        assert isinstance(get_backend("native"), NativeBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="unknown SAT backend"):
            get_backend("no-such-engine")

    def test_duplicate_registration_guarded(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend(NativeBackend())
        register_backend(NativeBackend(), replace=True)  # explicit swap ok

    def test_abstract_name_rejected(self):
        with pytest.raises(BackendError):
            register_backend(SolverBackend())

    def test_native_cannot_be_unregistered(self):
        with pytest.raises(BackendError):
            unregister_backend("native")

    def test_unregister_missing_is_false(self):
        assert unregister_backend("never-registered") is False


class TestNativeBackend:
    def test_supports_every_trait_combination(self):
        native = get_backend("native")
        for incremental in (False, True):
            for proof in (False, True):
                for groups in (False, True):
                    assert native.supports(
                        QueryTraits(
                            incremental=incremental,
                            needs_proof=proof,
                            needs_groups=groups,
                        )
                    )

    def test_create_returns_real_solver(self):
        s = get_backend("native").create(QueryTraits())
        assert isinstance(s, Solver)
        assert not s.proof_logging

    def test_needs_proof_enables_proof_logging(self):
        s = get_backend("native").create(QueryTraits(needs_proof=True))
        assert s.proof_logging

    def test_search_behavior_matches_direct_construction(self):
        def exercise(s):
            a, b, c = s.new_vars(3)
            s.add_clause([mklit(a), mklit(b)])
            s.add_clause([mklit(a, True), mklit(c)])
            s.add_clause([mklit(b, True), mklit(c, True)])
            s.solve()
            s.solve([mklit(c, True)])
            return dict(s.stats)

        direct = exercise(Solver())
        routed = exercise(solver_for(QueryTraits()))
        assert direct == routed

    def test_per_backend_counters_emitted(self):
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            s = solver_for(QueryTraits())
            v = s.new_var()
            s.add_clause([mklit(v)])
            s.solve()
            s.solve([mklit(v, True)])
        finally:
            registry.disable()
        counters = dict(registry.counters)
        registry.reset()
        assert counters["sat.backend.native.solves"] == 2
        assert "sat.backend.native.conflicts" in counters
        # the engine-level counters stay untouched by the metering
        assert counters["sat.solves"] == 2


class TestSelector:
    def test_default_selector_is_fixed_native(self):
        sel = current_selector()
        assert sel.backend == "native" and sel.policy == "fixed"

    def test_unknown_policy_rejected(self):
        with pytest.raises(BackendError, match="unknown backend policy"):
            BackendSelector(policy="psychic")

    def test_install_returns_previous(self, clean_selector):
        custom = BackendSelector(backend="native", policy="traits")
        prev = install_selector(custom)
        assert current_selector() is custom
        assert install_selector(prev) is custom
        assert current_selector() is prev

    def test_install_none_restores_default(self, clean_selector):
        install_selector(BackendSelector(policy="traits"))
        install_selector(None)
        assert current_selector().policy == "fixed"

    def test_fixed_policy_falls_back_when_unsupported(
        self, stub_backend, clean_selector
    ):
        # the stub is one-shot; an incremental query must fall back to
        # native (and meter the re-route)
        install_selector(BackendSelector(backend="stub", policy="fixed"))
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            s = solver_for(QueryTraits(incremental=True))
        finally:
            registry.disable()
        counters = dict(registry.counters)
        registry.reset()
        assert isinstance(s, Solver)
        assert counters.get("sat.backend.stub.fallbacks") == 1

    def test_fixed_policy_uses_backend_when_supported(
        self, stub_backend, clean_selector
    ):
        install_selector(BackendSelector(backend="stub", policy="fixed"))
        chosen = current_selector().select(QueryTraits(incremental=False))
        assert chosen.name == "stub"

    def test_traits_policy_routes_to_supporting_backend(
        self, stub_backend, clean_selector
    ):
        # preferred backend native-unsupported? native supports all, so
        # flip it: prefer stub, ask for an incremental query — traits
        # policy scans other registered backends, none support it, so
        # native catches it
        install_selector(BackendSelector(backend="stub", policy="traits"))
        sel = current_selector()
        assert sel.select(QueryTraits(incremental=False)).name == "stub"
        assert sel.select(QueryTraits(incremental=True)).name == "native"


class TestDimacsProcessBackend:
    def test_supports_one_shot_only(self, stub_backend):
        assert stub_backend.supports(QueryTraits(incremental=False))
        assert not stub_backend.supports(QueryTraits(incremental=True))
        assert not stub_backend.supports(
            QueryTraits(incremental=False, needs_proof=True)
        )
        assert not stub_backend.supports(
            QueryTraits(incremental=False, needs_groups=True)
        )

    def test_create_rejects_unsupported_traits(self, stub_backend):
        with pytest.raises(BackendError):
            stub_backend.create(QueryTraits(incremental=True))

    def test_sat_round_trip_with_model(self, stub_backend):
        s = stub_backend.create(QueryTraits(incremental=False))
        a, b = s.new_vars(2)
        s.add_clause([mklit(a)])
        s.add_clause([mklit(a, True), mklit(b)])
        assert s.solve() is True
        assert s.model_value(mklit(a)) == 1
        assert s.model_value(mklit(b)) == 1
        assert s.model_value(mklit(b, True)) == 0

    def test_unsat_round_trip(self, stub_backend):
        s = stub_backend.create(QueryTraits(incremental=False))
        v = s.new_var()
        s.add_clause([mklit(v)])
        s.add_clause([mklit(v, True)])
        assert s.solve() is False

    def test_assumptions_become_units(self, stub_backend):
        s = stub_backend.create(QueryTraits(incremental=False))
        a, b = s.new_vars(2)
        s.add_clause([mklit(a), mklit(b)])
        assert s.solve([mklit(a, True)]) is True
        assert s.model_value(mklit(b)) == 1

    def test_unsat_under_assumptions_fills_core(self, stub_backend):
        s = stub_backend.create(QueryTraits(incremental=False))
        v = s.new_var()
        s.add_clause([mklit(v)])
        assert s.solve([mklit(v, True)]) is False
        assert mklit(v, True) in s.core

    def test_second_solve_rejected(self, stub_backend):
        s = stub_backend.create(QueryTraits(incremental=False))
        v = s.new_var()
        s.add_clause([mklit(v)])
        s.solve()
        with pytest.raises(BackendError, match="one-shot"):
            s.solve()

    def test_group_clause_rejected(self, stub_backend):
        s = stub_backend.create(QueryTraits(incremental=False))
        v = s.new_var()
        with pytest.raises(BackendError, match="groups"):
            s.add_clause([mklit(v)], group=3)

    def test_empty_clause_is_root_conflict(self, stub_backend):
        s = stub_backend.create(QueryTraits(incremental=False))
        s.new_var()
        assert s.add_clause([]) is False
        assert s.solve() is False

    def test_verdict_agrees_with_native_on_random_cnf(self, stub_backend):
        import random

        rng = random.Random(2018)
        for _ in range(10):
            nvars = rng.randint(3, 8)
            clauses = [
                [
                    mklit(rng.randrange(nvars), rng.random() < 0.5)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(2, 20))
            ]
            ext = stub_backend.create(QueryTraits(incremental=False))
            ext.new_vars(nvars)
            nat = Solver()
            nat.new_vars(nvars)
            ok_e = all(ext.add_clause(list(c)) for c in clauses)
            ok_n = all(nat.add_clause(list(c)) for c in clauses)
            if not (ok_e and ok_n):
                continue
            assert ext.solve() == nat.solve(), clauses

    def test_unavailable_without_command(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_SOLVER", raising=False)
        monkeypatch.setattr(shutil, "which", lambda _name: None)
        backend = DimacsProcessBackend()
        assert not backend.available()
        assert not backend.supports(QueryTraits(incremental=False))

    def test_env_override_sets_command(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVER", "/no/such/solver --flag")
        backend = DimacsProcessBackend()
        assert backend.available()
        assert backend._command == ["/no/such/solver", "--flag"]

    def test_real_binary_round_trip(self):
        # graceful skip: exercised only where a known solver is on PATH
        backend = DimacsProcessBackend()
        if not backend.available():
            pytest.skip("no external DIMACS solver binary present")
        s = backend.create(QueryTraits(incremental=False))
        a, b = s.new_vars(2)
        s.add_clause([mklit(a), mklit(b)])
        s.add_clause([mklit(a, True)])
        assert s.solve() is True
        assert s.model_value(mklit(b)) == 1


class TestEngineIntegration:
    def test_backend_choice_survives_pickling(self):
        from repro.core.engine import contest_config

        cfg = dataclasses.replace(
            contest_config(), backend="stub", backend_policy="traits"
        )
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone.backend == "stub"
        assert clone.backend_policy == "traits"

    def test_unknown_backend_errors_the_run(self):
        from repro.benchgen import build_unit, unit_spec
        from repro.core.engine import EcoEngine, EcoEngineError, contest_config

        cfg = dataclasses.replace(contest_config(), backend="no-such-engine")
        with pytest.raises(EcoEngineError, match="unknown SAT backend"):
            EcoEngine(cfg).run(build_unit(unit_spec("unit1")))

    def test_engine_restores_previous_selector(self):
        from repro.benchgen import build_unit, unit_spec
        from repro.core.engine import EcoEngine, contest_config

        before = current_selector()
        EcoEngine(contest_config()).run(build_unit(unit_spec("unit1")))
        assert current_selector() is before

    def test_traits_policy_run_matches_fixed_native(self, stub_backend):
        # the acceptance bar of the seam: routing one-shot queries to an
        # external engine changes no result fields, and the incremental
        # bulk still runs (and meters) natively
        from repro.benchgen import build_unit, unit_spec
        from repro.core.engine import EcoEngine, contest_config

        def run(cfg):
            registry = obs.get_registry()
            registry.reset()
            registry.enable()
            try:
                res = EcoEngine(cfg).run(build_unit(unit_spec("unit4")))
            finally:
                registry.disable()
            counters = dict(registry.counters)
            registry.reset()
            return res, counters

        native_res, _ = run(contest_config())
        routed_cfg = dataclasses.replace(
            contest_config(), backend="stub", backend_policy="traits"
        )
        routed_res, routed_counters = run(routed_cfg)
        assert routed_res.cost == native_res.cost
        assert routed_res.gate_count == native_res.gate_count
        assert routed_res.verified == native_res.verified
        assert routed_counters.get("sat.backend.stub.solves", 0) >= 1
        assert routed_counters.get("sat.backend.native.solves", 0) >= 1
