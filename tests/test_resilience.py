"""repro.resilience: fault plans, engine injection, retry, watchdog, chaos.

The fault-injection layer must be deterministic (same seed, same plan),
must thread through ``EcoConfig`` without monkeypatching, and every
injected failure must degrade along the documented paths: transient
budget exhaustion retries with escalation, non-transient injected
exceptions advance the fallback chain, and the wall-clock watchdog
interrupts solves without being retried.
"""

import dataclasses
import time

import pytest

from repro import EcoEngine, contest_config
from repro.benchgen.harness import run_unit
from repro.benchgen.suite import SUITE, build_unit
from repro.resilience import (
    CORRUPT_MODES,
    EngineFault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    corrupt_instance,
    make_exception,
)
from repro.sat.solver import (
    SatBudgetExceeded,
    SatDeadlineExceeded,
    Solver,
    set_solve_deadline,
)


def spec_named(name):
    return next(u for u in SUITE if u.name == name)


class TestFaultPlan:
    def test_random_is_deterministic(self):
        units = ("unit1", "unit2", "unit4", "unit13")
        a = FaultPlan.random(42, units)
        b = FaultPlan.random(42, units)
        assert a == b
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        units = tuple(f"unit{i}" for i in range(1, 9))
        plans = {
            tuple(sorted(FaultPlan.random(s, units).describe().items()))
            for s in range(8)
        }
        # not literally guaranteed distinct, but 8 identical draws would
        # mean the seed is ignored
        assert len(plans) > 1

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan.random(7, ("unit1", "unit2"))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_faulted_units_covers_all_kinds(self):
        plan = FaultPlan(
            seed=0,
            crash=frozenset({"a"}),
            hang=frozenset({"b"}),
            corrupt={"c": "drop_weights"},
            engine={"d": EngineFault(exhaust_conflicts_at=4)},
        )
        assert plan.faulted_units() == {"a", "b", "c", "d"}

    def test_make_exception_resolves_all_names(self):
        from repro.core.feasibility import EcoInfeasibleError
        from repro.core.patchfunc import PatchEnumerationError
        from repro.core.pipeline import EcoEngineError

        assert isinstance(
            make_exception("SatBudgetExceeded", "s"), SatBudgetExceeded
        )
        assert isinstance(
            make_exception("PatchEnumerationError", "s"), PatchEnumerationError
        )
        assert isinstance(make_exception("EcoEngineError", "s"), EcoEngineError)
        assert isinstance(
            make_exception("EcoInfeasibleError", "s"), EcoInfeasibleError
        )


class TestFaultInjector:
    def test_fires_on_stage_match_at_most_fail_times(self):
        inj = FaultInjector(
            EngineFault(fail_stage="support", fail_exception="EcoEngineError")
        )
        inj.check("window", None)  # no match, no raise
        with pytest.raises(Exception):
            inj.check("support", None)
        inj.check("support", None)  # spent: fail_times=1

    def test_target_filter(self):
        inj = FaultInjector(
            EngineFault(
                fail_stage="support",
                fail_target="t1",
                fail_exception="EcoEngineError",
            )
        )
        inj.check("support", "t2")  # wrong target
        with pytest.raises(Exception):
            inj.check("support", "t1")


class TestEngineInjection:
    def test_injected_strategy_exception_advances_fallback(self):
        spec = spec_named("unit1")
        fault = EngineFault(
            fail_stage="sat_flow", fail_exception="PatchEnumerationError"
        )
        row = run_unit(spec, ("minassump",), faults=fault)
        res = row.results["minassump"]
        stats = res.engine_stats
        assert res.verified
        assert res.method != "sat"  # the SAT flow was failed by injection
        assert stats.fallback_chain
        assert stats.fallback_chain[0] == "sat_flow:PatchEnumerationError"
        assert sum(stats.fallback_reasons.values()) == len(stats.fallback_chain)

    def test_injected_transient_exhaustion_is_retried(self):
        spec = spec_named("unit1")
        fault = EngineFault(
            fail_stage="sat_flow", fail_exception="SatBudgetExceeded"
        )
        row = run_unit(
            spec, ("minassump",), faults=fault, retry_policy=RetryPolicy()
        )
        res = row.results["minassump"]
        stats = res.engine_stats
        # the injector spends its one shot on attempt 1; the retry must
        # then succeed through the SAT flow with the audit trail set
        assert res.method == "sat"
        assert stats.retries == 1
        assert stats.budget_escalations == 1
        assert stats.fallback_chain == []

    def test_retry_without_policy_falls_back(self):
        spec = spec_named("unit1")
        fault = EngineFault(
            fail_stage="sat_flow", fail_exception="SatBudgetExceeded"
        )
        row = run_unit(spec, ("minassump",), faults=fault)
        res = row.results["minassump"]
        assert res.method != "sat"
        assert res.engine_stats.retries is None

    def test_budget_cap_injection_is_observable(self):
        from repro import obs

        spec = spec_named("unit13")
        reg = obs.get_registry()
        was = reg.enabled
        reg.reset()
        reg.enable()
        try:
            row = run_unit(
                spec,
                ("minassump",),
                faults=EngineFault(exhaust_conflicts_at=4),
                retry_policy=RetryPolicy(),
            )
        finally:
            reg.enabled = was
        res = row.results["minassump"]
        stats = res.engine_stats
        assert reg.counters.get("resilience.injected.budget_cap", 0) >= 1
        # the cap must observably constrain the run: a retry, a
        # fallback, or budget spend at/over the cap
        assert (
            (stats.retries or 0) >= 1
            or stats.fallback_chain
            or stats.budget_conflicts_spent >= 4
        )

    def test_non_transient_injection_is_not_retried(self):
        spec = spec_named("unit1")
        fault = EngineFault(
            fail_stage="sat_flow", fail_exception="PatchEnumerationError"
        )
        row = run_unit(
            spec, ("minassump",), faults=fault, retry_policy=RetryPolicy()
        )
        res = row.results["minassump"]
        assert res.engine_stats.retries is None
        assert res.engine_stats.fallback_chain == [
            "sat_flow:PatchEnumerationError"
        ]


class TestDeadlineWatchdog:
    def test_deadline_interrupts_solve(self):
        # a hard random instance would be flaky; instead arm an
        # already-expired deadline and check the solver refuses to start
        solver = Solver()
        v = [solver.new_var() for _ in range(4)]
        solver.add_clause([2 * v[0], 2 * v[1]])
        set_solve_deadline(time.perf_counter() - 1.0)
        try:
            with pytest.raises(SatDeadlineExceeded):
                solver.solve()
        finally:
            set_solve_deadline(None)

    def test_no_deadline_no_interrupt(self):
        solver = Solver()
        v = solver.new_var()
        solver.add_clause([2 * v])
        assert solver.solve() is True

    def test_deadline_exception_is_not_transient(self):
        from repro.core.pipeline import _is_transient

        assert _is_transient(SatBudgetExceeded("x"))
        assert not _is_transient(SatDeadlineExceeded("x"))

    def test_engine_budget_seconds_still_succeeds(self):
        # an expired run deadline must degrade (watchdog disarmed for
        # the last-resort strategy), not error out
        spec = spec_named("unit1")
        cfg = dataclasses.replace(
            contest_config(), budget_seconds=0.0, feasibility_method="qbf"
        )
        res = EcoEngine(cfg).run(build_unit(spec))
        assert res.verified


class TestRetryPolicy:
    def test_backoff_disabled_by_default(self):
        p = RetryPolicy()
        assert p.backoff_seconds(1) == 0.0
        assert p.backoff_seconds(3) == 0.0

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert p.backoff_seconds(1) == pytest.approx(0.1)
        assert p.backoff_seconds(2) == pytest.approx(0.2)
        assert p.backoff_seconds(3) == pytest.approx(0.3)
        assert p.backoff_seconds(10) == pytest.approx(0.3)


class TestCorruption:
    @pytest.mark.parametrize("mode", CORRUPT_MODES)
    def test_modes_mutate_instance(self, mode):
        inst = build_unit(spec_named("unit1"))
        before = (
            list(inst.targets),
            dict(inst.weights),
            len(inst.spec.pos),
        )
        corrupt_instance(inst, mode)
        after = (
            list(inst.targets),
            dict(inst.weights),
            len(inst.spec.pos),
        )
        assert before != after or mode == "drop_weights" and not before[1]

    def test_unknown_mode_rejected(self):
        inst = build_unit(spec_named("unit1"))
        with pytest.raises(ValueError):
            corrupt_instance(inst, "no_such_mode")

    def test_benign_corruption_still_succeeds(self):
        inst = corrupt_instance(build_unit(spec_named("unit1")), "drop_weights")
        row = run_unit(spec_named("unit1"), ("minassump",), inst)
        assert row.results["minassump"].verified


class TestChaos:
    # fast seeds only (no hang faults): the full 5-seed sweep, which
    # includes multi-second hang/timeout rounds, runs in the CI chaos job
    @pytest.mark.parametrize("seed", [9, 14, 16])
    def test_chaos_invariants_hold(self, seed):
        from repro.resilience.chaos import run_chaos

        report = run_chaos(seed)
        assert report.ok, "\n".join(report.violations)

    @pytest.mark.parametrize("seed", [9, 14])
    def test_chaos_is_deterministic(self, seed):
        from repro.resilience.chaos import run_chaos

        a = run_chaos(seed)
        b = run_chaos(seed)
        outcomes_a = {
            r.name: {m: r.results[m].method for m in r.results} for r in a.rows
        }
        outcomes_b = {
            r.name: {m: r.results[m].method for m in r.results} for r in b.rows
        }
        assert outcomes_a == outcomes_b
        assert a.plan == b.plan
