"""Tests for the CEGAR 2QBF solver."""

import itertools
import random

import pytest

from repro.network import GateType, Network
from repro.twoqbf import QbfBudgetExceeded, solve_exists_forall


def brute_exists_forall(net, exists_pis, forall_pis):
    po_name = net.pos[0][0]
    for xv in itertools.product((0, 1), repeat=len(exists_pis)):
        ok = True
        for yv in itertools.product((0, 1), repeat=len(forall_pis)):
            assign = dict(zip(exists_pis, xv))
            assign.update(zip(forall_pis, yv))
            if net.evaluate_pos(assign)[po_name] != 1:
                ok = False
                break
        if ok:
            return True
    return False


def random_single_po(seed, n_pi=5, n_gates=14):
    rng = random.Random(seed)
    net = Network("q")
    nodes = [net.add_pi(f"p{i}") for i in range(n_pi)]
    for _ in range(n_gates):
        gtype = rng.choice(
            [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND, GateType.NOT]
        )
        if gtype is GateType.NOT:
            ins = [rng.choice(nodes)]
        else:
            ins = [rng.choice(nodes) for _ in range(2)]
        nodes.append(net.add_gate(gtype, ins))
    net.add_po(nodes[-1], "out")
    return net


class TestSolveExistsForall:
    def test_xor_is_false(self):
        net = Network()
        x, y = net.add_pi("x"), net.add_pi("y")
        net.add_po(net.add_gate(GateType.XOR, [x, y]), "o")
        res = solve_exists_forall(net, [x], [y])
        assert not res.is_sat
        assert len(res.countermoves) >= 1

    def test_or_with_witness(self):
        net = Network()
        x, y = net.add_pi("x"), net.add_pi("y")
        ny = net.add_gate(GateType.NOT, [y])
        taut_part = net.add_gate(GateType.AND, [y, ny])
        net.add_po(net.add_gate(GateType.OR, [x, taut_part]), "o")
        res = solve_exists_forall(net, [x], [y])
        assert res.is_sat
        assert res.witness == {x: 1}

    def test_tautology_any_witness(self):
        net = Network()
        x, y = net.add_pi("x"), net.add_pi("y")
        nx = net.add_gate(GateType.NOT, [x])
        net.add_po(net.add_gate(GateType.OR, [x, nx]), "o")
        res = solve_exists_forall(net, [x], [y])
        assert res.is_sat

    def test_matches_brute_force(self):
        for seed in range(25):
            net = random_single_po(seed)
            pis = net.pis
            ex, fa = pis[:2], pis[2:]
            res = solve_exists_forall(net, ex, fa)
            assert res.is_sat == brute_exists_forall(net, ex, fa), seed
            if res.is_sat:
                # verify the witness exhaustively
                for yv in itertools.product((0, 1), repeat=len(fa)):
                    assign = dict(res.witness)
                    assign.update(zip(fa, yv))
                    assert net.evaluate_pos(assign)["out"] == 1

    def test_countermoves_cover_unsat_certificate(self):
        """When UNSAT, every x must be beaten by some recorded move."""
        for seed in range(25):
            net = random_single_po(seed, n_pi=4, n_gates=12)
            pis = net.pis
            ex, fa = pis[:2], pis[2:]
            res = solve_exists_forall(net, ex, fa)
            if res.is_sat:
                continue
            for xv in itertools.product((0, 1), repeat=len(ex)):
                beaten = False
                for move in res.countermoves:
                    assign = dict(zip(ex, xv))
                    assign.update(move)
                    if net.evaluate_pos(assign)["out"] == 0:
                        beaten = True
                        break
                assert beaten, (seed, xv)

    def test_validates_partition(self):
        net = Network()
        x, y = net.add_pi("x"), net.add_pi("y")
        net.add_po(net.add_gate(GateType.AND, [x, y]), "o")
        with pytest.raises(ValueError):
            solve_exists_forall(net, [x], [x, y])
        with pytest.raises(ValueError):
            solve_exists_forall(net, [x], [])

    def test_requires_single_po(self):
        net = Network()
        x = net.add_pi("x")
        net.add_po(x, "a")
        net.add_po(x, "b")
        with pytest.raises(ValueError):
            solve_exists_forall(net, [x], [])

    def test_iteration_cap(self):
        net = Network()
        x, y = net.add_pi("x"), net.add_pi("y")
        net.add_po(net.add_gate(GateType.XOR, [x, y]), "o")
        with pytest.raises(QbfBudgetExceeded):
            solve_exists_forall(net, [x], [y], max_iterations=1)
