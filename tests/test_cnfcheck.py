"""Tests for CNF well-formedness and encoding validation
(``repro.check.cnfcheck``).

The syntactic rules CN001–CN005 are driven with handcrafted clause
lists; the semantic cross-check rules CN006/CN007 are triggered by
monkeypatching the compiled template with deliberately broken variants
(an over-constraining one and one that drops half of a gate's Tseitin
equivalence).
"""

import pytest

import repro.check.cnfcheck as cnfcheck_mod
from repro.benchgen import comparator, ripple_adder
from repro.check import (
    Severity,
    check_cnf,
    check_encoding,
    collect_encoding,
    cross_check_tseitin,
)
from repro.network import GateType, Network
from repro.sat.template import CnfTemplate
from repro.sat.types import mklit


def rules_of(findings):
    return {f.rule for f in findings}


def and_net():
    """PO f = a & b."""
    net = Network("andnet")
    a = net.add_pi("a")
    b = net.add_pi("b")
    v = net.add_gate(GateType.AND, [a, b], "v")
    net.add_po(v, "f")
    return net


class TestCheckCnf:
    def test_clean(self):
        # (x0 | x1) & (~x0 | ~x1): well-formed, no findings
        assert check_cnf([[0, 2], [1, 3]], nvars=2) == []

    def test_cn001_variable_out_of_bounds(self):
        findings = check_cnf([[0, 10]], nvars=5)
        assert rules_of(findings) == {"CN001"}
        (f,) = findings
        assert f.severity is Severity.ERROR and f.node == 0

    def test_cn001_negative_literal(self):
        assert rules_of(check_cnf([[-1, 0]], nvars=5)) == {"CN001"}

    def test_cn002_empty_clause(self):
        findings = check_cnf([[0], []], nvars=1)
        assert rules_of(findings) == {"CN002"}
        (f,) = findings
        assert f.severity is Severity.WARNING and f.node == 1

    def test_cn003_tautology(self):
        findings = check_cnf([[0, 1]], nvars=1)
        assert rules_of(findings) == {"CN003"}

    def test_cn004_duplicate_literal(self):
        findings = check_cnf([[0, 0, 2]], nvars=2)
        assert rules_of(findings) == {"CN004"}

    def test_cn005_duplicate_clause(self):
        # same literal set in a different order
        findings = check_cnf([[0, 2], [2, 0]], nvars=2)
        assert rules_of(findings) == {"CN005"}
        (f,) = findings
        assert f.severity is Severity.INFO

    def test_tautologies_are_not_deduplicated(self):
        # identical tautological clauses report CN003 twice, never CN005
        findings = check_cnf([[0, 1], [0, 1]], nvars=1)
        assert [f.rule for f in findings] == ["CN003", "CN003"]

    def test_multiple_defects_reported_together(self):
        findings = check_cnf([[0, 0], [], [40]], nvars=3)
        assert rules_of(findings) == {"CN004", "CN002", "CN001"}


class TestEncodingCrossCheck:
    def test_tseitin_of_clean_network_is_spotless(self):
        collector = collect_encoding(comparator(3))
        assert check_cnf(collector.clause_list, collector.nvars) == []

    @pytest.mark.parametrize("make", [and_net, lambda: ripple_adder(2)])
    def test_cross_check_clean(self, make):
        assert cross_check_tseitin(make(), patterns=16) == []

    def test_check_encoding_clean(self):
        assert check_encoding(ripple_adder(2), patterns=16) == []

    def test_cn006_overconstrained(self, monkeypatch):
        class Overconstrained(CnfTemplate):
            # force the first PI to 0 inside the compiled template:
            # vectors assigning it 1 become UNSAT
            def __init__(self, net):
                super().__init__(net)
                self.clauses.append((mklit(self.varmap[net.pis[0]], True),))

        monkeypatch.setattr(cnfcheck_mod, "CnfTemplate", Overconstrained)
        findings = cross_check_tseitin(and_net(), patterns=16)
        assert rules_of(findings) == {"CN006"}
        assert any("over-constrained" in f.message for f in findings)

    def test_cn007_underconstrained(self, monkeypatch):
        class Underconstrained(CnfTemplate):
            # drop the clauses carrying the PO variable's negative
            # literal: the "output is 1 forces ..." direction disappears
            # and the complement query becomes satisfiable
            def __init__(self, net):
                super().__init__(net)
                drop = mklit(self.varmap[net.pos[0][1]], True)
                self.clauses = [c for c in self.clauses if drop not in c]

        monkeypatch.setattr(cnfcheck_mod, "CnfTemplate", Underconstrained)
        findings = cross_check_tseitin(and_net(), patterns=16)
        assert rules_of(findings) == {"CN007"}
        assert any("under-constrained" in f.message for f in findings)

    def test_check_encoding_skips_cross_check_on_syntactic_error(
        self, monkeypatch
    ):
        def exploding_cross_check(*args, **kwargs):
            raise AssertionError("cross-check must not run")

        monkeypatch.setattr(
            cnfcheck_mod, "cross_check_tseitin", exploding_cross_check
        )

        real_collect = cnfcheck_mod.collect_encoding

        def bad_collect(net):
            collector = real_collect(net)
            collector.clause_list.append([mklit(collector.nvars + 50)])
            return collector

        monkeypatch.setattr(cnfcheck_mod, "collect_encoding", bad_collect)
        findings = cnfcheck_mod.check_encoding(and_net(), patterns=8)
        assert rules_of(findings) == {"CN001"}
