"""Tests for the netlist linter (``repro.check.netlint``).

Every rule id NL001–NL007 is exercised by deliberately corrupting a
netlist through the same private fields the linter audits; clean
networks must come back with an empty report.
"""

import pytest

from repro.benchgen import ripple_adder
from repro.check import DEFAULT_RULES, LINT_RULES, Severity, lint_network
from repro.network import GateType, Network, NetworkError

from helpers import random_network


def small_net():
    """a, b, c -> g1 = a & b, g2 = g1 | c, PO f."""
    net = Network("lintme")
    a = net.add_pi("a")
    b = net.add_pi("b")
    c = net.add_pi("c")
    g1 = net.add_gate(GateType.AND, [a, b], "g1")
    g2 = net.add_gate(GateType.OR, [g1, c], "g2")
    net.add_po(g2, "f")
    return net, (a, b, c, g1, g2)


def rules_of(findings):
    return {f.rule for f in findings}


class TestCleanNetworks:
    def test_small_net_is_clean(self):
        net, _ = small_net()
        assert lint_network(net) == []

    def test_generator_output_is_clean(self):
        assert lint_network(ripple_adder(4)) == []

    def test_random_network_has_no_errors(self):
        # random_network may wire duplicate fanins (NL003, a warning),
        # but must never produce an error-severity finding
        for seed in range(5):
            net = random_network(n_pi=4, n_gates=20, n_po=2, seed=seed)
            errors = [
                f for f in lint_network(net) if f.severity is Severity.ERROR
            ]
            assert errors == []


class TestNL001Cycles:
    def test_self_loop(self):
        net, (a, b, c, g1, g2) = small_net()
        net.node(g1).fanins[1] = g1
        net._fanouts[b].discard(g1)
        net._fanouts[g1].add(g1)
        findings = lint_network(net)
        assert "NL001" in rules_of(findings)
        assert any("feeds itself" in f.message for f in findings)

    def test_two_node_cycle(self):
        net, (a, b, c, g1, g2) = small_net()
        # g1 <- g2 while g2 <- g1: a proper combinational loop
        net.node(g1).fanins[1] = g2
        net._fanouts[b].discard(g1)
        net._fanouts[g2].add(g1)
        findings = lint_network(net)
        assert rules_of(findings) == {"NL001"}
        flagged = {f.node for f in findings}
        assert flagged <= {g1, g2} and flagged


class TestNL002Dangling:
    def test_dangling_fanin(self):
        net, (a, b, c, g1, g2) = small_net()
        net.node(g1).fanins.append(999)
        findings = lint_network(net)
        assert "NL002" in rules_of(findings)
        assert any("dangling fanin 999" in f.message for f in findings)

    def test_fanout_misses_consumer(self):
        net, (a, b, c, g1, g2) = small_net()
        net._fanouts[a].discard(g1)
        findings = lint_network(net)
        assert rules_of(findings) == {"NL002"}
        assert any("misses consumer" in f.message for f in findings)

    def test_dangling_fanout(self):
        net, (a, b, c, g1, g2) = small_net()
        net._fanouts[c].add(998)
        findings = lint_network(net)
        assert rules_of(findings) == {"NL002"}
        assert any("dangling fanout" in f.message for f in findings)

    def test_fanout_without_fanin_edge(self):
        net, (a, b, c, g1, g2) = small_net()
        net._fanouts[b].add(g2)  # g2 does not read b
        findings = lint_network(net)
        assert rules_of(findings) == {"NL002"}

    def test_corrupt_pi_registry(self):
        net, (a, b, c, g1, g2) = small_net()
        net._pis.append(g1)  # a gate is not a PI
        findings = lint_network(net)
        assert rules_of(findings) == {"NL002"}
        assert any("PI registry" in f.message for f in findings)

    def test_corrupt_const_registry(self):
        net, (a, b, c, g1, g2) = small_net()
        net._const_ids[GateType.CONST1] = 997
        findings = lint_network(net)
        assert rules_of(findings) == {"NL002"}
        assert any("constant registry" in f.message for f in findings)


class TestNL003DuplicateFanin:
    def test_duplicate_is_a_warning(self):
        net, (a, b, c, g1, g2) = small_net()
        net.add_gate(GateType.AND, [a, a], "dup")
        findings = lint_network(net)
        assert rules_of(findings) == {"NL003"}
        (f,) = findings
        assert f.severity is Severity.WARNING
        assert f.name == "dup"

    def test_validate_accepts_duplicates(self):
        net, (a, b, c, g1, g2) = small_net()
        net.add_gate(GateType.XOR, [b, b], "dup")
        net.validate()  # warning severity: must not raise


class TestNL004Arity:
    @pytest.mark.parametrize(
        "gtype,n_fanins",
        [
            (GateType.NOT, 2),
            (GateType.AND, 1),
            (GateType.MUX, 2),
        ],
    )
    def test_bad_arity(self, gtype, n_fanins):
        net, (a, b, c, g1, g2) = small_net()
        valid = {GateType.NOT: [a], GateType.AND: [a, b], GateType.MUX: [a, b, c]}
        g = net.add_gate(gtype, valid[gtype], "bad")
        # construction validates, so corrupt after the fact
        node = net.node(g)
        for f in node.fanins:
            net._fanouts[f].discard(g)
        fanins = [a, b, c][:n_fanins]
        node.fanins[:] = fanins
        for f in fanins:
            net._fanouts[f].add(g)
        findings = lint_network(net)
        assert rules_of(findings) == {"NL004"}
        assert any(f.node == g for f in findings)


class TestNL005UndrivenPo:
    def test_po_bound_to_dead_node(self):
        net, _ = small_net()
        net._pos.append(("ghost", 996))
        findings = lint_network(net)
        assert rules_of(findings) == {"NL005"}
        (f,) = findings
        assert f.name == "ghost"


class TestNL006Strash:
    def test_structural_duplicate_is_info_and_off_by_default(self):
        net, (a, b, c, g1, g2) = small_net()
        net.add_gate(GateType.AND, [b, a], "g1bis")  # commutative dup of g1
        assert lint_network(net) == []  # NL006 not in the default sweep
        findings = lint_network(net, rules=["NL006"])
        assert rules_of(findings) == {"NL006"}
        (f,) = findings
        assert f.severity is Severity.INFO
        assert "duplicates" in f.message

    def test_mux_duplicate_respects_fanin_order(self):
        net = Network("mux")
        s = net.add_pi("s")
        d0 = net.add_pi("d0")
        d1 = net.add_pi("d1")
        net.add_gate(GateType.MUX, [s, d0, d1], "m1")
        net.add_gate(GateType.MUX, [s, d1, d0], "m2")  # different function
        assert lint_network(net, rules=["NL006"]) == []


class TestNL007Names:
    def test_shared_name(self):
        net, (a, b, c, g1, g2) = small_net()
        net.node(g2).name = "g1"
        findings = lint_network(net)
        assert rules_of(findings) == {"NL007"}
        assert any("share the name" in f.message for f in findings)

    def test_stale_map_entry(self):
        net, _ = small_net()
        net._name_to_id["ghost"] = 995
        findings = lint_network(net)
        assert rules_of(findings) == {"NL007"}
        assert any("dead node" in f.message for f in findings)

    def test_map_points_at_wrong_node(self):
        net, (a, b, c, g1, g2) = small_net()
        net._name_to_id["g1"] = g2
        findings = lint_network(net)
        assert rules_of(findings) == {"NL007"}


class TestLintApi:
    def test_unknown_rule_raises(self):
        net, _ = small_net()
        with pytest.raises(KeyError):
            lint_network(net, rules=["NL999"])

    def test_rule_selection(self):
        net, (a, b, c, g1, g2) = small_net()
        net._pos.append(("ghost", 994))  # NL005
        net._name_to_id["ghost2"] = 993  # NL007
        assert rules_of(lint_network(net, rules=["NL005"])) == {"NL005"}
        assert rules_of(lint_network(net)) == {"NL005", "NL007"}

    def test_catalogue_is_complete(self):
        assert sorted(LINT_RULES) == [f"NL00{i}" for i in range(1, 8)]
        assert "NL006" not in DEFAULT_RULES
        for rid, rule in LINT_RULES.items():
            assert rule.rule == rid
            assert rule.slug and rule.description


class TestValidateDelegation:
    def test_clean_validate_passes(self):
        net, _ = small_net()
        net.validate()
        random_network(n_pi=4, n_gates=15, n_po=2, seed=3).validate()

    def test_validate_raises_with_rule_id(self):
        net, (a, b, c, g1, g2) = small_net()
        node = net.node(g1)
        net._fanouts[b].discard(g1)
        node.fanins[:] = [a]  # AND with one fanin: NL004
        with pytest.raises(NetworkError, match="NL004"):
            net.validate()

    def test_validate_reports_undriven_po(self):
        net, _ = small_net()
        net._pos.append(("ghost", 992))
        with pytest.raises(NetworkError, match="NL005"):
            net.validate()
