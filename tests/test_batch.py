"""Batch front-end: arena, template memo/source, runner (repro.batch).

Covers the PR's perf core end to end: arena serialization round-trips
templates bit-exactly through both backings, ``template_for`` layers
(process memo → installed source → compile) count correctly, and
``run_batch`` produces a schema-valid bench document whose unit rows
are byte-identical between one in-process job and a real worker pool —
with the "zero per-worker re-encodes" counter audit the acceptance
criteria name (``sat.template_compiles`` stays flat for arena-resident
structural hashes).
"""

import gc
import json

import pytest

from repro import obs
from repro.batch import TemplateArena, items_from_suite, run_batch
from repro.batch.runner import (
    BatchItem,
    first_target_template,
    precompile_templates,
)
from repro.benchgen.harness import config_for
from repro.benchgen.suite import build_unit, unit_spec
from repro.core import clear_extraction_memo
from repro.core.support import clear_support_memo
from repro.network import Network
from repro.obs.export import validate_bench_document
from repro.sat.solver import Solver
from repro.sat.template import (
    CnfTemplate,
    clear_template_memo,
    install_template_source,
    template_for,
)

from helpers import random_network


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_template_memo()
    clear_extraction_memo()
    clear_support_memo()
    install_template_source(None)
    yield
    clear_template_memo()
    clear_extraction_memo()
    clear_support_memo()
    install_template_source(None)


def counting_registry():
    registry = obs.get_registry()
    registry.reset()
    registry.enable()
    return registry


def sample_templates(n=2):
    out = {}
    for seed in range(n):
        net = random_network(n_pi=4, n_gates=12, n_po=2, seed=seed).clone()
        out[net.structural_hash()] = (net, CnfTemplate(net))
    return out


# ---------------------------------------------------------------------------
# arena
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backing", ["shm", "file"])
def test_arena_roundtrip(backing):
    nets = sample_templates()
    arena = TemplateArena.build(
        {k: tpl for k, (net, tpl) in nets.items()}, backing=backing
    )
    try:
        assert len(arena) == len(nets)
        assert arena.descriptor()[0] == backing
        for key, (net, tpl) in nets.items():
            got = arena.get(key)
            assert got is not None
            assert got.nvars == tpl.nvars
            assert dict(got.varmap) == dict(tpl.varmap)
            assert got.pi_nodes == tpl.pi_nodes
            assert [list(c) for c in got.clauses] == [
                list(c) for c in tpl.clauses
            ]
            del got
    finally:
        gc.collect()
        arena.close()


def test_arena_attach_stamps_identically():
    nets = sample_templates(1)
    key, (net, tpl) = next(iter(nets.items()))
    arena = TemplateArena.build({key: tpl})
    peer = TemplateArena.attach(arena.descriptor())
    try:
        got = peer.get(key)
        s1, s2 = Solver(), Solver()
        assert got.stamp(s1) == tpl.stamp(s2)
        assert s1.nvars == s2.nvars
        del got
    finally:
        gc.collect()
        peer.close()
        arena.close()


def test_arena_miss_counts():
    nets = sample_templates(1)
    arena = TemplateArena.build(
        {k: tpl for k, (net, tpl) in nets.items()}
    )
    registry = counting_registry()
    try:
        assert arena.get(12345) is None
        assert registry.counters.get("batch.arena_miss") == 1
        hit = arena.get(next(iter(nets)))
        assert hit is not None
        assert registry.counters.get("batch.arena_hit") == 1
        del hit
    finally:
        registry.disable()
        gc.collect()
        arena.close()


def test_arena_rejects_bad_descriptor():
    with pytest.raises(ValueError, match="unknown arena backing"):
        TemplateArena.attach(("tape", "nope", 3))


# ---------------------------------------------------------------------------
# template_for layering
# ---------------------------------------------------------------------------


def test_template_for_consults_installed_source():
    net = random_network(n_pi=4, n_gates=10, n_po=2, seed=7).clone()
    key = net.structural_hash()
    canned = CnfTemplate(net)
    calls = []

    def source(k):
        calls.append(k)
        return canned if k == key else None

    install_template_source(source)
    registry = counting_registry()
    try:
        got = template_for(net)
        assert got is canned
        assert calls == [key]
        assert registry.counters.get("engine.template_memo_hit") == 1
        assert registry.counters.get("sat.template_compiles") is None
        # source hit is memoized: second lookup never calls the source
        assert template_for(net) is canned
        assert calls == [key]
    finally:
        registry.disable()


def test_template_for_compiles_on_source_miss():
    net = random_network(n_pi=4, n_gates=10, n_po=2, seed=8).clone()
    install_template_source(lambda k: None)
    registry = counting_registry()
    try:
        got = template_for(net)
        assert got.nvars > 0
        assert registry.counters.get("engine.template_memo_miss") == 1
        assert registry.counters.get("sat.template_compiles") == 1
    finally:
        registry.disable()


# ---------------------------------------------------------------------------
# precompile
# ---------------------------------------------------------------------------


def suite_item(name, method="satprune_cegarmin"):
    spec = unit_spec(name)
    return BatchItem(
        name=name,
        instance=build_unit(spec),
        method=method,
        config=config_for(spec, method),
    )


def test_first_target_template_matches_worker_key():
    item = suite_item("unit1")
    pre = first_target_template(item.instance, item.resolved_config())
    assert pre is not None
    key, tpl = pre
    assert tpl.nvars > 0 and len(tpl.clauses) > 0
    # the same instance precompiles to the same key (canonical clones)
    again = first_target_template(item.instance, item.resolved_config())
    assert again is not None and again[0] == key


def test_first_target_template_skips_structural_only():
    item = suite_item("unit6")  # force_structural in the suite recipe
    assert item.resolved_config().structural_only
    assert first_target_template(item.instance, item.resolved_config()) is None


def test_precompile_dedups_repeated_structures():
    item = suite_item("unit1")
    clone = BatchItem(
        name="unit1-again",
        instance=item.instance,
        method=item.method,
        config=item.config,
    )
    registry = counting_registry()
    try:
        templates = precompile_templates([item, clone])
        assert len(templates) == 1
        assert registry.counters.get("batch.precompiles") == 1
        assert registry.counters.get("batch.precompile_dedup") == 1
    finally:
        registry.disable()


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


def strip_timing(doc):
    """Unit rows without wall-clock fields (the deterministic part)."""
    return [
        {k: v for k, v in entry.items() if k not in ("phases", "passes", "runtime_s")}
        for entry in doc["units"]
    ]


def test_run_batch_single_job_document():
    report = run_batch([suite_item("unit1"), suite_item("unit4")], jobs=1)
    assert report.ok
    validate_bench_document(report.document)
    assert [r["unit"] for r in report.results] == ["unit1", "unit4"]
    assert report.arena_entries == 2
    assert report.document["latency"]["count"] == 2
    assert report.document["context"]["jobs"] == 1
    assert len(report.document["shards"]) == 1
    for rec in report.results:
        counters = rec["entry"]["counters"]
        # zero per-worker re-encodes: the single target's template came
        # from the arena, so no compile ever ran in the execution path
        assert counters.get("batch.arena_hit") == 1
        assert counters.get("sat.template_compiles") is None
        assert counters.get("batch.waves", 0) > 0


def test_run_batch_pool_matches_single_job():
    items = [suite_item("unit1"), suite_item("unit4")]
    rep1 = run_batch(items, jobs=1)
    rep2 = run_batch(items, jobs=2)
    assert rep1.ok and rep2.ok
    validate_bench_document(rep2.document)
    assert json.dumps(strip_timing(rep1.document), sort_keys=True) == json.dumps(
        strip_timing(rep2.document), sort_keys=True
    )
    # the pool really ran out-of-process
    parent_pids = {r["pid"] for r in rep1.results}
    worker_pids = {r["pid"] for r in rep2.results}
    assert parent_pids.isdisjoint(worker_pids)
    for rec in rep2.results:
        assert rec["entry"]["counters"].get("sat.template_compiles") is None


def test_run_batch_without_arena():
    report = run_batch([suite_item("unit1")], jobs=1, use_arena=False)
    assert report.ok
    assert report.arena_entries == 0
    counters = report.results[0]["entry"]["counters"]
    assert counters.get("batch.arena_hit") is None
    assert counters.get("sat.template_compiles") == 1


def test_run_batch_records_failures():
    item = suite_item("unit1")
    broken = BatchItem(
        name="broken",
        instance=item.instance.__class__(
            name="broken",
            impl=item.instance.impl,
            spec=item.instance.spec,
            targets=["no_such_node"],
            weights=item.instance.weights,
            default_weight=item.instance.default_weight,
        ),
        method=item.method,
        config=item.config,
    )
    report = run_batch([item, broken], jobs=1)
    assert not report.ok
    assert [r["ok"] for r in report.results] == [True, False]
    assert len(report.failures()) == 1
    assert report.failures()[0]["error"]
    # failed rows still validate (placeholder entry)
    validate_bench_document(report.document)


def test_run_batch_rejects_empty_and_bad_jobs():
    with pytest.raises(ValueError):
        run_batch([], jobs=1)
    with pytest.raises(ValueError):
        run_batch([suite_item("unit1")], jobs=0)


def test_items_from_suite_validates():
    items = items_from_suite(["unit1", "unit4"])
    assert [it.name for it in items] == ["unit1", "unit4"]
    with pytest.raises(KeyError):
        items_from_suite(["unitx"])
    with pytest.raises(ValueError):
        items_from_suite(["unit1"], method="nope")
