"""End-to-end tests for the EcoEngine (the Figure 2 flow)."""

import dataclasses

import pytest

from repro import (
    EcoEngine,
    EcoInfeasibleError,
    EcoInstance,
    baseline_config,
    best_config,
    cec,
    contest_config,
)
from repro.core import apply_patches
from repro.core.engine import EcoConfig
from repro.network import GateType, Network

from helpers import random_network


def make_instance(seed=0, n_targets=1, n_pi=5, n_gates=28, weights_seed=1):
    """Random golden network + corruption (like the suite, but tiny)."""
    from repro.benchgen import corrupt, generate_weights, make_specification

    golden = random_network(n_pi=n_pi, n_gates=n_gates, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, n_targets, seed=seed + 1000)
    spec = make_specification(golden)
    weights = generate_weights(impl, "T8", seed=weights_seed)
    return EcoInstance(
        name=f"rt{seed}",
        impl=impl,
        spec=spec,
        targets=targets,
        weights=weights,
    )


CONFIGS = {
    "baseline": baseline_config,
    "contest": contest_config,
    "best": best_config,
}


class TestEngineEndToEnd:
    @pytest.mark.parametrize("cfg_name", sorted(CONFIGS))
    def test_single_target_all_configs(self, cfg_name):
        for seed in range(4):
            inst = make_instance(seed=seed)
            res = EcoEngine(CONFIGS[cfg_name]()).run(inst)
            assert res.verified
            assert res.cost >= 0
            assert all(p.target in inst.targets for p in res.patches)

    @pytest.mark.parametrize("n_targets", [2, 3])
    def test_multi_target(self, n_targets):
        for seed in (11, 12):
            inst = make_instance(seed=seed, n_targets=n_targets, n_gates=40)
            res = EcoEngine(contest_config()).run(inst)
            assert res.verified
            assert len(res.patches) == n_targets

    def test_patches_reapply_cleanly(self):
        """Applying the returned patches to a fresh clone re-verifies."""
        inst = make_instance(seed=3, n_targets=2, n_gates=35)
        res = EcoEngine(contest_config()).run(inst)
        patched = apply_patches(inst.impl, res.patches)
        assert cec(patched, inst.spec).equivalent

    def test_cost_accounting_matches_patch_supports(self):
        inst = make_instance(seed=5)
        res = EcoEngine(contest_config()).run(inst)
        support = {n for p in res.patches for n in p.support}
        expect = sum(
            inst.weights.get(n, inst.default_weight) for n in support
        )
        assert res.cost == expect

    def test_structural_only_flow(self):
        inst = make_instance(seed=7, n_targets=2, n_gates=35)
        cfg = dataclasses.replace(
            contest_config(), structural_only=True, feasibility_method="qbf"
        )
        res = EcoEngine(cfg).run(inst)
        assert res.verified
        assert res.method.startswith("structural")

    def test_structural_with_cegar_min(self):
        inst = make_instance(seed=8, n_targets=1, n_gates=35)
        cfg = dataclasses.replace(
            best_config(), structural_only=True, feasibility_method="qbf"
        )
        res = EcoEngine(cfg).run(inst)
        assert res.verified

    def test_infeasible_targets_raise(self):
        # corrupt one node but declare a target whose fanout misses it
        impl = Network()
        a, b, c = (impl.add_pi(x) for x in "abc")
        w = impl.add_gate(GateType.OR, [a, b], "w")
        z = impl.add_gate(GateType.OR, [c, a], "z")
        impl.add_po(w, "o1")
        impl.add_po(z, "o2")
        spec = Network()
        a2, b2, c2 = (spec.add_pi(x) for x in "abc")
        w2 = spec.add_gate(GateType.AND, [a2, b2], "w")
        z2 = spec.add_gate(GateType.OR, [c2, a2], "z")
        spec.add_po(w2, "o1")
        spec.add_po(z2, "o2")
        inst = EcoInstance("bad", impl, spec, targets=["z"])
        with pytest.raises(EcoInfeasibleError):
            EcoEngine(contest_config()).run(inst)

    def test_identical_netlists_trivial(self):
        net = random_network(n_pi=4, n_gates=20, seed=9)
        inst = EcoInstance(
            "same", net.clone(), net.clone(), targets=["g5"]
        )
        res = EcoEngine(contest_config()).run(inst)
        assert res.verified

    def test_satprune_never_worse_on_single_target(self):
        """SAT_prune guarantees minimum cost for one target (§3.4.2)."""
        for seed in range(5):
            inst = make_instance(seed=seed + 40, n_targets=1, n_gates=30)
            res_min = EcoEngine(contest_config()).run(inst)
            res_opt = EcoEngine(best_config()).run(inst)
            assert res_opt.cost <= res_min.cost, seed

    def test_runtime_recorded(self):
        inst = make_instance(seed=13)
        res = EcoEngine(contest_config()).run(inst)
        assert res.runtime_seconds > 0
        assert "divisor_candidates" in res.stats


class TestEngineConfigs:
    def test_preset_shapes(self):
        assert baseline_config().support_method == "analyze_final"
        assert contest_config().support_method == "minassump"
        assert best_config().support_method == "satprune"
        assert best_config().use_cegar_min

    def test_custom_budget(self):
        cfg = EcoConfig(budget_conflicts=123)
        assert cfg.budget_conflicts == 123
