"""Tests for SAT-based functional resubstitution (§3.6.3)."""

import pytest

from repro.core import resubstitute
from repro.network import GateType, Network
from repro.sop.synth import sop_to_network

from helpers import all_minterms


def impl_and_patch():
    """impl computes u = a&b and v = c|d internally; the PI patch
    computes (a&b) | (c|d) — resubstitution should find u | v."""
    impl = Network("impl")
    a, b, c, d = (impl.add_pi(x) for x in "abcd")
    u = impl.add_gate(GateType.AND, [a, b], "u")
    v = impl.add_gate(GateType.OR, [c, d], "v")
    f = impl.add_gate(GateType.XOR, [u, v], "f")
    impl.add_po(f, "o")

    patch = Network("patch")
    pa, pb, pc, pd = (patch.add_pi(x) for x in "abcd")
    g1 = patch.add_gate(GateType.AND, [pa, pb])
    g2 = patch.add_gate(GateType.OR, [pc, pd])
    patch.add_po(patch.add_gate(GateType.OR, [g1, g2]), "p")
    return impl, patch


class TestResubstitute:
    def test_finds_internal_expression(self):
        impl, patch = impl_and_patch()
        u, v = impl.node_by_name("u"), impl.node_by_name("v")
        res = resubstitute(impl, patch, [u, v], {u: 1, v: 1})
        assert res is not None
        assert sorted(res.divisor_ids) == sorted([u, v])
        # SOP over (u, v) ordered by id: must equal u | v
        for uv in all_minterms(2):
            expected = uv[0] | uv[1]
            # positions follow res.divisor_ids order
            vals = list(uv)
            assert res.sop.evaluate(vals) == expected or res.sop.width != 2

    def test_resub_function_matches_patch(self):
        impl, patch = impl_and_patch()
        u, v = impl.node_by_name("u"), impl.node_by_name("v")
        res = resubstitute(impl, patch, [u, v], {u: 1, v: 1})
        assert res is not None
        names = [impl.node(n).name for n in res.divisor_ids]
        new_patch = sop_to_network(res.sop, names, "p")
        for bits in all_minterms(4):
            ref = dict(zip("abcd", bits))
            impl_vals = impl.evaluate(
                {impl.node_by_name(n): val for n, val in ref.items()}
            )
            assign = {
                new_patch.node_by_name(nm): impl_vals[impl.node_by_name(nm)]
                for nm in names
            }
            want = (ref["a"] & ref["b"]) | (ref["c"] | ref["d"])
            assert new_patch.evaluate_pos(assign)["p"] == want

    def test_insufficient_divisors_return_none(self):
        impl, patch = impl_and_patch()
        u = impl.node_by_name("u")
        res = resubstitute(impl, patch, [u], {u: 1})
        assert res is None

    def test_prefers_cheap_divisors(self):
        impl, patch = impl_and_patch()
        a = impl.node_by_name("a")
        b = impl.node_by_name("b")
        u, v = impl.node_by_name("u"), impl.node_by_name("v")
        # u is expensive; a,b cheap — but u|v still needed since patch
        # depends on c,d via v; give everything as candidates
        c, d = impl.node_by_name("c"), impl.node_by_name("d")
        costs = {a: 1, b: 1, c: 1, d: 1, u: 100, v: 1}
        res = resubstitute(impl, patch, [a, b, c, d, u, v], costs)
        assert res is not None
        assert u not in res.divisor_ids  # avoided the expensive divisor

    def test_multi_po_patch_rejected(self):
        impl, _ = impl_and_patch()
        bad = Network("bad")
        x = bad.add_pi("a")
        bad.add_po(x, "p1")
        bad.add_po(x, "p2")
        with pytest.raises(ValueError):
            resubstitute(impl, bad, [], {})
