"""Unit tests for the Boolean-network substrate."""

import pytest

from repro.network import (
    GateType,
    Network,
    NetworkError,
    depth,
    eval_gate,
    levels,
    support,
    tfi,
    tfo,
    tfo_pos,
)

from helpers import networks_equivalent_brute, random_network


class TestGateEval:
    def test_and(self):
        assert eval_gate(GateType.AND, [1, 1]) == 1
        assert eval_gate(GateType.AND, [1, 0]) == 0
        assert eval_gate(GateType.AND, [1, 1, 1]) == 1
        assert eval_gate(GateType.AND, [1, 1, 0]) == 0

    def test_or(self):
        assert eval_gate(GateType.OR, [0, 0]) == 0
        assert eval_gate(GateType.OR, [0, 1]) == 1

    def test_nand_nor(self):
        assert eval_gate(GateType.NAND, [1, 1]) == 0
        assert eval_gate(GateType.NAND, [0, 1]) == 1
        assert eval_gate(GateType.NOR, [0, 0]) == 1
        assert eval_gate(GateType.NOR, [1, 0]) == 0

    def test_xor_xnor(self):
        assert eval_gate(GateType.XOR, [1, 0]) == 1
        assert eval_gate(GateType.XOR, [1, 1]) == 0
        assert eval_gate(GateType.XOR, [1, 1, 1]) == 1
        assert eval_gate(GateType.XNOR, [1, 0]) == 0
        assert eval_gate(GateType.XNOR, [1, 1]) == 1

    def test_not_buf(self):
        assert eval_gate(GateType.NOT, [0]) == 1
        assert eval_gate(GateType.NOT, [1]) == 0
        assert eval_gate(GateType.BUF, [1]) == 1

    def test_mux_selects_d1_when_s(self):
        # fanins (s, d0, d1)
        assert eval_gate(GateType.MUX, [1, 0, 1]) == 1
        assert eval_gate(GateType.MUX, [1, 1, 0]) == 0
        assert eval_gate(GateType.MUX, [0, 1, 0]) == 1
        assert eval_gate(GateType.MUX, [0, 0, 1]) == 0

    def test_consts(self):
        assert eval_gate(GateType.CONST0, []) == 0
        assert eval_gate(GateType.CONST1, [], mask=0b111) == 0b111

    def test_bit_parallel(self):
        mask = 0b1111
        assert eval_gate(GateType.AND, [0b1100, 0b1010], mask) == 0b1000
        assert eval_gate(GateType.NOT, [0b1100], mask) == 0b0011
        assert eval_gate(GateType.XOR, [0b1100, 0b1010], mask) == 0b0110

    def test_pi_has_no_function(self):
        with pytest.raises(ValueError):
            eval_gate(GateType.PI, [])


class TestNetworkConstruction:
    def test_add_pi_and_gate(self):
        net = Network("n")
        a = net.add_pi("a")
        b = net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b], "g")
        net.add_po(g, "o")
        assert net.num_pis == 2
        assert net.num_pos == 1
        assert net.num_gates == 1
        assert net.node_by_name("g") == g

    def test_duplicate_name_rejected(self):
        net = Network()
        net.add_pi("a")
        with pytest.raises(NetworkError):
            net.add_pi("a")

    def test_bad_arity_rejected(self):
        net = Network()
        a = net.add_pi("a")
        with pytest.raises(NetworkError):
            net.add_gate(GateType.AND, [a])
        with pytest.raises(NetworkError):
            net.add_gate(GateType.NOT, [a, a])
        with pytest.raises(NetworkError):
            net.add_gate(GateType.MUX, [a, a])

    def test_const_nodes_shared(self):
        net = Network()
        assert net.add_const(0) == net.add_const(0)
        assert net.add_const(1) == net.add_const(1)
        assert net.add_const(0) != net.add_const(1)

    def test_unknown_node_raises(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.node(7)
        with pytest.raises(NetworkError):
            net.node_by_name("zzz")

    def test_fanouts_maintained(self):
        net = Network()
        a = net.add_pi("a")
        b = net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b])
        h = net.add_gate(GateType.OR, [g, a])
        assert net.fanouts(a) == {g, h}
        assert net.fanouts(g) == {h}


class TestMutation:
    def test_set_fanins_changes_function(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b], "g")
        net.add_po(g, "o")
        assert net.evaluate_pos({a: 1, b: 0})["o"] == 0
        net.set_fanins(g, GateType.OR, [a, b])
        assert net.evaluate_pos({a: 1, b: 0})["o"] == 1

    def test_set_fanins_updates_fanouts(self):
        net = Network()
        a, b, c = net.add_pi("a"), net.add_pi("b"), net.add_pi("c")
        g = net.add_gate(GateType.AND, [a, b])
        net.set_fanins(g, GateType.AND, [a, c])
        assert g not in net.fanouts(b)
        assert g in net.fanouts(c)

    def test_cannot_mutate_pi(self):
        net = Network()
        a = net.add_pi("a")
        with pytest.raises(NetworkError):
            net.set_fanins(a, GateType.BUF, [a])

    def test_substitute_redirects_fanouts_and_pos(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b])
        h = net.add_gate(GateType.NOT, [g])
        net.add_po(g, "o1")
        net.add_po(h, "o2")
        net.substitute(g, a)
        assert net.node(h).fanins == [a]
        assert dict(net.pos)["o1"] == a

    def test_free_pi_for(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b], "g")
        h = net.add_gate(GateType.NOT, [g])
        net.add_po(h, "o")
        pi = net.free_pi_for(g)
        assert net.node(pi).is_pi
        assert net.node(h).fanins == [pi]
        # freed node g keeps its old function but is dangling
        assert net.node(g).gtype is GateType.AND

    def test_cleanup_removes_dangling(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b])
        dangling = net.add_gate(GateType.OR, [a, b])
        extra = net.add_gate(GateType.NOT, [dangling])
        net.add_po(g, "o")
        removed = net.cleanup()
        assert removed == 2
        assert not net.has_node(dangling)
        assert not net.has_node(extra)
        assert net.has_node(g)
        assert net.has_node(a)  # PIs always kept


class TestCloneAppendEvaluate:
    def test_clone_is_equivalent(self):
        for seed in range(5):
            net = random_network(n_pi=4, n_gates=18, seed=seed)
            assert networks_equivalent_brute(net, net.clone())

    def test_clone_preserves_interface(self):
        net = random_network(seed=3)
        c = net.clone()
        assert [net.node(p).name for p in net.pis] == [
            c.node(p).name for p in c.pis
        ]
        assert net.po_names() == c.po_names()

    def test_append_shares_inputs(self):
        host = Network("host")
        x = host.add_pi("x")
        other = Network("other")
        a = other.add_pi("a")
        g = other.add_gate(GateType.NOT, [a], "g")
        other.add_po(g, "o")
        mapping = host.append(other, {a: x})
        host.add_po(mapping[g], "o")
        assert host.evaluate_pos({x: 0})["o"] == 1
        assert host.evaluate_pos({x: 1})["o"] == 0

    def test_append_requires_full_input_map(self):
        host = Network()
        other = Network()
        other.add_pi("a")
        with pytest.raises(NetworkError):
            host.append(other, {})

    def test_clone_preserves_gate_names(self):
        net = Network("named")
        a = net.add_pi("a")
        b = net.add_pi("b")
        g1 = net.add_gate(GateType.AND, [a, b], "g1")
        g2 = net.add_gate(GateType.NOT, [g1], "g2")
        net.add_gate(GateType.OR, [g1, g2])  # anonymous stays anonymous
        net.add_po(g2, "out")
        c = net.clone()
        assert c.node(c.node_by_name("g1")).gtype is GateType.AND
        assert c.node(c.node_by_name("g2")).gtype is GateType.NOT
        assert sorted(n.name for n in c.nodes() if n.name) == [
            "a", "b", "g1", "g2"
        ]

    def test_clone_names_survive_prefixed_append(self):
        # build a host whose gate names came from two prefixed appends of
        # the same sub-network (the duplicate/prefixed-name scenario),
        # then check a clone keeps every name
        sub = Network("sub")
        a = sub.add_pi("a")
        g = sub.add_gate(GateType.NOT, [a], "inv")
        sub.add_po(g, "o")
        host = Network("host")
        x = host.add_pi("x")
        m1 = host.append(sub, {a: x}, prefix="u1_")
        m2 = host.append(sub, {a: x}, prefix="u2_")
        host.add_po(m1[g], "o1")
        host.add_po(m2[g], "o2")
        assert host.has_name("u1_inv") and host.has_name("u2_inv")
        c = host.clone()
        assert c.has_name("u1_inv") and c.has_name("u2_inv")
        assert c.po_names() == ["o1", "o2"]

    def test_append_uniquifies_colliding_names(self):
        sub = Network("sub")
        a = sub.add_pi("a")
        g = sub.add_gate(GateType.NOT, [a], "inv")
        sub.add_po(g, "o")
        host = Network("host")
        x = host.add_pi("x")
        m1 = host.append(sub, {a: x}, prefix="u_")
        m2 = host.append(sub, {a: x}, prefix="u_")  # same prefix: collision
        assert host.node(m1[g]).name == "u_inv"
        assert host.node(m2[g]).name == "u_inv__2"
        assert host.node_by_name("u_inv__2") == m2[g]
        m3 = host.append(sub, {a: x}, prefix="u_")
        assert host.node(m3[g]).name == "u_inv__3"

    def test_clone_id_layout_deterministic(self):
        # the fallback chain indexes divisor ids computed on one clone
        # into structures built from another clone of the same source
        net = random_network(n_pi=4, n_gates=18, seed=9)
        c1, c2 = net.clone(), net.clone()
        assert [
            (n.nid, n.gtype, tuple(n.fanins), n.name) for n in c1.nodes()
        ] == [(n.nid, n.gtype, tuple(n.fanins), n.name) for n in c2.nodes()]
        assert c1.pos == c2.pos


class TestStructuralIdentity:
    def _net(self):
        net = Network("h")
        a = net.add_pi("a")
        b = net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b], "g")
        net.add_po(g, "o")
        return net, a, b, g

    def test_version_bumps_on_mutation(self):
        net, a, b, g = self._net()
        v = net.version
        net.set_fanins(g, GateType.OR, [a, b])
        assert net.version > v
        v = net.version
        net.add_gate(GateType.NOT, [g])
        assert net.version > v

    def test_hash_stable_and_cached(self):
        net, *_ = self._net()
        assert net.structural_hash() == net.structural_hash()

    def test_clone_hashes_equal(self):
        for seed in range(3):
            net = random_network(n_pi=4, n_gates=15, seed=seed)
            assert net.clone().structural_hash() == net.structural_hash()
            assert (
                net.clone().structural_hash()
                == net.clone().clone().structural_hash()
            )

    def test_hash_changes_after_mutation(self):
        net, a, b, g = self._net()
        h0 = net.structural_hash()
        net.set_fanins(g, GateType.OR, [a, b])
        assert net.structural_hash() != h0

    def test_hash_distinguishes_po_binding(self):
        net, a, b, g = self._net()
        h0 = net.structural_hash()
        net.set_po(0, a)
        assert net.structural_hash() != h0

    def test_hash_distinguishes_names(self):
        n1 = Network()
        p = n1.add_pi("a")
        n1.add_po(n1.add_gate(GateType.NOT, [p], "x"), "o")
        n2 = Network()
        q = n2.add_pi("a")
        n2.add_po(n2.add_gate(GateType.NOT, [q], "y"), "o")
        assert n1.structural_hash() != n2.structural_hash()

    def test_topo_order_respects_fanins(self):
        net = random_network(seed=11)
        position = {n.nid: i for i, n in enumerate(net.topo_order())}
        for node in net.nodes():
            for f in node.fanins:
                assert position[f] < position[node.nid]

    def test_evaluate_bit_parallel_matches_scalar(self):
        net = random_network(n_pi=4, n_gates=15, seed=7)
        pis = net.pis
        mask = (1 << 16) - 1
        words = {p: (0x5A3C ^ (0x1111 * i)) & mask for i, p in enumerate(pis)}
        par = net.evaluate(words, mask)
        for bit in range(16):
            scalar = net.evaluate({p: (words[p] >> bit) & 1 for p in pis})
            for nid, word in par.items():
                assert ((word >> bit) & 1) == scalar[nid]


class TestTraversal:
    def _diamond(self):
        net = Network()
        a = net.add_pi("a")
        b = net.add_pi("b")
        l = net.add_gate(GateType.NOT, [a], "l")
        r = net.add_gate(GateType.NOT, [b], "r")
        m = net.add_gate(GateType.AND, [l, r], "m")
        top = net.add_gate(GateType.OR, [m, a], "top")
        net.add_po(top, "o")
        return net, (a, b, l, r, m, top)

    def test_tfi(self):
        net, (a, b, l, r, m, top) = self._diamond()
        assert tfi(net, [m]) == {a, b, l, r, m}
        assert tfi(net, [m], include_roots=False) == {a, b, l, r}

    def test_tfo(self):
        net, (a, b, l, r, m, top) = self._diamond()
        assert tfo(net, [l]) == {l, m, top}
        assert tfo(net, [a]) == {a, l, m, top}

    def test_tfo_pos(self):
        net, (a, b, l, r, m, top) = self._diamond()
        assert tfo_pos(net, [b]) == [0]
        net.add_po(b, "o2")
        assert tfo_pos(net, [l]) == [0]

    def test_levels_and_depth(self):
        net, (a, b, l, r, m, top) = self._diamond()
        lev = levels(net)
        assert lev[a] == 0
        assert lev[l] == 1
        assert lev[m] == 2
        assert lev[top] == 3
        assert depth(net) == 3

    def test_support(self):
        net, (a, b, l, r, m, top) = self._diamond()
        assert support(net, m) == {a, b}
        assert support(net, l) == {a}
