"""Tests for the repro.obs observability subsystem."""

import json

import pytest

from repro import obs
from repro.obs import (
    Registry,
    TelemetrySchemaError,
    export_csv,
    export_json,
    format_spans,
    validate_bench_document,
    validate_telemetry,
)
from repro.obs.validate import check_export, parse_catalogue


@pytest.fixture(autouse=True)
def clean_default_registry():
    """Keep the process-wide registry disabled and empty around tests."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestRegistry:
    def test_disabled_by_default_records_nothing(self):
        reg = Registry()
        reg.inc("a")
        reg.observe("h", 1.0)
        with reg.span("s"):
            pass
        assert reg.counters == {}
        assert reg.histograms == {}
        assert reg.roots == []

    def test_counters_increment(self):
        reg = Registry(enabled=True)
        reg.inc("x")
        reg.inc("x", 4)
        reg.inc("y", 0)  # creation at zero still registers the key
        assert reg.counters == {"x": 5, "y": 0}

    def test_span_nesting(self):
        reg = Registry(enabled=True)
        with reg.span("outer"):
            with reg.span("inner.a"):
                pass
            with reg.span("inner.b", tag="t"):
                pass
        assert len(reg.roots) == 1
        outer = reg.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert outer.children[1].attrs == {"tag": "t"}
        assert outer.duration >= sum(c.duration for c in outer.children)

    def test_span_records_exception(self):
        reg = Registry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("x")
        assert reg.roots[0].attrs["error"] == "RuntimeError"

    def test_annotate_targets_innermost_span(self):
        reg = Registry(enabled=True)
        with reg.span("outer"):
            with reg.span("inner"):
                reg.annotate("k", 7)
        assert reg.roots[0].children[0].attrs == {"k": 7}

    def test_histogram_summary(self):
        reg = Registry(enabled=True)
        for v in (0.5, 1.5, 4.0, 0.0):
            reg.observe("h", v)
        h = reg.histograms["h"].to_dict()
        assert h["count"] == 4
        assert h["sum"] == pytest.approx(6.0)
        assert h["min"] == 0.0
        assert h["max"] == 4.0
        assert h["buckets"]["zero"] == 1

    def test_phase_times_aggregates_by_name(self):
        reg = Registry(enabled=True)
        with reg.span("a"):
            with reg.span("b"):
                pass
        with reg.span("b"):
            pass
        times = reg.phase_times()
        assert set(times) == {"a", "b"}

    def test_reset_keeps_enabled_flag(self):
        reg = Registry(enabled=True)
        reg.inc("x")
        reg.reset()
        assert reg.enabled
        assert reg.counters == {}


class TestExport:
    def _populated(self):
        reg = Registry(enabled=True)
        with reg.span("root", unit="u"):
            with reg.span("child"):
                reg.inc("c.events", 3)
        reg.observe("c.h", 2.0)
        return reg

    def test_json_round_trip(self):
        reg = self._populated()
        doc = json.loads(export_json(reg))
        validate_telemetry(doc)  # parsed copy still validates
        assert doc["schema"] == "repro.obs/v1"
        assert doc["counters"] == {"c.events": 3}
        assert doc["spans"][0]["name"] == "root"
        assert doc["spans"][0]["children"][0]["name"] == "child"
        assert doc["histograms"]["c.h"]["count"] == 1

    def test_csv_rows(self):
        reg = self._populated()
        lines = export_csv(reg).splitlines()
        assert lines[0] == "kind,key,value"
        assert "counter,c.events,3" in lines
        assert any(line.startswith("span,root/child,") for line in lines)

    def test_format_spans_indents(self):
        reg = self._populated()
        text = format_spans(reg)
        assert "root" in text and "  child" in text

    def test_validate_rejects_bad_schema(self):
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry({"schema": "nope", "counters": {}})

    def test_validate_rejects_bad_span(self):
        doc = {
            "schema": "repro.obs/v1",
            "counters": {},
            "histograms": {},
            "spans": [{"name": "x"}],  # missing duration_s
        }
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry(doc)

    def test_validate_rejects_non_numeric_counter(self):
        doc = {
            "schema": "repro.obs/v1",
            "counters": {"k": "many"},
            "histograms": {},
            "spans": [],
        }
        with pytest.raises(TelemetrySchemaError):
            validate_telemetry(doc)


def _bench_entry(**overrides):
    entry = {
        "unit": "unit1",
        "method": "minassump",
        "backend": "native",
        "cost": 3,
        "gates": 2,
        "runtime_s": 0.1,
        "verified": True,
        "phases": {"engine.run": 0.1, "engine.window": 0.02},
        "passes": {"window": 0.02},
        "counters": {"sat.solves": 5},
        "solver": {
            "solves": 5,
            "decisions": 1,
            "propagations": 2,
            "conflicts": 0,
            "restarts": 0,
        },
    }
    entry.update(overrides)
    return entry


class TestBenchSchema:
    def test_valid_document(self):
        doc = {
            "schema": "repro.obs.bench/v1",
            "suite": "benchgen-20",
            "units": [_bench_entry()],
        }
        validate_bench_document(doc)

    def test_missing_solver_counter_rejected(self):
        bad = _bench_entry()
        del bad["solver"]["restarts"]
        doc = {
            "schema": "repro.obs.bench/v1",
            "suite": "s",
            "units": [bad],
        }
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(doc)

    def test_missing_passes_rejected(self):
        bad = _bench_entry()
        del bad["passes"]
        doc = {
            "schema": "repro.obs.bench/v1",
            "suite": "s",
            "units": [bad],
        }
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(doc)

    def test_pass_time_must_mirror_phase(self):
        bad = _bench_entry(passes={"window": 0.5})
        doc = {
            "schema": "repro.obs.bench/v1",
            "suite": "s",
            "units": [bad],
        }
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(doc)

    def test_empty_units_rejected(self):
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(
                {"schema": "repro.obs.bench/v1", "suite": "s", "units": []}
            )

    def _doc(self, comparison=None, context=None, runtime_s=0.1):
        doc = {
            "schema": "repro.obs.bench/v1",
            "suite": "s",
            "units": [_bench_entry(runtime_s=runtime_s)],
        }
        if comparison is not None:
            doc["comparison"] = comparison
        if context is not None:
            doc["context"] = context
        return doc

    def test_consistent_comparison_accepted(self):
        validate_bench_document(
            self._doc(
                comparison={
                    "before_total_runtime_s": 0.2,
                    "after_total_runtime_s": 0.1,
                    "speedup": 2.0,
                }
            )
        )

    def test_stale_after_total_rejected(self):
        # after_total no longer matches the unit rows the block sits
        # next to: a leftover from an earlier generation of the file
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(
                self._doc(
                    comparison={
                        "before_total_runtime_s": 0.2,
                        "after_total_runtime_s": 7.5,
                        "speedup": 0.0267,
                    }
                )
            )

    def test_stale_speedup_rejected(self):
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(
                self._doc(
                    comparison={
                        "before_total_runtime_s": 0.2,
                        "after_total_runtime_s": 0.1,
                        "speedup": 0.4603,
                    }
                )
            )

    def test_speedup_tolerates_rounding(self):
        # speedup is committed rounded to 4 decimals; the consistency
        # check must not reject honest rounding
        validate_bench_document(
            self._doc(
                runtime_s=0.3,
                comparison={
                    "before_total_runtime_s": 0.7,
                    "after_total_runtime_s": 0.3,
                    "speedup": round(0.7 / 0.3, 4),
                },
            )
        )

    def test_context_jobs_validated(self):
        validate_bench_document(self._doc(context={"jobs": 2}))
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(self._doc(context={"jobs": 0}))
        with pytest.raises(TelemetrySchemaError):
            validate_bench_document(self._doc(context="sequential"))

    def test_committed_baseline_is_self_consistent(self):
        import json
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "results"
            / "BENCH_table1.json"
        )
        validate_bench_document(json.loads(path.read_text(encoding="utf-8")))


class TestCatalogueCheck:
    CATALOGUE = """
| key | kind | unit | emitted by | presence |
|---|---|---|---|---|
| `engine.run` | span | s | core/engine.py | always |
| `engine.fallback.*` | counter | events | core/engine.py | conditional |
| `sat.solves` | counter | calls | sat/solver.py | always |
| `engine.cegar_min` | span | s | core/engine.py | conditional |
"""

    def test_parse_catalogue(self):
        cat = parse_catalogue(self.CATALOGUE)
        assert cat["engine.run"] == "always"
        assert cat["engine.cegar_min"] == "conditional"

    def test_check_export_missing_and_undocumented(self):
        cat = parse_catalogue(self.CATALOGUE)
        doc = {
            "schema": "repro.obs/v1",
            "counters": {"engine.fallback.FooError": 1, "mystery.key": 2},
            "histograms": {},
            "spans": [{"name": "engine.run", "duration_s": 0.1}],
        }
        missing, undocumented = check_export(doc, cat)
        assert missing == ["sat.solves"]  # documented always, absent
        assert undocumented == ["mystery.key"]  # prefix rule covers fallback.*

    def test_repo_catalogue_covers_engine_run(self):
        """Every key a real engine run emits is documented in the repo docs."""
        import os

        from repro.benchgen import SUITE, run_unit

        docs = os.path.join(
            os.path.dirname(__file__), "..", "docs", "OBSERVABILITY.md"
        )
        with open(docs, "r", encoding="utf-8") as f:
            cat = parse_catalogue(f.read())
        assert cat, "docs/OBSERVABILITY.md has no catalogue rows"
        row = run_unit(SUITE[1], methods=["satprune_cegarmin"], collect_telemetry=True)
        doc = {
            "schema": "repro.obs.bench/v1",
            "suite": "s",
            "units": [row.telemetry["satprune_cegarmin"]],
        }
        validate_bench_document(doc)
        missing, undocumented = check_export(doc, cat)
        assert missing == []
        assert undocumented == []


class TestEngineIntegration:
    def test_engine_emits_spans_and_counters(self):
        from repro.benchgen import SUITE, build_unit, config_for
        from repro.core.engine import EcoEngine

        inst = build_unit(SUITE[1])
        obs.reset()
        obs.enable()
        EcoEngine(config_for(SUITE[1], "minassump")).run(inst)
        snap = obs.snapshot()
        validate_telemetry(snap)
        assert snap["counters"]["engine.runs"] == 1
        assert snap["counters"]["sat.solves"] > 0
        names = {s["name"] for s in snap["spans"]}
        assert names == {"engine.run"}
        children = {c["name"] for c in snap["spans"][0]["children"]}
        assert {"engine.window", "engine.divisors", "engine.feasibility"} <= children

    def test_disabled_engine_run_emits_nothing(self):
        from repro.benchgen import SUITE, build_unit, config_for
        from repro.core.engine import EcoEngine

        inst = build_unit(SUITE[0])
        obs.reset()
        obs.disable()
        EcoEngine(config_for(SUITE[0], "minassump")).run(inst)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["spans"] == []


class TestHarnessTelemetry:
    def test_run_unit_collects_bench_entries(self):
        from repro.benchgen import SUITE, run_unit, telemetry_document

        row = run_unit(SUITE[0], methods=["minassump"], collect_telemetry=True)
        entry = row.telemetry["minassump"]
        assert entry["unit"] == SUITE[0].name
        assert entry["verified"] is True
        assert entry["solver"]["solves"] > 0
        assert "engine.run" in entry["phases"]
        doc = telemetry_document([row], suite="benchgen-subset")
        validate_bench_document(doc)
        # the registry is left disabled and clean for the next caller
        assert not obs.enabled()
        assert obs.get_registry().counters == {}
