"""Tests for universal quantification of targets by expansion."""



from repro.core import (
    QMITER_PO,
    build_miter,
    build_quantified_miter,
    enumerate_assignments,
)
from repro.network import GateType, Network

from helpers import all_minterms


def instance_with_two_targets():
    """impl corrupts both 'u' and 'v' of golden u=a&b, v=b|c, f=u^v."""

    def build(corrupt):
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        u = net.add_gate(GateType.OR if corrupt else GateType.AND, [a, b], "u")
        v = net.add_gate(GateType.AND if corrupt else GateType.OR, [b, c], "v")
        f = net.add_gate(GateType.XOR, [u, v], "f")
        net.add_po(f, "o")
        return net

    return build(True), build(False)


class TestEnumerateAssignments:
    def test_counts(self):
        assert len(enumerate_assignments([])) == 1
        assert len(enumerate_assignments([5])) == 2
        assert len(enumerate_assignments([5, 9, 12])) == 8

    def test_all_distinct(self):
        assigns = enumerate_assignments([1, 2])
        keys = {tuple(sorted(a.items())) for a in assigns}
        assert len(keys) == 4


class TestQuantifiedMiter:
    def test_full_quantification_semantics(self):
        """qmiter(x) must equal AND over target values of miter(n, x)."""
        impl, spec = instance_with_two_targets()
        targets = [impl.node_by_name("u"), impl.node_by_name("v")]
        m = build_miter(impl, spec, targets)
        qm = build_quantified_miter(m, current_target_pi=None)
        assert qm.num_copies == 4
        for bits in all_minterms(3):
            assign = {pi: bits[i] for i, pi in enumerate(qm.x_pis)}
            got = qm.net.evaluate_pos(assign)[QMITER_PO]
            expected = 1
            for n_bits in all_minterms(2):
                full = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
                full.update(dict(zip(m.target_pis, n_bits)))
                expected &= m.net.evaluate_pos(full)["miter"]
            assert got == expected, bits

    def test_current_target_survives(self):
        impl, spec = instance_with_two_targets()
        targets = [impl.node_by_name("u"), impl.node_by_name("v")]
        m = build_miter(impl, spec, targets)
        qm = build_quantified_miter(m, current_target_pi=m.target_pis[0])
        assert qm.target_pi is not None
        assert qm.num_copies == 2
        # qmiter(n0, x) == AND over n1 of miter(n0, n1, x)
        for bits in all_minterms(3):
            for n0 in (0, 1):
                assign = {pi: bits[i] for i, pi in enumerate(qm.x_pis)}
                assign[qm.target_pi] = n0
                got = qm.net.evaluate_pos(assign)[QMITER_PO]
                expected = 1
                for n1 in (0, 1):
                    full = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
                    full[m.target_pis[0]] = n0
                    full[m.target_pis[1]] = n1
                    expected &= m.net.evaluate_pos(full)["miter"]
                assert got == expected

    def test_divisor_tracking(self):
        impl, spec = instance_with_two_targets()
        t = impl.node_by_name("u")
        m = build_miter(impl, spec, [t])
        # track divisor 'v' (outside u's TFO? v is parallel to u)
        div = impl.node_by_name("v")
        qm = build_quantified_miter(
            m, m.target_pis[0], divisors={div: m.impl_map[div]}
        )
        node = qm.divisor_nodes[div]
        for bits in all_minterms(3):
            assign = {pi: bits[i] for i, pi in enumerate(qm.x_pis)}
            assign[qm.target_pi] = 0
            values = qm.net.evaluate(assign)
            names = {qm.net.node(p).name: assign[p] for p in qm.x_pis}
            # corrupted v = b & c
            assert values[node] == (names["b"] & names["c"]), bits

    def test_partial_expansion_subset(self):
        impl, spec = instance_with_two_targets()
        targets = [impl.node_by_name("u"), impl.node_by_name("v")]
        m = build_miter(impl, spec, targets)
        subset = [{m.target_pis[1]: 0}]
        qm = build_quantified_miter(m, m.target_pis[0], assignments=subset)
        assert qm.num_copies == 1
        # the partial product over-approximates the true quantification
        for bits in all_minterms(3):
            for n0 in (0, 1):
                assign = {pi: bits[i] for i, pi in enumerate(qm.x_pis)}
                assign[qm.target_pi] = n0
                got = qm.net.evaluate_pos(assign)[QMITER_PO]
                full = {pi: bits[i] for i, pi in enumerate(m.x_pis)}
                full[m.target_pis[0]] = n0
                full[m.target_pis[1]] = 0
                assert got == m.net.evaluate_pos(full)["miter"]

    def test_single_target_no_copies(self):
        impl, spec = instance_with_two_targets()
        t = impl.node_by_name("u")
        m = build_miter(impl, spec, [t])
        qm = build_quantified_miter(m, m.target_pis[0])
        assert qm.num_copies == 1
