"""Tests for configurable LRU memo capacities (EcoConfig.memo_capacity)
and the memo hit-rate export in bench rows."""

import dataclasses

import pytest

from repro.benchgen import build_unit, unit_spec
from repro.benchgen.harness import memo_rates
from repro.core.divisors import (
    clear_extraction_memo,
    extraction_memo_capacity,
    set_extraction_memo_capacity,
)
from repro.core.engine import EcoEngine, contest_config
from repro.core.support import (
    clear_support_memo,
    set_support_memo_capacity,
    support_memo_capacity,
)
from repro.sat.template import (
    clear_template_memo,
    set_template_memo_capacity,
    template_memo_capacity,
)

SETTERS = [
    (set_template_memo_capacity, template_memo_capacity),
    (set_extraction_memo_capacity, extraction_memo_capacity),
    (set_support_memo_capacity, support_memo_capacity),
]


@pytest.fixture(autouse=True)
def restore_capacities():
    saved = [getter() for _, getter in SETTERS]
    yield
    for (setter, _), cap in zip(SETTERS, saved):
        setter(cap)
    clear_template_memo()
    clear_extraction_memo()
    clear_support_memo()


class TestCapacitySetters:
    @pytest.mark.parametrize("setter,getter", SETTERS)
    def test_returns_previous_and_updates(self, setter, getter):
        before = getter()
        prev = setter(7)
        assert prev == before
        assert getter() == 7
        assert setter(before) == 7

    @pytest.mark.parametrize("setter,getter", SETTERS)
    def test_clamped_to_at_least_one(self, setter, getter):
        setter(0)
        assert getter() == 1
        setter(-5)
        assert getter() == 1

    def test_shrinking_evicts_template_lru(self):
        from repro.sat.template import _template_memo

        clear_template_memo()
        set_template_memo_capacity(64)
        for key in range(5):
            _template_memo[key] = object()
        set_template_memo_capacity(2)
        # LRU entries (oldest insertions) evicted, newest survive
        assert list(_template_memo) == [3, 4]

    def test_shrinking_evicts_extraction_lru(self):
        from repro.core.divisors import _divisor_memo, _window_memo

        clear_extraction_memo()
        set_extraction_memo_capacity(64)
        for key in range(4):
            _window_memo[("w", key)] = object()
            _divisor_memo[("d", key)] = object()
        set_extraction_memo_capacity(1)
        assert list(_window_memo) == [("w", 3)]
        assert list(_divisor_memo) == [("d", 3)]


class TestEngineThreading:
    def test_run_applies_and_restores_capacity(self):
        for setter, _ in SETTERS:
            setter(31)
        cfg = dataclasses.replace(contest_config(), memo_capacity=5)
        EcoEngine(cfg).run(build_unit(unit_spec("unit1")))
        # engine restored what was installed before the run
        for _, getter in SETTERS:
            assert getter() == 31

    def test_capacity_one_run_still_correct(self):
        cfg = dataclasses.replace(contest_config(), memo_capacity=1)
        res = EcoEngine(cfg).run(build_unit(unit_spec("unit2")))
        assert res.verified

    def test_default_capacity_is_64(self):
        assert contest_config().memo_capacity == 64


class TestMemoRates:
    def test_rates_from_counters(self):
        counters = {
            "engine.window_memo_hit": 3,
            "engine.window_memo_miss": 1,
            "engine.template_memo_hit": 0,
            "engine.template_memo_miss": 2,
        }
        rates = memo_rates(counters)
        assert rates["window"] == 0.75
        assert rates["template"] == 0.0
        # memos with zero lookups report a 0.0 rate, not a div-by-zero
        assert rates["divisors"] == 0.0
        assert rates["support"] == 0.0

    def test_rates_bounded(self):
        rates = memo_rates({"engine.support_memo_hit": 10})
        assert all(0.0 <= r <= 1.0 for r in rates.values())
