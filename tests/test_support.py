"""Tests for minimize_assumptions (Algorithm 1) and its baselines."""

import random

import pytest

from repro.core import (
    SupportStats,
    analyze_final_core,
    last_gasp_improvement,
    minimize_assumptions,
    minimize_linear,
)
from repro.sat import Solver, mklit


def make_cover_instance(groups, n_sel):
    """UNSAT under assumption set A iff A includes *every* selector of at
    least one group.

    Construction: an escape variable ``e`` with a unit clause (e), and
    per group g the clause (¬s1 ∨ ¬s2 ∨ ... ∨ ¬e).  Assuming all of g
    forces e = 0, clashing with the unit; assuming less leaves e = 1
    satisfiable.
    """
    s = Solver()
    sels = s.new_vars(n_sel)
    e = s.new_var()
    s.add_clause([mklit(e)])
    for g in groups:
        s.add_clause([mklit(sels[i], True) for i in g] + [mklit(e, True)])
    return s, [mklit(v) for v in sels]


class TestMinimizeAssumptions:
    def test_single_group(self):
        s, lits = make_cover_instance([[0, 2, 4]], 6)
        kept = minimize_assumptions(s, [], lits)
        assert sorted(kept) == sorted([lits[0], lits[2], lits[4]])

    def test_prefers_earlier_group(self):
        # both groups suffice; the cheaper (earlier-literal) one should win
        s, lits = make_cover_instance([[0, 1], [4, 5]], 6)
        kept = minimize_assumptions(s, [], lits)
        assert sorted(kept) == sorted([lits[0], lits[1]])

    def test_minimality_property(self):
        """Dropping any kept literal must make the instance SAT."""
        rng = random.Random(4)
        for trial in range(25):
            n = rng.randint(2, 9)
            groups = [
                rng.sample(range(n), rng.randint(1, min(3, n)))
                for _ in range(rng.randint(1, 3))
            ]
            s, lits = make_cover_instance(groups, n)
            kept = minimize_assumptions(s, [], lits)
            # kept must still be UNSAT
            assert not s.solve(kept)
            for drop in range(len(kept)):
                subset = kept[:drop] + kept[drop + 1 :]
                assert s.solve(subset), (trial, groups, kept, drop)

    def test_raises_on_sat_instance(self):
        s = Solver()
        a = s.new_var()
        with pytest.raises(ValueError):
            minimize_assumptions(s, [], [mklit(a)])

    def test_base_assumptions_respected(self):
        # base [b] makes (¬b ∨ ¬a) require dropping a
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([mklit(b, True), mklit(a, True)])
        kept = minimize_assumptions(s, [mklit(b)], [mklit(a)])
        assert kept == [mklit(a)]

    def test_call_count_scales_logarithmically(self):
        """One needed literal among N: O(log N) calls vs O(N) linear."""
        n = 64
        for target in (0, 31, 63):
            s, lits = make_cover_instance([[target]], n)
            stats = SupportStats()
            kept = minimize_assumptions(s, [], lits, stats=stats)
            assert kept == [lits[target]]
            assert stats.sat_calls <= 4 * 7 + 2  # ~4 log2(64)

            s2, lits2 = make_cover_instance([[target]], n)
            stats2 = SupportStats()
            kept2 = minimize_linear(s2, [], lits2, stats=stats2)
            assert kept2 == [lits2[target]]
            assert stats2.sat_calls == n
            assert stats.sat_calls < stats2.sat_calls


class TestMinimizeLinear:
    def test_matches_semantics(self):
        rng = random.Random(9)
        for trial in range(15):
            n = rng.randint(2, 8)
            groups = [rng.sample(range(n), rng.randint(1, 2))]
            s, lits = make_cover_instance(groups, n)
            kept = minimize_linear(s, [], lits)
            assert not s.solve(kept)
            for drop in range(len(kept)):
                assert s.solve(kept[:drop] + kept[drop + 1 :])


class TestAnalyzeFinalCore:
    def test_core_is_sufficient_but_not_minimal(self):
        s, lits = make_cover_instance([[0, 1]], 8)
        core = analyze_final_core(s, [], lits)
        assert not s.solve(core)  # sufficient
        assert set(core) >= {lits[0], lits[1]}

    def test_raises_on_sat(self):
        s = Solver()
        a = s.new_var()
        with pytest.raises(ValueError):
            analyze_final_core(s, [], [mklit(a)])


class TestLastGasp:
    def test_swaps_to_cheaper(self):
        # feasible iff selection contains {0} or {1}; 1 costs less
        def feasible(lits):
            return 0 in lits or 1 in lits

        improved = last_gasp_improvement(
            feasible,
            selected=[0],
            unused=[0, 1, 2],
            cost_of={0: 10, 1: 2, 2: 5},
        )
        assert improved == [1]

    def test_no_swap_when_already_cheapest(self):
        def feasible(lits):
            return 0 in lits

        improved = last_gasp_improvement(
            feasible, selected=[0], unused=[0, 1], cost_of={0: 1, 1: 5}
        )
        assert improved == [0]

    def test_respects_swap_cap(self):
        calls = []

        def feasible(lits):
            calls.append(tuple(lits))
            return False

        last_gasp_improvement(
            feasible,
            selected=[9],
            unused=list(range(9)),
            cost_of={i: i + 1 for i in range(10)},
            max_swaps=3,
        )
        assert len(calls) == 3


class TestSupportMemoGuard:
    """Guard for the opt-in support memo: the exact downstream
    solver-counter shift when it is enabled.

    With ``memoize_support=True`` every memoized target skips its
    entire support-minimization SAT dialogue on a warm re-run, so the
    drop in ``sat.solves`` between a cold and a warm run is *exactly*
    the cold run's ``engine.support_memo_miss`` (the one probe solve
    per target that seeded the memo is part of the support dialogue)
    plus its ``engine.support_sat_calls``.  The patch itself must be
    unaffected: identical cost either way.  ``sat.conflicts`` is NOT
    part of the contract — skipping the support dialogue changes the
    learned-clause state downstream, which is why the memo stays
    opt-in (not counter-safe, see docs/PIPELINE.md).
    """

    @staticmethod
    def _memo_config():
        import dataclasses

        from repro.core.engine import contest_config

        return dataclasses.replace(
            contest_config(),
            memoize_support=True,
            support_method="minassump",
            use_last_gasp=False,
        )

    @staticmethod
    def _clear_all_memos():
        from repro.core.divisors import clear_extraction_memo
        from repro.core.support import clear_support_memo
        from repro.sat.template import clear_template_memo

        clear_support_memo()
        clear_extraction_memo()
        clear_template_memo()

    @staticmethod
    def _run(cfg, unit):
        from repro import obs
        from repro.benchgen import build_unit, unit_spec
        from repro.core.engine import EcoEngine

        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            result = EcoEngine(cfg).run(build_unit(unit_spec(unit)))
        finally:
            registry.disable()
        counters = dict(registry.counters)
        registry.reset()
        return result, counters

    @pytest.mark.parametrize("unit", ["unit2", "unit19"])
    def test_exact_solver_counter_shift(self, unit):
        cfg = self._memo_config()
        self._clear_all_memos()
        try:
            cold_res, cold = self._run(cfg, unit)
            warm_res, warm = self._run(cfg, unit)
        finally:
            self._clear_all_memos()

        # cold run seeds the memo: every target is a miss, none a hit
        misses = cold.get("engine.support_memo_miss", 0)
        assert misses >= 1
        assert cold.get("engine.support_memo_hit", 0) == 0

        # warm run replays every target from the memo: no support SAT
        # dialogue at all
        assert warm.get("engine.support_memo_hit", 0) == misses
        assert warm.get("engine.support_memo_miss", 0) == 0
        assert warm.get("engine.support_sat_calls", 0) == 0

        # the exact shift: one probe solve per memoized target plus the
        # cold run's minimization dialogue
        shift = cold["sat.solves"] - warm["sat.solves"]
        assert shift == misses + cold.get("engine.support_sat_calls", 0)

        # the memo must not change what gets synthesized
        assert warm_res.cost == cold_res.cost
        assert warm_res.verified == cold_res.verified

    def test_default_off_is_counter_identical(self):
        import dataclasses

        from repro.core.engine import contest_config

        cfg = dataclasses.replace(
            contest_config(), support_method="minassump", use_last_gasp=False
        )
        assert not cfg.memoize_support  # memo is opt-in

        self._clear_all_memos()
        try:
            _, first = self._run(cfg, "unit2")
            self._clear_all_memos()
            _, second = self._run(cfg, "unit2")
        finally:
            self._clear_all_memos()
        assert first == second
        assert "engine.support_memo_hit" not in first
