"""Tests for cube-enumeration patch computation (Section 3.5)."""


import pytest

from repro.core import (
    EnumerationStats,
    PatchEnumerationError,
    enumerate_patch_sop,
)
from repro.network import GateType, Network
from repro.sat import Solver, encode_network, mklit

from helpers import all_minterms, random_network


def _setup(net_f, net_onset_name="f"):
    """Encode a network with a single PO 'f'; returns solver + vars."""
    solver = Solver()
    varmap = encode_network(solver, net_f)
    out = varmap[dict(net_f.pos)[net_onset_name]]
    return solver, varmap, out


def express_function(net, divisor_ids, order=None):
    """Express the PO of ``net`` over the given divisors via enumeration.

    Mirrors the resubstitution use of enumerate_patch_sop: onset when
    f = 1, offset when f = 0.
    """
    solver, varmap, out = _setup(net)
    div_vars = [varmap[d] for d in (order or divisor_ids)]
    stats = EnumerationStats()
    sop = enumerate_patch_sop(
        solver,
        onset_base=[mklit(out)],
        offset_base=[mklit(out, True)],
        divisor_vars=div_vars,
        blocking_extra=[mklit(out, True)],
        stats=stats,
    )
    return sop, stats


class TestEnumerateOverOwnSupport:
    def test_and_gate(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        net.add_po(net.add_gate(GateType.AND, [a, b]), "f")
        sop, stats = express_function(net, [a, b])
        assert sop.num_cubes == 1
        assert sop.evaluate([1, 1]) == 1
        assert sop.evaluate([1, 0]) == 0
        assert stats.cubes == 1

    def test_xor_gate_needs_two_cubes(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        net.add_po(net.add_gate(GateType.XOR, [a, b]), "f")
        sop, _ = express_function(net, [a, b])
        assert sop.num_cubes == 2
        for m in all_minterms(2):
            assert sop.evaluate(list(m)) == (m[0] ^ m[1])

    def test_constant_zero(self):
        net = Network()
        a = net.add_pi("a")
        na = net.add_gate(GateType.NOT, [a])
        net.add_po(net.add_gate(GateType.AND, [a, na]), "f")
        sop, _ = express_function(net, [a])
        assert sop.num_cubes == 0

    def test_constant_one(self):
        net = Network()
        a = net.add_pi("a")
        na = net.add_gate(GateType.NOT, [a])
        net.add_po(net.add_gate(GateType.OR, [a, na]), "f")
        sop, _ = express_function(net, [a])
        # tautology: one all-DC cube
        assert sop.num_cubes == 1
        assert sop.cubes[0].num_literals == 0

    def test_random_functions_reconstructed(self):
        for seed in range(10):
            net = random_network(n_pi=4, n_gates=12, n_po=1, seed=seed + 300)
            # rename the PO to 'f'
            po_name, po_node = net.pos[0]
            net.rename_po(0, "f")
            pis = net.pis
            sop, _ = express_function(net, pis)
            for m in all_minterms(4):
                ref = net.evaluate_pos(dict(zip(pis, m)))["f"]
                assert sop.evaluate(list(m)) == ref, (seed, m)

    def test_cubes_are_prime(self):
        """No literal of any cube can be dropped without hitting the offset."""
        for seed in (2, 5, 8):
            net = random_network(n_pi=4, n_gates=10, n_po=1, seed=seed + 40)
            po_name, po_node = net.pos[0]
            net.rename_po(0, "f")
            pis = net.pis
            sop, _ = express_function(net, pis)
            offset = [
                m for m in all_minterms(4)
                if net.evaluate_pos(dict(zip(pis, m)))["f"] == 0
            ]
            for cube in sop:
                for pos in list(cube.literals()):
                    bigger = cube.expand(pos)
                    assert any(
                        bigger.contains(list(m)) for m in offset
                    ), (seed, cube, pos)


class TestEnumerationOverInternalDivisors:
    def test_function_of_divisors(self):
        # f = (a&b) | (c&d); divisors u=a&b, v=c&d: f = u | v
        net = Network()
        a, b, c, d = (net.add_pi(x) for x in "abcd")
        u = net.add_gate(GateType.AND, [a, b], "u")
        v = net.add_gate(GateType.AND, [c, d], "v")
        net.add_po(net.add_gate(GateType.OR, [u, v]), "f")
        sop, _ = express_function(net, [u, v])
        assert sop.num_cubes == 2
        assert sop.evaluate([1, 0]) == 1
        assert sop.evaluate([0, 1]) == 1
        assert sop.evaluate([0, 0]) == 0

    def test_insufficient_divisors_detected(self):
        # f = a&b cannot be expressed over divisor c alone
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        net.add_po(net.add_gate(GateType.AND, [a, b]), "f")
        solver, varmap, out = _setup(net)
        with pytest.raises(PatchEnumerationError):
            enumerate_patch_sop(
                solver,
                onset_base=[mklit(out)],
                offset_base=[mklit(out, True)],
                divisor_vars=[varmap[c]],
                blocking_extra=[mklit(out, True)],
            )

    def test_cube_cap(self):
        # parity of 4 variables needs 8 minterm cubes; cap at 3
        net = Network()
        pis = [net.add_pi(f"x{i}") for i in range(4)]
        net.add_po(net.add_gate(GateType.XOR, pis), "f")
        solver, varmap, out = _setup(net)
        with pytest.raises(PatchEnumerationError):
            enumerate_patch_sop(
                solver,
                onset_base=[mklit(out)],
                offset_base=[mklit(out, True)],
                divisor_vars=[varmap[p] for p in pis],
                blocking_extra=[mklit(out, True)],
                max_cubes=3,
            )


class TestModes:
    def test_analyze_final_mode_also_correct(self):
        for seed in (1, 4):
            net = random_network(n_pi=4, n_gates=10, n_po=1, seed=seed + 77)
            po_name, po_node = net.pos[0]
            net.rename_po(0, "f")
            pis = net.pis
            solver, varmap, out = _setup(net)
            sop = enumerate_patch_sop(
                solver,
                onset_base=[mklit(out)],
                offset_base=[mklit(out, True)],
                divisor_vars=[varmap[p] for p in pis],
                blocking_extra=[mklit(out, True)],
                mode="analyze_final",
            )
            for m in all_minterms(4):
                ref = net.evaluate_pos(dict(zip(pis, m)))["f"]
                assert sop.evaluate(list(m)) == ref

    def test_minassump_cubes_never_more_literals(self):
        """Algorithm-1 expansion gives cubes at most as large (in total
        literal count) as the analyze_final baseline on average."""
        totals = {"minassump": 0, "analyze_final": 0}
        for seed in range(6):
            net = random_network(n_pi=4, n_gates=12, n_po=1, seed=seed + 500)
            po_name, po_node = net.pos[0]
            net.rename_po(0, "f")
            pis = net.pis
            for mode in totals:
                solver, varmap, out = _setup(net)
                sop = enumerate_patch_sop(
                    solver,
                    onset_base=[mklit(out)],
                    offset_base=[mklit(out, True)],
                    divisor_vars=[varmap[p] for p in pis],
                    blocking_extra=[mklit(out, True)],
                    mode=mode,
                )
                totals[mode] += sop.num_literals
        assert totals["minassump"] <= totals["analyze_final"]

    def test_unknown_mode_rejected(self):
        net = Network()
        a = net.add_pi("a")
        net.add_po(a, "f")
        solver, varmap, out = _setup(net)
        with pytest.raises(ValueError):
            enumerate_patch_sop(
                solver,
                onset_base=[mklit(out)],
                offset_base=[mklit(out, True)],
                divisor_vars=[varmap[a]],
                blocking_extra=[mklit(out, True)],
                mode="bogus",
            )
