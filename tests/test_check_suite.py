"""Whole-suite gates for the ``repro.check`` subsystem.

Two fleet-wide invariants, enforced unit by unit:

* every benchgen netlist (implementation and specification of all 20
  units) is completely finding-free — not merely error-free;
* the engine, run with ``verify_certificates=True``, produces a result
  on every unit that survives independent certification.
"""

import pytest

from repro.benchgen import SUITE, build_unit, unit_spec
from repro.check import check_certificate, run_checks
from repro.core import EcoEngine, contest_config

UNIT_NAMES = [u.name for u in SUITE]


def test_suite_has_twenty_units():
    assert len(UNIT_NAMES) == 20


@pytest.mark.parametrize("name", UNIT_NAMES)
def test_benchgen_netlists_are_finding_free(name):
    instance = build_unit(unit_spec(name))
    for tag, net in (("impl", instance.impl), ("spec", instance.spec)):
        report = run_checks(net, name=f"{name}.{tag}", patterns=8)
        assert len(report) == 0, [f.format() for f in report]
        assert report.ok


@pytest.mark.parametrize("name", UNIT_NAMES)
def test_engine_results_certify(name):
    instance = build_unit(unit_spec(name))
    cfg = contest_config()
    cfg.verify_certificates = True
    result = EcoEngine(cfg).run(instance)
    assert result.verified
    assert result.stats.get("certificate_checked") == 1
    # belt and braces: re-check outside the engine too
    report = check_certificate(instance, result)
    assert report.ok, [f.format() for f in report.errors]
