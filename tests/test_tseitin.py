"""Tests for circuit→CNF encoding."""


import pytest

from repro.network import GateType, Network
from repro.sat import Solver, add_equality, encode_network, mklit

from helpers import all_minterms, random_network


def _assert_encoding_matches(net, seed=0):
    """The CNF must accept exactly the circuit's consistent assignments."""
    solver = Solver()
    varmap = encode_network(solver, net)
    pis = net.pis
    for bits in all_minterms(len(pis)):
        values = net.evaluate(dict(zip(pis, bits)))
        assumptions = [mklit(varmap[p], bits[i] == 0) for i, p in enumerate(pis)]
        assert solver.solve(assumptions)
        for nid, val in values.items():
            assert solver.model_value(mklit(varmap[nid])) == val, (
                net.node(nid),
                bits,
            )


class TestGateEncodings:
    @pytest.mark.parametrize(
        "gtype,n_ins",
        [
            (GateType.AND, 2),
            (GateType.AND, 3),
            (GateType.OR, 2),
            (GateType.OR, 4),
            (GateType.NAND, 2),
            (GateType.NAND, 3),
            (GateType.NOR, 2),
            (GateType.XOR, 2),
            (GateType.XOR, 3),
            (GateType.XOR, 4),
            (GateType.XNOR, 2),
            (GateType.XNOR, 3),
            (GateType.NOT, 1),
            (GateType.BUF, 1),
            (GateType.MUX, 3),
        ],
    )
    def test_single_gate(self, gtype, n_ins):
        net = Network()
        pis = [net.add_pi(f"i{k}") for k in range(n_ins)]
        g = net.add_gate(gtype, pis)
        net.add_po(g, "o")
        _assert_encoding_matches(net)

    def test_constants(self):
        net = Network()
        a = net.add_pi("a")
        c0 = net.add_const(0)
        c1 = net.add_const(1)
        net.add_po(net.add_gate(GateType.OR, [a, c0]), "o1")
        net.add_po(net.add_gate(GateType.AND, [a, c1]), "o2")
        _assert_encoding_matches(net)


class TestNetworkEncoding:
    def test_random_networks(self):
        for seed in range(8):
            net = random_network(n_pi=4, n_gates=16, n_po=2, seed=seed)
            _assert_encoding_matches(net, seed)

    def test_shared_pi_vars(self):
        # two encodings sharing PI variables must agree on equal circuits
        net = random_network(n_pi=4, n_gates=12, n_po=1, seed=42)
        solver = Solver()
        v1 = encode_network(solver, net)
        pi_share = {p: v1[p] for p in net.pis}
        v2 = encode_network(solver, net, pi_share)
        o = net.pos[0][1]
        # outputs can never differ
        assert not solver.solve([mklit(v1[o]), mklit(v2[o], True)])
        assert not solver.solve([mklit(v1[o], True), mklit(v2[o])])

    def test_unshared_copies_can_differ(self):
        net = Network()
        a = net.add_pi("a")
        net.add_po(net.add_gate(GateType.NOT, [a]), "o")
        solver = Solver()
        v1 = encode_network(solver, net)
        v2 = encode_network(solver, net)
        o = net.pos[0][1]
        assert solver.solve([mklit(v1[o]), mklit(v2[o], True)])


class TestEquality:
    def test_unconditional(self):
        s = Solver()
        a, b = s.new_vars(2)
        add_equality(s, a, b)
        assert not s.solve([mklit(a), mklit(b, True)])
        assert s.solve([mklit(a), mklit(b)])

    def test_selector_guarded(self):
        s = Solver()
        a, b, sel = s.new_vars(3)
        add_equality(s, a, b, mklit(sel))
        # without the selector the equality is inactive
        assert s.solve([mklit(a), mklit(b, True)])
        # with it, enforced
        assert not s.solve([mklit(sel), mklit(a), mklit(b, True)])
        assert s.solve([mklit(sel), mklit(a), mklit(b)])
