"""Tests for AIGER I/O."""

import random

import pytest

from repro.io.aiger import AigerError, parse_aiger, write_aiger
from repro.network import Network, GateType
from repro.seq import SeqNetwork

from helpers import networks_equivalent_brute, random_network


class TestCombinational:
    def test_parse_small(self):
        # y = a AND NOT b
        text = (
            "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\n"
            "i0 a\ni1 b\no0 y\n"
        )
        net = parse_aiger(text)
        a, b = net.node_by_name("a"), net.node_by_name("b")
        assert net.evaluate_pos({a: 1, b: 0})["y"] == 1
        assert net.evaluate_pos({a: 1, b: 1})["y"] == 0

    def test_constants(self):
        # output literal 1 = const true, 0 = const false
        text = "aag 1 1 0 2 0\n2\n1\n0\ni0 a\no0 t\no1 f\n"
        net = parse_aiger(text)
        a = net.node_by_name("a")
        vals = net.evaluate_pos({a: 0})
        assert vals["t"] == 1 and vals["f"] == 0

    def test_roundtrip_random(self):
        for seed in range(6):
            net = random_network(n_pi=4, n_gates=20, seed=seed + 10)
            again = parse_aiger(write_aiger(net))
            assert networks_equivalent_brute(net, again), seed

    def test_negated_output(self):
        net = Network()
        a = net.add_pi("a")
        net.add_po(net.add_gate(GateType.NOT, [a]), "y")
        again = parse_aiger(write_aiger(net))
        assert networks_equivalent_brute(net, again)

    def test_binary_format_rejected(self):
        with pytest.raises(AigerError):
            parse_aiger("aig 3 2 0 1 1\n")

    def test_bad_header_rejected(self):
        with pytest.raises(AigerError):
            parse_aiger("aag 1 1\n")


class TestSequential:
    def test_parse_toggler(self):
        # latch q toggles when en: q' = q XOR en (as AIG)
        from repro.seq import parse_seq_bench, write_seq_bench

        seq = parse_seq_bench(
            "INPUT(en)\nOUTPUT(q)\nq = DFF(nq)\nnq = XOR(q, en)\n"
        )
        text = write_aiger(seq)
        again = parse_aiger(text)
        assert isinstance(again, SeqNetwork)
        assert again.num_latches == 1
        en1 = seq.core.node_by_name("en")
        en2 = again.core.node_by_name("en")
        rng = random.Random(3)
        bits = [rng.getrandbits(1) for _ in range(12)]
        assert seq.simulate([{en1: b} for b in bits]) == again.simulate(
            [{en2: b} for b in bits]
        )

    def test_latch_init_preserved(self):
        from repro.seq import Latch

        core = Network()
        q = core.add_pi("q")
        en = core.add_pi("en")
        nq = core.add_gate(GateType.XOR, [q, en], "nq")
        core.add_po(q, "out")
        seq = SeqNetwork(core, [Latch("q", q, nq, init=1)])
        again = parse_aiger(write_aiger(seq))
        assert again.latches[0].init == 1
        e2 = again.core.node_by_name("en")
        trace = again.simulate([{e2: 0}])
        assert trace[0]["out"] == 1  # starts at the initial value
