"""Tests for the independent ECO certificate checker
(``repro.check.certificate``) and its engine wiring
(``EcoConfig.verify_certificates``).

A genuine engine result must certify; every forgery — a tampered patch
function, an out-of-window support signal, cooked cost or gate
accounting, a damaged patch netlist — must be rejected with the right
rule id.
"""

import copy

import pytest

import repro.check.certificate as cert_mod
from repro.check import (
    CertificateError,
    Severity,
    check_certificate,
    certify,
)
from repro.core import EcoEngine, EcoEngineError, contest_config
from repro.io import EcoInstance
from repro.network import GateType, Network


def demo_instance():
    """The README demo: spec f=(a&b)|c, shipped impl turned the AND
    into an OR; target u."""
    spec = Network("spec")
    a = spec.add_pi("a")
    b = spec.add_pi("b")
    c = spec.add_pi("c")
    u = spec.add_gate(GateType.AND, [a, b], "u")
    f = spec.add_gate(GateType.OR, [u, c], "f")
    spec.add_po(f, "out")
    impl = spec.clone()
    impl.set_fanins(
        impl.node_by_name("u"),
        GateType.OR,
        [impl.node_by_name("a"), impl.node_by_name("b")],
    )
    return EcoInstance(
        "demo", impl, spec, targets=["u"], weights={"a": 3, "b": 5, "c": 1}
    )


_FLIP = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.BUF: GateType.NOT,
    GateType.NOT: GateType.BUF,
}


@pytest.fixture(scope="module")
def certified():
    instance = demo_instance()
    result = EcoEngine(contest_config()).run(instance)
    assert result.verified
    return instance, result


def forged(result):
    return copy.deepcopy(result)


class TestGenuineCertificates:
    def test_genuine_result_certifies(self, certified):
        instance, result = certified
        report = check_certificate(instance, result)
        assert report.ok and len(report) == 0
        assert certify(instance, result).ok

    def test_drup_certified_reproof(self, certified):
        instance, result = certified
        report = check_certificate(instance, result, drup=True)
        assert report.ok

    def test_budget_exhaustion_is_a_warning(self, certified):
        instance, result = certified
        report = check_certificate(instance, result, budget_conflicts=0)
        if report.findings:  # the re-proof needed at least one conflict
            assert report.rules() == ["CF006"]
            assert all(
                f.severity is Severity.WARNING for f in report.findings
            )
            assert report.ok  # undecided, not refuted


class TestForgeryRejection:
    def test_cf001_tampered_patch_function(self, certified):
        instance, result = certified
        bad = forged(result)
        pnet = bad.patches[0].network
        driver = pnet.node(pnet.pos[0][1])
        assert driver.gtype in _FLIP, "patch PO driven by a leaf?"
        driver.gtype = _FLIP[driver.gtype]
        report = check_certificate(instance, bad)
        assert not report.ok
        assert "CF001" in report.rules()
        assert any("counterexample" in f.message for f in report.errors)

    def test_cf002_out_of_window_support(self, certified):
        instance, result = certified
        bad = forged(result)
        patch = bad.patches[0]
        # "f" is in the target's fanout cone: reading it is circular
        patch.network.add_pi("f")
        patch.support = sorted(set(patch.support) | {"f"})
        report = check_certificate(instance, bad)
        assert not report.ok
        assert "CF002" in report.rules()

    def test_cf003_tampered_cost(self, certified):
        instance, result = certified
        bad = forged(result)
        bad.cost += 7
        report = check_certificate(instance, bad)
        assert "CF003" in report.rules()
        with pytest.raises(CertificateError, match="CF003"):
            certify(instance, bad)

    def test_cf004_tampered_patch_gate_count(self, certified):
        instance, result = certified
        bad = forged(result)
        bad.patches[0].gate_count += 2
        report = check_certificate(instance, bad)
        assert "CF004" in report.rules()

    def test_cf004_tampered_total_gate_count(self, certified):
        instance, result = certified
        bad = forged(result)
        bad.gate_count += 1
        report = check_certificate(instance, bad)
        assert "CF004" in report.rules()

    def test_cf005_patch_for_unknown_target(self, certified):
        instance, result = certified
        bad = forged(result)
        bad.patches[0].target = "not_a_target"
        report = check_certificate(instance, bad)
        assert report.rules() == ["CF005"]  # early return: only CF005

    def test_cf005_support_netlist_disagreement(self, certified):
        instance, result = certified
        bad = forged(result)
        bad.patches[0].support = list(bad.patches[0].support) + ["ghost"]
        report = check_certificate(instance, bad)
        assert report.rules() == ["CF005"]

    def test_cf005_damaged_patch_netlist(self, certified):
        instance, result = certified
        bad = forged(result)
        pnet = bad.patches[0].network
        pnet._pos.append(("extra", 9999))  # second, dead PO
        report = check_certificate(instance, bad)
        assert report.rules() == ["CF005"]

    def test_certify_message_names_the_instance(self, certified):
        instance, result = certified
        bad = forged(result)
        bad.cost += 1
        with pytest.raises(CertificateError, match="demo"):
            certify(instance, bad)


class TestEngineWiring:
    def test_verify_certificates_flag(self):
        cfg = contest_config()
        cfg.verify_certificates = True
        result = EcoEngine(cfg).run(demo_instance())
        assert result.verified
        assert result.stats.get("certificate_checked") == 1

    def test_flag_off_by_default(self):
        result = EcoEngine(contest_config()).run(demo_instance())
        assert "certificate_checked" not in result.stats

    def test_certification_failure_raises(self, monkeypatch):
        def refuse(instance, result, **kwargs):
            raise cert_mod.CertificateError("forged result")

        monkeypatch.setattr(cert_mod, "certify", refuse)
        cfg = contest_config()
        cfg.verify_certificates = True
        with pytest.raises(EcoEngineError, match="forged result"):
            EcoEngine(cfg).run(demo_instance())
