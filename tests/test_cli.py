"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.benchgen import corrupt, make_specification
from repro.io import read_verilog, write_verilog, write_weights
from repro.core import cec

from helpers import random_network


@pytest.fixture
def bundle(tmp_path):
    """A corrupted pair on disk: impl.v, spec.v, weights.txt."""
    golden = random_network(n_pi=5, n_gates=28, n_po=3, seed=7)
    impl, targets, _ = corrupt(golden, 1, seed=21)
    spec = make_specification(golden)
    impl_p = str(tmp_path / "impl.v")
    spec_p = str(tmp_path / "spec.v")
    weights_p = str(tmp_path / "weights.txt")
    write_verilog(impl, impl_p)
    write_verilog(spec, spec_p)
    write_weights({n.name: 3 for n in impl.nodes() if n.name}, weights_p)
    return impl_p, spec_p, weights_p, targets


class TestPatchCommand:
    def test_patch_and_emit(self, bundle, tmp_path, capsys):
        impl_p, spec_p, weights_p, targets = bundle
        out_p = str(tmp_path / "patched.v")
        rc = main(
            [
                "patch",
                "--impl", impl_p,
                "--spec", spec_p,
                "--targets", ",".join(targets),
                "--weights", weights_p,
                "--out", out_p,
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "verified: True" in captured
        patched = read_verilog(out_p)
        spec = read_verilog(spec_p)
        assert cec(patched, spec).equivalent

    def test_targets_from_file(self, bundle, tmp_path, capsys):
        impl_p, spec_p, _, targets = bundle
        tfile = str(tmp_path / "targets.txt")
        with open(tfile, "w", encoding="utf-8") as f:
            f.write("\n".join(targets) + "\n")
        rc = main(
            ["patch", "--impl", impl_p, "--spec", spec_p, "--targets", f"@{tfile}"]
        )
        assert rc == 0

    @pytest.mark.parametrize("method", ["baseline", "satprune_cegarmin"])
    def test_methods(self, bundle, method):
        impl_p, spec_p, weights_p, targets = bundle
        rc = main(
            [
                "patch",
                "--impl", impl_p,
                "--spec", spec_p,
                "--targets", ",".join(targets),
                "--method", method,
            ]
        )
        assert rc == 0


class TestOtherCommands:
    def test_cec_inequivalent(self, bundle, capsys):
        impl_p, spec_p, _, _ = bundle
        rc = main(["cec", "--impl", impl_p, "--spec", spec_p])
        assert rc == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out

    def test_cec_equivalent(self, bundle, capsys):
        _, spec_p, _, _ = bundle
        rc = main(["cec", "--impl", spec_p, "--spec", spec_p])
        assert rc == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_localize(self, bundle, capsys):
        impl_p, spec_p, _, targets = bundle
        rc = main(["localize", "--impl", impl_p, "--spec", spec_p])
        out = capsys.readouterr().out
        assert rc == 0
        assert "confirmed sufficient target set" in out

    def test_generate(self, tmp_path, capsys):
        out = str(tmp_path / "unit4")
        rc = main(["generate", "--unit", "unit4", "--out", out])
        assert rc == 0
        for fname in ("impl.v", "spec.v", "weights.txt", "targets.txt"):
            assert os.path.exists(os.path.join(out, fname))

    def test_suite_subset(self, capsys):
        rc = main(["suite", "--units", "unit1,unit4", "--methods", "minassump"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unit1" in out and "unit4" in out
        assert "Geomean" in out

    def test_suite_rejects_unknown_method(self, capsys):
        rc = main(["suite", "--units", "unit1", "--methods", "nope"])
        assert rc == 2

    def test_batch_writes_valid_export(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_bench_document

        out = tmp_path / "batch.json"
        rc = main(["batch", "--units", "unit1,unit4", "--jobs", "1",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "unit1" in text and "verified" in text and "p50" in text
        doc = json.loads(out.read_text())
        validate_bench_document(doc)
        assert doc["context"]["batch"] is True
        assert [e["unit"] for e in doc["units"]] == ["unit1", "unit4"]

    def test_batch_rejects_unknown_method(self, capsys):
        rc = main(["batch", "--units", "unit1", "--method", "nope"])
        assert rc == 2

    def test_batch_rejects_unknown_unit(self, capsys):
        rc = main(["batch", "--units", "unitx"])
        assert rc == 2


class TestRunCommand:
    def test_run_unit_trace(self, capsys):
        rc = main(["run", "--unit", "unit4", "--method", "minassump", "--trace"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "engine.run" in captured.out
        assert "engine.window" in captured.out
        assert "verified=True" in captured.err

    def test_run_unit_profile_json(self, capsys):
        import json

        from repro.obs import validate_telemetry

        rc = main(["run", "--unit", "unit4", "--profile"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        validate_telemetry(doc)
        assert doc["counters"]["engine.runs"] == 1
        assert doc["counters"]["sat.solves"] > 0
        assert doc["spans"][0]["name"] == "engine.run"

    def test_run_profile_to_file_and_csv(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "telemetry.json")
        rc = main(["run", "--unit", "unit4", "--profile", "--telemetry-out", out])
        assert rc == 0
        with open(out, "r", encoding="utf-8") as f:
            doc = json.load(f)
        assert doc["schema"] == "repro.obs/v1"
        rc = main(["run", "--unit", "unit4", "--profile", "--csv"])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "kind,key,value"
        assert any(line.startswith("counter,engine.runs,") for line in lines)

    def test_run_files_writes_patched_netlist(self, bundle, tmp_path, capsys):
        impl_p, spec_p, weights_p, targets = bundle
        out_p = str(tmp_path / "patched.v")
        rc = main(
            [
                "run",
                "--impl", impl_p,
                "--spec", spec_p,
                "--targets", ",".join(targets),
                "--weights", weights_p,
                "--out", out_p,
            ]
        )
        assert rc == 0
        patched = read_verilog(out_p)
        assert cec(patched, read_verilog(spec_p)).equivalent

    def test_run_registry_left_disabled(self):
        from repro import obs

        assert main(["run", "--unit", "unit4"]) == 0
        assert not obs.enabled()

    def test_run_conflicting_inputs(self, bundle, capsys):
        impl_p, _, _, _ = bundle
        rc = main(["run", "--unit", "unit4", "--impl", impl_p])
        assert rc == 2
        assert "either --unit" in capsys.readouterr().err

    def test_run_missing_inputs(self, capsys):
        rc = main(["run"])
        assert rc == 2
        assert "run needs" in capsys.readouterr().err


class TestCheckCommand:
    def test_clean_files(self, bundle, capsys):
        impl_p, spec_p, _, _ = bundle
        rc = main(["check", spec_p, "--patterns", "8"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_clean_unit(self, capsys):
        rc = main(["check", "--unit", "unit4", "--patterns", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unit4.impl: clean" in out
        assert "unit4.spec: clean" in out

    def test_lint_only(self, bundle):
        impl_p, spec_p, _, _ = bundle
        assert main(["check", impl_p, spec_p, "--no-encoding"]) == 0

    def test_rule_selection(self, bundle):
        _, spec_p, _, _ = bundle
        assert main(["check", spec_p, "--rules", "NL001,NL004"]) == 0

    def test_json_output(self, bundle, capsys):
        import json

        _, spec_p, _, _ = bundle
        rc = main(["check", spec_p, "--patterns", "8", "--json"])
        assert rc == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 1
        assert reports[0]["ok"] is True
        assert reports[0]["findings"] == []

    def test_corrupt_netlist_fails(self, bundle, capsys, monkeypatch):
        import repro.cli as cli_mod
        from repro.io import read_verilog as real_read

        def read_and_break(path):
            net = real_read(path)
            net._pos.append(("ghost", 10**6))  # NL005: undriven PO
            return net

        monkeypatch.setattr(cli_mod, "read_verilog", read_and_break)
        _, spec_p, _, _ = bundle
        rc = main(["check", spec_p])
        assert rc == 1
        out = capsys.readouterr().out
        assert "NL005" in out and "error" in out

    def test_nothing_to_check(self, capsys):
        rc = main(["check"])
        assert rc == 2
        assert "nothing to check" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        rc = main(["check", "/nonexistent/net.v"])
        assert rc == 2

    def test_unknown_rule(self, bundle, capsys):
        _, spec_p, _, _ = bundle
        rc = main(["check", spec_p, "--rules", "NL999"])
        assert rc == 2
        assert "NL999" in capsys.readouterr().err
