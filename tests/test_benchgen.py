"""Tests for the synthetic benchmark suite generation."""

import pytest

from repro.benchgen import (
    SUITE,
    build_unit,
    corrupt,
    generate_weights,
    make_specification,
    ripple_adder,
    small_multiplier,
    comparator,
    alu_slice,
    decoder,
    parity_cone,
    random_dag,
    unit_spec,
)
from repro.core import cec
from repro.network import outputs_equal
from repro.network.traversal import levels


class TestGenerators:
    def test_ripple_adder_adds(self):
        net = ripple_adder(4)
        a_ids = [net.node_by_name(f"a{i}") for i in range(4)]
        b_ids = [net.node_by_name(f"b{i}") for i in range(4)]
        cin = net.node_by_name("cin")
        for a_val, b_val, c_val in [(3, 5, 0), (15, 1, 1), (9, 9, 0), (0, 0, 0)]:
            assign = {a_ids[i]: (a_val >> i) & 1 for i in range(4)}
            assign.update({b_ids[i]: (b_val >> i) & 1 for i in range(4)})
            assign[cin] = c_val
            out = net.evaluate_pos(assign)
            got = sum(out[f"s{i}"] << i for i in range(4)) + (out["cout"] << 4)
            assert got == a_val + b_val + c_val

    def test_multiplier_multiplies(self):
        net = small_multiplier(3)
        a_ids = [net.node_by_name(f"a{i}") for i in range(3)]
        b_ids = [net.node_by_name(f"b{i}") for i in range(3)]
        for a_val in range(8):
            for b_val in range(8):
                assign = {a_ids[i]: (a_val >> i) & 1 for i in range(3)}
                assign.update({b_ids[i]: (b_val >> i) & 1 for i in range(3)})
                out = net.evaluate_pos(assign)
                got = sum(out[f"m{i}"] << i for i in range(6))
                assert got == a_val * b_val, (a_val, b_val)

    def test_comparator_compares(self):
        net = comparator(4)
        a_ids = [net.node_by_name(f"a{i}") for i in range(4)]
        b_ids = [net.node_by_name(f"b{i}") for i in range(4)]
        for a_val, b_val in [(3, 9), (9, 3), (7, 7), (0, 15), (15, 15)]:
            assign = {a_ids[i]: (a_val >> i) & 1 for i in range(4)}
            assign.update({b_ids[i]: (b_val >> i) & 1 for i in range(4)})
            out = net.evaluate_pos(assign)
            assert out["lt"] == (1 if a_val < b_val else 0)
            assert out["eq"] == (1 if a_val == b_val else 0)
            assert out["gt"] == (1 if a_val > b_val else 0)

    def test_decoder_one_hot(self):
        net = decoder(3)
        sel = [net.node_by_name(f"s{i}") for i in range(3)]
        en = net.node_by_name("en")
        for v in range(8):
            assign = {sel[i]: (v >> i) & 1 for i in range(3)}
            assign[en] = 1
            out = net.evaluate_pos(assign)
            assert sum(out.values()) == 1
            assert out[f"q{v}"] == 1
            assign[en] = 0
            assert sum(net.evaluate_pos(assign).values()) == 0

    def test_random_dag_deterministic(self):
        n1 = random_dag(8, 30, 4, seed=5)
        n2 = random_dag(8, 30, 4, seed=5)
        assert outputs_equal(n1, n2)

    def test_alu_and_parity_build(self):
        assert alu_slice(4).num_pos == 4
        assert parity_cone(16, seed=1).num_pos >= 4


class TestCorrupt:
    def test_targets_named_and_changed(self):
        golden = random_dag(8, 40, 4, seed=3)
        impl, targets, records = corrupt(golden, 3, seed=9)
        assert len(targets) == 3
        assert len(records) == 3
        for t in targets:
            assert impl.has_name(t)

    def test_corruption_usually_observable(self):
        changed = 0
        for seed in range(8):
            golden = random_dag(8, 40, 4, seed=seed)
            impl, _, _ = corrupt(golden, 2, seed=seed + 1)
            if not outputs_equal(impl, golden):
                changed += 1
        assert changed >= 6  # rare silent mutations tolerated

    def test_impl_stays_acyclic(self):
        for seed in range(6):
            golden = random_dag(10, 50, 5, seed=seed)
            impl, _, _ = corrupt(golden, 4, seed=seed)
            impl.topo_order()  # raises/loops only if cyclic
            # and every node is still reachable/evaluable
            impl.evaluate({pi: 0 for pi in impl.pis})

    def test_too_many_targets_rejected(self):
        golden = random_dag(3, 4, 2, seed=0)
        with pytest.raises(ValueError):
            corrupt(golden, 100, seed=0)


class TestSpecification:
    def test_spec_equivalent_to_golden(self):
        for seed in (0, 4):
            golden = random_dag(8, 45, 4, seed=seed)
            spec = make_specification(golden)
            assert cec(golden, spec).equivalent

    def test_spec_structurally_different(self):
        golden = random_dag(8, 45, 4, seed=2)
        spec = make_specification(golden)
        # AIG rebuild: different gate count is expected
        assert spec.num_gates != golden.num_gates


class TestWeights:
    @pytest.mark.parametrize(
        "wtype", ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"]
    )
    def test_all_types_positive_and_total(self, wtype):
        net = random_dag(8, 60, 5, seed=11)
        w = generate_weights(net, wtype, seed=3)
        named = [n for n in net.nodes() if n.name]
        assert len(w) == len(named)
        assert all(v >= 1 for v in w.values())

    def test_t1_heavier_near_pis(self):
        net = random_dag(6, 80, 4, seed=13)
        w = generate_weights(net, "T1", seed=0)
        lev = levels(net)
        shallow = [w[n.name] for n in net.nodes() if n.name and lev[n.nid] <= 1]
        deep = [w[n.name] for n in net.nodes() if n.name and lev[n.nid] >= 6]
        if shallow and deep:
            assert max(shallow) > max(deep)

    def test_unknown_type_rejected(self):
        net = random_dag(4, 10, 2, seed=0)
        with pytest.raises(ValueError):
            generate_weights(net, "T9")

    def test_deterministic(self):
        net = random_dag(6, 40, 3, seed=21)
        assert generate_weights(net, "T8", seed=5) == generate_weights(
            net, "T8", seed=5
        )


class TestSuite:
    def test_suite_has_20_units(self):
        assert len(SUITE) == 20
        assert [u.name for u in SUITE] == [f"unit{i}" for i in range(1, 21)]

    def test_paper_target_counts(self):
        expect = [1, 1, 1, 1, 2, 2, 1, 1, 4, 2, 8, 1, 1, 12, 1, 2, 8, 1, 4, 4]
        assert [u.num_targets for u in SUITE] == expect
        assert [u.paper_targets for u in SUITE] == expect

    def test_structural_units_marked(self):
        forced = [u.name for u in SUITE if u.force_structural]
        assert forced == ["unit6", "unit10", "unit11", "unit19"]

    def test_build_unit_feasible_instance(self):
        # a built unit must always be rectifiable via its targets
        spec = unit_spec("unit13")
        inst = build_unit(spec)
        assert inst.impl.num_pis == inst.spec.num_pis
        assert set(inst.impl.po_names()) == set(inst.spec.po_names())
        assert len(inst.targets) == spec.num_targets
        assert inst.weights  # weights populated

    def test_unit_spec_lookup(self):
        assert unit_spec("unit7").generator == "alu_slice"
        with pytest.raises(KeyError):
            unit_spec("unit99")

    def test_build_deterministic(self):
        a = build_unit(unit_spec("unit4"))
        b = build_unit(unit_spec("unit4"))
        assert outputs_equal(a.impl, b.impl)
        assert a.weights == b.weights
        assert a.targets == b.targets
