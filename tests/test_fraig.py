"""Tests for SAT sweeping (fraig)."""


from repro.network import GateType, Network
from repro.network.fraig import FraigBuilder, fraig_network

from helpers import networks_equivalent_brute, random_network


class TestFraigBuilder:
    def test_merges_structural_duplicates(self):
        f = FraigBuilder()
        a, b = f.add_pi(), f.add_pi()
        x = f.and_(a, b)
        y = f.and_(b, a)
        assert x == y

    def test_merges_functional_equivalents(self):
        # De Morgan: ~(~a | ~b) == a & b
        f = FraigBuilder()
        a, b = f.add_pi(), f.add_pi()
        plain = f.and_(a, b)
        demorgan = f.lit_not(f.or_(f.lit_not(a), f.lit_not(b)))
        # or_ is built from and_, so these are structurally equal in AIG
        assert plain == demorgan
        # xor built two different ways
        x1 = f.xor_(a, b)
        x2 = f.lit_not(f.xnor_(a, b))
        assert f.resolve_output(x1) == f.resolve_output(x2)

    def test_merges_across_restructuring(self):
        # (a&b)&c vs a&(b&c): different AIG shapes, equal functions
        f = FraigBuilder()
        a, b, c = f.add_pi(), f.add_pi(), f.add_pi()
        left = f.and_(f.and_(a, b), c)
        right = f.and_(a, f.and_(b, c))
        assert f.resolve_output(left) == f.resolve_output(right)
        assert f.proved >= 1

    def test_constant_detection(self):
        f = FraigBuilder()
        a, b = f.add_pi(), f.add_pi()
        # a & ~a via a detour the structural hash cannot see
        x = f.and_(f.or_(a, b), f.and_(f.lit_not(a), f.lit_not(b)))
        assert f.resolve_output(x) == FraigBuilder.CONST0


class TestFraigNetwork:
    def test_preserves_function(self):
        for seed in range(10):
            net = random_network(n_pi=5, n_gates=30, n_po=3, seed=seed)
            fr = fraig_network(net)
            assert networks_equivalent_brute(net, fr), seed

    def test_reduces_duplicated_logic(self):
        # two copies of the same cone feeding an XOR: must fold to const0
        net = Network("dup")
        a, b, c = (net.add_pi(x) for x in "abc")
        g1 = net.add_gate(GateType.AND, [a, b])
        g2 = net.add_gate(GateType.OR, [g1, c])
        h1 = net.add_gate(GateType.AND, [b, a])
        h2 = net.add_gate(GateType.OR, [c, h1])
        x = net.add_gate(GateType.XOR, [g2, h2])
        net.add_po(x, "diff")
        fr = fraig_network(net)
        assert fr.num_gates == 0  # constant-0 output
        vals = fr.evaluate_pos({p: 1 for p in fr.pis})
        assert vals["diff"] == 0

    def test_miter_of_equivalent_circuits_collapses(self):
        from repro.network.strash import strash_network

        for seed in (3, 4):
            net = random_network(n_pi=5, n_gates=40, n_po=2, seed=seed)
            rebuilt = strash_network(net)
            # XOR each PO pair through a shared-PI miter
            miter = Network("m")
            pim = {net.node(p).name: miter.add_pi(net.node(p).name) for p in net.pis}
            m1 = miter.append(net, {p: pim[net.node(p).name] for p in net.pis})
            m2 = miter.append(rebuilt, {p: pim[rebuilt.node(p).name] for p in rebuilt.pis})
            xors = [
                miter.add_gate(
                    GateType.XOR,
                    [m1[nid1], m2[dict(rebuilt.pos)[name]]],
                )
                for name, nid1 in net.pos
            ]
            out = xors[0]
            for x in xors[1:]:
                out = miter.add_gate(GateType.OR, [out, x])
            miter.add_po(out, "neq")
            fr = fraig_network(miter)
            assert fr.num_gates == 0, seed
