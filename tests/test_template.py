"""Tests for the incremental-reuse layer: CNF templates, retractable
clause groups, and the parallel benchmark harness.

The equivalence guarantees under test:

* a :class:`CnfTemplate` stamp leaves a solver in exactly the state
  ``encode_network`` would (variables, clauses, level-0 trail) and its
  compiled clause list is CN-rule clean;
* group-retracted solvers answer enumeration queries identically to
  fresh solvers (the onset blocking clauses really are retracted);
* the engine and the 2QBF CEGAR loop reuse solvers instead of
  rebuilding them, observable through ``repro.obs`` counters;
* ``run_suite(jobs=N)`` reproduces sequential results and degrades
  gracefully on per-unit timeouts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.benchgen import build_unit, random_dag, run_suite, unit_spec
from repro.check.cnfcheck import check_cnf
from repro.check.findings import Severity
from repro.core.engine import EcoEngine, contest_config
from repro.core.patchfunc import enumerate_patch_sop
from repro.network import GateType, Network
from repro.sat import CnfTemplate, Solver, encode_network, mklit
from repro.twoqbf import solve_exists_forall


def solver_state(s):
    """Canonical (nvars, level-0 trail, clause multiset) of a solver."""
    return (
        s.nvars,
        sorted(s._trail),
        sorted(tuple(sorted(c.lits)) for c in s._clauses),
    )


def sop_key(sop):
    """Order-independent cube-set key of an SOP."""
    return {frozenset(cube.literals().items()) for cube in sop.cubes}


@pytest.fixture
def registry():
    """The process registry, reset + enabled for one test."""
    reg = obs.get_registry()
    was_enabled = reg.enabled
    reg.reset()
    reg.enable()
    yield reg
    reg.enabled = was_enabled
    reg.reset()


class TestTemplateEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_gates=st.integers(min_value=5, max_value=80),
    )
    def test_stamp_matches_encode_network(self, seed, n_gates):
        net = random_dag(6, n_gates, 3, seed=seed)
        s1 = Solver()
        m1 = encode_network(s1, net)
        s2 = Solver()
        m2 = CnfTemplate(net).stamp(s2)
        assert m1 == m2
        assert solver_state(s1) == solver_state(s2)

    @pytest.mark.parametrize("unit", ["unit1", "unit4", "unit7", "unit8"])
    def test_stamp_matches_encode_on_suite_units(self, unit):
        inst = build_unit(unit_spec(unit))
        for net in (inst.impl, inst.spec):
            s1 = Solver()
            m1 = encode_network(s1, net)
            s2 = Solver()
            m2 = CnfTemplate(net).stamp(s2)
            assert m1 == m2
            assert solver_state(s1) == solver_state(s2)

    @pytest.mark.parametrize("unit", ["unit1", "unit4", "unit8", "unit13"])
    def test_compiled_clauses_are_cn_clean(self, unit):
        inst = build_unit(unit_spec(unit))
        for net in (inst.impl, inst.spec):
            template = CnfTemplate(net)
            findings = check_cnf(template.clauses, template.nvars)
            assert [f for f in findings if f.severity is Severity.ERROR] == []

    def test_two_stamps_match_two_encodes(self):
        net = random_dag(5, 30, 2, seed=9)
        s1 = Solver()
        encode_network(s1, net)
        encode_network(s1, net)
        s2 = Solver()
        template = CnfTemplate(net)
        template.stamp(s2)
        template.stamp(s2)
        assert solver_state(s1) == solver_state(s2)

    def test_pi_binding_matches_encode_network(self):
        net = random_dag(4, 20, 2, seed=3)
        s1 = Solver()
        shared1 = {pi: s1.new_var() for pi in net.pis}
        m1 = encode_network(s1, net, pi_vars=shared1)
        s2 = Solver()
        shared2 = {pi: s2.new_var() for pi in net.pis}
        m2 = CnfTemplate(net).stamp(s2, pi_vars=shared2)
        assert shared1 == shared2  # same allocation order
        assert m1 == m2
        assert solver_state(s1) == solver_state(s2)

    def test_pi_vars_rejects_internal_nodes(self):
        net = Network("n")
        a = net.add_pi("a")
        b = net.add_pi("b")
        v = net.add_gate(GateType.AND, [a, b])
        net.add_po(v, "f")
        template = CnfTemplate(net)
        s = Solver()
        with pytest.raises(ValueError, match="not a PI"):
            template.stamp(s, pi_vars={v: s.new_var()})

    def test_force_vars_binds_internal_node(self):
        net = Network("n")
        a = net.add_pi("a")
        b = net.add_pi("b")
        v = net.add_gate(GateType.AND, [a, b])
        net.add_po(v, "f")
        s = Solver()
        out = s.new_var()
        varmap = CnfTemplate(net).stamp(s, force_vars={v: out})
        assert varmap[v] == out
        # the gate clauses must still constrain the bound variable
        assert s.solve([mklit(varmap[a]), mklit(varmap[b]), mklit(out, True)]) is False
        assert s.solve([mklit(varmap[a]), mklit(varmap[b]), mklit(out)]) is True

    def test_constant_binding_cascades_units(self):
        # f = a & b with both PIs bound to constant-true: unit
        # propagation at stamp time must force the output variable
        net = Network("n")
        a = net.add_pi("a")
        b = net.add_pi("b")
        v = net.add_gate(GateType.AND, [a, b])
        net.add_po(v, "f")
        s = Solver()
        ct = s.new_var()
        s.add_clause([mklit(ct)])
        varmap = CnfTemplate(net).stamp(s, pi_vars={a: ct, b: ct})
        assert s.value(mklit(varmap[v])) == 1

    def test_counters(self, registry):
        net = random_dag(4, 15, 2, seed=1)
        template = CnfTemplate(net)
        s = Solver()
        template.stamp(s)
        template.stamp(s)
        assert registry.counters["sat.template_compiles"] == 1
        assert registry.counters["sat.template_stamps"] == 2
        assert registry.counters["sat.template_clauses"] == 2 * len(
            template.clauses
        )


class TestSolverGroups:
    def test_bulk_new_vars_matches_one_at_a_time(self):
        s1 = Solver()
        vs1 = [s1.new_var() for _ in range(7)]
        s2 = Solver()
        vs2 = s2.new_vars(7)
        assert vs1 == vs2
        assert s1.nvars == s2.nvars
        assert len(s1._watches) == len(s2._watches)
        assert s1._assigns == s2._assigns

    def test_add_vars_returns_base(self):
        s = Solver()
        s.new_var()
        base = s.add_vars(3)
        assert base == 1
        assert s.nvars == 4
        assert s.add_vars(0) == 4

    def test_group_clause_active_while_open(self):
        s = Solver()
        v = s.new_var()
        g = s.new_group()
        s.add_clause([mklit(v)], group=g)
        assert s.solve([mklit(v, True)]) is False
        # activation literals never leak into the caller's core
        assert s.core <= {mklit(v, True)}
        s.release_group(g)
        assert s.solve([mklit(v, True)]) is True

    def test_release_group_twice_raises(self):
        s = Solver()
        g = s.new_group()
        s.release_group(g)
        with pytest.raises(ValueError, match="not open"):
            s.release_group(g)

    def test_add_clause_to_closed_group_raises(self):
        s = Solver()
        v = s.new_var()
        g = s.new_group()
        s.release_group(g)
        with pytest.raises(ValueError, match="not open"):
            s.add_clause([mklit(v)], group=g)

    def test_two_groups_are_independent(self):
        s = Solver()
        a, b = s.new_vars(2)
        g1 = s.new_group()
        g2 = s.new_group()
        s.add_clause([mklit(a)], group=g1)
        s.add_clause([mklit(b)], group=g2)
        assert s.solve([mklit(a, True)]) is False
        s.release_group(g1)
        assert s.solve([mklit(a, True)]) is True
        assert s.solve([mklit(b, True)]) is False
        s.release_group(g2)
        assert s.solve([mklit(b, True)]) is True

    def test_group_counters(self, registry):
        s = Solver()
        g = s.new_group()
        s.release_group(g)
        assert registry.counters["sat.groups_opened"] == 1
        assert registry.counters["sat.groups_released"] == 1


class TestGroupedEnumerationEquivalence:
    """Onset/offset enumeration on one group-managed solver must match
    fresh-solver enumeration (the ISSUE's retraction soundness check)."""

    @pytest.mark.parametrize("seed", [2, 7, 19])
    def test_shared_solver_matches_fresh_solvers(self, seed):
        net = random_dag(4, 14, 1, seed=seed)
        po_node = net.pos[0][1]
        template = CnfTemplate(net)

        def enumerate_fresh(onset_sign):
            s = Solver()
            varmap = template.stamp(s)
            po = varmap[po_node]
            return enumerate_patch_sop(
                s,
                onset_base=[mklit(po, not onset_sign)],
                offset_base=[mklit(po, onset_sign)],
                divisor_vars=[varmap[pi] for pi in net.pis],
                blocking_extra=[],
                mode="minassump",
            )

        onset_fresh = enumerate_fresh(True)
        offset_fresh = enumerate_fresh(False)

        shared = Solver()
        varmap = template.stamp(shared)
        po = varmap[po_node]
        divisor_vars = [varmap[pi] for pi in net.pis]
        g1 = shared.new_group()
        onset_shared = enumerate_patch_sop(
            shared,
            onset_base=[mklit(po)],
            offset_base=[mklit(po, True)],
            divisor_vars=divisor_vars,
            blocking_extra=[],
            mode="minassump",
            blocking_group=g1,
        )
        shared.release_group(g1)
        g2 = shared.new_group()
        offset_shared = enumerate_patch_sop(
            shared,
            onset_base=[mklit(po, True)],
            offset_base=[mklit(po)],
            divisor_vars=divisor_vars,
            blocking_extra=[],
            mode="minassump",
            blocking_group=g2,
        )
        shared.release_group(g2)

        assert sop_key(onset_shared) == sop_key(onset_fresh)
        assert sop_key(offset_shared) == sop_key(offset_fresh)


class TestEngineReuse:
    def test_engine_reuses_support_solver(self, registry):
        inst = build_unit(unit_spec("unit4"))
        result = EcoEngine(contest_config()).run(inst)
        assert result.verified
        assert result.method == "sat"
        counters = registry.counters
        # the quantified miter is compiled once and stamped twice per
        # target (expression (2)); the patch function reuses that solver
        assert counters["sat.template_compiles"] >= 1
        assert counters["sat.template_stamps"] >= 2
        assert counters["engine.patch_solver_reuse"] >= 1
        assert counters["sat.groups_opened"] >= 1
        assert counters["sat.groups_opened"] == counters["sat.groups_released"]


class TestQbfReuse:
    def test_refinement_stamps_into_persistent_solver(self, registry):
        # ∃x ∀y. (x | y): the first candidate (x=0) is refuted by y=0,
        # so at least one refinement stamp lands in the abstraction
        net = Network("qbf")
        x = net.add_pi("x")
        y = net.add_pi("y")
        v = net.add_gate(GateType.OR, [x, y])
        net.add_po(v, "f")
        result = solve_exists_forall(net, exists_pis=[x], forall_pis=[y])
        assert result.is_sat
        assert result.witness == {x: 1}
        assert registry.counters["qbf.refinement_stamps"] >= 1
        assert registry.counters["sat.template_compiles"] >= 1

    def test_unsat_instance_still_terminates(self, registry):
        # ∃x ∀y. (x & y) is false: y=0 refutes every candidate
        net = Network("qbf")
        x = net.add_pi("x")
        y = net.add_pi("y")
        v = net.add_gate(GateType.AND, [x, y])
        net.add_po(v, "f")
        result = solve_exists_forall(net, exists_pis=[x], forall_pis=[y])
        assert result.is_sat is False
        assert result.countermoves
        assert registry.counters["qbf.refinement_stamps"] >= 1


class TestParallelHarness:
    def test_parallel_rows_match_sequential(self):
        names = ["unit1", "unit4"]
        seq = run_suite(names=names, methods=["minassump"])
        par = run_suite(names=names, methods=["minassump"], jobs=2)
        assert [r.name for r in par] == [r.name for r in seq]
        for s, p in zip(seq, par):
            assert p.results["minassump"].cost == s.results["minassump"].cost
            assert (
                p.results["minassump"].gate_count
                == s.results["minassump"].gate_count
            )
            assert p.results["minassump"].verified

    def test_timeout_degrades_to_placeholder_row(self):
        rows = run_suite(
            names=["unit1"],
            methods=["minassump"],
            jobs=1,
            unit_timeout=1e-6,
            collect_telemetry=True,
        )
        assert len(rows) == 1
        res = rows[0].results["minassump"]
        assert res.method == "timeout"
        assert res.verified is False
        assert res.cost == 0
        entry = rows[0].telemetry["minassump"]
        assert entry["counters"] == {"harness.unit_timeout": 1}
        assert entry["solver"]["solves"] == 0

    def test_suite_order_is_preserved(self):
        names = ["unit1", "unit4", "unit13"]
        rows = run_suite(names=names, methods=["minassump"], jobs=3)
        assert [r.name for r in rows] == names
