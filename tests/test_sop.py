"""Tests for cubes, SOP covers, factoring, and SOP synthesis."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sop import (
    DC,
    ONE,
    ZERO,
    Cube,
    FactorOp,
    Sop,
    factor,
    sop_to_network,
    truth_table,
)

from helpers import all_minterms


def random_sop(width, n_cubes, rng):
    sop = Sop(width)
    for _ in range(n_cubes):
        slots = [rng.choice([ZERO, ONE, DC, DC]) for _ in range(width)]
        sop.add(Cube(slots))
    return sop


class TestCube:
    def test_contains(self):
        c = Cube([ONE, DC, ZERO])
        assert c.contains([1, 0, 0])
        assert c.contains([1, 1, 0])
        assert not c.contains([0, 1, 0])
        assert not c.contains([1, 1, 1])

    def test_covers(self):
        big = Cube([ONE, DC, DC])
        small = Cube([ONE, ZERO, DC])
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(big)

    def test_intersects(self):
        a = Cube([ONE, DC])
        b = Cube([DC, ZERO])
        c = Cube([ZERO, DC])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_expand(self):
        c = Cube([ONE, ZERO])
        e = c.expand(1)
        assert e.slots == (ONE, DC)
        assert c.slots == (ONE, ZERO)  # immutable

    def test_from_literals(self):
        c = Cube.from_literals(4, {0: 1, 3: 0})
        assert c.slots == (ONE, DC, DC, ZERO)
        assert c.num_literals == 2

    def test_bad_slot_rejected(self):
        with pytest.raises(ValueError):
            Cube([7])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Cube([ONE]).covers(Cube([ONE, ONE]))

    def test_full_dc_is_tautology(self):
        c = Cube.full_dc(3)
        for m in all_minterms(3):
            assert c.contains(list(m))


class TestSop:
    def test_evaluate(self):
        sop = Sop(2, [Cube([ONE, DC]), Cube([DC, ONE])])  # a | b
        assert sop.evaluate([0, 0]) == 0
        assert sop.evaluate([1, 0]) == 1
        assert sop.evaluate([0, 1]) == 1

    def test_empty_sop_is_false(self):
        sop = Sop(2)
        for m in all_minterms(2):
            assert sop.evaluate(list(m)) == 0

    def test_parallel_matches_scalar(self):
        rng = random.Random(3)
        for _ in range(20):
            w = rng.randint(1, 5)
            sop = random_sop(w, rng.randint(0, 6), rng)
            mask = (1 << 8) - 1
            words = [rng.getrandbits(8) for _ in range(w)]
            par = sop.evaluate_parallel(words, mask)
            for bit in range(8):
                m = [(words[i] >> bit) & 1 for i in range(w)]
                assert ((par >> bit) & 1) == sop.evaluate(m)

    def test_remove_contained_cubes(self):
        sop = Sop(2, [Cube([ONE, DC]), Cube([ONE, ONE]), Cube([ONE, ZERO])])
        removed = sop.remove_contained_cubes()
        assert removed == 2
        assert sop.num_cubes == 1
        assert sop.cubes[0] == Cube([ONE, DC])

    def test_containment_removal_preserves_function(self):
        rng = random.Random(17)
        for _ in range(30):
            w = rng.randint(1, 5)
            sop = random_sop(w, rng.randint(1, 8), rng)
            before = truth_table(sop)
            sop.remove_contained_cubes()
            assert truth_table(sop) == before


class TestFactor:
    def test_const_cases(self):
        assert factor(Sop(3)).op is FactorOp.CONST0
        taut = Sop(3, [Cube.full_dc(3)])
        assert factor(taut).op is FactorOp.CONST1

    def test_single_cube(self):
        sop = Sop(3, [Cube([ONE, ZERO, DC])])
        tree = factor(sop)
        assert tree.num_literals() == 2

    def test_factoring_reduces_literals(self):
        # ab + ac + ad  ->  a(b+c+d): 6 literals down to 4
        sop = Sop(4)
        for other in (1, 2, 3):
            sop.add(Cube.from_literals(4, {0: 1, other: 1}))
        tree = factor(sop)
        assert tree.num_literals() == 4

    def test_factor_preserves_function_random(self):
        rng = random.Random(23)
        for _ in range(60):
            w = rng.randint(1, 6)
            sop = random_sop(w, rng.randint(0, 7), rng)
            tree = factor(sop)
            for m in all_minterms(w):
                assert tree.evaluate(list(m)) == sop.evaluate(list(m)), (
                    sop,
                    tree,
                )

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_factor_preserves_function_hypothesis(self, data):
        w = data.draw(st.integers(min_value=1, max_value=5))
        cubes = data.draw(
            st.lists(
                st.lists(
                    st.sampled_from([ZERO, ONE, DC]), min_size=w, max_size=w
                ),
                min_size=0,
                max_size=6,
            )
        )
        sop = Sop(w, [Cube(c) for c in cubes])
        tree = factor(sop)
        for m in all_minterms(w):
            assert tree.evaluate(list(m)) == sop.evaluate(list(m))


class TestSynth:
    def test_sop_to_network_matches(self):
        rng = random.Random(31)
        for trial in range(25):
            w = rng.randint(1, 5)
            sop = random_sop(w, rng.randint(0, 6), rng)
            names = [f"x{i}" for i in range(w)]
            for factored in (True, False):
                net = sop_to_network(sop, names, "f", factored=factored)
                for m in all_minterms(w):
                    pis = {net.node_by_name(names[i]): m[i] for i in range(w)}
                    assert net.evaluate_pos(pis)["f"] == sop.evaluate(list(m))

    def test_input_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sop_to_network(Sop(2), ["a"], "f")

    def test_not_gates_shared(self):
        # ~a&b + ~a&c: one NOT gate expected after factoring
        sop = Sop(3, [Cube([ZERO, ONE, DC]), Cube([ZERO, DC, ONE])])
        net = sop_to_network(sop, ["a", "b", "c"], "f")
        from repro.network import GateType

        nots = [n for n in net.nodes() if n.gtype is GateType.NOT]
        assert len(nots) == 1
