"""Tests for truth-table utilities and Minato-Morreale ISOP."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sop import Cube, DC, ONE, Sop, ZERO
from repro.sop.isop import (
    cube_tt,
    isop,
    isop_refine,
    sop_to_tt,
    tt_cofactors,
    tt_mask,
    tt_support,
    tt_var,
)


class TestTruthTables:
    def test_tt_var(self):
        # two vars: x0 true on minterms 1, 3; x1 true on 2, 3
        assert tt_var(0, 2) == 0b1010
        assert tt_var(1, 2) == 0b1100

    def test_cofactors(self):
        # f = x0 & x1 -> table 0b1000
        f = 0b1000
        neg, pos = tt_cofactors(f, 0, 2)
        assert neg == 0  # f|x0=0 is 0
        assert pos == 0b1100  # f|x0=1 is x1

    def test_support(self):
        f = tt_var(1, 3)  # depends only on x1
        assert tt_support(f, 3) == [1]
        g = tt_var(0, 3) & tt_var(2, 3)
        assert tt_support(g, 3) == [0, 2]

    def test_cube_tt(self):
        c = Cube([ONE, DC, ZERO])  # x0 & ~x2
        table = cube_tt(c, 3)
        for m in range(8):
            inside = ((m >> 0) & 1) == 1 and ((m >> 2) & 1) == 0
            assert bool((table >> m) & 1) == inside

    def test_sop_to_tt_roundtrip(self):
        rng = random.Random(3)
        for _ in range(15):
            w = rng.randint(1, 4)
            sop = Sop(
                w,
                [
                    Cube([rng.choice([ZERO, ONE, DC]) for _ in range(w)])
                    for _ in range(rng.randint(0, 4))
                ],
            )
            table = sop_to_tt(sop)
            for m in range(1 << w):
                minterm = [(m >> i) & 1 for i in range(w)]
                assert bool((table >> m) & 1) == bool(sop.evaluate(minterm))


class TestIsop:
    def _check_cover(self, cover, onset, upper, n):
        got = sop_to_tt(cover)
        assert got & ~upper == 0, "cover exceeds the upper bound"
        assert onset & ~got == 0, "cover misses onset minterms"

    def test_completely_specified(self):
        rng = random.Random(7)
        for _ in range(40):
            n = rng.randint(1, 4)
            f = rng.getrandbits(1 << n)
            cover = isop(f, f, n)
            self._check_cover(cover, f, f, n)

    def test_with_dont_cares(self):
        rng = random.Random(11)
        for _ in range(40):
            n = rng.randint(1, 4)
            onset = rng.getrandbits(1 << n)
            dc = rng.getrandbits(1 << n) & ~onset
            cover = isop(onset, onset | dc, n)
            self._check_cover(cover, onset, onset | dc, n)

    def test_constants(self):
        assert isop(0, 0, 3).num_cubes == 0
        taut = isop(tt_mask(3), tt_mask(3), 3)
        assert taut.num_cubes == 1
        assert taut.cubes[0].num_literals == 0

    def test_onset_outside_upper_rejected(self):
        with pytest.raises(ValueError):
            isop(0b10, 0b01, 1)

    def test_dont_cares_shrink_cover(self):
        # onset = {11}, dc = everything else: single all-DC cube suffices
        n = 3
        onset = 1 << 7
        cover = isop(onset, tt_mask(n), n)
        assert cover.num_cubes == 1
        assert cover.cubes[0].num_literals == 0

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_hypothesis_bounds(self, data):
        n = data.draw(st.integers(min_value=1, max_value=4))
        onset = data.draw(st.integers(min_value=0, max_value=tt_mask(n)))
        extra = data.draw(st.integers(min_value=0, max_value=tt_mask(n)))
        upper = onset | extra
        cover = isop(onset, upper, n)
        got = sop_to_tt(cover)
        assert got & ~upper == 0
        assert onset & ~got == 0

    def test_irredundant(self):
        """Dropping any cube must uncover some onset minterm."""
        rng = random.Random(13)
        for _ in range(25):
            n = rng.randint(2, 4)
            onset = rng.getrandbits(1 << n)
            dc = rng.getrandbits(1 << n) & ~onset
            cover = isop(onset, onset | dc, n)
            for skip in range(cover.num_cubes):
                rest = Sop(
                    n, [c for i, c in enumerate(cover.cubes) if i != skip]
                )
                assert sop_to_tt(rest) & onset != sop_to_tt(cover) & onset or (
                    onset & ~sop_to_tt(rest)
                ), "redundant cube found"


class TestIsopRefine:
    def test_refine_keeps_care_set(self):
        rng = random.Random(17)
        for _ in range(25):
            n = rng.randint(2, 4)
            onset = rng.getrandbits(1 << n)
            offset = rng.getrandbits(1 << n) & ~onset
            on_sop = isop(onset, onset, n)
            off_sop = isop(offset, offset, n)
            refined = isop_refine(on_sop, off_sop)
            table = sop_to_tt(refined)
            assert table & offset == 0
            assert onset & ~table == 0
            assert refined.num_literals <= on_sop.num_literals

    def test_strict_overlap_rejected(self):
        s = Sop(1, [Cube([ONE])])
        with pytest.raises(ValueError):
            isop_refine(s, s, strict=True)

    def test_nonstrict_overlap_is_dont_care(self):
        # covers overlapping on a DC minterm: refine must not crash and
        # must respect the disjoint parts of the bounds
        on = Sop(2, [Cube([ONE, DC])])  # claims 01, 11
        off = Sop(2, [Cube([DC, ONE])])  # claims 10, 11 (11 = shared DC)
        refined = isop_refine(on, off)
        table = sop_to_tt(refined)
        assert (table >> 0b01) & 1 == 1  # pure onset kept
        assert (table >> 0b10) & 1 == 0  # pure offset avoided

    def test_refine_can_exploit_dont_cares(self):
        # onset {00}, offset {11}: the refined cover may grow into the
        # DC minterms and drop to a single literal
        on = Sop(2, [Cube([ZERO, ZERO])])
        off = Sop(2, [Cube([ONE, ONE])])
        refined = isop_refine(on, off)
        assert refined.num_literals <= 2
        table = sop_to_tt(refined)
        assert (table >> 0b00) & 1 == 1
        assert (table >> 0b11) & 1 == 0
