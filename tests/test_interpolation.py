"""Tests for resolution-proof interpolation (McMillan system)."""

import random

import pytest

from repro.sat import InterpolationError, Solver, interpolant, mklit

from helpers import all_minterms


def _random_partitioned_unsat(seed):
    """Random UNSAT CNF split into A (first half) and B clauses."""
    rng = random.Random(seed)
    nv = rng.randint(3, 7)
    clauses = []
    for _ in range(int(7.0 * nv)):
        k = rng.randint(1, 3)
        clauses.append(
            [mklit(rng.randrange(nv), rng.random() < 0.5) for _ in range(k)]
        )
    s = Solver(proof_logging=True)
    s.new_vars(nv)
    a_cids, b_cids = [], []
    half = len(clauses) // 2
    for i, c in enumerate(clauses):
        s.add_clause(c)
        (a_cids if i < half else b_cids).append(s.last_clause_cid)
    return s, clauses[:half], clauses[half:], a_cids, b_cids, nv


def _eval_clauses(clauses, bits):
    return all(any(bits[l >> 1] ^ (l & 1) for l in c) for c in clauses)


class TestInterpolant:
    def test_requires_proof_logging(self):
        s = Solver()
        with pytest.raises(InterpolationError):
            interpolant(s, [], [])

    def test_requires_refutation(self):
        s = Solver(proof_logging=True)
        a = s.new_var()
        s.add_clause([mklit(a)])
        assert s.solve()
        with pytest.raises(InterpolationError):
            interpolant(s, [], [])

    def test_simple_separation(self):
        s = Solver(proof_logging=True)
        x, a, b = s.new_vars(3)
        acids, bcids = [], []
        for lits, acc in (
            ([mklit(a)], acids),
            ([mklit(a, True), mklit(x)], acids),
            ([mklit(b)], bcids),
            ([mklit(b, True), mklit(x, True)], bcids),
        ):
            s.add_clause(lits)
            acc.append(s.last_clause_cid)
        assert not s.solve()
        net, v2pi = interpolant(s, acids, bcids, {x: "x"})
        assert net.evaluate_pos({v2pi[x]: 1})["itp"] == 1
        assert net.evaluate_pos({v2pi[x]: 0})["itp"] == 0

    def test_craig_properties_random(self):
        """A ⇒ I and I ∧ B unsat, with support in shared variables."""
        verified = 0
        for seed in range(60):
            s, a_cl, b_cl, a_cids, b_cids, nv = _random_partitioned_unsat(seed)
            if s.empty_clause_cid is None and s.solve():
                continue
            net, v2pi = interpolant(s, a_cids, b_cids)
            itp_vars = set(v2pi)
            a_vars = {l >> 1 for c in a_cl for l in c}
            b_vars = {l >> 1 for c in b_cl for l in c}
            assert itp_vars <= (a_vars & b_vars)
            for bits in all_minterms(nv):
                pi_assign = {
                    v2pi[v]: bits[v] for v in itp_vars
                }
                i_val = net.evaluate_pos(pi_assign)["itp"]
                if _eval_clauses(a_cl, bits):
                    assert i_val == 1, ("A does not imply I", seed, bits)
                if _eval_clauses(b_cl, bits):
                    assert i_val == 0, ("I does not rule out B", seed, bits)
            verified += 1
        assert verified >= 10  # enough UNSAT splits actually exercised
