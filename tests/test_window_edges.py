"""Edge-case tests for structural pruning (windowing)."""


from repro.network import GateType, Network, compute_window

from helpers import random_network


def pair_with_target(seed=0):
    net = random_network(n_pi=4, n_gates=20, n_po=3, seed=seed)
    return net, net.clone("spec")


class TestWindowEdges:
    def test_unobservable_target_empty_window(self):
        """A target with no path to any PO yields an empty PO window."""
        impl = Network()
        a, b = impl.add_pi("a"), impl.add_pi("b")
        dangling = impl.add_gate(GateType.AND, [a, b], "dang")
        po = impl.add_gate(GateType.OR, [a, b], "live")
        impl.add_po(po, "o")
        spec = impl.clone("spec")
        w = compute_window(impl, spec, [dangling])
        assert w.po_indices == []
        # with no window PIs, only constants could be divisors — none
        assert all(not impl.node(d).is_pi for d in w.divisors) or not w.divisors

    def test_target_is_po_driver(self):
        impl = Network()
        a, b = impl.add_pi("a"), impl.add_pi("b")
        g = impl.add_gate(GateType.AND, [a, b], "g")
        impl.add_po(g, "o")
        spec = impl.clone("spec")
        w = compute_window(impl, spec, [g])
        assert w.po_indices == [0]
        assert g not in w.divisors

    def test_spec_with_wider_support_extends_window_pis(self):
        """A spec output reading an extra PI pulls that PI into the window."""
        impl = Network()
        a, b, c = (impl.add_pi(x) for x in "abc")
        g = impl.add_gate(GateType.AND, [a, b], "g")
        impl.add_po(g, "o")

        spec = Network("spec")
        a2, b2, c2 = (spec.add_pi(x) for x in "abc")
        g2 = spec.add_gate(GateType.AND, [a2, b2], "g")
        h2 = spec.add_gate(GateType.OR, [g2, c2], "h")
        spec.add_po(h2, "o")

        w = compute_window(impl, spec, [impl.node_by_name("g")])
        names = {impl.node(p).name for p in w.impl_window_pis}
        assert names == {"a", "b", "c"}

    def test_divisor_support_containment(self):
        """Divisors must not read PIs outside the window."""
        impl = Network()
        a, b, c, d = (impl.add_pi(x) for x in "abcd")
        t = impl.add_gate(GateType.AND, [a, b], "t")
        impl.add_po(t, "o1")
        outside = impl.add_gate(GateType.OR, [c, d], "outside")
        impl.add_po(outside, "o2")
        spec = impl.clone("spec")
        w = compute_window(impl, spec, [t])
        assert w.po_indices == [0]
        assert outside not in w.divisors
        window_pis = set(w.impl_window_pis)
        from repro.network.traversal import support

        for div in w.divisors:
            assert support(impl, div) <= window_pis

    def test_overlapping_multi_target_tfo(self):
        net, spec = pair_with_target(seed=4)
        gates = [n.nid for n in net.nodes() if n.is_gate][:3]
        w = compute_window(net, spec, gates)
        for g in gates:
            assert g in w.target_tfo
            assert g not in w.divisors

    def test_all_pos_in_window_when_target_feeds_all(self):
        impl = Network()
        a, b = impl.add_pi("a"), impl.add_pi("b")
        t = impl.add_gate(GateType.XOR, [a, b], "t")
        impl.add_po(impl.add_gate(GateType.NOT, [t], "n1"), "o1")
        impl.add_po(impl.add_gate(GateType.BUF, [t], "n2"), "o2")
        spec = impl.clone("spec")
        w = compute_window(impl, spec, [t])
        assert w.po_indices == [0, 1]
