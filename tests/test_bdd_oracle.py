"""Cross-validation: the SAT engine's patches vs the exact BDD oracle."""

import pytest

from repro import EcoEngine, EcoInstance, baseline_config, contest_config
from repro.bdd import (
    image_over_divisors,
    patch_in_interval,
    single_target_interval,
)
from repro.benchgen import corrupt, generate_weights, make_specification
from repro.network import GateType, Network

from helpers import random_network


def single_target_instance(seed):
    golden = random_network(n_pi=5, n_gates=30, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, 1, seed=seed + 3)
    spec = make_specification(golden)
    return EcoInstance(
        f"bo{seed}",
        impl,
        spec,
        targets,
        generate_weights(impl, "T2", seed=seed),
    )


class TestInterval:
    def test_feasible_on_corrupted_instances(self):
        for seed in range(6):
            inst = single_target_instance(seed)
            interval = single_target_interval(
                inst.impl, inst.spec, inst.impl.node_by_name(inst.targets[0])
            )
            assert interval.feasible, seed

    def test_infeasible_detected(self):
        # target outside the difference cone (cf. feasibility tests)
        def build(corrupt_it):
            net = Network()
            a, b, c = (net.add_pi(x) for x in "abc")
            w = net.add_gate(
                GateType.OR if corrupt_it else GateType.AND, [a, b], "w"
            )
            z = net.add_gate(GateType.OR, [c, a], "z")
            net.add_po(w, "o1")
            net.add_po(z, "o2")
            return net

        impl, spec = build(True), build(False)
        interval = single_target_interval(
            impl, spec, impl.node_by_name("z")
        )
        assert not interval.feasible

    def test_restoring_original_function_is_in_interval(self):
        for seed in range(5):
            inst = single_target_instance(seed)
            golden = random_network(n_pi=5, n_gates=30, n_po=3, seed=seed)
            target = inst.targets[0]
            interval = single_target_interval(
                inst.impl, inst.spec, inst.impl.node_by_name(target)
            )
            # the golden function of the target, as a PI-level patch
            from repro.network.strash import cofactor_network

            gold_patch = _function_as_network(golden, target)
            if gold_patch is None:
                continue
            assert patch_in_interval(interval, gold_patch), seed


class TestEnginePatchesAgainstOracle:
    @pytest.mark.parametrize("cfg", [baseline_config, contest_config])
    def test_sat_patches_lie_in_exact_interval(self, cfg):
        checked = 0
        for seed in range(8):
            inst = single_target_instance(seed)
            res = EcoEngine(cfg()).run(inst)
            patch = res.patches[0]
            # oracle works over PI space: only check PI-supported patches
            impl_pis = {inst.impl.node(p).name for p in inst.impl.pis}
            if not set(patch.support) <= impl_pis:
                continue
            interval = single_target_interval(
                inst.impl, inst.spec, inst.impl.node_by_name(patch.target)
            )
            assert patch_in_interval(interval, patch.network), seed
            checked += 1
        assert checked >= 2


class TestDivisorImage:
    def test_image_semantics(self):
        # f = u | v with u = a&b, v = c&d corrupted into u&v at target t
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        u = net.add_gate(GateType.AND, [a, b], "u")
        t = net.add_gate(GateType.OR, [u, c], "t")  # will be corrupted
        net.add_po(t, "o")
        spec = net.clone("spec")
        impl = net.clone("impl")
        tid = impl.node_by_name("t")
        impl.set_fanins(
            tid, GateType.AND, [impl.node_by_name("u"), impl.node_by_name("c")]
        )
        interval = single_target_interval(impl, spec, tid)
        assert interval.feasible
        small, onset_d, offset_d = image_over_divisors(
            interval, impl, [impl.node_by_name("u"), impl.node_by_name("c")]
        )
        # in (u, c) space the required patch is u | c: onset wherever
        # u|c = 1 is required... verify imaged care sets are disjoint and
        # that d-feasibility holds (u, c suffice)
        assert small.and_(onset_d, offset_d) == 0
        # u=1, c=0 must be in the onset (patch must output 1 there)
        assert small.evaluate(onset_d, [1, 0]) == 1
        # u=0, c=0 must be in the offset (patch must output 0)
        assert small.evaluate(offset_d, [0, 0]) == 1


def _function_as_network(golden, node_name):
    """Extract a named node's function as a standalone PI network."""
    if not golden.has_name(node_name):
        return None
    from repro.network.strash import AigBuilder, strash_into

    builder = AigBuilder()
    pi_lits = {pi: builder.add_pi() for pi in golden.pis}
    litmap = strash_into(builder, golden, pi_lits)
    out, _ = builder.to_network(
        [(node_name, litmap[golden.node_by_name(node_name)])],
        [golden.node(pi).name for pi in golden.pis],
        name="golden_fn",
    )
    return out
