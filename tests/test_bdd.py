"""Tests for the ROBDD manager (against truth-table semantics)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import Bdd, BddError, ONE, ZERO, build_from_network

from helpers import all_minterms, random_network


def tt_of(bdd, f):
    return bdd.truth_table(f)


class TestBasics:
    def test_terminals(self):
        bdd = Bdd(2)
        assert bdd.evaluate(ONE, [0, 0]) == 1
        assert bdd.evaluate(ZERO, [1, 1]) == 0

    def test_var_and_nvar(self):
        bdd = Bdd(2)
        x0 = bdd.var(0)
        assert bdd.evaluate(x0, [1, 0]) == 1
        assert bdd.evaluate(x0, [0, 1]) == 0
        assert bdd.nvar(0) == bdd.not_(x0)

    def test_var_out_of_range(self):
        with pytest.raises(BddError):
            Bdd(1).var(3)

    def test_canonicity(self):
        """Equal functions share one node — hash-consing at work."""
        bdd = Bdd(3)
        a, b, c = bdd.var(0), bdd.var(1), bdd.var(2)
        f1 = bdd.and_(a, bdd.and_(b, c))
        f2 = bdd.and_(bdd.and_(a, b), c)
        f3 = bdd.and_(bdd.and_(c, a), b)
        assert f1 == f2 == f3
        g1 = bdd.not_(bdd.or_(bdd.not_(a), bdd.not_(b)))
        assert g1 == bdd.and_(a, b)  # De Morgan collapses

    def test_connectives_match_semantics(self):
        bdd = Bdd(2)
        a, b = bdd.var(0), bdd.var(1)
        cases = {
            bdd.and_(a, b): lambda x, y: x & y,
            bdd.or_(a, b): lambda x, y: x | y,
            bdd.xor_(a, b): lambda x, y: x ^ y,
            bdd.xnor_(a, b): lambda x, y: 1 - (x ^ y),
            bdd.implies(a, b): lambda x, y: (1 - x) | y,
        }
        for f, ref in cases.items():
            for x, y in all_minterms(2):
                assert bdd.evaluate(f, [x, y]) == ref(x, y)


class TestQuantification:
    def test_exists_forall_brute(self):
        rng = random.Random(3)
        for trial in range(25):
            n = rng.randint(2, 5)
            bdd = Bdd(n)
            f = _random_bdd(bdd, rng, n)
            qvars = rng.sample(range(n), rng.randint(1, n))
            ex = bdd.exists(f, qvars)
            fa = bdd.forall(f, qvars)
            for bits in all_minterms(n):
                values = []
                for sub in itertools.product((0, 1), repeat=len(qvars)):
                    full = list(bits)
                    for var, v in zip(qvars, sub):
                        full[var] = v
                    values.append(bdd.evaluate(f, full))
                assert bdd.evaluate(ex, list(bits)) == max(values)
                assert bdd.evaluate(fa, list(bits)) == min(values)

    def test_cofactor(self):
        bdd = Bdd(2)
        a, b = bdd.var(0), bdd.var(1)
        f = bdd.and_(a, b)
        assert bdd.cofactor(f, 0, 1) == b
        assert bdd.cofactor(f, 0, 0) == ZERO


class TestCounting:
    def test_sat_count_brute(self):
        rng = random.Random(7)
        for trial in range(30):
            n = rng.randint(1, 5)
            bdd = Bdd(n)
            f = _random_bdd(bdd, rng, n)
            expect = sum(
                bdd.evaluate(f, list(bits)) for bits in all_minterms(n)
            )
            assert bdd.sat_count(f) == expect, trial

    def test_one_sat(self):
        rng = random.Random(11)
        for trial in range(25):
            n = rng.randint(1, 5)
            bdd = Bdd(n)
            f = _random_bdd(bdd, rng, n)
            model = bdd.one_sat(f)
            if f == ZERO:
                assert model is None
            else:
                full = [model.get(v, 0) for v in range(n)]
                assert bdd.evaluate(f, full) == 1

    def test_size_and_support(self):
        bdd = Bdd(3)
        f = bdd.and_(bdd.var(0), bdd.var(2))
        assert bdd.support_vars(f) == [0, 2]
        assert bdd.size(f) == 2


class TestNetworkImport:
    def test_matches_simulation(self):
        for seed in range(8):
            net = random_network(n_pi=4, n_gates=18, n_po=2, seed=seed + 70)
            bdd = Bdd(4)
            pi_vars = {pi: i for i, pi in enumerate(net.pis)}
            handles = build_from_network(bdd, net, pi_vars)
            for bits in all_minterms(4):
                ref = net.evaluate(dict(zip(net.pis, bits)))
                for nid, h in handles.items():
                    assert bdd.evaluate(h, list(bits)) == ref[nid], (
                        seed,
                        nid,
                        bits,
                    )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_equivalence_oracle(self, seed):
        """BDD canonicity decides equivalence: strash rebuild == original."""
        from repro.network import strash_network

        net = random_network(n_pi=4, n_gates=15, n_po=2, seed=seed)
        rebuilt = strash_network(net)
        bdd = Bdd(4)
        h1 = build_from_network(
            bdd, net, {pi: i for i, pi in enumerate(net.pis)}
        )
        h2 = build_from_network(
            bdd, rebuilt, {pi: i for i, pi in enumerate(rebuilt.pis)}
        )
        for (n1, nid1), (n2, nid2) in zip(net.pos, rebuilt.pos):
            assert n1 == n2
            assert h1[nid1] == h2[nid2]


def _random_bdd(bdd, rng, n):
    nodes = [bdd.var(i) for i in range(n)] + [ONE, ZERO]
    for _ in range(rng.randint(1, 12)):
        op = rng.choice(["and", "or", "xor", "not", "ite"])
        if op == "not":
            nodes.append(bdd.not_(rng.choice(nodes)))
        elif op == "ite":
            nodes.append(
                bdd.ite(rng.choice(nodes), rng.choice(nodes), rng.choice(nodes))
            )
        else:
            f, g = rng.choice(nodes), rng.choice(nodes)
            nodes.append(getattr(bdd, op + "_")(f, g))
    return nodes[-1]
