"""Failure-injection tests: budget exhaustion and fallback routing.

The paper's flow degrades gracefully: when SAT-based computations time
out, the structural path takes over (Section 3.6); when the sufficiency
check itself times out, feasibility is *assumed* and the structural
patch is produced anyway (Section 3.2).  These tests force those paths
with tiny conflict budgets.
"""

import dataclasses

import pytest

from repro import EcoEngine, EcoInstance, contest_config
from repro.benchgen import corrupt, generate_weights, make_specification
from repro.core import cec

from helpers import random_network


def make_instance(seed=0, n_targets=1, n_gates=40):
    golden = random_network(n_pi=5, n_gates=n_gates, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, n_targets, seed=seed + 5)
    spec = make_specification(golden)
    return EcoInstance(
        name=f"fb{seed}",
        impl=impl,
        spec=spec,
        targets=targets,
        weights=generate_weights(impl, "T3", seed=seed),
    )


def observable(inst):
    return cec(inst.impl, inst.spec).equivalent is False


class TestBudgetFallbacks:
    def test_tiny_budget_routes_to_structural(self):
        """With a starved SAT budget the engine must still succeed via
        the structural path (feasibility by QBF, patch by cofactor)."""
        routed = 0
        for seed in range(8):
            inst = make_instance(seed=seed)
            if not observable(inst):
                continue
            cfg = dataclasses.replace(
                contest_config(),
                budget_conflicts=1,  # starve every SAT query
                feasibility_method="qbf",
            )
            try:
                res = EcoEngine(cfg).run(inst)
            except Exception:
                continue  # some seeds exhaust even the structural path
            assert res.verified
            routed += 1
        assert routed >= 3

    def test_normal_budget_prefers_sat_flow(self):
        for seed in range(6):
            inst = make_instance(seed=seed)
            if not observable(inst):
                continue
            res = EcoEngine(contest_config()).run(inst)
            assert res.method == "sat"
            return
        pytest.skip("no observable instance found")

    def test_fallback_reason_recorded(self):
        for seed in range(10):
            inst = make_instance(seed=seed)
            if not observable(inst):
                continue
            cfg = dataclasses.replace(
                contest_config(),
                budget_conflicts=1,
                feasibility_method="qbf",
            )
            try:
                res = EcoEngine(cfg).run(inst)
            except Exception:
                continue
            if res.method.startswith("structural"):
                # either the SAT flow was attempted and fell back, or the
                # feasibility check itself timed out (assumed feasible)
                assert (
                    res.stats.get("sat_flow_fallback") == 1
                    or res.stats.get("feasibility_unknown") == 1
                )
                return
        pytest.skip("no structural fallback observed")


class TestVerifyToggle:
    def test_verify_disabled_still_produces_patches(self):
        inst = make_instance(seed=1)
        cfg = dataclasses.replace(contest_config(), verify=False)
        res = EcoEngine(cfg).run(inst)
        assert res.patches
        # and the result is in fact correct even unverified
        from repro.core import apply_patches

        patched = apply_patches(inst.impl, res.patches)
        assert cec(patched, inst.spec).equivalent


class TestDivisorStarvation:
    def test_divisor_cap_still_solves(self):
        """Capping internal divisors to zero leaves only window PIs,
        which always suffice when the step is feasible."""
        for seed in range(6):
            inst = make_instance(seed=seed)
            if not observable(inst):
                continue
            cfg = dataclasses.replace(contest_config(), max_divisors=0)
            res = EcoEngine(cfg).run(inst)
            assert res.verified
            return
        pytest.skip("no observable instance found")


class TestResubOption:
    def test_resub_improves_structural_patches(self):
        """§3.6.3 SAT resubstitution: never worse, often much better."""
        from repro.benchgen import build_unit, config_for, unit_spec

        spec = unit_spec("unit10")
        inst = build_unit(spec)
        base = dataclasses.replace(
            config_for(spec, "minassump"), use_cegar_min=False
        )
        plain = EcoEngine(base).run(inst)
        resub = EcoEngine(
            dataclasses.replace(base, use_resub=True)
        ).run(inst)
        assert resub.verified
        assert resub.cost <= plain.cost
        assert any(p.method == "resub" for p in resub.patches)

    def test_resub_plays_with_cegar_min(self):
        from repro.benchgen import build_unit, config_for, unit_spec

        spec = unit_spec("unit19")
        inst = build_unit(spec)
        cfg = dataclasses.replace(
            config_for(spec, "minassump"),
            use_resub=True,
            use_cegar_min=True,
        )
        res = EcoEngine(cfg).run(inst)
        assert res.verified


class TestAmortizedSupport:
    def test_shared_divisor_counted_once(self):
        """Two targets whose repairs both need signal 's': with
        amortization the second patch prefers the already-paid signal."""
        from repro.network import GateType, Network
        from repro.core import apply_patches

        def build(corrupt_it):
            net = Network()
            a, b, c = (net.add_pi(x) for x in "abc")
            s = net.add_gate(GateType.AND, [a, b], "s")
            g1 = GateType.OR if corrupt_it else GateType.AND
            g2 = GateType.NOR if corrupt_it else GateType.NAND
            u = net.add_gate(g1, [s, c], "u")
            v = net.add_gate(g2, [s, c], "v")
            net.add_po(u, "o1")
            net.add_po(v, "o2")
            return net

        impl, spec = build(True), build(False)
        inst = EcoInstance(
            "amort",
            impl,
            spec,
            targets=["u", "v"],
            weights={"a": 9, "b": 9, "c": 2, "s": 10},
        )
        cfg = dataclasses.replace(
            contest_config(), amortize_shared_support=True
        )
        res = EcoEngine(cfg).run(inst)
        assert res.verified
        patched = apply_patches(inst.impl, res.patches)
        assert cec(patched, inst.spec).equivalent
        plain = EcoEngine(contest_config()).run(inst)
        assert res.cost <= plain.cost
