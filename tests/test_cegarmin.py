"""Tests for CEGAR_min (max-flow re-support of structural patches)."""

import pytest

from repro.core import cegar_min
from repro.network import GateType, Network

from helpers import all_minterms


def impl_with_internal_equiv():
    """Implementation that already computes u = a & b internally."""
    net = Network("impl")
    a, b, c = (net.add_pi(x) for x in "abc")
    u = net.add_gate(GateType.AND, [a, b], "u")
    f = net.add_gate(GateType.OR, [u, c], "f")
    net.add_po(f, "o")
    return net


def pi_patch_and():
    """A patch over PIs computing a & b (as a structural patch would)."""
    patch = Network("patch")
    a, b = patch.add_pi("a"), patch.add_pi("b")
    g = patch.add_gate(GateType.AND, [a, b])
    patch.add_po(g, "p")
    return patch


class TestCegarMin:
    def test_rewires_to_internal_signal(self):
        impl = impl_with_internal_equiv()
        patch = pi_patch_and()
        candidates = [
            impl.node_by_name(n) for n in ("a", "b", "c", "u")
        ]
        weights = {impl.node_by_name("a"): 10, impl.node_by_name("b"): 10,
                   impl.node_by_name("c"): 10, impl.node_by_name("u"): 3}
        res = cegar_min(impl, patch, candidates, weights)
        assert res.support == ["u"]
        assert res.cost == 3
        assert res.gate_count == 0  # a bare wire to u

    def test_keeps_pis_when_cheaper(self):
        impl = impl_with_internal_equiv()
        patch = pi_patch_and()
        weights = {impl.node_by_name("a"): 1, impl.node_by_name("b"): 1,
                   impl.node_by_name("c"): 1, impl.node_by_name("u"): 50}
        candidates = list(weights)
        res = cegar_min(impl, patch, candidates, weights)
        assert sorted(res.support) == ["a", "b"]
        assert res.cost == 2

    def test_complemented_equivalence(self):
        # impl computes w = ~(a & b); patch needs a & b -> NOT(w)
        impl = Network("impl")
        a, b = impl.add_pi("a"), impl.add_pi("b")
        w = impl.add_gate(GateType.NAND, [a, b], "w")
        impl.add_po(w, "o")
        patch = pi_patch_and()
        weights = {impl.node_by_name("a"): 10, impl.node_by_name("b"): 10,
                   impl.node_by_name("w"): 1}
        res = cegar_min(impl, patch, list(weights), weights)
        assert res.support == ["w"]
        assert res.cost == 1
        # verify function: patch(w) must equal a & b
        for bits in all_minterms(2):
            w_val = 1 - (bits[0] & bits[1])
            out = res.network.evaluate_pos(
                {res.network.node_by_name("w"): w_val}
            )
            assert out["p"] == (bits[0] & bits[1])

    def test_result_function_preserved(self):
        """The re-supported patch must compute the same PI function."""
        impl = impl_with_internal_equiv()
        patch = pi_patch_and()
        weights = {impl.node_by_name(n): w for n, w in
                   [("a", 4), ("b", 7), ("c", 2), ("u", 5)]}
        res = cegar_min(impl, patch, list(weights), weights)
        for bits in all_minterms(3):
            ref = dict(zip("abc", bits))
            impl_vals = impl.evaluate(
                {impl.node_by_name(n): v for n, v in ref.items()}
            )
            assign = {
                pi: impl_vals[impl.node_by_name(res.network.node(pi).name)]
                for pi in res.network.pis
            }
            got = res.network.evaluate_pos(assign)["p"]
            assert got == (ref["a"] & ref["b"])

    def test_single_po_required(self):
        impl = impl_with_internal_equiv()
        patch = Network("bad")
        a = patch.add_pi("a")
        patch.add_po(a, "x")
        patch.add_po(a, "y")
        with pytest.raises(ValueError):
            cegar_min(impl, patch, [], {})

    def test_no_candidates_keeps_patch(self):
        impl = impl_with_internal_equiv()
        patch = pi_patch_and()
        res = cegar_min(impl, patch, [], {})
        # falls back to the original patch over PIs
        assert sorted(res.support) == ["a", "b"]
        assert res.gate_count == patch.num_gates
