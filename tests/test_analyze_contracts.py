"""Pass-contract dataflow verifier tests (repro.analyze, PA rules).

Covers the static half (every Table 1 preset verifies clean, a
reordered pipeline fails with PA001, the may-run-in-parallel partition
matches the hand-computed disjoint write-sets) and the dynamic half
(``enforce_contracts=True`` runs the real engine clean and catches an
undeclared write).
"""

import dataclasses

import pytest

from repro import EcoEngine, EcoInstance, contest_config
from repro.analyze import (
    ContractViolationError,
    declarable_field_names,
    parallel_partition,
    stage_contracts,
    validate_contract,
    verify_pipeline,
    verify_selection,
    verify_stage_order,
)
from repro.benchgen import corrupt, make_specification
from repro.core import cec
from repro.core.engine import (
    baseline_config,
    best_config,
    build_pipeline,
)
from repro.core.pipeline import (
    AMBIENT_FIELDS,
    ConflictBudget,
    EcoContext,
    EngineStats,
    Pass,
    PassManager,
    PassOutcome,
    Pipeline,
    contract,
    parse_pass_selection,
)
from repro.core.divisors import DivisorsPass, WindowPass
from repro.core.feasibility import FeasibilityPass

from helpers import random_network

PRESETS = {
    "baseline": baseline_config,
    "minassump": contest_config,
    "satprune_cegarmin": best_config,
}


def make_instance(seed=0, n_targets=1, n_gates=40):
    golden = random_network(n_pi=5, n_gates=n_gates, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, n_targets, seed=seed + 5)
    spec = make_specification(golden)
    return EcoInstance(
        name=f"an{seed}", impl=impl, spec=spec, targets=targets
    )


def first_observable(seeds=range(10), **kwargs):
    for seed in seeds:
        inst = make_instance(seed=seed, **kwargs)
        if cec(inst.impl, inst.spec).equivalent is False:
            return inst
    pytest.skip("no observable instance found")


def rules(analysis):
    return [f.rule for f in analysis.report]


# ---------------------------------------------------------------------------
# static verification of the real pipelines
# ---------------------------------------------------------------------------


class TestPresetsVerifyClean:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_pipeline_is_clean(self, name):
        analysis = verify_pipeline(build_pipeline(PRESETS[name]()))
        assert analysis.ok
        assert not analysis.report.findings

    def test_structural_only_verifies(self):
        cfg = dataclasses.replace(contest_config(), structural_only=True)
        analysis = verify_pipeline(build_pipeline(cfg))
        # divisors' output has no consumer without the SAT flow: that is
        # a warning (the config is legal), never an error
        assert analysis.ok
        assert all(f.rule == "PA002" for f in analysis.report.findings)

    def test_every_stage_declares_a_contract(self):
        for name, c in stage_contracts().items():
            assert c is not None, f"stage {name!r} has no contract"
            assert not validate_contract(name, c)

    def test_declarable_names_exclude_ambient(self):
        names = declarable_field_names()
        assert "window" in names and "target.patch" in names
        assert not names & AMBIENT_FIELDS


class TestReorderedPipelineFails:
    def test_stage_order_read_before_write(self):
        analysis = verify_stage_order(["divisors", "window"])
        assert not analysis.ok
        assert "PA001" in rules(analysis)
        pa001 = [f for f in analysis.report.errors if f.rule == "PA001"]
        assert pa001[0].name == "divisors"
        assert "'window'" in pa001[0].message

    def test_good_stage_order_passes(self):
        analysis = verify_stage_order(
            ["window", "divisors", "feasibility", "sat_flow", "support",
             "patch_function", "verify"]
        )
        assert analysis.ok

    def test_unknown_stage_is_pa003(self):
        analysis = verify_stage_order(["window", "bogus"])
        assert not analysis.ok
        assert "PA003" in rules(analysis)

    def test_duplicate_stage_is_pa004(self):
        analysis = verify_stage_order(["window", "divisors", "window"])
        assert "PA004" in rules(analysis)

    def test_reordered_prologue_in_real_pipeline(self):
        good = build_pipeline(contest_config())
        bad = Pipeline(
            prologue=[DivisorsPass(), WindowPass(), FeasibilityPass()],
            strategies=good.strategies,
            epilogue=good.epilogue,
            finalizers=good.finalizers,
        )
        analysis = verify_pipeline(bad)
        assert not analysis.ok
        assert "PA001" in rules(analysis)

    def test_duplicate_prologue_pass_is_pa004(self):
        good = build_pipeline(contest_config())
        bad = Pipeline(
            prologue=list(good.prologue) + [WindowPass()],
            strategies=good.strategies,
            epilogue=good.epilogue,
            finalizers=good.finalizers,
        )
        assert "PA004" in rules(verify_pipeline(bad))

    def test_no_strategy_is_pa008(self):
        good = build_pipeline(contest_config())
        bad = Pipeline(
            prologue=good.prologue,
            strategies=[],
            epilogue=[],
            finalizers=[],
        )
        analysis = verify_pipeline(bad)
        assert not analysis.ok
        assert "PA008" in rules(analysis)


class TestDeclarationValidation:
    def test_ambient_field_is_pa006(self):
        bad = contract(reads=("config", "window"), writes=("divisors",))
        findings = validate_contract("x", bad)
        assert [f.rule for f in findings] == ["PA006"]
        assert "ambient" in findings[0].message

    def test_unknown_field_is_pa006(self):
        bad = contract(reads=("no_such_field",))
        findings = validate_contract("x", bad)
        assert [f.rule for f in findings] == ["PA006"]
        assert "unknown field" in findings[0].message

    def test_optional_flag_mismatch_is_pa006(self):
        c = contract(reads=("window",), writes=("divisors",))
        findings = validate_contract("x", c, optional_flag=True)
        assert [f.rule for f in findings] == ["PA006"]

    def test_missing_contract_is_pa003(self):
        findings = validate_contract("x", None)
        assert [f.rule for f in findings] == ["PA003"]


class TestSelectionVerification:
    def test_noop_skip_is_pa007(self):
        # contest has no satprune stage: skipping it changes nothing
        analysis = verify_selection(
            contest_config(), parse_pass_selection("-satprune")
        )
        assert analysis.ok  # warning only
        assert "PA007" in rules(analysis)

    def test_effective_skip_is_quiet(self):
        analysis = verify_selection(
            best_config(), parse_pass_selection("-satprune")
        )
        assert "PA007" not in rules(analysis)

    def test_duplicate_selection_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            parse_pass_selection("support,support")

    def test_skip_and_keep_same_name_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            parse_pass_selection("verify,-verify")


# ---------------------------------------------------------------------------
# may-run-in-parallel partition
# ---------------------------------------------------------------------------


class TestParallelPartition:
    def test_prologue_partition(self):
        # window writes {target_ids, window}; divisors writes {divisors};
        # feasibility writes {feasibility, countermoves_by_name}:
        # divisors and feasibility have disjoint write-sets and neither
        # reads the other's output, so they share a wave
        analysis = verify_pipeline(build_pipeline(contest_config()))
        assert analysis.partitions["prologue"] == [
            ["window"], ["divisors", "feasibility"],
        ]

    def test_best_target_partition_keeps_satprune_serial(self):
        # satprune reads and rewrites target.support_ids, so it can
        # never share a wave with its producer or its consumer
        analysis = verify_pipeline(build_pipeline(best_config()))
        assert analysis.partitions["target:sat_flow"] == [
            ["support"], ["satprune"], ["patch_function"],
        ]

    def test_contest_target_partition(self):
        analysis = verify_pipeline(build_pipeline(contest_config()))
        assert analysis.partitions["target:sat_flow"] == [
            ["support"], ["patch_function"],
        ]

    def test_undeclared_contract_is_conservative(self):
        a = contract(writes=("window",))
        b = contract(writes=("divisors",))
        assert parallel_partition(
            [("a", a), ("x", None), ("b", b)]
        ) == [["a"], ["x"], ["b"]]

    def test_solver_stages_may_share_a_wave(self):
        # uses_solver alone is not a conflict: divisors/feasibility
        # prove that independent solver users can fan out
        a = contract(reads=("window",), writes=("divisors",))
        b = contract(
            reads=("window",), writes=("feasibility",), uses_solver=True
        )
        assert parallel_partition([("a", a), ("b", b)]) == [["a", "b"]]

    def test_mutating_stages_never_share(self):
        a = contract(writes=("patches",), mutates_network=True)
        b = contract(writes=("method",), mutates_network=True)
        assert parallel_partition([("a", a), ("b", b)]) == [["a"], ["b"]]


# ---------------------------------------------------------------------------
# dynamic enforcement
# ---------------------------------------------------------------------------


def _make_ctx(inst):
    cfg = contest_config()
    return EcoContext(
        instance=inst,
        config=cfg,
        stats=EngineStats(),
        budget=ConflictBudget(None),
        t_start=0.0,
        base_impl=inst.impl.clone(),
        spec=inst.spec,
    )


class _RoguePass(Pass):
    name = "rogue"
    contract = contract(reads=("instance",))

    def run(self, ctx):
        ctx.method = "rogue"
        return PassOutcome()


class _SneakyReader(Pass):
    name = "sneaky"
    contract = contract(writes=("target_ids",))

    def run(self, ctx):
        _ = ctx.spec  # undeclared read
        ctx.target_ids = []
        return PassOutcome()


class TestDynamicEnforcement:
    def test_undeclared_write_raises(self):
        ctx = _make_ctx(make_instance())
        manager = PassManager(enforce_contracts=True)
        with pytest.raises(ContractViolationError, match="PA005") as exc:
            manager.run_pass(_RoguePass(), ctx)
        assert "method" in str(exc.value)

    def test_undeclared_read_raises(self):
        ctx = _make_ctx(make_instance())
        manager = PassManager(enforce_contracts=True)
        with pytest.raises(ContractViolationError, match="spec"):
            manager.run_pass(_SneakyReader(), ctx)

    def test_honest_pass_is_untouched(self):
        ctx = _make_ctx(make_instance())
        manager = PassManager(enforce_contracts=True)
        outcome = manager.run_pass(WindowPass(), ctx)
        assert outcome.status == "ok"
        assert ctx.window is not None

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_full_engine_run_under_enforcement(self, name):
        inst = first_observable()
        res = EcoEngine(PRESETS[name](), enforce_contracts=True).run(inst)
        assert res.verified

    def test_structural_only_under_enforcement(self):
        inst = first_observable()
        cfg = dataclasses.replace(
            contest_config(),
            structural_only=True,
            use_cegar_min=True,
            use_resub=True,
        )
        res = EcoEngine(cfg, enforce_contracts=True).run(inst)
        assert res.verified


# ---------------------------------------------------------------------------
# engine wiring and CLI
# ---------------------------------------------------------------------------


class TestEngineAndCli:
    def test_engine_statically_verifies_every_run(self, monkeypatch):
        # sabotage a declared contract: the engine must refuse to run
        monkeypatch.setattr(
            WindowPass, "contract", contract(reads=("window",))
        )
        from repro.core.engine import EcoEngineError

        with pytest.raises(EcoEngineError, match="PA001"):
            EcoEngine(contest_config()).run(make_instance())

    def test_cli_rejects_read_before_write_order(self, capsys):
        from repro.cli import main

        rc = main(["analyze", "--stages", "divisors,window"])
        assert rc == 1
        assert "PA001" in capsys.readouterr().out

    def test_cli_verifies_presets_clean(self, capsys):
        from repro.cli import main

        rc = main(["analyze", "--no-lint", "--strict"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel[prologue]: {window} | {divisors, feasibility}" in out

    def test_cli_json_exposes_partitions(self, capsys):
        import json

        from repro.cli import main

        rc = main(["analyze", "--no-lint", "--json",
                   "--method", "satprune_cegarmin"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        analysis = doc["pipelines"]["satprune_cegarmin"]
        assert analysis["partitions"]["target:sat_flow"] == [
            ["support"], ["satprune"], ["patch_function"],
        ]
