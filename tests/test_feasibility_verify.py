"""Tests for the sufficiency check (§3.2) and final verification."""

import pytest

from repro.core import build_miter, cec, check_feasibility
from repro.network import GateType, Network

from helpers import random_network


def fixable_instance():
    """Corrupting u is fixable because u is the only difference."""

    def build(corrupt):
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        u = net.add_gate(GateType.OR if corrupt else GateType.AND, [a, b], "u")
        f = net.add_gate(GateType.OR, [u, c], "f")
        net.add_po(f, "o")
        return net

    return build(True), build(False)


def unfixable_instance():
    """The corruption affects an output outside the target's fanout.

    Output o1 differs (w corrupted) but the declared target z only
    drives o2, so no patch at z can repair o1.
    """

    def build(corrupt):
        net = Network()
        a, b, c = (net.add_pi(x) for x in "abc")
        w = net.add_gate(
            GateType.OR if corrupt else GateType.AND, [a, b], "w"
        )
        z = net.add_gate(GateType.OR, [c, a], "z")
        net.add_po(w, "o1")
        net.add_po(z, "o2")
        return net

    return build(True), build(False)


class TestCheckFeasibility:
    @pytest.mark.parametrize("method", ["expansion", "qbf"])
    def test_fixable(self, method):
        impl, spec = fixable_instance()
        m = build_miter(impl, spec, [impl.node_by_name("u")])
        res = check_feasibility(m, method=method)
        assert res.feasible is True
        assert res.method == method

    @pytest.mark.parametrize("method", ["expansion", "qbf"])
    def test_unfixable(self, method):
        impl, spec = unfixable_instance()
        m = build_miter(impl, spec, [impl.node_by_name("z")])
        res = check_feasibility(m, method=method)
        assert res.feasible is False
        assert res.witness is not None
        # the witness input must indeed be unfixable: both z values differ
        assign = dict(res.witness)
        for n_val in (0, 1):
            full = dict(assign)
            full[m.target_pis[0]] = n_val
            assert m.net.evaluate_pos(full)["miter"] == 1

    def test_auto_selects_expansion_for_few_targets(self):
        impl, spec = fixable_instance()
        m = build_miter(impl, spec, [impl.node_by_name("u")])
        res = check_feasibility(m, method="auto")
        assert res.method == "expansion"

    def test_qbf_collects_countermoves(self):
        impl, spec = fixable_instance()
        m = build_miter(impl, spec, [impl.node_by_name("u")])
        res = check_feasibility(m, method="qbf")
        assert res.feasible
        assert res.countermoves

    def test_unknown_method_rejected(self):
        impl, spec = fixable_instance()
        m = build_miter(impl, spec, [impl.node_by_name("u")])
        with pytest.raises(ValueError):
            check_feasibility(m, method="nope")


class TestCec:
    def test_equivalent(self):
        net = random_network(n_pi=4, n_gates=20, seed=6)
        assert cec(net, net.clone()).equivalent is True

    def test_strash_equivalent(self):
        from repro.network import strash_network

        net = random_network(n_pi=5, n_gates=30, seed=7)
        assert cec(net, strash_network(net)).equivalent is True

    def test_inequivalent_with_counterexample(self):
        impl, spec = fixable_instance()
        res = cec(impl, spec)
        assert res.equivalent is False
        cex = res.counterexample
        impl_o = impl.evaluate_pos(
            {p: cex[impl.node(p).name] for p in impl.pis}
        )
        spec_o = spec.evaluate_pos(
            {p: cex[spec.node(p).name] for p in spec.pis}
        )
        assert impl_o != spec_o


class TestCecPreprocessed:
    def test_equivalent_with_preprocessing(self):
        from repro.network import strash_network

        net = random_network(n_pi=5, n_gates=30, seed=17)
        assert cec(net, strash_network(net), preprocess=True).equivalent

    def test_counterexample_with_preprocessing(self):
        impl, spec = fixable_instance()
        res = cec(impl, spec, preprocess=True)
        assert res.equivalent is False
        cex = res.counterexample
        impl_o = impl.evaluate_pos(
            {p: cex[impl.node(p).name] for p in impl.pis}
        )
        spec_o = spec.evaluate_pos(
            {p: cex[spec.node(p).name] for p in spec.pis}
        )
        assert impl_o != spec_o
