"""Tests for SAT-based exact pruning (minimum-cost support search)."""

import itertools
import random


from repro.core import SatPruneStats, sat_prune


def monotone_oracle(feasible_cores):
    """Feasible iff the subset contains at least one core entirely."""

    def is_feasible(ids):
        s = set(ids)
        return any(core <= s for core in feasible_cores)

    return is_feasible


def brute_minimum(items, cost, is_feasible):
    best_cost = None
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            if is_feasible(combo):
                c = sum(cost[i] for i in combo)
                if best_cost is None or c < best_cost:
                    best_cost = c
    return best_cost


class TestSatPrune:
    def test_single_core(self):
        items = [0, 1, 2, 3]
        cost = {0: 5, 1: 2, 2: 9, 3: 1}
        oracle = monotone_oracle([{1, 3}])
        best = sat_prune(items, cost, oracle)
        assert best == [1, 3]

    def test_picks_cheapest_core(self):
        items = list(range(6))
        cost = {0: 4, 1: 4, 2: 1, 3: 1, 4: 1, 5: 100}
        oracle = monotone_oracle([{0, 1}, {2, 3, 4}])
        best = sat_prune(items, cost, oracle)
        assert best == [2, 3, 4]  # cost 3 beats cost 8

    def test_empty_set_feasible(self):
        best = sat_prune([0, 1], {0: 1, 1: 1}, lambda ids: True)
        assert best == []

    def test_infeasible_returns_none(self):
        best = sat_prune([0, 1], {0: 1, 1: 1}, lambda ids: False)
        assert best is None

    def test_initial_solution_bounds_search(self):
        items = [0, 1]
        cost = {0: 1, 1: 1}
        stats = SatPruneStats()
        best = sat_prune(
            items,
            cost,
            monotone_oracle([{0}]),
            initial_solution=[0],
            stats=stats,
        )
        assert best == [0]

    def test_matches_brute_force_random(self):
        rng = random.Random(77)
        for trial in range(30):
            n = rng.randint(3, 7)
            items = list(range(n))
            cost = {i: rng.randint(1, 9) for i in items}
            cores = [
                set(rng.sample(items, rng.randint(1, max(1, n // 2))))
                for _ in range(rng.randint(1, 3))
            ]
            oracle = monotone_oracle(cores)
            best = sat_prune(items, cost, oracle, grow=bool(trial % 2))
            expect = brute_minimum(items, cost, oracle)
            got = sum(cost[i] for i in best) if best is not None else None
            assert got == expect, (trial, cores, cost, best)

    def test_grow_reduces_blocking_clauses(self):
        items = list(range(8))
        cost = {i: 1 for i in items}
        oracle = monotone_oracle([{6, 7}])
        s_grow = SatPruneStats()
        sat_prune(items, cost, monotone_oracle([{6, 7}]), grow=True, stats=s_grow)
        s_plain = SatPruneStats()
        sat_prune(items, cost, oracle, grow=False, stats=s_plain)
        assert s_grow.blocking_clauses <= s_plain.blocking_clauses

    def test_check_budget_respected(self):
        calls = SatPruneStats()
        sat_prune(
            list(range(10)),
            {i: 1 for i in range(10)},
            lambda ids: False,
            max_checks=5,
            stats=calls,
        )
        assert calls.feasibility_checks <= 5
