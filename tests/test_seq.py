"""Tests for the sequential ECO extension (repro.seq)."""

import random

import pytest

from repro.network import GateType, Network, NetworkError
from repro.seq import (
    Latch,
    SeqEcoError,
    SeqNetwork,
    parse_seq_bench,
    run_sequential_eco,
    seq_cec,
    transition_equivalent,
    unroll,
    write_seq_bench,
)


def counter2(corrupt=False, name="cnt"):
    """2-bit counter with enable; q1 toggles when q0 (buggy: OR)."""
    core = Network(name)
    en = core.add_pi("en")
    q0 = core.add_pi("q0")
    q1 = core.add_pi("q1")
    n0 = core.add_gate(GateType.XOR, [q0, en], "n0")
    carry_t = GateType.OR if corrupt else GateType.AND
    carry = core.add_gate(carry_t, [q0, en], "carry")
    n1 = core.add_gate(GateType.XOR, [q1, carry], "n1")
    core.add_po(q1, "msb")
    core.add_po(q0, "lsb")
    latches = [
        Latch("q0", q0, n0, init=0),
        Latch("q1", q1, n1, init=0),
    ]
    return SeqNetwork(core, latches)


class TestSeqNetwork:
    def test_counter_counts(self):
        cnt = counter2()
        en = cnt.core.node_by_name("en")
        trace = cnt.simulate([{en: 1}] * 5)
        values = [(o["msb"], o["lsb"]) for o in trace]
        # outputs show the *pre-clock* state each cycle
        assert values == [(0, 0), (0, 1), (1, 0), (1, 1), (0, 0)]

    def test_enable_freezes(self):
        cnt = counter2()
        en = cnt.core.node_by_name("en")
        trace = cnt.simulate([{en: 1}, {en: 0}, {en: 0}, {en: 1}])
        values = [(o["msb"], o["lsb"]) for o in trace]
        assert values == [(0, 0), (0, 1), (0, 1), (0, 1)]

    def test_latch_output_must_be_pi(self):
        core = Network()
        a = core.add_pi("a")
        g = core.add_gate(GateType.NOT, [a], "g")
        with pytest.raises(NetworkError):
            SeqNetwork(core, [Latch("g", g, a)])

    def test_clone_behaves_identically(self):
        cnt = counter2()
        twin = cnt.clone()
        en1 = cnt.core.node_by_name("en")
        en2 = twin.core.node_by_name("en")
        rng = random.Random(5)
        seq = [{en1: rng.getrandbits(1)} for _ in range(12)]
        seq2 = [{en2: s[en1]} for s in seq]
        assert cnt.simulate(seq) == twin.simulate(seq2)

    def test_true_pis_excludes_latches(self):
        cnt = counter2()
        assert [cnt.core.node(p).name for p in cnt.true_pis] == ["en"]


class TestUnroll:
    def test_unrolled_matches_step_simulation(self):
        cnt = counter2()
        frames = 5
        unrolled = unroll(cnt, frames)
        en = cnt.core.node_by_name("en")
        rng = random.Random(3)
        for _ in range(10):
            bits = [rng.getrandbits(1) for _ in range(frames)]
            ref = cnt.simulate([{en: b} for b in bits])
            assign = {
                unrolled.node_by_name(f"en@{t}"): bits[t]
                for t in range(frames)
            }
            got = unrolled.evaluate_pos(assign)
            for t in range(frames):
                assert got[f"msb@{t}"] == ref[t]["msb"], (bits, t)
                assert got[f"lsb@{t}"] == ref[t]["lsb"]

    def test_free_initial_state(self):
        cnt = counter2()
        unrolled = unroll(cnt, 2, from_initial_state=False)
        names = {unrolled.node(p).name for p in unrolled.pis}
        assert "q0@0" in names and "q1@0" in names

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            unroll(counter2(), 0)


class TestSeqVerify:
    def test_equivalent_counters(self):
        assert seq_cec(counter2(), counter2(), frames=6).equivalent
        assert transition_equivalent(counter2(), counter2()).equivalent

    def test_corrupted_counter_detected(self):
        good, bad = counter2(), counter2(corrupt=True)
        res = seq_cec(good, bad, frames=6)
        assert res.equivalent is False
        assert res.counterexample is not None
        assert transition_equivalent(good, bad).equivalent is False

    def test_shallow_bound_may_miss(self):
        # the carry bug needs q0 = 1 to show: invisible in 1 frame
        good, bad = counter2(), counter2(corrupt=True)
        res = seq_cec(good, bad, frames=1)
        assert res.equivalent is True  # bounded!
        assert transition_equivalent(good, bad).equivalent is False


class TestSequentialEco:
    def test_fix_counter_carry_bug(self):
        impl = counter2(corrupt=True)
        spec = counter2()
        res = run_sequential_eco(
            impl,
            spec,
            targets=["carry"],
            weights={"en": 5, "q0": 1, "q1": 7, "n0": 3},
            bmc_frames=8,
        )
        assert res.transition_verified
        assert res.bmc_verified
        assert res.patches[0].target == "carry"
        # the patched machine counts correctly
        en = res.patched.core.node_by_name("en")
        trace = res.patched.simulate([{en: 1}] * 4)
        assert [(o["msb"], o["lsb"]) for o in trace] == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]

    def test_interface_mismatch_rejected(self):
        impl = counter2(corrupt=True)
        spec = counter2()
        spec.latches[0].init = 1
        with pytest.raises(SeqEcoError):
            run_sequential_eco(impl, spec, targets=["carry"])

    def test_multi_target_sequential(self):
        impl = counter2(corrupt=True)
        # also corrupt n0 (XOR -> XNOR)
        core = impl.core
        n0 = core.node_by_name("n0")
        core.set_fanins(
            n0, GateType.XNOR, [core.node_by_name("q0"), core.node_by_name("en")]
        )
        res = run_sequential_eco(
            impl, counter2(), targets=["carry", "n0"], bmc_frames=6
        )
        assert res.transition_verified and res.bmc_verified


class TestSeqBenchIO:
    BENCH = """
    # toggler
    INPUT(en)
    OUTPUT(q)
    q = DFF(nq)
    nq = XOR(q, en)
    """

    def test_parse(self):
        seq = parse_seq_bench(self.BENCH)
        assert seq.num_latches == 1
        en = seq.core.node_by_name("en")
        trace = seq.simulate([{en: 1}, {en: 1}, {en: 0}, {en: 1}])
        assert [o["q"] for o in trace] == [0, 1, 0, 0]

    def test_roundtrip(self):
        seq = parse_seq_bench(self.BENCH)
        again = parse_seq_bench(write_seq_bench(seq))
        en1 = seq.core.node_by_name("en")
        en2 = again.core.node_by_name("en")
        rng = random.Random(9)
        bits = [rng.getrandbits(1) for _ in range(16)]
        assert seq.simulate([{en1: b} for b in bits]) == again.simulate(
            [{en2: b} for b in bits]
        )

    def test_dff_arity_checked(self):
        with pytest.raises(Exception):
            parse_seq_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n")


class TestSequentialEcoCertification:
    """End-to-end: a sequential ECO unit through the pass pipeline with
    independent certification of the emitted patch (repro.check)."""

    def test_pipeline_certifies_the_patch(self):
        # verify_certificates=True makes the pipeline re-check its own
        # result with the independent certificate checker before the
        # run is allowed to report success
        import dataclasses

        from repro.core.engine import contest_config

        cfg = dataclasses.replace(contest_config(), verify_certificates=True)
        res = run_sequential_eco(
            counter2(corrupt=True),
            counter2(),
            targets=["carry"],
            weights={"en": 5, "q0": 1, "q1": 7, "n0": 3},
            config=cfg,
            bmc_frames=8,
        )
        assert res.transition_verified and res.bmc_verified
        assert res.stats.get("certificate_checked") == 1

    def test_direct_certify_of_transition_view(self):
        # the same combinational instance the sequential wrapper builds,
        # certified explicitly through repro.check
        from repro.check import certify
        from repro.core.engine import EcoEngine, contest_config
        from repro.io.weights import EcoInstance
        from repro.seq.eco import _transition_view

        instance = EcoInstance(
            name="seq_cert",
            impl=_transition_view(counter2(corrupt=True)),
            spec=_transition_view(counter2()),
            targets=["carry"],
            weights={"en": 5, "q0": 1, "q1": 7, "n0": 3},
        )
        result = EcoEngine(contest_config()).run(instance)
        assert result.verified
        report = certify(instance, result)
        assert report.ok
