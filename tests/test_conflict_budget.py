"""ConflictBudget edge cases: boundaries, escalation, retry accounting.

Complements the basics in ``test_pipeline.py``: exhaustion exactly at
the limit, deeply nested metered regions with exceptions in flight,
escalation semantics for the retry policy, the budget being shared
across a run's fallback strategies, and ``budget_conflicts_spent``
staying accurate when a strategy is retried.
"""

import dataclasses

import pytest

from repro import EcoEngine, contest_config
from repro.benchgen.harness import run_unit
from repro.benchgen.suite import SUITE, build_unit
from repro.core.pipeline import ConflictBudget
from repro.resilience import EngineFault, RetryPolicy
from repro.sat.solver import SatBudgetExceeded


def spec_named(name):
    return next(u for u in SUITE if u.name == name)


class TestBoundary:
    def test_exhaustion_exactly_at_limit(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(10)
        with b.metered():
            tally[0] += 10
        assert b.spent == 10
        assert b.remaining == 0
        assert b.exhausted()  # spent == limit is exhausted, not "one left"

    def test_one_under_limit_not_exhausted(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(10)
        with b.metered():
            tally[0] += 9
        assert not b.exhausted()
        assert b.remaining == 1

    def test_zero_budget_is_born_exhausted(self):
        b = ConflictBudget(0)
        assert b.exhausted()
        with b.metered() as cap:
            assert cap == 0


class TestNesting:
    def test_three_levels_charge_once(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(100)
        with b.metered():
            tally[0] += 1
            with b.metered():
                tally[0] += 2
                with b.metered():
                    tally[0] += 4
            tally[0] += 8
        assert b.spent == 15

    def test_inner_cap_reflects_entry_remaining(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(100)
        b.spent = 40
        with b.metered() as outer_cap:
            tally[0] += 10
            with b.metered() as inner_cap:
                # charging happens at outermost exit: the inner region
                # still sees the remaining-at-entry snapshot
                assert inner_cap == outer_cap == 60

    def test_exception_inside_region_still_charges(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(100)
        with pytest.raises(SatBudgetExceeded):
            with b.metered():
                tally[0] += 30
                raise SatBudgetExceeded("mid-region")
        assert b.spent == 30

    def test_sequential_regions_accumulate(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(100)
        for add in (3, 5, 7):
            with b.metered():
                tally[0] += add
        assert b.spent == 15
        assert b.remaining == 85


class TestEscalation:
    def test_escalate_multiplies_limit(self):
        b = ConflictBudget(100)
        assert b.escalate(2.0) is True
        assert b.limit == 200

    def test_escalate_always_grows(self):
        # factor 1.0 must still make progress (limit+1), or a retry
        # would re-run the identical failure
        b = ConflictBudget(100)
        assert b.escalate(1.0) is True
        assert b.limit == 101

    def test_unlimited_budget_cannot_escalate(self):
        b = ConflictBudget(None)
        assert b.escalate(2.0) is False
        assert b.limit is None

    def test_escalation_unexhausts(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(10)
        with b.metered():
            tally[0] += 10
        assert b.exhausted()
        b.escalate(2.0)
        assert not b.exhausted()
        assert b.remaining == 10


class TestSharedAcrossStrategies:
    def test_budget_spent_includes_fallback_work(self):
        # starve the SAT flow so the run falls through to the
        # structural path; the reported spend covers the whole run,
        # not just the failed strategy
        spec = spec_named("unit13")
        inst = build_unit(spec)
        cfg = dataclasses.replace(
            contest_config(), budget_conflicts=8, feasibility_method="qbf"
        )
        res = EcoEngine(cfg).run(inst)
        assert res.verified
        spent = res.engine_stats.budget_conflicts_spent
        assert spent >= 0
        # the run-level budget is one object: every strategy's conflicts
        # (and the prologue's) land in the same counter
        assert res.stats["budget_conflicts_spent"] == spent

    def test_spend_accurate_under_retry(self):
        # an injected transient failure forces one retry; the retry
        # re-runs the SAT flow, so spend must cover both attempts and
        # stay within the escalated limit
        spec = spec_named("unit13")
        fault = EngineFault(
            fail_stage="sat_flow", fail_exception="SatBudgetExceeded"
        )
        base = run_unit(spec, ("minassump",))
        baseline_spent = base.results[
            "minassump"
        ].engine_stats.budget_conflicts_spent
        row = run_unit(
            spec, ("minassump",), faults=fault, retry_policy=RetryPolicy()
        )
        res = row.results["minassump"]
        stats = res.engine_stats
        assert stats.retries == 1
        assert res.method == "sat"
        # attempt 1 failed at strategy entry (injected), attempt 2 did
        # the real work: spend ≈ one clean run, never double-counted
        # against an unrelated tally
        assert stats.budget_conflicts_spent >= baseline_spent
        limit = contest_config().budget_conflicts
        escalated = int(limit * RetryPolicy().budget_escalation)
        assert stats.budget_conflicts_spent <= escalated

    def test_retry_exhaustion_advances_chain(self):
        # budget so small that even escalated retries exhaust: the
        # chain must advance (or the run error) rather than loop
        spec = spec_named("unit13")
        inst = build_unit(spec)
        cfg = dataclasses.replace(
            contest_config(),
            budget_conflicts=1,
            feasibility_method="qbf",
            retry_policy=RetryPolicy(max_retries=2),
        )
        res = EcoEngine(cfg).run(inst)
        assert res.verified
        stats = res.engine_stats
        retries = stats.retries or 0
        assert retries <= 2
        # with budget=1 the SAT flow cannot have won cleanly on its
        # first attempt: there was a retry, a fallback, or the prologue
        # absorbed the exhaustion (feasible=None skips the SAT flow)
        assert (
            retries >= 1
            or stats.fallback_chain
            or res.method != "sat"
        )
