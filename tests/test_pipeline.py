"""Pass-pipeline framework tests: selection, budget, fallback chain.

The engine is a declarative pipeline (see docs/PIPELINE.md): these
tests exercise the framework pieces in isolation — ``--passes``
parsing, the run-level :class:`ConflictBudget` accounting, typed
:class:`EngineStats` serialization — and inject failures into the
strategy chain to pin down the ``sat_flow → certificate → structural``
fallback order and its telemetry.
"""

import dataclasses

import pytest

from repro import EcoEngine, EcoInstance, contest_config, obs
from repro.benchgen import corrupt, generate_weights, make_specification
from repro.core import cec
from repro.core.engine import (
    baseline_config,
    best_config,
    build_pipeline,
    pipeline_stages,
)
from repro.core.feasibility import EcoInfeasibleError
from repro.core.patchfunc import PatchEnumerationError
from repro.core.pipeline import (
    MANDATORY_STAGES,
    STAGE_NAMES,
    ConflictBudget,
    EcoEngineError,
    EngineStats,
    PassSelection,
    SatFlowStrategy,
    parse_pass_selection,
)
from repro.core.structural import CertificateStrategy, StructuralFallbackStrategy
from repro.sat.solver import SatBudgetExceeded

from helpers import random_network


def make_instance(seed=0, n_targets=1, n_gates=40):
    golden = random_network(n_pi=5, n_gates=n_gates, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, n_targets, seed=seed + 5)
    spec = make_specification(golden)
    return EcoInstance(
        name=f"pl{seed}",
        impl=impl,
        spec=spec,
        targets=targets,
        weights=generate_weights(impl, "T3", seed=seed),
    )


def observable(inst):
    return cec(inst.impl, inst.spec).equivalent is False


def first_observable(seeds=range(10), **kwargs):
    for seed in seeds:
        inst = make_instance(seed=seed, **kwargs)
        if observable(inst):
            return inst
    pytest.skip("no observable instance found")


# ---------------------------------------------------------------------------
# --passes selection
# ---------------------------------------------------------------------------


class TestPassSelection:
    def test_skip_spec(self):
        sel = parse_pass_selection("-cegar_min")
        assert sel.skip == frozenset({"cegar_min"})
        assert not sel.only

    def test_whitelist_spec(self):
        sel = parse_pass_selection("feasibility,sat_flow,support,patch_function")
        assert sel.only == frozenset(
            {"feasibility", "sat_flow", "support", "patch_function"}
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            parse_pass_selection("nonsense")

    def test_mandatory_cannot_be_skipped(self):
        for name in MANDATORY_STAGES:
            with pytest.raises(ValueError, match="mandatory"):
                parse_pass_selection(f"-{name}")

    def test_apply_keeps_mandatory_and_order(self):
        sel = PassSelection(only=frozenset({"verify"}))
        stages = pipeline_stages(contest_config())
        kept = sel.apply(stages)
        assert kept == ["window", "divisors", "verify"]

    def test_apply_skip(self):
        sel = parse_pass_selection("-verify,-satprune")
        kept = sel.apply(pipeline_stages(best_config()))
        assert "verify" not in kept and "satprune" not in kept
        assert "support" in kept and "cegar_min" in kept


class TestDeclarativeStages:
    """Each Table 1 preset maps to an explicit stage list."""

    def test_baseline(self):
        assert pipeline_stages(baseline_config()) == (
            "window", "divisors", "feasibility", "sat_flow", "support",
            "patch_function", "certificate", "structural", "verify",
        )

    def test_contest(self):
        assert pipeline_stages(contest_config()) == (
            "window", "divisors", "feasibility", "sat_flow", "support",
            "patch_function", "certificate", "structural", "verify",
        )

    def test_best(self):
        assert pipeline_stages(best_config()) == (
            "window", "divisors", "feasibility", "sat_flow", "support",
            "satprune", "patch_function", "certificate", "structural",
            "cegar_min", "verify",
        )

    def test_structural_only_drops_sat_flow(self):
        cfg = dataclasses.replace(contest_config(), structural_only=True)
        stages = pipeline_stages(cfg)
        assert "sat_flow" not in stages and "support" not in stages
        assert "certificate" in stages and "structural" in stages

    def test_all_stage_names_catalogued(self):
        for cfg in (baseline_config(), contest_config(), best_config()):
            assert set(pipeline_stages(cfg)) <= set(STAGE_NAMES)

    def test_incomplete_sat_flow_selection_drops_strategy(self):
        # sat_flow without its per-target passes cannot run
        pipe = build_pipeline(
            contest_config(), parse_pass_selection("-support")
        )
        assert all(s.name != "sat_flow" for s in pipe.strategies)

    def test_full_pipeline_has_three_strategies(self):
        pipe = build_pipeline(contest_config())
        assert [s.name for s in pipe.strategies] == [
            "sat_flow", "certificate", "structural",
        ]


# ---------------------------------------------------------------------------
# run-level conflict budget
# ---------------------------------------------------------------------------


class TestConflictBudget:
    def test_unlimited(self):
        b = ConflictBudget(None)
        assert b.remaining is None
        assert not b.exhausted()
        with b.metered() as cap:
            assert cap is None

    def test_cap_is_remaining(self):
        b = ConflictBudget(100)
        b.spent = 30
        with b.metered() as cap:
            assert cap == 70

    def test_charges_conflicts(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(100)
        with b.metered():
            tally[0] += 12
        assert b.spent == 12
        assert b.remaining == 88

    def test_nested_regions_charge_once(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(100)
        with b.metered():
            tally[0] += 5
            with b.metered():
                tally[0] += 7
            tally[0] += 1
        assert b.spent == 13  # outermost region charged exactly once

    def test_exhaustion_floors_at_zero(self, monkeypatch):
        tally = [0]
        monkeypatch.setattr(
            "repro.core.pipeline.conflict_tally", lambda: tally[0]
        )
        b = ConflictBudget(10)
        with b.metered():
            tally[0] += 25
        assert b.exhausted()
        assert b.remaining == 0

    def test_engine_reports_spend(self):
        inst = first_observable()
        res = EcoEngine(contest_config()).run(inst)
        assert "budget_conflicts_spent" in res.stats
        spent = res.stats["budget_conflicts_spent"]
        assert 0 <= spent <= contest_config().budget_conflicts
        assert res.engine_stats.budget_conflicts_spent == spent

    def test_unlimited_budget_has_no_spend_key(self):
        inst = first_observable()
        cfg = dataclasses.replace(contest_config(), budget_conflicts=None)
        res = EcoEngine(cfg).run(inst)
        assert "budget_conflicts_spent" not in res.stats


# ---------------------------------------------------------------------------
# typed stats
# ---------------------------------------------------------------------------


class TestEngineStats:
    def test_untouched_optional_fields_omitted(self):
        d = EngineStats().to_dict()
        assert d == {
            "window_pos": 0,
            "divisor_candidates": 0,
            "feasibility_copies": 0,
        }

    def test_bump_initializes_from_none(self):
        s = EngineStats()
        s.bump("cubes", 3)
        s.bump("cubes")
        assert s.to_dict()["cubes"] == 4

    def test_record_fallback(self):
        s = EngineStats()
        s.record_fallback("sat_flow", SatBudgetExceeded("b"))
        s.record_fallback("certificate", PatchEnumerationError("e"))
        assert s.fallback_chain == [
            "sat_flow:SatBudgetExceeded",
            "certificate:PatchEnumerationError",
        ]
        d = s.to_dict()
        assert d["sat_flow_fallback"] == 1
        assert d["fallback_reason_SatBudgetExceeded"] == 1
        assert d["fallback_reason_PatchEnumerationError"] == 1

    def test_non_sat_flow_fallback_not_counted_as_sat_flow(self):
        s = EngineStats()
        s.record_fallback("certificate", EcoEngineError("x"))
        assert s.sat_flow_fallback is None


# ---------------------------------------------------------------------------
# fallback-chain injection
# ---------------------------------------------------------------------------


def _raise(exc):
    def run(self, ctx, manager):
        raise exc

    return run


class TestFallbackChain:
    def test_sat_flow_failure_falls_back_to_structural(self, monkeypatch):
        inst = first_observable()
        monkeypatch.setattr(
            SatFlowStrategy, "run", _raise(SatBudgetExceeded("injected"))
        )
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            res = EcoEngine(contest_config()).run(inst)
        finally:
            registry.disable()
        assert res.verified
        assert res.method == "structural"
        assert res.stats["sat_flow_fallback"] == 1
        assert res.stats["fallback_reason_SatBudgetExceeded"] == 1
        assert res.engine_stats.fallback_chain == [
            "sat_flow:SatBudgetExceeded"
        ]
        assert registry.counters["engine.fallback.SatBudgetExceeded"] == 1
        assert registry.counters["engine.sat_flow_fallback"] == 1

    def test_chain_order_sat_certificate_structural(self, monkeypatch):
        inst = first_observable(n_targets=2)
        cfg = dataclasses.replace(
            contest_config(), feasibility_method="qbf"
        )
        monkeypatch.setattr(
            SatFlowStrategy, "run", _raise(SatBudgetExceeded("injected"))
        )
        monkeypatch.setattr(
            CertificateStrategy, "run", _raise(PatchEnumerationError("injected"))
        )
        try:
            res = EcoEngine(cfg).run(inst)
        except (EcoEngineError, EcoInfeasibleError):
            pytest.skip("structural path could not finish this seed")
        assert res.verified
        assert res.method == "structural"
        chain = res.engine_stats.fallback_chain
        assert chain[0] == "sat_flow:SatBudgetExceeded"
        # the certificate strategy sits between sat_flow and structural
        # whenever QBF countermoves make it applicable
        if len(chain) > 1:
            assert chain[1] == "certificate:PatchEnumerationError"

    def test_every_strategy_failing_reraises_last(self, monkeypatch):
        inst = first_observable()
        monkeypatch.setattr(
            SatFlowStrategy, "run", _raise(SatBudgetExceeded("injected"))
        )
        monkeypatch.setattr(
            CertificateStrategy, "run", _raise(EcoEngineError("injected"))
        )
        monkeypatch.setattr(
            StructuralFallbackStrategy,
            "run",
            _raise(EcoInfeasibleError("injected")),
        )
        with pytest.raises(EcoInfeasibleError):
            EcoEngine(contest_config()).run(inst)

    def test_infeasible_from_prologue_still_raises(self):
        # a feasibility proof of infeasibility must not be "handled"
        # by the strategy chain — it happens before the chain starts
        from repro.network import GateType, Network

        impl = Network()
        a = impl.add_pi("a")
        g = impl.add_gate(GateType.NOT, [a], "g")
        impl.add_po(g, "o")
        impl.add_po(a, "p")
        spec = Network()
        a2 = spec.add_pi("a")
        g2 = spec.add_gate(GateType.NOT, [a2], "g")
        spec.add_po(g2, "o")
        spec.add_po(g2, "p")  # 'p' differs outside any patchable cone
        inst = EcoInstance("infeas", impl, spec, targets=["g"], weights={})
        with pytest.raises(EcoInfeasibleError):
            EcoEngine(contest_config()).run(inst)


class TestLazyChainClone:
    """The fallback chain clones the implementation lazily.

    ``engine.clones`` counts working-copy clones made by the chain; a
    clean first-strategy success must make exactly one, and a strategy
    that fails *without* mutating the working copy must not force a
    fresh clone for the next strategy.
    """

    def _run_counted(self, inst, cfg=None):
        registry = obs.get_registry()
        registry.reset()
        registry.enable()
        try:
            res = EcoEngine(cfg or contest_config()).run(inst)
        finally:
            registry.disable()
        return res, dict(registry.counters)

    def test_clean_success_clones_once(self):
        inst = first_observable()
        res, counters = self._run_counted(inst)
        assert res.verified
        assert counters["engine.clones"] == 1

    def test_unmutated_failure_reuses_clone(self, monkeypatch):
        # sat_flow dies before touching ctx.current: the structural
        # fallback can keep the pristine working copy
        inst = first_observable()
        monkeypatch.setattr(
            SatFlowStrategy, "run", _raise(SatBudgetExceeded("injected"))
        )
        res, counters = self._run_counted(inst)
        assert res.method == "structural"
        assert counters["engine.clones"] == 1

    def test_mutated_failure_reclones(self, monkeypatch):
        # sat_flow splices junk into the working copy, then fails: the
        # next strategy must get a fresh pristine clone
        from repro.network import GateType

        def dirty_fail(self, ctx, manager):
            pis = ctx.current.pis
            ctx.current.add_gate(GateType.NOT, [pis[0]])
            raise SatBudgetExceeded("injected after mutation")

        inst = first_observable()
        monkeypatch.setattr(SatFlowStrategy, "run", dirty_fail)
        res, counters = self._run_counted(inst)
        assert res.method == "structural"
        assert res.verified
        assert counters["engine.clones"] == 2


# ---------------------------------------------------------------------------
# --passes end to end
# ---------------------------------------------------------------------------


class TestPassesEndToEnd:
    def test_engine_accepts_spec_string(self):
        inst = first_observable()
        res = EcoEngine(contest_config(), passes="-verify").run(inst)
        assert res.patches
        # verify was skipped, so the flag keeps its optimistic default
        assert res.verified

    def test_minimal_sat_selection(self):
        inst = first_observable()
        res = EcoEngine(
            contest_config(),
            passes="feasibility,sat_flow,support,patch_function,verify",
        ).run(inst)
        assert res.verified
        assert res.method == "sat"

    def test_skipped_feasibility_is_assumed(self):
        inst = first_observable()
        res = EcoEngine(contest_config(), passes="-feasibility").run(inst)
        assert res.verified
        assert res.method == "sat"

    def test_cli_run_with_passes(self, capsys):
        from repro.cli import main

        rc = main(
            ["run", "--unit", "unit1", "--method", "minassump",
             "--passes=-cegar_min,-resub"]
        )
        assert rc == 0

    def test_cli_rejects_bad_passes(self, capsys):
        from repro.cli import main

        rc = main(["run", "--unit", "unit1", "--passes", "bogus"])
        assert rc == 2

    def test_bench_entry_has_pass_columns(self):
        from repro.benchgen import SUITE, run_unit

        row = run_unit(SUITE[0], methods=["minassump"], collect_telemetry=True)
        entry = row.telemetry["minassump"]
        assert entry["passes"]
        for name, secs in entry["passes"].items():
            assert name in STAGE_NAMES
            assert entry["phases"]["engine." + name] == secs
