"""Property tests for the Totalizer cardinality encoding.

Cross-checks ``at_most`` / ``at_least`` against brute-force model
counting for every input size from 1 to 6 (plus the empty totalizer),
including duplicated and negated input literals, and exercises the
unified bound-edge contract (``None`` for trivially-true bounds, a
constant-false assumption literal for unsatisfiable ones).
"""

import itertools

import pytest

from repro.sat.cardinality import Totalizer
from repro.sat.solver import Solver
from repro.sat.types import is_negated, lit_var, mklit, neg


def _count_models(n_vars, input_lits, bound_check):
    """Number of assignments whose true-input count satisfies the bound."""
    count = 0
    for bits in itertools.product([False, True], repeat=n_vars):
        true_inputs = sum(
            1 for lit in input_lits if bits[lit_var(lit)] != is_negated(lit)
        )
        if bound_check(true_inputs):
            count += 1
    return count


def _count_sat_models(solver, n_vars, assumption):
    """Count assignments of the first ``n_vars`` vars the solver accepts."""
    base = [] if assumption is None else [assumption]
    count = 0
    for bits in itertools.product([False, True], repeat=n_vars):
        pin = base + [mklit(v, not bits[v]) for v in range(n_vars)]
        if solver.solve(pin):
            count += 1
    return count


def _make(input_spec):
    """Build (solver, totalizer, n_vars, lits) from (var, negated) pairs."""
    solver = Solver()
    n_vars = 1 + max(v for v, _ in input_spec)
    for _ in range(n_vars):
        solver.new_var()
    lits = [mklit(v, negd) for v, negd in input_spec]
    return solver, Totalizer(solver, lits), n_vars, lits


# input shapes: distinct vars, duplicates, negations, mixed duplicates
def _input_specs():
    specs = []
    for n in range(1, 7):
        specs.append([(i, False) for i in range(n)])  # n distinct
    specs.append([(0, False), (0, False)])  # pure duplicate
    specs.append([(0, False), (0, True)])  # x and !x: always exactly 1
    specs.append([(0, False), (1, False), (0, False)])  # mixed duplicate
    specs.append([(0, True), (1, False), (1, False), (2, True)])
    specs.append([(0, False), (1, True), (0, False), (1, True), (2, False)])
    return specs


@pytest.mark.parametrize("input_spec", _input_specs())
def test_at_most_matches_brute_force(input_spec):
    n = len(input_spec)
    for k in range(-1, n + 2):
        solver, tot, n_vars, lits = _make(input_spec)
        expected = _count_models(n_vars, lits, lambda t: t <= k)
        got = _count_sat_models(solver, n_vars, tot.at_most(k))
        assert got == expected, f"at_most({k}) over {input_spec}"


@pytest.mark.parametrize("input_spec", _input_specs())
def test_at_least_matches_brute_force(input_spec):
    n = len(input_spec)
    for k in range(-1, n + 2):
        solver, tot, n_vars, lits = _make(input_spec)
        expected = _count_models(n_vars, lits, lambda t: t >= k)
        got = _count_sat_models(solver, n_vars, tot.at_least(k))
        assert got == expected, f"at_least({k}) over {input_spec}"


@pytest.mark.parametrize("input_spec", _input_specs())
def test_window_bounds_compose(input_spec):
    """at_least(lo) and at_most(hi) assumed together count a window."""
    n = len(input_spec)
    for lo, hi in [(1, n - 1), (0, 0), (n, n), (2, 3)]:
        solver, tot, n_vars, lits = _make(input_spec)
        assum = [a for a in (tot.at_least(lo), tot.at_most(hi)) if a is not None]
        expected = _count_models(n_vars, lits, lambda t: lo <= t <= hi)
        count = 0
        for bits in itertools.product([False, True], repeat=n_vars):
            pin = assum + [mklit(v, not bits[v]) for v in range(n_vars)]
            if solver.solve(pin):
                count += 1
        assert count == expected, f"[{lo},{hi}] over {input_spec}"


class TestEdgeContract:
    def test_trivially_true_bounds_return_none(self):
        solver = Solver()
        for _ in range(3):
            solver.new_var()
        tot = Totalizer(solver, [mklit(0), mklit(1), mklit(2)])
        assert tot.at_most(3) is None
        assert tot.at_most(7) is None
        assert tot.at_least(0) is None
        assert tot.at_least(-2) is None

    def test_unsat_bounds_return_constant_false(self):
        solver = Solver()
        for _ in range(2):
            solver.new_var()
        tot = Totalizer(solver, [mklit(0), mklit(1)])
        f1 = tot.at_most(-1)
        f2 = tot.at_least(3)
        assert f1 is not None and f2 is not None
        assert f1 == f2  # the constant-false literal is shared
        assert solver.solve([f1]) is False
        assert solver.solve() is True  # only the assumption is falsified

    def test_empty_totalizer(self):
        solver = Solver()
        tot = Totalizer(solver, [])
        assert tot.outputs == []
        assert tot.at_most(0) is None
        assert tot.at_least(0) is None
        f = tot.at_least(1)
        assert f is not None
        assert solver.solve([f]) is False
        assert solver.solve() is True

    def test_symmetry_of_directions(self):
        """at_least(k) is the negation of at_most(k-1) for inner k."""
        solver = Solver()
        for _ in range(4):
            solver.new_var()
        tot = Totalizer(solver, [mklit(v) for v in range(4)])
        for k in range(1, 4):
            assert tot.at_least(k) == neg(tot.at_most(k - 1))
