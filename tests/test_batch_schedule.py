"""Partition-driven per-target scheduling (repro.batch.schedule).

Satellite contract: running the SAT flow's per-target chain in the
analyzer's wave order must be *byte-identical* to the sequential order —
same patches (down to the emitted Verilog), same solver counters —
across all three Table 1 presets.  Today's ``target:sat_flow`` waves
are singletons (each pass reads what the previous one writes), so the
wave schedule is a re-derivation of the sequential order; these tests
pin that equivalence so a future partition change that accidentally
reorders effectful passes is caught immediately.
"""

import pytest

from repro import EcoEngine, EcoInstance, obs
from repro.batch.schedule import WaveSatFlowStrategy, wave_pipeline
from repro.benchgen import corrupt, generate_weights, make_specification
from repro.core import cec, clear_extraction_memo
from repro.core.engine import (
    baseline_config,
    best_config,
    build_pipeline,
    contest_config,
)
from repro.core.pipeline import SatFlowStrategy
from repro.io.verilog import write_verilog
from repro.sat.template import clear_template_memo

from helpers import random_network

PRESETS = {
    "baseline": baseline_config,
    "minassump": contest_config,
    "satprune_cegarmin": best_config,
}


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_extraction_memo()
    clear_template_memo()
    yield
    clear_extraction_memo()
    clear_template_memo()


def make_instance(seed=0, n_targets=2, n_gates=40):
    golden = random_network(n_pi=5, n_gates=n_gates, n_po=3, seed=seed)
    impl, targets, _ = corrupt(golden, n_targets, seed=seed + 5)
    spec = make_specification(golden)
    return EcoInstance(
        name=f"sched{seed}",
        impl=impl,
        spec=spec,
        targets=targets,
        weights=generate_weights(impl, "T1", seed=seed),
    )


def first_observable(seeds=range(12), **kwargs):
    for seed in seeds:
        inst = make_instance(seed=seed, **kwargs)
        if cec(inst.impl, inst.spec).equivalent is False:
            return inst
    pytest.skip("no observable instance found")


def run_with(cfg, inst, factory=None):
    """Engine run under a fresh registry; returns (result, counters)."""
    clear_extraction_memo()
    clear_template_memo()
    registry = obs.get_registry()
    registry.reset()
    registry.enable()
    try:
        engine = (
            EcoEngine(cfg)
            if factory is None
            else EcoEngine(cfg, pipeline_factory=factory)
        )
        res = engine.run(inst)
    finally:
        registry.disable()
    return res, dict(registry.counters)


def patch_bytes(res):
    """Canonical byte rendering of every patch in result order."""
    return [
        (
            p.target,
            tuple(p.support),
            p.cost,
            p.gate_count,
            p.method,
            write_verilog(p.network),
        )
        for p in res.patches
    ]


SOLVER_KEYS = (
    "sat.solves",
    "sat.decisions",
    "sat.propagations",
    "sat.conflicts",
    "sat.restarts",
    "sat.learned_literals",
    "sat.template_stamps",
    "sat.template_clauses",
)


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_wave_schedule_is_byte_identical_to_sequential(preset):
    inst = first_observable(n_targets=2)
    cfg = PRESETS[preset]()
    seq_res, seq_counters = run_with(cfg, inst)
    wav_res, wav_counters = run_with(cfg, inst, factory=wave_pipeline)

    assert wav_res.cost == seq_res.cost
    assert wav_res.gate_count == seq_res.gate_count
    assert wav_res.verified == seq_res.verified
    assert wav_res.method == seq_res.method
    assert patch_bytes(wav_res) == patch_bytes(seq_res)
    for key in SOLVER_KEYS:
        assert wav_counters.get(key, 0) == seq_counters.get(key, 0), key


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_wave_schedule_single_target(preset):
    inst = first_observable(n_targets=1)
    cfg = PRESETS[preset]()
    seq_res, seq_counters = run_with(cfg, inst)
    wav_res, wav_counters = run_with(cfg, inst, factory=wave_pipeline)
    assert patch_bytes(wav_res) == patch_bytes(seq_res)
    for key in SOLVER_KEYS:
        assert wav_counters.get(key, 0) == seq_counters.get(key, 0), key


def test_wave_pipeline_swaps_in_wave_strategy():
    pipe = wave_pipeline(best_config())
    sat_flows = [
        s for s in pipe.strategies if isinstance(s, SatFlowStrategy)
    ]
    assert sat_flows
    assert all(isinstance(s, WaveSatFlowStrategy) for s in sat_flows)
    # today's partition: sequentially dependent passes → singleton waves
    strat = sat_flows[0]
    assert [[p.name for p in wave] for wave in strat.waves] == [
        ["support"],
        ["satprune"],
        ["patch_function"],
    ]


def test_wave_pipeline_counts_waves():
    inst = first_observable(n_targets=1)
    _, counters = run_with(best_config(), inst, factory=wave_pipeline)
    assert counters.get("batch.waves", 0) == 3


def test_wave_pipeline_structural_only_unchanged():
    import dataclasses

    cfg = dataclasses.replace(
        best_config(), structural_only=True, feasibility_method="qbf"
    )
    pipe = wave_pipeline(cfg)
    assert not any(
        isinstance(s, WaveSatFlowStrategy) for s in pipe.strategies
    )


def test_wave_strategy_rejects_unknown_and_missing_passes():
    pipe = build_pipeline(best_config())
    strat = next(
        s for s in pipe.strategies if isinstance(s, SatFlowStrategy)
    )
    with pytest.raises(ValueError, match="unknown per-target pass"):
        WaveSatFlowStrategy(strat.target_passes, [["support"], ["nope"]])
    with pytest.raises(ValueError, match="omits per-target passes"):
        WaveSatFlowStrategy(strat.target_passes, [["support"]])
