"""Crash-safe parallel harness: timeouts, crashes, checkpoints.

``run_suite``'s process-pool path must survive worker death and hangs:
deadlines are measured from submission, stragglers are terminated,
``BrokenProcessPool`` recycles the pool with bounded per-unit retries,
degraded rows carry the measured wall clock, and a checkpoint file lets
an interrupted suite resume.
"""

import json
import multiprocessing as mp
import os
import time

import pytest

from repro import obs
from repro.benchgen.harness import (
    CHECKPOINT_SCHEMA,
    _degraded_row,
    load_checkpoint,
    row_degraded,
    run_suite,
    save_checkpoint,
)
from repro.benchgen.suite import SUITE
from repro.resilience import FaultPlan


@pytest.fixture
def registry():
    reg = obs.get_registry()
    was = reg.enabled
    reg.reset()
    reg.enable()
    yield reg
    reg.enabled = was
    reg.reset()


def assert_no_zombies(grace_s=3.0):
    deadline = time.monotonic() + grace_s
    while mp.active_children():
        assert time.monotonic() < deadline, (
            f"zombie workers: {mp.active_children()}"
        )
        time.sleep(0.1)


def methods_of(row):
    return {m: row.results[m].method for m in row.results}


class TestCrashRecovery:
    def test_crash_degrades_and_recycles(self, registry):
        plan = FaultPlan(seed=0, crash=frozenset({"unit1"}))
        rows = run_suite(
            names=["unit1", "unit4"],
            methods=("minassump",),
            jobs=2,
            fault_plan=plan,
            max_unit_retries=1,
        )
        assert [r.name for r in rows] == ["unit1", "unit4"]
        assert methods_of(rows[0]) == {"minassump": "crashed"}
        assert rows[1].results["minassump"].verified
        assert registry.counters.get("harness.unit_crashed") == 1
        assert registry.counters.get("harness.unit_retry", 0) >= 1
        assert registry.counters.get("harness.pool_recycled", 0) >= 1
        assert_no_zombies()

    def test_innocent_units_survive_crash(self, registry):
        # all four units share the pool with a crasher; every healthy
        # unit must still produce a real row
        plan = FaultPlan(seed=0, crash=frozenset({"unit2"}))
        rows = run_suite(
            names=["unit1", "unit2", "unit4", "unit13"],
            methods=("minassump",),
            jobs=2,
            fault_plan=plan,
            max_unit_retries=1,
        )
        by_name = {r.name: r for r in rows}
        assert methods_of(by_name["unit2"]) == {"minassump": "crashed"}
        for name in ("unit1", "unit4", "unit13"):
            assert by_name[name].results["minassump"].verified, name
        assert_no_zombies()

    def test_crash_then_retry_success_records_retry_clock_only(self, registry):
        # regression: the bench row of a unit that crashes and then
        # succeeds on retry must record the retry attempt's runtime,
        # not the cumulative wall clock across attempts.  The crashing
        # attempt burns 0.75s before dying; unit1's engine run is far
        # below that, so any cross-attempt accumulation is detectable.
        plan = FaultPlan(
            seed=0, crash_times={"unit1": 1}, crash_after_s=0.75
        )
        t0 = time.monotonic()
        rows = run_suite(
            names=["unit1"],
            methods=("minassump",),
            jobs=1,
            fault_plan=plan,
            max_unit_retries=2,
        )
        wall = time.monotonic() - t0
        res = rows[0].results["minassump"]
        assert res.method not in ("crashed", "timeout", "error")
        assert res.verified
        # the suite really did pay for the crashed attempt...
        assert wall >= 0.75
        # ...but the row charges only the successful retry
        assert res.runtime_seconds < 0.75
        assert registry.counters.get("harness.unit_retry") == 1
        assert registry.counters.get("harness.unit_crashed", 0) == 0
        assert_no_zombies()

    def test_crash_giveup_records_final_attempt_not_cumulative(self, registry):
        # three crashing attempts at ~0.6s each; the degraded row must
        # carry the final attempt's measured elapsed, not the ~1.8s sum
        plan = FaultPlan(
            seed=0, crash_times={"unit1": 3}, crash_after_s=0.6
        )
        rows = run_suite(
            names=["unit1"],
            methods=("minassump",),
            jobs=1,
            fault_plan=plan,
            max_unit_retries=2,
            retry_backoff_s=0.0,
        )
        res = rows[0].results["minassump"]
        assert res.method == "crashed"
        assert 0.6 <= res.runtime_seconds < 1.2
        assert registry.counters.get("harness.unit_crashed") == 1
        assert registry.counters.get("harness.unit_retry") == 2
        assert_no_zombies()

    def test_fault_plan_forces_parallel_path(self):
        # a crash fault in the serial path would os._exit the test
        # process itself; fault_plan must force the pool even with
        # jobs=1 and no timeout
        plan = FaultPlan(seed=0, crash=frozenset({"unit1"}))
        rows = run_suite(
            names=["unit1"],
            methods=("minassump",),
            jobs=1,
            fault_plan=plan,
            max_unit_retries=0,
        )
        assert methods_of(rows[0]) == {"minassump": "crashed"}


class TestTimeouts:
    def test_hang_times_out_with_measured_elapsed(self, registry):
        plan = FaultPlan(
            seed=0, hang=frozenset({"unit1"}), hang_seconds=60.0
        )
        t0 = time.monotonic()
        rows = run_suite(
            names=["unit1", "unit4"],
            methods=("minassump",),
            jobs=2,
            unit_timeout=2.0,
            fault_plan=plan,
        )
        wall = time.monotonic() - t0
        by_name = {r.name: r for r in rows}
        res = by_name["unit1"].results["minassump"]
        assert res.method == "timeout"
        # measured elapsed, not the configured value verbatim
        assert 2.0 <= res.runtime_seconds < 15.0
        assert by_name["unit4"].results["minassump"].verified
        # the hanging worker was terminated: nowhere near hang_seconds
        assert wall < 30.0
        assert registry.counters.get("harness.unit_timeout") == 1
        assert_no_zombies()

    def test_timeout_measured_from_submission_not_collection(self):
        # both units are submitted together (jobs=2); the hanging unit
        # is last in suite order, so the old collection-order timeout
        # would have charged unit4's queue wait against it
        plan = FaultPlan(
            seed=0, hang=frozenset({"unit4"}), hang_seconds=60.0
        )
        rows = run_suite(
            names=["unit1", "unit4"],
            methods=("minassump",),
            jobs=2,
            unit_timeout=3.0,
            fault_plan=plan,
        )
        by_name = {r.name: r for r in rows}
        assert by_name["unit1"].results["minassump"].verified
        res = by_name["unit4"].results["minassump"]
        assert res.method == "timeout"
        assert res.runtime_seconds == pytest.approx(3.0, abs=1.5)
        assert_no_zombies()


class TestDegradedRows:
    def test_error_rows_record_measured_elapsed(self, registry):
        # fatal corruption raises inside the worker after real work
        plan = FaultPlan(seed=0, corrupt={"unit1": "bogus_target"})
        rows = run_suite(
            names=["unit1"],
            methods=("minassump",),
            jobs=1,
            fault_plan=plan,
        )
        res = rows[0].results["minassump"]
        assert res.method == "error"
        assert res.runtime_seconds > 0.0
        assert registry.counters.get("harness.unit_error") == 1

    def test_degraded_row_shape(self):
        spec = next(u for u in SUITE if u.name == "unit1")
        row = _degraded_row(spec, ("minassump",), "crashed", 1.25, True)
        assert row_degraded(row)
        res = row.results["minassump"]
        assert res.method == "crashed"
        assert res.runtime_seconds == 1.25
        assert res.verified is False
        assert row.telemetry["minassump"]["counters"] == {
            "harness.unit_crashed": 1
        }


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        ck = str(tmp_path / "ck.json")
        rows = run_suite(
            names=["unit1", "unit4"], methods=("minassump",), checkpoint=ck
        )
        assert os.path.exists(ck)
        with open(ck, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == CHECKPOINT_SCHEMA
        restored = load_checkpoint(ck)
        assert sorted(restored) == ["unit1", "unit4"]
        for name, row in restored.items():
            assert row.results["minassump"].cost == next(
                r for r in rows if r.name == name
            ).results["minassump"].cost

    def test_resume_skips_finished_units(self, registry, tmp_path):
        ck = str(tmp_path / "ck.json")
        run_suite(names=["unit1"], methods=("minassump",), checkpoint=ck)
        registry.reset()
        registry.enable()
        rows = run_suite(
            names=["unit1", "unit4"], methods=("minassump",), checkpoint=ck
        )
        assert [r.name for r in rows] == ["unit1", "unit4"]
        assert registry.counters.get("harness.checkpoint_restored") == 1
        # both rows are real results
        assert all(r.results["minassump"].verified for r in rows)

    def test_resume_in_parallel_path(self, registry, tmp_path):
        ck = str(tmp_path / "ck.json")
        run_suite(names=["unit1"], methods=("minassump",), checkpoint=ck)
        rows = run_suite(
            names=["unit1", "unit4"],
            methods=("minassump",),
            jobs=2,
            checkpoint=ck,
        )
        assert [r.name for r in rows] == ["unit1", "unit4"]
        assert all(r.results["minassump"].verified for r in rows)
        assert_no_zombies()

    def test_degraded_rows_not_checkpointed(self, tmp_path):
        ck = str(tmp_path / "ck.json")
        plan = FaultPlan(seed=0, crash=frozenset({"unit1"}))
        rows = run_suite(
            names=["unit1", "unit4"],
            methods=("minassump",),
            jobs=2,
            fault_plan=plan,
            max_unit_retries=0,
            checkpoint=ck,
        )
        assert methods_of(rows[0]) == {"minassump": "crashed"}
        restored = load_checkpoint(ck)
        assert "unit1" not in restored  # must re-run on resume
        assert "unit4" in restored

    def test_corrupt_checkpoint_ignored(self, tmp_path):
        ck = str(tmp_path / "ck.json")
        with open(ck, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        assert load_checkpoint(ck) == {}
        with open(ck, "w", encoding="utf-8") as fh:
            json.dump({"schema": "something/else", "rows": []}, fh)
        assert load_checkpoint(ck) == {}

    def test_save_is_atomic(self, tmp_path):
        ck = str(tmp_path / "ck.json")
        rows = run_suite(
            names=["unit1"], methods=("minassump",), checkpoint=ck
        )
        save_checkpoint(ck, rows)
        assert not os.path.exists(ck + ".tmp")
        assert load_checkpoint(ck)


class TestOrdering:
    def test_suite_order_preserved_under_faults(self):
        plan = FaultPlan(
            seed=0,
            crash=frozenset({"unit4"}),
            corrupt={"unit2": "bogus_target"},
        )
        rows = run_suite(
            names=["unit1", "unit2", "unit4", "unit13"],
            methods=("minassump",),
            jobs=2,
            fault_plan=plan,
            max_unit_retries=0,
        )
        assert [r.name for r in rows] == ["unit1", "unit2", "unit4", "unit13"]
        assert_no_zombies()
