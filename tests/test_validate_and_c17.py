"""Tests for Network.validate() and the inline c17 reference circuit."""

import pytest

from repro import EcoEngine, contest_config
from repro.benchgen.circuits import C17_BENCH, c17, c17_eco_instance
from repro.network import GateType, Network, NetworkError

from helpers import random_network


class TestValidate:
    def test_clean_networks_pass(self):
        for seed in range(4):
            random_network(seed=seed).validate()

    def test_engine_outputs_pass_validation(self):
        inst = c17_eco_instance(seed=17)
        res = EcoEngine(contest_config()).run(inst)
        for patch in res.patches:
            patch.network.validate()
        from repro.core import apply_patches

        patched = apply_patches(inst.impl, res.patches)
        patched.validate()
        patched.cleanup()
        patched.validate()

    def test_detects_broken_fanout(self):
        net = Network()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_gate(GateType.AND, [a, b])
        net.add_po(g, "o")
        net._fanouts[a].discard(g)  # sabotage
        with pytest.raises(NetworkError):
            net.validate()

    def test_detects_name_map_damage(self):
        net = Network()
        net.add_pi("a")
        net._name_to_id["a"] = 99  # sabotage
        with pytest.raises(NetworkError):
            net.validate()

    def test_detects_cycle(self):
        net = Network()
        a = net.add_pi("a")
        g1 = net.add_gate(GateType.AND, [a, a])
        g2 = net.add_gate(GateType.OR, [g1, a])
        net.add_po(g2, "o")
        # sabotage: make g1 depend on g2 behind the API's back
        net._nodes[g1].fanins = [g2, a]
        net._fanouts[g2].add(g1)
        net._fanouts[a].discard(g1)
        with pytest.raises(NetworkError):
            net.validate()


class TestC17:
    # (input vector) -> (G22, G23); derived from the NAND netlist
    VECTORS = [
        ((0, 0, 0, 0, 0), (0, 0)),
        ((1, 1, 1, 1, 1), (1, 0)),
        ((1, 0, 1, 0, 0), (1, 0)),
        ((0, 1, 0, 1, 1), (1, 1)),
        ((0, 0, 1, 1, 0), (0, 0)),
    ]

    def test_structure(self):
        net = c17()
        assert net.num_pis == 5
        assert net.num_pos == 2
        assert net.num_gates == 6
        assert all(
            n.gtype is GateType.NAND for n in net.nodes() if n.is_gate
        )

    def test_known_vectors(self):
        net = c17()
        ins = [net.node_by_name(n) for n in ("G1", "G2", "G3", "G6", "G7")]
        for vector, (g22, g23) in self.VECTORS:
            out = net.evaluate_pos(dict(zip(ins, vector)))
            assert (out["G22"], out["G23"]) == (g22, g23), vector

    def test_eco_on_real_circuit(self):
        for seed in (17, 18, 23):
            inst = c17_eco_instance(seed=seed)
            res = EcoEngine(contest_config()).run(inst)
            assert res.verified, seed

    def test_bench_text_reparses(self):
        from repro.io import parse_bench

        assert parse_bench(C17_BENCH).num_gates == 6
