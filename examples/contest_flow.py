#!/usr/bin/env python3
"""The full ICCAD'17-contest-style flow, file formats included.

Mirrors how the contest delivered its units: an ``impl.v`` (old
implementation, structural Verilog), a ``spec.v`` (new specification),
a ``weights.txt``, and a target list.  The script materializes a suite
unit to disk, loads it back, runs all three Table 1 method
configurations, and writes the patched netlist as Verilog.

Run:  python examples/contest_flow.py [unit_name] [workdir]
"""

import os
import sys
import tempfile

from repro import EcoEngine, EcoInstance
from repro.benchgen import METHODS, config_for, unit_spec
from repro.benchgen.suite import build_unit
from repro.core import apply_patches, cec
from repro.io import write_verilog


def main() -> None:
    unit_name = sys.argv[1] if len(sys.argv) > 1 else "unit4"
    workdir = (
        sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(prefix="eco_")
    )
    spec = unit_spec(unit_name)

    # 1. materialize the contest bundle on disk
    instance = build_unit(spec)
    unit_dir = os.path.join(workdir, unit_name)
    instance.save(unit_dir)
    print(f"wrote {unit_dir}/{{impl.v, spec.v, weights.txt, targets.txt}}")

    # 2. load it back, exactly as a contestant tool would
    loaded = EcoInstance.load(unit_dir)
    print(
        f"{loaded.name}: {loaded.impl.num_pis} PIs, "
        f"{loaded.impl.num_gates} gates, targets={loaded.targets}"
    )

    # 3. solve under each Table 1 method configuration
    best = None
    for method in METHODS:
        engine = EcoEngine(config_for(spec, method))
        result = engine.run(loaded)
        print(
            f"  {method:>18}: cost={result.cost:6d} "
            f"gates={result.gate_count:4d} "
            f"time={result.runtime_seconds:6.2f}s verified={result.verified}"
        )
        if best is None or result.cost < best.cost:
            best = result

    # 4. emit the final patched netlist
    patched = apply_patches(loaded.impl, best.patches)
    patched.cleanup()
    assert cec(patched, loaded.spec).equivalent
    out_path = os.path.join(unit_dir, "patched.v")
    write_verilog(patched, out_path)
    print(f"patched netlist written to {out_path}")


if __name__ == "__main__":
    main()
