#!/usr/bin/env python3
"""Quickstart: fix a one-gate bug with a SAT-computed ECO patch.

A golden design computes  f = (a & b) | c  and  g = a ^ c.  The shipped
implementation has a bug: the AND was synthesized as an OR.  Instead of
re-synthesizing, we declare the buggy node a *target* and let the engine
compute a minimal-cost patch function.

Run:  python examples/quickstart.py
"""

from repro import EcoEngine, EcoInstance, contest_config
from repro.core import apply_patches, cec
from repro.io import write_verilog
from repro.network import GateType, Network


def build_golden() -> Network:
    net = Network("design")
    a, b, c = (net.add_pi(x) for x in "abc")
    ab = net.add_gate(GateType.AND, [a, b], "u_and")
    f = net.add_gate(GateType.OR, [ab, c], "f")
    g = net.add_gate(GateType.XOR, [a, c], "g")
    net.add_po(f, "out_f")
    net.add_po(g, "out_g")
    return net


def main() -> None:
    # the specification is the intended design
    spec = build_golden()

    # the implementation shipped with u_and synthesized as OR (the bug)
    impl = build_golden()
    impl.set_fanins(
        impl.node_by_name("u_and"),
        GateType.OR,
        [impl.node_by_name("a"), impl.node_by_name("b")],
    )

    # resource costs: using signal 'c' as a patch input is cheap,
    # 'a'/'b' are moderately expensive
    instance = EcoInstance(
        name="quickstart",
        impl=impl,
        spec=spec,
        targets=["u_and"],
        weights={"a": 3, "b": 5, "c": 1, "u_and": 2, "f": 10, "g": 10},
    )

    engine = EcoEngine(contest_config())
    result = engine.run(instance)

    print(f"verified: {result.verified}")
    print(f"patch cost: {result.cost}")
    print(f"patch gates: {result.gate_count}")
    for patch in result.patches:
        print(f"target {patch.target!r}: support={patch.support} "
              f"({patch.method})")
        print(write_verilog(patch.network))

    # splice the patches into a fresh copy and double-check equivalence
    patched = apply_patches(instance.impl, result.patches)
    assert cec(patched, spec).equivalent
    print("patched netlist is equivalent to the specification")


if __name__ == "__main__":
    main()
