#!/usr/bin/env python3
"""Structural patches and CEGAR_min (paper Section 3.6).

When the SAT-based support/function computation times out, the paper
derives the patch *structurally*: the cofactor M(0, x) of the ECO miter
is itself a valid patch in terms of primary inputs.  Such patches are
big and expensive; ``CEGAR_min`` then finds implementation signals
functionally equivalent to internal patch signals and re-supports the
patch on a minimum-weight cut (max-flow).

For multiple targets, the naive sequential construction needs 2^k - 1
miter copies; the QBF-certificate construction (§3.6.2) needs only one
copy per CEGAR countermove — this script prints both counts.

Run:  python examples/structural_fallback.py
"""

import dataclasses

from repro import EcoEngine, EcoInstance, best_config, contest_config
from repro.benchgen import generate_weights, parity_cone
from repro.benchgen.mutations import corrupt, make_specification
from repro.core import build_miter, check_feasibility


def main() -> None:
    golden = parity_cone(24, taps=4, seed=2)
    impl, targets, _ = corrupt(golden, num_targets=4, seed=11)
    spec = make_specification(golden)
    weights = generate_weights(impl, "T6", seed=2)
    instance = EcoInstance(
        name="parity_eco", impl=impl, spec=spec, targets=targets, weights=weights
    )

    # how many miter copies does each structural construction need?
    ids = [impl.node_by_name(t) for t in targets]
    miter = build_miter(impl, spec, ids)
    feas = check_feasibility(miter, method="qbf")
    k = len(targets)
    print(f"targets: {k}")
    print(f"naive sequential expansion: {2**k - 1} miter copies")
    print(f"QBF certificate:            {len(feas.countermoves)} miter copies")

    # structural flow without CEGAR_min
    plain_cfg = dataclasses.replace(
        contest_config(), structural_only=True, feasibility_method="qbf"
    )
    plain = EcoEngine(plain_cfg).run(instance)

    # and with CEGAR_min re-supporting each patch
    cm_cfg = dataclasses.replace(
        best_config(), structural_only=True, feasibility_method="qbf"
    )
    improved = EcoEngine(cm_cfg).run(instance)

    print(f"\nstructural patch:      cost={plain.cost:5d} "
          f"gates={plain.gate_count:5d} verified={plain.verified}")
    print(f"after CEGAR_min:       cost={improved.cost:5d} "
          f"gates={improved.gate_count:5d} verified={improved.verified}")
    for patch in improved.patches:
        print(f"  {patch.target}: method={patch.method} "
              f"support={patch.support[:6]}{'...' if len(patch.support) > 6 else ''}")


if __name__ == "__main__":
    main()
