#!/usr/bin/env python3
"""Sequential ECO: fixing a counter's carry chain without re-synthesis.

The paper's combinational engine extends to sequential circuits ([10]);
with registers matched one-to-one, the sequential problem reduces to a
combinational ECO on the transition view (latch outputs as pseudo-PIs,
next-state functions as pseudo-POs).  This example builds a 4-bit
counter whose carry chain was corrupted, patches it, and checks both
the transition equivalence (unbounded) and an 8-frame BMC from reset.

Run:  python examples/sequential_eco.py
"""

from repro.network import GateType, Network
from repro.seq import Latch, SeqNetwork, run_sequential_eco, write_seq_bench


def counter4(bug: bool = False) -> SeqNetwork:
    """4-bit enabled counter; with ``bug`` the carry into bit 2 is OR."""
    core = Network("counter4")
    en = core.add_pi("en")
    q = [core.add_pi(f"q{i}") for i in range(4)]
    carry = en
    nxt = []
    for i in range(4):
        nxt.append(core.add_gate(GateType.XOR, [q[i], carry], f"n{i}"))
        gtype = GateType.OR if (bug and i == 1) else GateType.AND
        carry = core.add_gate(gtype, [q[i], carry], f"c{i}")
    for i in range(4):
        core.add_po(q[i], f"count{i}")
    latches = [Latch(f"q{i}", q[i], nxt[i], init=0) for i in range(4)]
    return SeqNetwork(core, latches)


def show_count(seq: SeqNetwork, cycles: int) -> str:
    en = seq.core.node_by_name("en")
    trace = seq.simulate([{en: 1}] * cycles)
    return " ".join(
        str(sum(o[f"count{i}"] << i for i in range(4))) for o in trace
    )


def main() -> None:
    impl = counter4(bug=True)
    spec = counter4(bug=False)
    print("buggy counter counts: ", show_count(impl, 10))
    print("intended sequence:    ", show_count(spec, 10))

    result = run_sequential_eco(
        impl,
        spec,
        targets=["c1"],
        weights={f"q{i}": 2 for i in range(4)} | {"en": 5, "c0": 1, "c1": 1},
        bmc_frames=8,
    )
    print(f"\npatch cost={result.cost} gates={result.gate_count}")
    print(f"transition equivalence proven: {result.transition_verified}")
    print(f"BMC ({result.bmc_frames} frames) passed: {result.bmc_verified}")
    print("patched counter counts:", show_count(result.patched, 10))
    print("\npatched netlist (.bench):")
    print(write_seq_bench(result.patched.clone()))


if __name__ == "__main__":
    main()
