#!/usr/bin/env python3
"""Multi-target ECO: late specification change to an ALU slice.

The scenario the paper's introduction motivates: a design is already
synthesized when the spec changes.  Here a 6-bit ALU's opcode decoding
changes late (two internal functions must be updated), and the engine
repairs both targets one at a time — universally quantifying the
not-yet-patched target exactly as Section 3.1 describes (Theorem 1).

Run:  python examples/multi_target_eco.py
"""

from repro import EcoEngine, EcoInstance, contest_config
from repro.benchgen import alu_slice, generate_weights
from repro.benchgen.mutations import corrupt, make_specification


def main() -> None:
    golden = alu_slice(6)
    print(
        f"golden ALU: {golden.num_pis} PIs, {golden.num_pos} POs, "
        f"{golden.num_gates} gates"
    )

    # corrupt two internal nodes — these become the ECO targets
    impl, targets, records = corrupt(golden, num_targets=2, seed=7)
    for rec in records:
        print(f"corrupted {rec.node_name!r} via {rec.kind!r}")

    # the "new" specification is the golden function, resynthesized so
    # it shares no gate-level structure with the implementation
    spec = make_specification(golden)
    print(f"specification (restructured): {spec.num_gates} gates")

    # locality-aware weights (contest distribution T4)
    weights = generate_weights(impl, "T4", seed=1)

    instance = EcoInstance(
        name="alu_eco", impl=impl, spec=spec, targets=targets, weights=weights
    )
    result = EcoEngine(contest_config()).run(instance)

    print(f"\nverified: {result.verified}   method: {result.method}")
    print(f"total patch cost: {result.cost}, gates: {result.gate_count}")
    for patch in result.patches:
        print(
            f"  target {patch.target!r}: {patch.gate_count} gates over "
            f"{patch.support}"
        )
    print(f"miter copies used by quantification: "
          f"{result.stats.get('sat_miter_copies', 0):.0f}")


if __name__ == "__main__":
    main()
