#!/usr/bin/env python3
"""The integrated flow of the paper's Section 5: detect, then patch.

Given only an implementation and a changed specification — no target
annotations — the localizer ranks single-fix candidates by bit-parallel
sensitization, confirms a provably sufficient target set with the exact
Section 3.2 check, and hands it to the patch engine.  Demonstrated on
the real ISCAS-85 c17 netlist and on a larger generated circuit.

Run:  python examples/localize_and_patch.py
"""

from repro import EcoEngine, EcoInstance, contest_config
from repro.benchgen import corrupt, generate_weights, make_specification, random_dag
from repro.benchgen.circuits import c17
from repro.core import localize_targets


def demo(golden, label, corrupt_seed):
    impl, true_targets, records = corrupt(golden, 1, seed=corrupt_seed)
    spec = make_specification(golden)
    print(f"\n=== {label}: secretly corrupted {true_targets[0]!r} "
          f"({records[0].kind})")

    res = localize_targets(impl, spec)
    if not res.ranked:
        print("corruption is unobservable — netlists equivalent")
        return
    print("suspect ranking:")
    for name, score in res.ranked[:5]:
        marker = "  <-- true culprit" if name == true_targets[0] else ""
        print(f"  {name:10s} {score:.2f}{marker}")
    if not res.targets:
        print("no sufficient target set confirmed")
        return
    print(f"confirmed target set: {res.targets} "
          f"({res.checks} exact checks)")

    instance = EcoInstance(
        name=label,
        impl=impl,
        spec=spec,
        targets=res.targets,
        weights=generate_weights(impl, "T4", seed=1),
    )
    result = EcoEngine(contest_config()).run(instance)
    print(f"patched: cost={result.cost} gates={result.gate_count} "
          f"verified={result.verified}")


def main() -> None:
    demo(c17(), "ISCAS-85 c17", corrupt_seed=17)
    demo(
        random_dag(18, 140, 8, seed=99, name="ctrl"),
        "generated control logic",
        corrupt_seed=5,
    )


if __name__ == "__main__":
    main()
