#!/usr/bin/env python3
"""Resource-aware patching: the same bug under different weight regimes.

The 2017 contest scores a patch by the summed weight of its input
signals.  This example fixes one corrupted node of an adder under two
opposite cost regimes — T1 (signals near the PIs are expensive) and T2
(signals far from the PIs are expensive) — and shows how the selected
support migrates toward the cheap region, plus what the exact SAT_prune
method saves over the minimal (but not minimum) Algorithm 1 support.

Run:  python examples/resource_aware_weights.py
"""

from repro import EcoEngine, EcoInstance, best_config, contest_config
from repro.benchgen import generate_weights, ripple_adder
from repro.benchgen.mutations import corrupt, make_specification
from repro.network.traversal import levels


def describe_support(instance, result):
    lev = levels(instance.impl)
    parts = []
    for name in result.support:
        nid = instance.impl.node_by_name(name)
        w = instance.weights.get(name, instance.default_weight)
        parts.append(f"{name}(level={lev[nid]}, w={w})")
    return ", ".join(parts) or "<constant patch>"


def main() -> None:
    golden = ripple_adder(6)
    impl, targets, _ = corrupt(golden, 1, seed=3)
    spec = make_specification(golden)

    for wtype, blurb in (
        ("T1", "expensive near PIs  -> support drifts to deep signals"),
        ("T2", "expensive far from PIs -> support drifts to shallow signals"),
    ):
        weights = generate_weights(impl, wtype, seed=5)
        instance = EcoInstance(
            name=f"adder_{wtype}",
            impl=impl.clone(),
            spec=spec,
            targets=targets,
            weights=weights,
        )
        res_min = EcoEngine(contest_config()).run(instance)
        res_opt = EcoEngine(best_config()).run(instance)
        print(f"\n--- weight distribution {wtype}: {blurb}")
        print(f"minimize_assumptions: cost={res_min.cost} "
              f"support=[{describe_support(instance, res_min)}]")
        print(f"SAT_prune (exact):    cost={res_opt.cost} "
              f"support=[{describe_support(instance, res_opt)}]")
        assert res_opt.cost <= res_min.cost  # exactness guarantee (§3.4.2)


if __name__ == "__main__":
    main()
