"""Partition-driven per-target scheduling for the batch front-end.

The analyzer computes, per strategy, which per-target passes may share
a wave (:func:`repro.analyze.verifier.target_waves` — today
``support → satprune → patch_function`` are singleton waves because
each reads state the previous one writes).  The
:class:`WaveSatFlowStrategy` executes exactly that partition: passes
run wave by wave in partition order, patch composition is deferred to
the base strategy's deterministic merge, and the schedule is validated
against the pipeline's declared contracts before the first target runs.
Because the partition is derived from (and ordered like) the
sequential pass list, a wave-scheduled run is *byte-identical* to the
sequential one — same patches, same solver counters — which is the
determinism contract the batch runner advertises (docs/BATCH.md) and
``tests/test_batch_schedule.py`` pins across all three presets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .. import obs
from ..core.engine import EcoConfig, build_pipeline
from ..core.pipeline import Pass, Pipeline, SatFlowStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import EcoContext, PassManager


class WaveSatFlowStrategy(SatFlowStrategy):
    """SAT flow whose per-target chain follows the analyzer's waves.

    Drop-in replacement for :class:`SatFlowStrategy` (same ``name``,
    same contract): construction takes the verified wave partition of
    the ``target:sat_flow`` scope and re-buckets ``target_passes``
    accordingly; execution runs one wave at a time.  Unknown wave
    members (a partition computed for a richer pipeline than the one
    assembled) are rejected eagerly.
    """

    def __init__(
        self, target_passes: Sequence[Pass], waves: Sequence[Sequence[str]]
    ) -> None:
        super().__init__(target_passes)
        by_name: Dict[str, Pass] = {p.name: p for p in self.target_passes}
        scheduled: List[List[Pass]] = []
        seen: set = set()
        for wave in waves:
            bucket = []
            for name in wave:
                p = by_name.get(name)
                if p is None:
                    raise ValueError(
                        f"wave partition names unknown per-target pass {name!r}"
                    )
                bucket.append(p)
                seen.add(name)
            if bucket:
                scheduled.append(bucket)
        missing = [p.name for p in self.target_passes if p.name not in seen]
        if missing:
            raise ValueError(
                f"wave partition omits per-target passes {missing!r}"
            )
        self.waves = scheduled

    def _run_target_passes(
        self, ctx: "EcoContext", manager: "PassManager"
    ) -> None:
        for wave in self.waves:
            obs.inc("batch.waves")
            for p in wave:
                manager.run_pass(p, ctx)


def wave_pipeline(
    cfg: EcoConfig, selection: Optional[object] = None
) -> Pipeline:
    """``build_pipeline`` with the SAT flow wave-scheduled.

    Assembles the configuration's pipeline, verifies it, derives the
    ``target:sat_flow`` wave partition, and swaps the sequential
    :class:`SatFlowStrategy` for a :class:`WaveSatFlowStrategy` bound
    to that partition.  Pipelines without a SAT flow (``--passes``
    filtering, ``structural_only``) come back unchanged.  Signature
    matches ``EcoEngine``'s ``pipeline_factory`` hook.
    """
    from ..analyze.verifier import target_waves

    pipe = build_pipeline(cfg, selection)  # type: ignore[arg-type]
    sat_flows = [
        i
        for i, strat in enumerate(pipe.strategies)
        if isinstance(strat, SatFlowStrategy)
        and not isinstance(strat, WaveSatFlowStrategy)
    ]
    if not sat_flows:
        return pipe
    waves = target_waves(pipe, "sat_flow")
    if not waves:
        return pipe
    for i in sat_flows:
        strat = pipe.strategies[i]
        pipe.strategies[i] = WaveSatFlowStrategy(
            strat.target_passes,  # type: ignore[attr-defined]
            waves,
        )
    return pipe
