"""Shared-memory clause arena: compile once, stamp from any process.

A :class:`~repro.sat.template.CnfTemplate` is flat integer data — a
``varmap`` (node id → dense template variable), a variable count, and
clause tuples of packed literals.  The parent process serializes the
templates it precompiled into one contiguous 64-bit-word buffer backed
by ``multiprocessing.shared_memory`` (file + ``mmap`` fallback), keyed
by ``Network.structural_hash()``; pool workers attach the buffer
read-only and rehydrate templates *in place*: clause literals are read
straight out of the mapped view through :class:`ArenaClauseView`
(``stamp`` only iterates clauses, so no tuple materialization happens
on the hot path), and no ``encode_network`` walk ever runs in a worker
for an arena-resident key.

Word layout (all unsigned 64-bit little-endian, offsets in words)::

    [MAGIC, total_words, n_entries]
    n_entries x [key_lo, key_hi, entry_offset]       # index, key-sorted
    per entry:
        [nvars,
         n_pis,    pi_node_id...,
         n_varmap, (node_id, template_var)...,
         n_clauses, clause_len...,
         literal...]                                  # clauses back-to-back

Counters: ``batch.arena_hit`` / ``batch.arena_miss`` per lookup (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import array
import mmap
import os
import tempfile
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..obs import DEFAULT as _OBS
from ..sat.template import CnfTemplate

_MAGIC = 0x4543_4F41_524E_4131  # "ECOARNA1"
_WORD = 8
_KEY_MASK = (1 << 64) - 1

#: picklable attach token: (backing kind, name/path, total_words)
ArenaDescriptor = Tuple[str, str, int]


class ArenaClauseView(Sequence[Sequence[int]]):
    """Zero-copy view of one template's clause array in the arena.

    ``stamp``/``_stamp_cofactor`` need only ``len()`` and iteration;
    each yielded clause is a ``memoryview`` slice of the shared buffer —
    literals are read from shared memory at stamp time, never copied
    into per-worker tuples.
    """

    __slots__ = ("_words", "_bounds")

    def __init__(self, words: "memoryview", bounds: List[Tuple[int, int]]) -> None:
        self._words = words
        self._bounds = bounds

    def __len__(self) -> int:
        return len(self._bounds)

    def __getitem__(self, i):  # type: ignore[override]
        start, length = self._bounds[i]
        return self._words[start : start + length]

    def __iter__(self) -> Iterator[Sequence[int]]:
        words = self._words
        for start, length in self._bounds:
            yield words[start : start + length]


class _ShmBacking:
    """``multiprocessing.shared_memory`` segment (POSIX shm)."""

    kind = "shm"

    def __init__(self, shm, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.name = shm.name
        self.buf = shm.buf

    @classmethod
    def create(cls, nbytes: int) -> "_ShmBacking":
        from multiprocessing import shared_memory

        return cls(shared_memory.SharedMemory(create=True, size=nbytes), True)

    @classmethod
    def attach(cls, name: str) -> "_ShmBacking":
        from multiprocessing import shared_memory

        return cls(shared_memory.SharedMemory(name=name), False)

    def close(self) -> None:
        # a leaked segment outlives the process: always release the
        # mapping, and unlink iff we created it
        try:
            self._shm.close()
        finally:
            if self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass


class _FileBacking:
    """mmap'd temp-file fallback (works without /dev/shm)."""

    kind = "file"

    def __init__(self, path: str, mm: mmap.mmap, fd: int, owner: bool) -> None:
        self.name = path
        self.buf = memoryview(mm)
        self._mm = mm
        self._fd = fd
        self._owner = owner

    @classmethod
    def create(cls, nbytes: int) -> "_FileBacking":
        fd, path = tempfile.mkstemp(prefix="repro-arena-", suffix=".bin")
        os.ftruncate(fd, nbytes)
        mm = mmap.mmap(fd, nbytes)
        return cls(path, mm, fd, True)

    @classmethod
    def attach(cls, path: str) -> "_FileBacking":
        fd = os.open(path, os.O_RDONLY)
        nbytes = os.fstat(fd).st_size
        mm = mmap.mmap(fd, nbytes, prot=mmap.PROT_READ)
        return cls(path, mm, fd, False)

    def close(self) -> None:
        try:
            self.buf.release()
            self._mm.close()
            os.close(self._fd)
        finally:
            if self._owner:
                try:
                    os.unlink(self.name)
                except FileNotFoundError:
                    pass


def _serialize(templates: Mapping[int, CnfTemplate]) -> List[int]:
    words: List[int] = [_MAGIC, 0, len(templates)]
    index_at = len(words)
    keys = sorted(templates)
    words.extend(0 for _ in range(3 * len(keys)))  # index placeholder
    for i, key in enumerate(keys):
        tpl = templates[key]
        offset = len(words)
        words[index_at + 3 * i] = key & _KEY_MASK
        words[index_at + 3 * i + 1] = (key >> 64) & _KEY_MASK
        words[index_at + 3 * i + 2] = offset
        words.append(tpl.nvars)
        pis = sorted(tpl.pi_nodes)
        words.append(len(pis))
        words.extend(pis)
        words.append(len(tpl.varmap))
        for nid in sorted(tpl.varmap):
            words.append(nid)
            words.append(tpl.varmap[nid])
        clauses = tpl.clauses
        words.append(len(clauses))
        words.extend(len(c) for c in clauses)
        for clause in clauses:
            words.extend(clause)
    words[1] = len(words)
    return words


class TemplateArena:
    """Compiled-template store shared between the batch parent and its
    pool workers.

    Parent side: :meth:`build` serializes, :meth:`descriptor` yields the
    picklable attach token for the pool initializer, :meth:`close`
    releases (and unlinks) the backing.  Worker side: :meth:`attach`
    maps the buffer and :meth:`get` — installed as the process-global
    template source (see
    :func:`repro.sat.template.install_template_source`) — rehydrates a
    template on demand, with the clause array left in shared memory.
    """

    def __init__(self, backing, words: "memoryview") -> None:
        self._backing = backing
        self._words = words
        count = words[2]
        self._index: Dict[int, int] = {}
        for i in range(count):
            lo = words[3 + 3 * i]
            hi = words[3 + 3 * i + 1]
            self._index[(hi << 64) | lo] = words[3 + 3 * i + 2]

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        templates: Mapping[int, CnfTemplate],
        backing: str = "auto",
    ) -> "TemplateArena":
        """Serialize ``templates`` (key → compiled template) into a
        fresh shared arena.  ``backing``: ``"shm"``, ``"file"``, or
        ``"auto"`` (shm with file fallback)."""
        serialized = _serialize(templates)
        nbytes = len(serialized) * _WORD
        back = None
        if backing in ("auto", "shm"):
            try:
                back = _ShmBacking.create(nbytes)
            except Exception:
                if backing == "shm":
                    raise
        if back is None:
            back = _FileBacking.create(nbytes)
        back.buf[:nbytes] = array.array("Q", serialized).tobytes()
        words = memoryview(back.buf)[:nbytes].cast("Q")
        return cls(back, words)

    @classmethod
    def attach(cls, descriptor: ArenaDescriptor) -> "TemplateArena":
        kind, name, total_words = descriptor
        if kind == "shm":
            back = _ShmBacking.attach(name)
        elif kind == "file":
            back = _FileBacking.attach(name)
        else:
            raise ValueError(f"unknown arena backing {kind!r}")
        words = memoryview(back.buf)[: total_words * _WORD].cast("Q")
        if len(words) < 3 or words[0] != _MAGIC:
            raise ValueError("arena buffer is corrupt (bad magic)")
        return cls(back, words)

    def descriptor(self) -> ArenaDescriptor:
        return (self._backing.kind, self._backing.name, self._words[1])

    # -- access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def keys(self):
        return self._index.keys()

    @property
    def nbytes(self) -> int:
        return len(self._words) * _WORD

    def get(self, key: int) -> Optional[CnfTemplate]:
        """Rehydrate the template stored under ``key`` (or ``None``).

        The returned template's ``clauses`` is an
        :class:`ArenaClauseView` into the shared buffer: stamping reads
        literals from the arena directly, and ``sat.template_compiles``
        is *not* bumped — that counter staying flat across workers is
        the batch acceptance audit for "zero per-worker re-encodes".
        """
        at = self._index.get(key)
        if at is None:
            _OBS.inc("batch.arena_miss")
            return None
        _OBS.inc("batch.arena_hit")
        words = self._words
        nvars = words[at]
        at += 1
        n_pis = words[at]
        at += 1
        pi_nodes = list(words[at : at + n_pis])
        at += n_pis
        n_map = words[at]
        at += 1
        varmap: Dict[int, int] = {}
        for _ in range(n_map):
            varmap[words[at]] = words[at + 1]
            at += 2
        n_clauses = words[at]
        at += 1
        lens = words[at : at + n_clauses]
        at += n_clauses
        bounds: List[Tuple[int, int]] = []
        for ln in lens:
            bounds.append((at, ln))
            at += ln
        return CnfTemplate.from_compiled(
            varmap, nvars, ArenaClauseView(words, bounds), pi_nodes
        )

    def close(self) -> None:
        """Release the mapping (owner side also unlinks the backing)."""
        self._words.release()
        self._backing.close()
