"""Batched, process-parallel ECO execution (docs/BATCH.md).

Three layers:

* :mod:`repro.batch.arena` — a shared-memory clause arena:
  :class:`~repro.sat.template.CnfTemplate` compiled clauses serialized
  once by the parent, keyed by ``Network.structural_hash()``, stamped
  by pool workers straight out of the mapped view (zero re-encode,
  zero copy);
* :mod:`repro.batch.schedule` — the per-instance scheduler that
  executes the SAT flow's per-target passes in the wave order proved
  safe by :func:`repro.analyze.verifier.target_waves`, with deferred
  patch composition and a deterministic merge;
* :mod:`repro.batch.runner` — the front-end: accepts many
  ``EcoInstance``s, shards them across a ``ProcessPoolExecutor``, and
  exports results + per-shard timings + p50/p99 latency in the
  ``repro.obs.bench/v1`` schema.
"""

from .arena import TemplateArena
from .runner import BatchItem, BatchReport, items_from_suite, run_batch
from .schedule import WaveSatFlowStrategy, wave_pipeline

__all__ = [
    "TemplateArena",
    "BatchItem",
    "BatchReport",
    "items_from_suite",
    "run_batch",
    "WaveSatFlowStrategy",
    "wave_pipeline",
]
