"""Batch front-end: many ``EcoInstance``s, one worker pool, one arena.

The parent *precompiles* each item's first-target quantified-miter CNF
template (the dominant encode of the SAT flow — it replays the exact
prologue the engine runs: clone → window → divisors → miter → quantify),
serializes the deduplicated templates once into a
:class:`~repro.batch.arena.TemplateArena`, and shards the items across a
``ProcessPoolExecutor`` whose initializer attaches the arena and
installs it as the process-global template source
(:func:`repro.sat.template.install_template_source`).  Workers therefore
stamp clauses straight out of shared memory: for an arena-resident
structural hash a worker's ``sat.template_compiles`` stays flat — the
"zero per-worker re-encodes" audit of the batch acceptance criteria.

Each worker runs the full engine under the analyzer-derived wave
schedule (:func:`repro.batch.schedule.wave_pipeline`) with telemetry
enabled, and ships back a picklable result record.  The parent merges
records by submission index (deterministic regardless of completion
order) and assembles a ``repro.obs.bench/v1`` document — unit rows in
the exact shape of ``BENCH_table1.json`` plus ``latency`` (p50/p99)
and per-shard timing blocks — validated by
:func:`repro.obs.export.validate_bench_document` before it is returned.

This module is *not* under :data:`repro.analyze.lint.DETERMINISTIC_MODULES`:
wall-clock reads are measurement, not algorithm, here.
"""

from __future__ import annotations

import concurrent.futures as cf
import gc
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.divisors import collect_divisors
from ..core.engine import EcoConfig, EcoEngine
from ..core.miter import build_miter
from ..core.quantify import build_quantified_miter
from ..io.weights import EcoInstance
from ..network.window import compute_window
from ..sat.template import (
    CnfTemplate,
    clear_template_memo,
    install_template_source,
)
from .arena import ArenaDescriptor, TemplateArena
from .schedule import wave_pipeline

DEFAULT_METHOD = "satprune_cegarmin"


@dataclass(frozen=True)
class BatchItem:
    """One unit of batch work: an instance plus its engine method."""

    name: str
    instance: EcoInstance
    method: str = DEFAULT_METHOD
    config: Optional[EcoConfig] = None

    def resolved_config(self) -> EcoConfig:
        if self.config is not None:
            return self.config
        from ..benchgen.harness import _METHOD_CONFIG

        return _METHOD_CONFIG[self.method]()


@dataclass
class BatchReport:
    """What :func:`run_batch` hands back to callers and the CLI."""

    #: per-item records in submission order (``ok``, ``pid``,
    #: ``elapsed_s``, the bench ``entry``, ...)
    results: List[Dict[str, Any]] = field(default_factory=list)
    #: validated ``repro.obs.bench/v1`` document (units + latency +
    #: shards), ready to ``json.dump`` next to ``BENCH_table1.json``
    document: Dict[str, Any] = field(default_factory=dict)
    jobs: int = 1
    wall_s: float = 0.0
    arena_entries: int = 0
    arena_bytes: int = 0

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r["ok"] for r in self.results)

    def failures(self) -> List[Dict[str, Any]]:
        return [r for r in self.results if not r["ok"]]


def items_from_suite(
    names: Optional[Sequence[str]] = None,
    method: str = DEFAULT_METHOD,
) -> List[BatchItem]:
    """Build :class:`BatchItem`\\ s for the benchgen suite (or a subset),
    in suite order, with the same per-unit configuration the Table 1
    harness uses (``force_structural`` routing included)."""
    from ..benchgen.harness import METHODS, config_for
    from ..benchgen.suite import SUITE, build_unit

    if method not in METHODS:
        raise ValueError(f"unknown method {method!r} (expected one of {METHODS})")
    items: List[BatchItem] = []
    for spec in SUITE:
        if names is not None and spec.name not in names:
            continue
        items.append(
            BatchItem(
                name=spec.name,
                instance=build_unit(spec),
                method=method,
                config=config_for(spec, method),
            )
        )
    if names is not None:
        missing = set(names) - {it.name for it in items}
        if missing:
            raise KeyError(f"no suite unit named {sorted(missing)!r}")
    return items


# ---------------------------------------------------------------------------
# parent-side precompile
# ---------------------------------------------------------------------------


def first_target_template(
    instance: EcoInstance, cfg: EcoConfig
) -> Optional[Tuple[int, CnfTemplate]]:
    """Compile the first target's quantified-miter template ahead of time.

    Mirrors exactly what the engine does up to the first
    ``template_for`` call of the SAT flow: fresh clone (canonical ids),
    pruning window, cost-ordered divisors, miter over *all* targets
    with windowed POs, full-expansion quantified miter for target 0.
    Returns ``(structural_hash, template)``, or ``None`` when this item
    cannot profit from the arena (structural-only routing, the QBF
    countermoves path, a non-canonical quantified net, or any error —
    precompilation is best-effort; workers just compile on a miss).
    """
    try:
        if cfg.structural_only or not instance.targets:
            return None
        base = instance.impl.clone()
        target_ids = [base.node_by_name(t) for t in instance.targets]
        window = compute_window(base, instance.spec, target_ids)
        divisors = collect_divisors(
            base,
            window,
            instance.weights,
            instance.default_weight,
            cfg.max_divisors,
        )
        miter = build_miter(base, instance.spec, target_ids, window.po_indices)
        current_pi = miter.target_pis[0]
        if len(miter.target_pis) - 1 > cfg.max_expansion_targets:
            return None  # engine would take the countermoves path
        div_map = {nid: miter.impl_map[nid] for nid in divisors.ids}
        qm = build_quantified_miter(miter, current_pi, None, div_map)
        if not qm.net.has_canonical_layout():
            return None
        return qm.net.structural_hash(), CnfTemplate(qm.net)
    except Exception:
        return None


def precompile_templates(
    items: Sequence[BatchItem],
) -> Dict[int, CnfTemplate]:
    """First-target templates for ``items``, deduplicated by structural
    hash (a repeated structure is compiled and serialized exactly once)."""
    templates: Dict[int, CnfTemplate] = {}
    for item in items:
        pre = first_target_template(item.instance, item.resolved_config())
        if pre is None:
            continue
        key, tpl = pre
        if key not in templates:
            templates[key] = tpl
            obs.inc("batch.precompiles")
        else:
            obs.inc("batch.precompile_dedup")
    return templates


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

_WORKER_ARENA: Optional[TemplateArena] = None


def _clear_process_memos() -> None:
    """Reset every process-global engine memo.  Forked workers inherit
    the parent's warm caches; starting each shard cold keeps the
    per-unit memo hit/miss counters independent of parent history."""
    from ..core.divisors import clear_extraction_memo
    from ..core.support import clear_support_memo

    clear_template_memo()
    clear_extraction_memo()
    clear_support_memo()


def _worker_init(descriptor: Optional[ArenaDescriptor]) -> None:
    """Pool initializer: attach the arena, install it as the template
    source.  The mapping lives for the worker's whole life; process
    exit reclaims it (the parent owns the unlink)."""
    global _WORKER_ARENA
    _clear_process_memos()
    if descriptor is not None:
        _WORKER_ARENA = TemplateArena.attach(descriptor)
        install_template_source(_WORKER_ARENA.get)


_EMPTY_SOLVER = {
    "solves": 0,
    "decisions": 0,
    "propagations": 0,
    "conflicts": 0,
    "restarts": 0,
}


def _error_entry(
    name: str, method: str, elapsed: float, backend: str = "native"
) -> Dict[str, Any]:
    """Bench-schema unit row for an item whose engine raised."""
    from ..benchgen.harness import memo_rates

    return {
        "unit": name,
        "method": method,
        "backend": backend,
        "cost": 0,
        "gates": 0,
        "runtime_s": round(elapsed, 6),
        "verified": False,
        "phases": {},
        "passes": {},
        "counters": {"batch.failures": 1},
        "solver": dict(_EMPTY_SOLVER),
        "memo": memo_rates({}),
    }


def _run_item(
    payload: Tuple[int, str, str, EcoInstance, EcoConfig]
) -> Dict[str, Any]:
    """Execute one item under telemetry; returns a picklable record."""
    from ..benchgen.harness import unit_telemetry

    index, name, method, instance, cfg = payload
    registry = obs.get_registry()
    was_enabled = registry.enabled
    registry.reset()
    registry.enable()
    t0 = time.monotonic()
    ok, error = True, None
    try:
        engine = EcoEngine(cfg, pipeline_factory=wave_pipeline)
        result = engine.run(instance)
        elapsed = time.monotonic() - t0
        entry = unit_telemetry(
            name, method, result, registry, backend=cfg.backend
        )
    except Exception as exc:  # record, don't poison the pool
        elapsed = time.monotonic() - t0
        entry = _error_entry(name, method, elapsed, backend=cfg.backend)
        ok, error = False, f"{type(exc).__name__}: {exc}"
    finally:
        registry.enabled = was_enabled
        registry.reset()
    return {
        "index": index,
        "unit": name,
        "method": method,
        "ok": ok,
        "error": error,
        "pid": os.getpid(),
        "elapsed_s": elapsed,
        "entry": entry,
    }


# ---------------------------------------------------------------------------
# parent-side orchestration
# ---------------------------------------------------------------------------


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_vals:
        return 0.0
    k = (len(sorted_vals) - 1) * q
    lo = math.floor(k)
    hi = math.ceil(k)
    if lo == hi:
        return float(sorted_vals[lo])
    return float(
        sorted_vals[lo] + (sorted_vals[hi] - sorted_vals[lo]) * (k - lo)
    )


def _latency_block(elapsed: Sequence[float]) -> Dict[str, Any]:
    ordered = sorted(elapsed)
    return {
        "count": len(ordered),
        "p50_s": round(_percentile(ordered, 0.50), 6),
        "p99_s": round(_percentile(ordered, 0.99), 6),
        "mean_s": round(sum(ordered) / len(ordered), 6) if ordered else 0.0,
        "max_s": round(ordered[-1], 6) if ordered else 0.0,
    }


def _shard_block(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-worker-process timing summary, ordered by pid."""
    shards: Dict[int, Dict[str, Any]] = {}
    for rec in records:
        shard = shards.setdefault(
            rec["pid"], {"pid": rec["pid"], "items": 0, "busy_s": 0.0, "units": []}
        )
        shard["items"] += 1
        shard["busy_s"] += rec["elapsed_s"]
        shard["units"].append(rec["unit"])
    out = []
    for pid in sorted(shards):
        shard = shards[pid]
        shard["busy_s"] = round(shard["busy_s"], 6)
        out.append(shard)
    return out


def batch_document(
    records: Sequence[Dict[str, Any]],
    suite: str,
    jobs: int,
    wall_s: float,
    arena_entries: int,
    arena_bytes: int,
) -> Dict[str, Any]:
    """Assemble + validate the bench document for a finished batch."""
    from ..obs.export import BENCH_SCHEMA, validate_bench_document

    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "units": [rec["entry"] for rec in records],
        "context": {
            "jobs": jobs,
            "batch": True,
            "arena_entries": arena_entries,
            "arena_bytes": arena_bytes,
            "wall_s": round(wall_s, 6),
        },
        "latency": _latency_block([rec["elapsed_s"] for rec in records]),
        "shards": _shard_block(records),
    }
    validate_bench_document(doc)
    return doc


def run_batch(
    items: Sequence[BatchItem],
    jobs: int = 1,
    *,
    use_arena: bool = True,
    arena_backing: str = "auto",
    suite: str = "batch",
) -> BatchReport:
    """Run ``items`` across ``jobs`` worker processes; returns the
    deterministically merged :class:`BatchReport`.

    ``jobs == 1`` executes in-process through the *same* code path
    (arena installed as the template source, wave-scheduled pipeline),
    so a one-job run is the reference the multi-job run must match
    byte-for-byte.  ``use_arena=False`` skips precompilation entirely —
    workers fall back to their local template memo.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    items = list(items)
    if not items:
        raise ValueError("run_batch needs at least one item")
    t0 = time.monotonic()

    arena: Optional[TemplateArena] = None
    arena_entries = arena_bytes = 0
    if use_arena:
        templates = precompile_templates(items)
        if templates:
            arena = TemplateArena.build(templates, backing=arena_backing)
            arena_entries, arena_bytes = len(arena), arena.nbytes
            obs.inc("batch.arena_entries", arena_entries)
            obs.inc("batch.arena_bytes", arena_bytes)
        del templates

    payloads = [
        (i, it.name, it.method, it.instance, it.resolved_config())
        for i, it in enumerate(items)
    ]
    records: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
    try:
        if jobs == 1:
            _clear_process_memos()
            if arena is not None:
                install_template_source(arena.get)
            try:
                for payload in payloads:
                    records[payload[0]] = _run_item(payload)
            finally:
                install_template_source(None)
                clear_template_memo()
        else:
            descriptor = arena.descriptor() if arena is not None else None
            ex = cf.ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_worker_init,
                initargs=(descriptor,),
            )
            try:
                futures = [ex.submit(_run_item, p) for p in payloads]
                for fut in futures:
                    rec = fut.result()
                    records[rec["index"]] = rec
            finally:
                ex.shutdown(wait=True)
    finally:
        if arena is not None:
            # memoized arena-backed templates hold memoryview exports
            # into the mapping; they must be collected before the
            # owning segment can release and unlink
            gc.collect()
            arena.close()

    merged = [rec for rec in records if rec is not None]
    merged.sort(key=lambda rec: rec["index"])
    for rec in merged:
        obs.inc("batch.items")
        if not rec["ok"]:
            obs.inc("batch.failures")
    wall = time.monotonic() - t0
    doc = batch_document(
        merged,
        suite=suite,
        jobs=jobs,
        wall_s=wall,
        arena_entries=arena_entries,
        arena_bytes=arena_bytes,
    )
    return BatchReport(
        results=merged,
        document=doc,
        jobs=jobs,
        wall_s=wall,
        arena_entries=arena_entries,
        arena_bytes=arena_bytes,
    )
