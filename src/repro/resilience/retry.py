"""Retry policy for transient conflict-budget exhaustion.

``SatBudgetExceeded`` is the one *transient* failure in the fallback
chain: unlike a structural infeasibility, giving the same strategy a
bigger budget can genuinely succeed.  A :class:`RetryPolicy` (carried on
``EcoConfig.retry_policy``) lets the :class:`~repro.core.pipeline.PassManager`
re-run the failing strategy — escalating the run-level
:class:`~repro.core.pipeline.ConflictBudget` and backing off
exponentially — before advancing the chain to a strictly worse
strategy.  Deadline exhaustion (``SatDeadlineExceeded``) is *not*
retried: wall-clock does not come back.

Retries are recorded in ``EngineStats`` (``retries`` /
``budget_escalations``, exported through the result's ``stats`` dict)
and in the ``engine.retry`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with budget escalation and exponential backoff.

    Attributes:
        max_retries: retries *per strategy* before the chain advances.
        budget_escalation: multiplier applied to the remaining
            ``ConflictBudget`` limit on every retry (must leave the
            budget finite; an unlimited budget never retries — there is
            nothing to escalate, so exhaustion cannot be transient).
        backoff_base: first retry's delay in seconds; ``0`` disables
            sleeping entirely (the right setting for tests and chaos).
        backoff_factor: multiplier between consecutive delays.
        backoff_max: upper bound on any single delay.
    """

    max_retries: int = 2
    budget_escalation: float = 2.0
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 1.0

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), in seconds."""
        if self.backoff_base <= 0.0 or attempt <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return min(self.backoff_max, delay)
