"""Chaos suite: run the bench harness under seeded fault plans.

A chaos run draws a :class:`~repro.resilience.faultplan.FaultPlan` from
a seed, runs a small unit suite under it (process pool, per-unit
timeouts, retry policy), and checks the *degradation invariants* the
resilience layer promises:

1. no unhandled exception escapes — ``run_suite`` returns exactly one
   row per requested unit, in suite order;
2. every injected fault produces the degraded outcome it should:
   crash → ``"crashed"`` rows, hang → ``"timeout"`` rows, fatal input
   corruption → ``"error"`` rows, benign corruption → a real result;
3. engine faults (injected exceptions, budget caps) leave a consistent
   audit trail: the run either retried (``EngineStats.retries``) or
   fell back (``fallback_chain``), and fallback accounting balances
   (``sum(fallback_reasons.values()) == len(fallback_chain)``);
4. every result claiming ``verified=True`` on an uncorrupted instance
   passes the independent :func:`repro.check.certify` re-check;
5. no zombie worker processes survive the run.

This module imports the engine and harness, so it is *not* re-exported
from ``repro.resilience`` (which must stay import-light — see the
package docstring); import it explicitly as ``repro.resilience.chaos``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from .faultplan import FaultPlan
from .retry import RetryPolicy

#: Default chaos unit set: small, SAT-flow units (seconds each), so a
#: multi-seed chaos sweep stays inside a CI-friendly wall-clock budget.
DEFAULT_UNITS = ("unit1", "unit2", "unit4", "unit13")

#: Counter prefixes copied into :class:`ChaosReport.counters`.
_COUNTER_PREFIXES = ("harness.", "resilience.", "engine.", "sat.deadline")

#: Corruption modes that must fail the unit (→ ``"error"`` row); the
#: remaining modes are benign and must *not* prevent a real result.
_FATAL_CORRUPTION = frozenset(
    {"bogus_target", "empty_targets", "truncate_spec"}
)


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    seed: int
    units: Tuple[str, ...]
    plan: FaultPlan
    rows: List[Any] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "units": list(self.units),
            "plan": self.plan.describe(),
            "ok": self.ok,
            "violations": list(self.violations),
            "rows": {
                row.name: {
                    m: row.results[m].method for m in row.results
                }
                for row in self.rows
            },
            "counters": dict(self.counters),
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def summary(self) -> str:
        lines = [
            f"chaos seed={self.seed} units={','.join(self.units)} "
            f"{'OK' if self.ok else 'FAIL'} ({self.elapsed_s:.1f}s)"
        ]
        described = self.plan.describe()
        for row in self.rows:
            fault = described.get(row.name, "-")
            outcomes = ",".join(
                row.results[m].method for m in row.results
            )
            lines.append(f"  {row.name:<8} fault={fault:<24} -> {outcomes}")
        for v in self.violations:
            lines.append(f"  VIOLATION: {v}")
        return "\n".join(lines)


def run_chaos(
    seed: int,
    units: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("minassump",),
    jobs: int = 2,
    unit_timeout: Optional[float] = 8.0,
    hang_seconds: float = 60.0,
    fault_rate: float = 0.75,
    max_unit_retries: int = 1,
    retry_policy: Optional[RetryPolicy] = None,
) -> ChaosReport:
    """Run one seeded chaos round and check the degradation invariants.

    Resets and enables the process-wide :mod:`repro.obs` registry for
    the duration of the run (the caller's enabled-state is restored;
    its counters are not).  Deterministic for fixed arguments.
    """
    from ..benchgen.harness import run_suite

    unit_names = tuple(units) if units is not None else DEFAULT_UNITS
    plan = FaultPlan.random(
        seed, unit_names, fault_rate=fault_rate, hang_seconds=hang_seconds
    )
    policy = retry_policy if retry_policy is not None else RetryPolicy()

    registry = obs.get_registry()
    was_enabled = registry.enabled
    registry.reset()
    registry.enable()
    t0 = time.monotonic()
    try:
        rows = run_suite(
            names=unit_names,
            methods=methods,
            jobs=jobs,
            unit_timeout=unit_timeout,
            fault_plan=plan,
            retry_policy=policy,
            max_unit_retries=max_unit_retries,
        )
    finally:
        registry.enabled = was_enabled
    report = ChaosReport(
        seed=seed,
        units=unit_names,
        plan=plan,
        rows=rows,
        elapsed_s=time.monotonic() - t0,
        counters={
            k: v
            for k, v in registry.counters.items()
            if k.startswith(_COUNTER_PREFIXES)
        },
    )
    report.violations.extend(
        check_invariants(plan, unit_names, rows, unit_timeout=unit_timeout)
    )
    report.violations.extend(_check_no_zombies())
    return report


def check_invariants(
    plan: FaultPlan,
    units: Sequence[str],
    rows: Sequence[Any],
    unit_timeout: Optional[float] = None,
) -> List[str]:
    """Violations of the chaos degradation invariants (empty = pass)."""
    from ..benchgen.suite import SUITE, build_unit

    specs = {u.name: u for u in SUITE}
    violations: List[str] = []

    expected = [u.name for u in SUITE if u.name in set(units)]
    got = [row.name for row in rows]
    if got != expected:
        violations.append(
            f"row set/order mismatch: expected {expected}, got {got}"
        )
        return violations

    for row in rows:
        row_methods = {m: row.results[m].method for m in row.results}
        degraded = any(
            m in ("crashed", "timeout", "error") for m in row_methods.values()
        )

        if row.name in plan.crash:
            if any(m != "crashed" for m in row_methods.values()):
                violations.append(
                    f"{row.name}: crash-fault unit not degraded to "
                    f"'crashed' rows (got {row_methods})"
                )
            continue
        if row.name in plan.hang and unit_timeout is not None:
            if any(m != "timeout" for m in row_methods.values()):
                violations.append(
                    f"{row.name}: hang-fault unit not degraded to "
                    f"'timeout' rows (got {row_methods})"
                )
            continue

        mode = plan.corrupt.get(row.name)
        if mode in _FATAL_CORRUPTION:
            if any(m != "error" for m in row_methods.values()):
                violations.append(
                    f"{row.name}: fatal corruption ({mode}) did not "
                    f"produce 'error' rows (got {row_methods})"
                )
            continue
        if mode is not None and degraded:
            violations.append(
                f"{row.name}: benign corruption ({mode}) degraded the "
                f"unit (got {row_methods})"
            )
            continue

        fault = plan.engine_fault(row.name)
        spec = specs.get(row.name)
        for method, result in row.results.items():
            stats = result.engine_stats
            if stats is None:
                continue
            chain_len = len(stats.fallback_chain)
            reasons_total = sum(stats.fallback_reasons.values())
            if reasons_total != chain_len:
                violations.append(
                    f"{row.name}/{method}: fallback accounting "
                    f"inconsistent (chain={stats.fallback_chain}, "
                    f"reasons={stats.fallback_reasons})"
                )
            if (
                fault is not None
                and fault.active()
                and spec is not None
                and not spec.force_structural
                and not degraded
            ):
                retried = (stats.retries or 0) >= 1
                # a tight injected budget cap can bite inside the
                # feasibility prologue: feasible=None then skips the
                # SAT flow entirely (no retry, no fallback), so the
                # spent budget itself is the audit trail there
                cap = fault.exhaust_conflicts_at
                budget_bit = (
                    cap is not None
                    and stats.budget_conflicts_spent >= cap
                )
                if not retried and chain_len == 0 and not budget_bit:
                    violations.append(
                        f"{row.name}/{method}: engine fault "
                        f"({fault!r}) left no audit trail (no retries, "
                        f"empty fallback_chain, budget under cap)"
                    )

        if not degraded and row.name not in plan.corrupt:
            for method, result in row.results.items():
                if not result.verified:
                    continue
                try:
                    from ..check import certify

                    certify(build_unit(specs[row.name]), result)
                except Exception as exc:
                    violations.append(
                        f"{row.name}/{method}: verified=True but "
                        f"independent re-check failed: "
                        f"{type(exc).__name__}: {exc}"
                    )
    return violations


def _check_no_zombies(grace_s: float = 3.0) -> List[str]:
    """Assert no worker processes outlive the run (with a reap grace)."""
    import multiprocessing as mp

    deadline = time.monotonic() + grace_s
    while True:
        children = mp.active_children()  # also reaps finished children
        if not children:
            return []
        if time.monotonic() > deadline:
            return [
                "zombie workers survived the run: "
                + ", ".join(f"pid={c.pid}" for c in children)
            ]
        time.sleep(0.1)


def run_chaos_sweep(
    seeds: Sequence[int],
    units: Optional[Sequence[str]] = None,
    **kwargs: Any,
) -> List[ChaosReport]:
    """One :func:`run_chaos` per seed, in order (CI entry point)."""
    return [run_chaos(seed, units=units, **kwargs) for seed in seeds]
