"""Deterministic, seeded fault injection for the ECO engine and harness.

The resilience layer answers one question: *does degradation actually
work?*  The engine has a fallback chain, a run-level conflict budget,
wall-clock deadlines, and a parallel harness with placeholder rows —
but none of those paths are trustworthy until they have been exercised
under injected failure.  A :class:`FaultPlan` describes, deterministically
from a seed, which failures to inject where:

* **engine faults** (:class:`EngineFault`, carried on
  ``EcoConfig.faults``): cap the run-level conflict budget at a chosen
  conflict count (``exhaust_conflicts_at``), or raise a chosen exception
  inside a named pass/strategy for a chosen target
  (``fail_stage``/``fail_target``/``fail_exception``/``fail_times``);
* **harness faults** (unit-name keyed, consumed by
  ``repro.benchgen.harness``): hard worker crash (``crash``,
  ``os._exit`` → ``BrokenProcessPool``), worker hang (``hang``, sleep
  past the per-unit timeout), and instance-input corruption
  (``corrupt``, see :data:`CORRUPT_MODES`).

Injection is threaded through ``EcoConfig`` / the harness arguments —
no monkeypatching — and every firing bumps a ``resilience.injected.*``
counter so a chaos run's telemetry shows exactly which faults fired.
The plan itself is a frozen, picklable value: the same plan crosses the
process-pool boundary to the workers untouched, which is what makes
chaos runs reproducible from a single seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from .. import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..io.weights import EcoInstance

#: Exception class names an :class:`EngineFault` may raise, mapped to the
#: modules that define them (resolved lazily to keep this module
#: import-light: ``repro.core.pipeline`` imports us at injection time).
FAULT_EXCEPTIONS = (
    "SatBudgetExceeded",
    "PatchEnumerationError",
    "EcoEngineError",
    "EcoInfeasibleError",
)

#: Instance-corruption modes understood by :func:`corrupt_instance`.
#:
#: ``bogus_target``    first target renamed to a nonexistent node
#:                     (``NetworkError`` → harness error row);
#: ``empty_targets``   target list truncated to nothing
#:                     (``EcoInfeasibleError`` → harness error row);
#: ``drop_weights``    weight table cleared (benign: the run must still
#:                     succeed on ``default_weight``);
#: ``truncate_spec``   last spec PO dropped (PO-name mismatch
#:                     ``ValueError`` → harness error row).
CORRUPT_MODES = ("bogus_target", "empty_targets", "drop_weights", "truncate_spec")


def make_exception(name: str, stage: str, target: Optional[str] = None) -> Exception:
    """Instantiate the named fault exception with an ``injected`` message."""
    where = stage if target is None else f"{stage}/{target}"
    msg = f"injected {name} in {where}"
    if name == "SatBudgetExceeded":
        from ..sat.solver import SatBudgetExceeded

        return SatBudgetExceeded(msg)
    if name == "PatchEnumerationError":
        from ..core.patchfunc import PatchEnumerationError

        return PatchEnumerationError(msg)
    if name == "EcoEngineError":
        from ..core.pipeline import EcoEngineError

        return EcoEngineError(msg)
    if name == "EcoInfeasibleError":
        from ..core.feasibility import EcoInfeasibleError

        return EcoInfeasibleError(msg)
    return RuntimeError(msg)


@dataclass(frozen=True)
class EngineFault:
    """Engine-side fault directives for one run (``EcoConfig.faults``).

    ``exhaust_conflicts_at`` caps the run's :class:`ConflictBudget` at
    the given conflict count, so budget exhaustion triggers exactly
    where the plan says (exercising the real ``SatBudgetExceeded`` →
    fallback/retry path, not a simulation of it).  ``fail_stage`` names
    a pass or strategy (``support``, ``patch_function``, ``sat_flow``,
    ...); when the :class:`PassManager` is about to run it — optionally
    only for ``fail_target`` — the injector raises ``fail_exception``
    instead, at most ``fail_times`` times per run.
    """

    exhaust_conflicts_at: Optional[int] = None
    fail_stage: Optional[str] = None
    fail_target: Optional[str] = None
    fail_exception: str = "SatBudgetExceeded"
    fail_times: int = 1

    def active(self) -> bool:
        return self.exhaust_conflicts_at is not None or self.fail_stage is not None


class FaultInjector:
    """Per-run armed state for an :class:`EngineFault`.

    The plan is immutable; the injector counts the firings.  One is
    created by ``PassManager.execute`` per engine run, so ``fail_times``
    is a per-run bound — a retry of the same strategy within one run
    sees the already-spent count (which is exactly what lets a
    ``RetryPolicy`` recover from a transient injected exhaustion).
    """

    def __init__(self, fault: EngineFault) -> None:
        self.fault = fault
        self.remaining = int(fault.fail_times)

    def check(self, stage: str, target: Optional[str]) -> None:
        """Raise the planned exception if ``stage``/``target`` match."""
        f = self.fault
        if f.fail_stage is None or f.fail_stage != stage or self.remaining <= 0:
            return
        if f.fail_target is not None and target != f.fail_target:
            return
        self.remaining -= 1
        obs.inc("resilience.injected.pass_fault")
        raise make_exception(f.fail_exception, stage, target)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, unit-keyed fault schedule for a harness/chaos run.

    ``crash``/``hang`` name suite units whose worker process dies hard
    (``os._exit``) or sleeps ``hang_seconds`` before working (tripping
    the per-unit timeout); ``corrupt`` maps units to
    :data:`CORRUPT_MODES`; ``engine`` maps units to the
    :class:`EngineFault` their engine runs execute under.  Frozen and
    picklable by construction.
    """

    seed: int = 0
    crash: FrozenSet[str] = frozenset()
    #: unit -> number of leading attempts that crash; unlike ``crash``
    #: (every attempt) this lets a unit crash and then *succeed* on
    #: retry, exercising the harness's retry-accounting path
    crash_times: Mapping[str, int] = field(default_factory=dict)
    #: wall clock a crashing attempt burns before dying (``os._exit``),
    #: so tests can detect a crashed attempt's time leaking into the
    #: bench row of a later successful attempt
    crash_after_s: float = 0.0
    hang: FrozenSet[str] = frozenset()
    hang_seconds: float = 60.0
    corrupt: Mapping[str, str] = field(default_factory=dict)
    engine: Mapping[str, EngineFault] = field(default_factory=dict)

    def crashes_attempt(self, unit: str, attempt: int) -> bool:
        """Whether ``unit``'s ``attempt`` (0-based) dies hard."""
        if unit in self.crash:
            return True
        return attempt < int(self.crash_times.get(unit, 0))

    def engine_fault(self, unit: str) -> Optional[EngineFault]:
        return self.engine.get(unit)

    def faulted_units(self) -> FrozenSet[str]:
        """Every unit the plan injects *any* fault into."""
        return frozenset(
            set(self.crash)
            | set(self.crash_times)
            | set(self.hang)
            | set(self.corrupt)
            | set(self.engine)
        )

    @staticmethod
    def random(
        seed: int,
        units: Sequence[str],
        fault_rate: float = 0.75,
        hang_seconds: float = 60.0,
    ) -> "FaultPlan":
        """Draw a deterministic plan over ``units`` from ``seed``.

        Each unit independently receives (with probability
        ``fault_rate``) one fault drawn uniformly from: worker crash,
        worker hang, input corruption, conflict-budget exhaustion at a
        small count, or an injected pass/strategy exception.  The same
        ``(seed, units)`` always yields the same plan.
        """
        rng = random.Random(seed)
        crash = set()
        hang = set()
        corrupt: Dict[str, str] = {}
        engine: Dict[str, EngineFault] = {}
        kinds = ("crash", "hang", "corrupt", "budget", "pass_fault")
        stages = ("support", "patch_function", "sat_flow")
        for unit in units:
            if rng.random() >= fault_rate:
                continue
            kind = rng.choice(kinds)
            if kind == "crash":
                crash.add(unit)
            elif kind == "hang":
                hang.add(unit)
            elif kind == "corrupt":
                corrupt[unit] = rng.choice(CORRUPT_MODES)
            elif kind == "budget":
                engine[unit] = EngineFault(
                    exhaust_conflicts_at=rng.choice((1, 4, 16))
                )
            else:
                engine[unit] = EngineFault(
                    fail_stage=rng.choice(stages),
                    fail_exception=rng.choice(
                        ("SatBudgetExceeded", "PatchEnumerationError",
                         "EcoEngineError")
                    ),
                )
        return FaultPlan(
            seed=seed,
            crash=frozenset(crash),
            hang=frozenset(hang),
            hang_seconds=hang_seconds,
            corrupt=corrupt,
            engine=engine,
        )

    def describe(self) -> Dict[str, str]:
        """Human-readable ``unit -> fault`` summary (chaos reports)."""
        out: Dict[str, str] = {}
        for unit in sorted(self.crash):
            out[unit] = "crash"
        for unit, times in sorted(self.crash_times.items()):
            if unit not in self.crash:
                out[unit] = f"crash x{times}"
        for unit in sorted(self.hang):
            out[unit] = "hang"
        for unit, mode in sorted(self.corrupt.items()):
            out[unit] = f"corrupt:{mode}"
        for unit, fault in sorted(self.engine.items()):
            if fault.exhaust_conflicts_at is not None:
                out[unit] = f"budget@{fault.exhaust_conflicts_at}"
            else:
                out[unit] = f"{fault.fail_stage}!{fault.fail_exception}"
        return out


def corrupt_instance(instance: "EcoInstance", mode: str) -> "EcoInstance":
    """Apply a :data:`CORRUPT_MODES` mutation to a freshly built instance.

    Mutates in place (the instance is worker-local) and returns it.
    """
    if mode == "bogus_target":
        if instance.targets:
            instance.targets[0] = "__resilience_no_such_node__"
    elif mode == "empty_targets":
        del instance.targets[:]
    elif mode == "drop_weights":
        instance.weights.clear()
    elif mode == "truncate_spec":
        # Network.pos returns a copy; the PO list itself is private
        if instance.spec._pos:
            instance.spec._pos.pop()
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    obs.inc("resilience.injected.corrupt")
    return instance


def plan_summary(plan: FaultPlan, units: Sequence[str]) -> Tuple[str, ...]:
    """One ``unit: fault`` line per planned unit, in ``units`` order."""
    described = plan.describe()
    return tuple(
        f"{unit}: {described[unit]}" for unit in units if unit in described
    )
