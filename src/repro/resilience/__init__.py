"""repro.resilience — deterministic fault injection, retry, and chaos.

Import-light by design: :mod:`repro.core.engine` imports the
:class:`EngineFault` / :class:`RetryPolicy` config types from here, so
this package must not (transitively) import ``repro.core`` at module
load.  The chaos runner, which does depend on the engine and the bench
harness, lives in :mod:`repro.resilience.chaos` and is imported
explicitly by its users (CLI, tests).
"""

from .faultplan import (
    CORRUPT_MODES,
    FAULT_EXCEPTIONS,
    EngineFault,
    FaultInjector,
    FaultPlan,
    corrupt_instance,
    make_exception,
    plan_summary,
)
from .retry import RetryPolicy

__all__ = [
    "CORRUPT_MODES",
    "FAULT_EXCEPTIONS",
    "EngineFault",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "corrupt_instance",
    "make_exception",
    "plan_summary",
]
