"""Dynamic contract enforcement (rule PA005).

``PassManager(enforce_contracts=True)`` runs every pass against an
attribute-recording view of the :class:`EcoContext` and, after the pass
returns, cross-checks what it actually touched against its declared
:class:`PassContract`:

* an observed write outside ``writes | writes_optional``, or
* an observed read outside ``reads | reads_optional | reads_late``
  (reading a field the pass itself declares as written is fine —
  read-modify-write),

raises :class:`ContractViolationError`.  Ambient plumbing fields
(``config``, ``stats``, ``budget``, ...) are never recorded.  The view
forwards everything else verbatim, so behavior under enforcement is
identical — this mode exists for tests, not production runs.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Set

from ..core.pipeline import (
    AMBIENT_FIELDS,
    EcoContext,
    Pass,
    PassContract,
    TargetState,
)

_CTX_FIELDS: FrozenSet[str] = frozenset(
    f.name for f in dataclasses.fields(EcoContext)
)
_TGT_FIELDS: FrozenSet[str] = frozenset(
    f.name for f in dataclasses.fields(TargetState)
)


class ContractViolationError(Exception):
    """A pass touched context fields outside its declared contract."""


class _RecordingView:
    """Transparent proxy over a context (or target state) object.

    Records dataclass-field accesses into the owning
    :class:`ContextMonitor`; everything else (methods, non-field
    attributes) passes through untouched.  Accessing ``ctx.target``
    returns a nested view so ``target.<field>`` accesses are recorded
    under their prefixed names.
    """

    __slots__ = ("_wrapped", "_monitor", "_prefix", "_fields")

    def __init__(
        self,
        wrapped: object,
        monitor: "ContextMonitor",
        prefix: str,
        fields: FrozenSet[str],
    ) -> None:
        object.__setattr__(self, "_wrapped", wrapped)
        object.__setattr__(self, "_monitor", monitor)
        object.__setattr__(self, "_prefix", prefix)
        object.__setattr__(self, "_fields", fields)

    def __getattr__(self, name: str) -> object:
        wrapped = object.__getattribute__(self, "_wrapped")
        value = getattr(wrapped, name)
        fields = object.__getattribute__(self, "_fields")
        if name in fields:
            prefix = object.__getattribute__(self, "_prefix")
            monitor = object.__getattribute__(self, "_monitor")
            key = prefix + name
            if key == "target":
                # ambient handle; record the *fields* accessed on it
                if isinstance(value, TargetState):
                    return _RecordingView(
                        value, monitor, "target.", _TGT_FIELDS
                    )
                return value
            if key not in AMBIENT_FIELDS:
                monitor.reads.add(key)
        return value

    def __setattr__(self, name: str, value: object) -> None:
        wrapped = object.__getattribute__(self, "_wrapped")
        fields = object.__getattribute__(self, "_fields")
        if name in fields:
            prefix = object.__getattribute__(self, "_prefix")
            key = prefix + name
            if key not in AMBIENT_FIELDS:
                monitor = object.__getattribute__(self, "_monitor")
                monitor.writes.add(key)
        setattr(wrapped, name, value)


class ContextMonitor:
    """Observes one pass execution and checks it against its contract."""

    def __init__(self, ctx: EcoContext) -> None:
        self.ctx = ctx
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()

    def view(self) -> _RecordingView:
        """The recording proxy to hand to ``Pass.run``."""
        return _RecordingView(self.ctx, self, "", _CTX_FIELDS)

    def check(self, p: Pass) -> None:
        """Raise PA005 when observed access exceeds the declaration."""
        c = p.contract
        if c is None:
            raise ContractViolationError(
                f"PA005: pass {p.name!r} ran under enforcement but"
                " declares no PassContract"
            )
        undeclared_writes = self.writes - c.all_writes()
        allowed_reads = c.all_reads() | c.all_writes()
        undeclared_reads = self.reads - allowed_reads
        problems = []
        if undeclared_writes:
            problems.append(
                f"undeclared writes: {sorted(undeclared_writes)}"
            )
        if undeclared_reads:
            problems.append(f"undeclared reads: {sorted(undeclared_reads)}")
        if problems:
            raise ContractViolationError(
                f"PA005: pass {p.name!r} violated its contract — "
                + "; ".join(problems)
            )


__all__ = ["ContextMonitor", "ContractViolationError"]
