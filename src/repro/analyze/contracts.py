"""Contract registry and declaration validation (rules PA003–PA006).

The declarations themselves live next to the passes (``Pass.contract``
/ ``Strategy.contract`` class attributes, built with
:func:`repro.core.pipeline.contract`); this module knows how to find
them by stage name, what the legal field namespace is (derived from the
:class:`~repro.core.pipeline.EcoContext` and
:class:`~repro.core.pipeline.TargetState` dataclasses, so a renamed
field invalidates stale contracts automatically), and how to report a
malformed declaration as a :class:`~repro.check.findings.Finding`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional

from ..check.findings import Finding, Severity
from ..core.pipeline import (
    AMBIENT_FIELDS,
    EcoContext,
    PassContract,
    TargetState,
)

#: prefix of :class:`TargetState` fields in contract declarations
TARGET_PREFIX = "target."


def context_field_names() -> FrozenSet[str]:
    """Bare :class:`EcoContext` dataclass field names."""
    return frozenset(f.name for f in dataclasses.fields(EcoContext))


def target_field_names() -> FrozenSet[str]:
    """:class:`TargetState` fields, ``target.``-prefixed."""
    return frozenset(
        TARGET_PREFIX + f.name for f in dataclasses.fields(TargetState)
    )


def declarable_field_names() -> FrozenSet[str]:
    """Every name a contract may declare: context + target fields,
    minus the ambient plumbing (declaring ambient fields is noise the
    verifier rejects so contracts stay focused on real dataflow)."""
    return (context_field_names() | target_field_names()) - AMBIENT_FIELDS


def stage_contracts() -> Dict[str, Optional[PassContract]]:
    """Map every selectable stage name to its declared contract.

    Contracts are class attributes, so no pass needs to be instantiated
    (``SatFlowStrategy`` takes constructor arguments).  An undeclared
    stage maps to ``None`` (reported as PA003 by the verifier).
    """
    # deferred: repro.core.engine imports nothing from repro.analyze,
    # but keeping the dependency one-directional at import time makes
    # the layering obvious
    from ..core.engine import _PASS_FACTORY
    from ..core.pipeline import SatFlowStrategy
    from ..core.structural import (
        CertificateStrategy,
        StructuralFallbackStrategy,
    )

    out: Dict[str, Optional[PassContract]] = {
        name: cls.contract for name, cls in _PASS_FACTORY.items()
    }
    out["sat_flow"] = SatFlowStrategy.contract
    out["certificate"] = CertificateStrategy.contract
    out["structural"] = StructuralFallbackStrategy.contract
    return out


def stage_optional_flags() -> Dict[str, bool]:
    """Map stage name to its :attr:`Pass.optional` flag (strategies are
    never deadline-optional)."""
    from ..core.engine import _PASS_FACTORY

    out = {name: bool(cls.optional) for name, cls in _PASS_FACTORY.items()}
    out.update({"sat_flow": False, "certificate": False, "structural": False})
    return out


def validate_contract(
    stage: str,
    contract: Optional[PassContract],
    optional_flag: Optional[bool] = None,
) -> List[Finding]:
    """Check one declaration for well-formedness.

    Reports ``PA003`` (missing declaration) and ``PA006`` (unknown or
    ambient field names; ``optional`` flag disagreeing with the pass's
    own ``optional`` attribute).
    """
    if contract is None:
        return [
            Finding(
                rule="PA003",
                severity=Severity.ERROR,
                message=f"stage {stage!r} declares no PassContract",
                name=stage,
            )
        ]
    findings: List[Finding] = []
    legal = declarable_field_names()
    declared = contract.all_reads() | contract.all_writes()
    for fname in sorted(declared):
        if fname in AMBIENT_FIELDS:
            findings.append(
                Finding(
                    rule="PA006",
                    severity=Severity.ERROR,
                    message=(
                        f"stage {stage!r} declares ambient field {fname!r};"
                        " ambient plumbing must not appear in contracts"
                    ),
                    name=stage,
                )
            )
        elif fname not in legal:
            findings.append(
                Finding(
                    rule="PA006",
                    severity=Severity.ERROR,
                    message=(
                        f"stage {stage!r} declares unknown field {fname!r}"
                        " (not an EcoContext/TargetState field)"
                    ),
                    name=stage,
                )
            )
    if optional_flag is not None and contract.optional != optional_flag:
        findings.append(
            Finding(
                rule="PA006",
                severity=Severity.ERROR,
                message=(
                    f"stage {stage!r}: contract optional={contract.optional}"
                    f" disagrees with the pass's optional={optional_flag}"
                ),
                name=stage,
            )
        )
    return findings
