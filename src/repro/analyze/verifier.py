"""Static pipeline dataflow verifier (rules PA001–PA008).

Checks a :class:`~repro.core.pipeline.Pipeline` (or an explicit stage
order) against the passes' declared :class:`PassContract`\\ s *before
execution*:

* **PA001** (error) — a stage requires a field no earlier stage (or the
  framework) writes: the classic reordered-pipeline bug;
* **PA002** (warning) — a stage writes a field nothing ever reads
  (dead write); read-modify-write fields, declared byproducts
  (``writes_optional``) and result-assembly sinks are exempt;
* **PA003** (error) — a stage with no contract, or an unknown stage
  name in an explicit order;
* **PA004** (error) — the same stage appears twice in one scope;
* **PA007** (warning) — a ``--passes`` selection names a stage the
  configuration would not assemble anyway (the skip is a no-op);
* **PA008** (error) — the pipeline contains no patch-producing
  strategy, so no run could ever succeed.

(PA005 is the *dynamic* enforcement rule, raised by
:mod:`repro.analyze.enforce`; PA006 is declaration well-formedness,
from :mod:`repro.analyze.contracts`.)

The verifier also computes the **may-run-in-parallel partition**: the
stages of each sequential scope grouped into barrier-separated waves
whose members have pairwise disjoint (non-conflicting) contracts.  This
is the schedulability fact the ROADMAP's process-parallel fan-out
consumes, exposed programmatically as
:attr:`PipelineAnalysis.partitions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..check.findings import CheckReport, Finding, Severity
from ..core.pipeline import (
    AMBIENT_FIELDS,
    CHAIN_PROVIDED_FIELDS,
    INITIAL_FIELDS,
    SINK_FIELDS,
    Pass,
    PassContract,
    PassSelection,
    Pipeline,
    Strategy,
)
from .contracts import validate_contract

#: Field written by the framework's result assembly between the
#: epilogue and the finalizers.
_RESULT_FIELD = "result"


@dataclass
class _Stage:
    """One execution slot of the flattened pipeline."""

    name: str
    contract: Optional[PassContract]
    scope: str
    optional_flag: Optional[bool] = None

    def effective(self) -> PassContract:
        """The contract to simulate with (empty when undeclared —
        the missing declaration is already a PA003 error)."""
        return self.contract if self.contract is not None else PassContract()


@dataclass
class PipelineAnalysis:
    """Verification outcome: findings plus the parallelism facts.

    ``partitions`` maps each sequential scope (``"prologue"``,
    ``"target:<strategy>"``, ``"finish:<strategy>"``, ``"stages"`` for
    explicit orders) to its barrier-separated waves: stages inside one
    wave have pairwise non-conflicting contracts and may run
    concurrently; waves must run in order.
    """

    stages: List[str] = field(default_factory=list)
    report: CheckReport = field(default_factory=CheckReport)
    partitions: Dict[str, List[List[str]]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded
        (warnings — dead writes, no-op skips — do not fail a run)."""
        return self.report.ok

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (CLI ``analyze --json``)."""
        return {
            "stages": list(self.stages),
            "partitions": {k: [list(w) for w in v]
                           for k, v in self.partitions.items()},
            "report": self.report.to_dict(),
        }


def parallel_partition(
    stages: Sequence[Tuple[str, Optional[PassContract]]]
) -> List[List[str]]:
    """Greedy wave partition of an ordered stage scope.

    Walks the stages in execution order; a stage joins the current wave
    when its contract conflicts with no wave member (see
    :meth:`PassContract.conflicts_with`), otherwise it starts a new
    wave.  An undeclared contract is treated as conflicting with
    everything (conservative).
    """
    waves: List[List[Tuple[str, Optional[PassContract]]]] = []
    for name, c in stages:
        placed = False
        if waves and c is not None:
            current = waves[-1]
            if all(
                other is not None and not c.conflicts_with(other)
                for _, other in current
            ):
                current.append((name, c))
                placed = True
        if not placed:
            waves.append([(name, c)])
    return [[name for name, _ in wave] for wave in waves]


def _pa001(stage: str, fname: str) -> Finding:
    return Finding(
        rule="PA001",
        severity=Severity.ERROR,
        message=(
            f"stage {stage!r} reads {fname!r} before any earlier stage"
            " (or the framework) writes it"
        ),
        name=stage,
    )


def _pa004(stage: str, scope: str) -> Finding:
    return Finding(
        rule="PA004",
        severity=Severity.ERROR,
        message=f"stage {stage!r} appears more than once in {scope}",
        name=stage,
    )


def _check_reads(
    report: CheckReport, stage: str, reads: Set[str], defined: Set[str]
) -> None:
    for fname in sorted(reads - defined - AMBIENT_FIELDS):
        report.add(_pa001(stage, fname))


def _check_duplicates(
    report: CheckReport, names: Sequence[str], scope: str
) -> None:
    seen: Set[str] = set()
    for name in names:
        if name in seen:
            report.add(_pa004(name, scope))
        seen.add(name)


def _dead_writes(report: CheckReport, stages: Sequence[_Stage]) -> None:
    """PA002 over the whole flattened pipeline (order-insensitive: a
    write is dead only when *no* other stage ever reads the field)."""
    by_name: Dict[str, _Stage] = {}
    for s in stages:
        by_name.setdefault(s.name, s)
    uniq = list(by_name.values())
    for s in uniq:
        c = s.effective()
        for fname in sorted(c.writes - SINK_FIELDS):
            if fname in c.all_reads():
                continue  # read-modify-write
            consumed = any(
                fname in o.effective().all_reads()
                for o in uniq
                if o.name != s.name
            )
            if not consumed:
                report.add(
                    Finding(
                        rule="PA002",
                        severity=Severity.WARNING,
                        message=(
                            f"stage {s.name!r} writes {fname!r} but no"
                            " stage in this pipeline reads it (dead"
                            " write; declare it writes_optional if the"
                            " byproduct is intentional)"
                        ),
                        name=s.name,
                    )
                )


def _declaration_findings(
    report: CheckReport, stages: Sequence[_Stage]
) -> None:
    seen: Set[str] = set()
    for s in stages:
        if s.name in seen:
            continue
        seen.add(s.name)
        report.extend(validate_contract(s.name, s.contract, s.optional_flag))


def verify_pipeline(pipeline: Pipeline) -> PipelineAnalysis:
    """Statically verify an assembled :class:`Pipeline`.

    Walks the real structure the :class:`PassManager` will execute:
    prologue in order, then every strategy *independently* (each starts
    from the post-prologue state plus the framework-provided working
    clone and patch list, since any strategy may end up being the one
    that runs), the strategies' nested per-target and finishing passes,
    then the epilogue on the intersection of the strategies' guarantees,
    result assembly, and the finalizers.
    """
    report = CheckReport(subject="pipeline")
    all_stages: List[_Stage] = []

    def add_pass(p: Pass, scope: str) -> _Stage:
        s = _Stage(p.name, p.contract, scope, optional_flag=bool(p.optional))
        all_stages.append(s)
        return s

    def add_strategy(st: Strategy) -> _Stage:
        s = _Stage(st.name, st.contract, "chain")
        all_stages.append(s)
        return s

    prologue = [add_pass(p, "prologue") for p in pipeline.prologue]
    chain: List[Tuple[_Stage, List[_Stage], List[_Stage]]] = []
    for strat in pipeline.strategies:
        nested_t = [
            add_pass(p, f"target:{strat.name}")
            for p in getattr(strat, "target_passes", [])
        ]
        nested_f = [
            add_pass(p, f"finish:{strat.name}")
            for p in getattr(strat, "finish_passes", [])
        ]
        chain.append((add_strategy(strat), nested_t, nested_f))
    epilogue = [add_pass(p, "epilogue") for p in pipeline.epilogue]
    finalizers = [add_pass(p, "finalizers") for p in pipeline.finalizers]

    _declaration_findings(report, all_stages)
    _check_duplicates(report, [s.name for s in prologue], "the prologue")
    _check_duplicates(
        report, [s.name for s, _, _ in chain], "the strategy chain"
    )
    for s, nested_t, nested_f in chain:
        _check_duplicates(
            report,
            [n.name for n in nested_t + nested_f],
            f"strategy {s.name!r}",
        )
    _check_duplicates(report, [s.name for s in epilogue], "the epilogue")
    _check_duplicates(report, [s.name for s in finalizers], "the finalizers")

    if not pipeline.strategies:
        report.add(
            Finding(
                rule="PA008",
                severity=Severity.ERROR,
                message=(
                    "pipeline has no patch-producing strategy"
                    " (sat_flow, certificate, and structural all"
                    " deselected); no run could succeed"
                ),
            )
        )

    # -- PA001 dataflow simulation -------------------------------------
    defined: Set[str] = set(INITIAL_FIELDS)
    for s in prologue:
        c = s.effective()
        _check_reads(report, s.name, c.reads, defined)
        defined |= c.writes

    post_chain: List[Set[str]] = []
    for s, nested_t, nested_f in chain:
        c = s.effective()
        sdef = defined | CHAIN_PROVIDED_FIELDS
        _check_reads(report, s.name, c.reads, sdef)
        sdef |= c.writes
        for n in nested_t + nested_f:
            nc = n.effective()
            _check_reads(report, n.name, nc.reads, sdef)
            sdef |= nc.writes
        _check_reads(report, s.name, c.reads_late, sdef)
        post_chain.append(sdef)

    if post_chain:
        defined = set.intersection(*post_chain)
    else:
        defined |= CHAIN_PROVIDED_FIELDS

    for s in epilogue:
        c = s.effective()
        _check_reads(report, s.name, c.reads, defined)
        defined |= c.writes
    defined.add(_RESULT_FIELD)
    for s in finalizers:
        c = s.effective()
        _check_reads(report, s.name, c.reads, defined)
        defined |= c.writes

    _dead_writes(report, all_stages)

    # -- parallelism facts ---------------------------------------------
    partitions: Dict[str, List[List[str]]] = {}
    if prologue:
        partitions["prologue"] = parallel_partition(
            [(s.name, s.contract) for s in prologue]
        )
    for s, nested_t, nested_f in chain:
        if nested_t:
            partitions[f"target:{s.name}"] = parallel_partition(
                [(n.name, n.contract) for n in nested_t]
            )
        if nested_f:
            partitions[f"finish:{s.name}"] = parallel_partition(
                [(n.name, n.contract) for n in nested_f]
            )

    return PipelineAnalysis(
        stages=pipeline.stage_names(), report=report, partitions=partitions
    )


def target_waves(pipeline: Pipeline, strategy: str = "sat_flow") -> List[List[str]]:
    """The verified may-run-in-parallel wave partition of a strategy's
    per-target scope (``partitions["target:<strategy>"]``).

    This is the scheduling contract the batch front-end executes
    against (:mod:`repro.batch.schedule`): passes inside one wave are
    mutually conflict-free under their declared contracts, and waves
    must run in list order.  Raises ``ValueError`` when the pipeline
    fails contract verification — a schedule derived from an invalid
    pipeline would be meaningless.
    """
    analysis = verify_pipeline(pipeline)
    if not analysis.ok:
        raise ValueError(
            "cannot schedule an invalid pipeline:\n"
            + "\n".join(f.format() for f in analysis.report.errors)
        )
    return [list(w) for w in analysis.partitions.get(f"target:{strategy}", [])]


def verify_stage_order(names: Sequence[str]) -> PipelineAnalysis:
    """Verify an explicit, linear stage order (CLI ``--stages a,b,c``).

    Unlike :func:`verify_pipeline` this does not model the fallback
    chain: the named stages are assumed to run once, in the given
    order, against a context where the framework-provided fields are
    present.  ``reads_late`` declarations are checked against the final
    state.  Unknown stage names are PA003 errors.
    """
    from .contracts import stage_contracts

    report = CheckReport(subject="stage order")
    registry = stage_contracts()
    _check_duplicates(report, list(names), "the stage order")

    stages: List[_Stage] = []
    for name in names:
        if name not in registry:
            report.add(
                Finding(
                    rule="PA003",
                    severity=Severity.ERROR,
                    message=(
                        f"unknown stage {name!r}; choose from "
                        + ", ".join(sorted(registry))
                    ),
                    name=name,
                )
            )
            continue
        stages.append(_Stage(name, registry[name], "stages"))

    defined: Set[str] = set(INITIAL_FIELDS) | CHAIN_PROVIDED_FIELDS
    late: List[Tuple[str, Set[str]]] = []
    for s in stages:
        c = s.effective()
        _check_reads(report, s.name, c.reads, defined)
        if c.reads_late:
            late.append((s.name, set(c.reads_late)))
        defined |= c.writes
    defined.add(_RESULT_FIELD)
    for name, reads_late in late:
        _check_reads(report, name, reads_late, defined)

    _dead_writes(report, stages)
    partitions = {
        "stages": parallel_partition([(s.name, s.contract) for s in stages])
    }
    return PipelineAnalysis(
        stages=[s.name for s in stages], report=report, partitions=partitions
    )


def verify_selection(
    cfg: "object", selection: Optional[PassSelection] = None
) -> PipelineAnalysis:
    """Verify the pipeline a configuration (plus ``--passes`` selection)
    assembles, including selection sanity (PA007)."""
    from ..core.engine import EcoConfig, build_pipeline, pipeline_stages

    assert isinstance(cfg, EcoConfig)
    analysis = verify_pipeline(build_pipeline(cfg, selection))
    if selection is not None:
        available = set(pipeline_stages(cfg))
        for name in sorted(
            (set(selection.skip) | set(selection.only)) - available
        ):
            analysis.report.add(
                Finding(
                    rule="PA007",
                    severity=Severity.WARNING,
                    message=(
                        f"--passes names {name!r}, which this"
                        " configuration does not assemble anyway"
                        " (selection has no effect on it)"
                    ),
                    name=name,
                )
            )
    return analysis
