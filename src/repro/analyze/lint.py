"""Project-invariant AST linter (rules RA001–RA007).

Enforces the cross-layer conventions generic tooling cannot see::

    python -m repro.analyze.lint [PATHS ...] [--docs docs/OBSERVABILITY.md]

* **RA001** (error) — an ``obs.inc/span/observe`` key literal not
  covered by the ``docs/OBSERVABILITY.md`` catalogue (new
  instrumentation must be documented; f-string keys are checked by
  their literal prefix);
* **RA002** (warning) — a catalogue key no source site can emit
  (reverse drift: stale documentation);
* **RA003** (error) — a ``new_group()`` call with no ``release_group``
  in the same function (leaked retractable clause groups keep their
  clauses forever);
* **RA004** (error) — a ``.clone()`` call outside the allowlist of
  sanctioned sites (fresh clones are the known perf suspect; new ones
  need explicit sanction);
* **RA005** (error) — ``time.time`` or unseeded ``random.*`` in a
  deterministic module (``core``, ``sat``, ``twoqbf``, ``sop``,
  ``flow``); seeded ``random.Random(seed)`` instances are fine;
* **RA006** (error) — a ``stats[...] = ...`` subscript write in
  ``repro/core`` (per-run statistics go through the typed
  :class:`~repro.core.pipeline.EngineStats`);
* **RA007** (error) — a direct ``Solver()`` construction outside the
  ``BACKEND_ALLOWLIST`` (every SAT query must acquire its solver
  through the :mod:`repro.sat.backend` registry —
  ``solver_for(QueryTraits(...))`` — so backend routing, per-backend
  metering, and external-engine adapters stay in force).

Shares the :class:`~repro.check.findings.Finding` model with the rest
of the analyzers; ``repro-eco analyze`` runs this over ``src/repro``
alongside the pipeline verifier.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..check.findings import CheckReport, Finding, Severity
from ..obs.validate import parse_catalogue

#: Files allowed to call ``.clone()`` (repo-relative suffixes).
CLONE_ALLOWLIST: Tuple[str, ...] = (
    "repro/core/engine.py",      # per-run pristine base copy
    "repro/core/pipeline.py",    # per-strategy fresh working clone
    "repro/core/patch.py",       # apply_patch_copy convenience
    "repro/benchgen/mutations.py",  # golden -> corrupted copy
    "repro/batch/runner.py",     # precompile mirrors the engine's base copy
    "repro/seq/eco.py",          # combinational view extraction
    "repro/seq/verify.py",       # combinational view extraction
    "repro/seq/network.py",      # mapping-core extraction
)

#: Files allowed to construct ``Solver()`` directly (repo-relative
#: suffixes).  Everything else goes through ``repro.sat.backend``'s
#: ``solver_for(QueryTraits(...))`` seam (rule RA007).
BACKEND_ALLOWLIST: Tuple[str, ...] = (
    "repro/sat/solver.py",   # the solver defines itself
    "repro/sat/backend.py",  # the native backend wraps the solver
)

#: Module path fragments whose behavior must be deterministic.
DETERMINISTIC_MODULES: Tuple[str, ...] = (
    "repro/core/",
    "repro/sat/",
    "repro/twoqbf/",
    "repro/sop/",
    "repro/flow/",
)

#: Names an obs registry handle goes by at call sites.
_OBS_NAMES = frozenset({"obs", "_OBS"})
_OBS_METHODS = frozenset({"inc", "span", "observe"})

#: The obs framework itself (and its tests of itself) is exempt from
#: the key-catalogue rule — it manipulates keys generically.
_OBS_EXEMPT = "repro/obs/"


def _rel(path: Path) -> str:
    """Forward-slash path string for allowlist suffix matching."""
    return str(path).replace("\\", "/")


def _is_obs_call(node: ast.Call) -> Optional[str]:
    """Return the obs method name when ``node`` is an obs emission."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _OBS_METHODS:
        return None
    value = func.value
    if isinstance(value, ast.Name) and value.id in _OBS_NAMES:
        return func.attr
    # e.g. ``self.obs.inc`` / ``registry.obs.span``
    if isinstance(value, ast.Attribute) and value.attr in _OBS_NAMES:
        return func.attr
    return None


def _key_literal(node: ast.Call) -> Tuple[Optional[str], bool]:
    """Extract ``(key, is_prefix)`` from an obs call's first argument.

    A plain string constant returns ``(key, False)``; an f-string
    returns its leading literal run as ``(prefix, True)``; anything
    else (a variable) returns ``(None, False)`` — not checkable.
    """
    if not node.args:
        return None, False
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr):
        prefix = ""
        for part in arg.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                prefix += part.value
            else:
                break
        return (prefix, True) if prefix else (None, False)
    return None, False


def _catalogued(key: str, is_prefix: bool, catalogue: Dict[str, str]) -> bool:
    """Does any catalogue row cover this (possibly partial) key?"""
    for pattern in catalogue:
        stem = pattern[:-1] if pattern.endswith("*") else pattern
        if is_prefix:
            # a dynamic key starting with ``key``: compatible when the
            # literal prefix and the pattern stem agree on their overlap
            if stem.startswith(key) or key.startswith(stem):
                return True
        else:
            if pattern.endswith("*"):
                if key.startswith(stem):
                    return True
            elif key == pattern:
                return True
    return False


def _covers(pattern: str, emitted: Set[str], prefixes: Set[str]) -> bool:
    """Can any source site emit a key this catalogue row documents?"""
    stem = pattern[:-1] if pattern.endswith("*") else pattern
    for key in emitted:
        if pattern.endswith("*"):
            if key.startswith(stem):
                return True
        elif key == pattern:
            return True
    for prefix in prefixes:
        if stem.startswith(prefix) or prefix.startswith(stem):
            return True
    return False


class _FileLinter(ast.NodeVisitor):
    """Single-file AST walk collecting findings and obs emissions."""

    def __init__(
        self, path: Path, rel: str, catalogue: Dict[str, str]
    ) -> None:
        self.path = path
        self.rel = rel
        self.catalogue = catalogue
        self.findings: List[Finding] = []
        self.emitted_keys: Set[str] = set()
        self.emitted_prefixes: Set[str] = set()
        self._deterministic = any(
            frag in rel for frag in DETERMINISTIC_MODULES
        )
        self._clone_ok = any(rel.endswith(sfx) for sfx in CLONE_ALLOWLIST)
        self._backend_ok = any(
            rel.endswith(sfx) for sfx in BACKEND_ALLOWLIST
        )
        self._obs_exempt = _OBS_EXEMPT in rel

    def _add(self, rule: str, severity: Severity, message: str,
             node: ast.AST) -> None:
        lineno = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                message=message,
                name=f"{self.rel}:{lineno}",
            )
        )

    # -- RA001: obs keys ------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        method = _is_obs_call(node)
        if method is not None and not self._obs_exempt:
            key, is_prefix = _key_literal(node)
            if key is not None:
                if is_prefix:
                    self.emitted_prefixes.add(key)
                else:
                    self.emitted_keys.add(key)
                if not _catalogued(key, is_prefix, self.catalogue):
                    kind = "key prefix" if is_prefix else "key"
                    self._add(
                        "RA001",
                        Severity.ERROR,
                        f"obs {method} {kind} {key!r} is not covered by"
                        " the docs/OBSERVABILITY.md catalogue",
                        node,
                    )
        self._check_clone(node)
        self._check_backend(node)
        self._check_determinism_call(node)
        self.generic_visit(node)

    # -- RA003: clause-group discipline --------------------------------

    @staticmethod
    def _scoped_nodes(func: ast.AST) -> Iterable[ast.AST]:
        """Nodes of one function body, excluding nested function scopes
        (those are visited — and checked — on their own)."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_groups(self, func: ast.AST) -> None:
        opened: List[ast.Call] = []
        released = False
        for node in self._scoped_nodes(func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr == "new_group":
                    opened.append(node)
                elif node.func.attr == "release_group":
                    released = True
        if opened and not released:
            for call in opened:
                self._add(
                    "RA003",
                    Severity.ERROR,
                    "new_group() has no release_group in the same"
                    " function; retractable clauses would leak",
                    call,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_groups(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_groups(node)
        self.generic_visit(node)

    # -- RA004: clone allowlist ----------------------------------------

    def _check_clone(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "clone"
            and not node.args
            and not node.keywords
            and not self._clone_ok
        ):
            self._add(
                "RA004",
                Severity.ERROR,
                ".clone() outside the sanctioned-site allowlist (fresh"
                " network copies are a tracked perf cost; add the file"
                " to CLONE_ALLOWLIST deliberately if this one is"
                " justified)",
                node,
            )

    # -- RA007: backend seam --------------------------------------------

    def _check_backend(self, node: ast.Call) -> None:
        func = node.func
        is_ctor = (
            isinstance(func, ast.Name) and func.id == "Solver"
        ) or (isinstance(func, ast.Attribute) and func.attr == "Solver")
        if is_ctor and not self._backend_ok:
            self._add(
                "RA007",
                Severity.ERROR,
                "direct Solver() construction outside the sanctioned"
                " BACKEND_ALLOWLIST; acquire solvers through the"
                " repro.sat.backend registry"
                " (solver_for(QueryTraits(...))) so backend routing and"
                " per-backend metering apply",
                node,
            )

    # -- RA005: determinism --------------------------------------------

    def _check_determinism_call(self, node: ast.Call) -> None:
        if not self._deterministic:
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or not isinstance(
            func.value, ast.Name
        ):
            return
        if func.value.id == "time" and func.attr == "time":
            self._add(
                "RA005",
                Severity.ERROR,
                "time.time() in a deterministic module (use"
                " time.perf_counter() for intervals)",
                node,
            )
        if func.value.id == "random" and func.attr != "Random":
            self._add(
                "RA005",
                Severity.ERROR,
                f"random.{func.attr}() draws from the shared global RNG"
                " in a deterministic module; use a seeded"
                " random.Random(seed) instance",
                node,
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._deterministic and node.module == "random":
            names = [a.name for a in node.names if a.name != "Random"]
            if names:
                self._add(
                    "RA005",
                    Severity.ERROR,
                    f"from random import {', '.join(names)} in a"
                    " deterministic module; use a seeded"
                    " random.Random(seed) instance",
                    node,
                )
        self.generic_visit(node)

    # -- RA006: stats discipline ---------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if "repro/core/" in self.rel:
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, (ast.Name, ast.Attribute))
                    and (
                        target.value.id == "stats"
                        if isinstance(target.value, ast.Name)
                        else target.value.attr == "stats"
                    )
                ):
                    self._add(
                        "RA006",
                        Severity.ERROR,
                        "bare stats[...] = write bypasses the typed"
                        " EngineStats; add a field or use"
                        " EngineStats.bump()",
                        target,
                    )
        self.generic_visit(node)


def iter_source_files(paths: Sequence[Union[str, Path]]) -> Iterable[Path]:
    """Yield ``.py`` files under the given files/directories, sorted."""
    for path in map(Path, paths):
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def lint_paths(
    paths: Sequence[Union[str, Path]],
    docs: Union[str, Path],
    check_reverse_drift: bool = True,
) -> CheckReport:
    """Lint every source file and cross-check the obs-key catalogue."""
    docs = Path(docs)
    catalogue = parse_catalogue(docs.read_text(encoding="utf-8"))
    report = CheckReport(subject="repro.analyze.lint")
    if not catalogue:
        report.add(
            Finding(
                rule="RA001",
                severity=Severity.ERROR,
                message=f"no catalogue rows found in {docs}",
                name=str(docs),
            )
        )
        return report

    emitted: Set[str] = set()
    prefixes: Set[str] = set()
    for path in iter_source_files(paths):
        rel = _rel(path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        except SyntaxError as exc:
            report.add(
                Finding(
                    rule="RA000",
                    severity=Severity.ERROR,
                    message=f"cannot parse: {exc}",
                    name=rel,
                )
            )
            continue
        linter = _FileLinter(path, rel, catalogue)
        linter.visit(tree)
        report.extend(linter.findings)
        emitted |= linter.emitted_keys
        prefixes |= linter.emitted_prefixes

    if check_reverse_drift:
        for pattern in sorted(catalogue):
            if not _covers(pattern, emitted, prefixes):
                report.add(
                    Finding(
                        rule="RA002",
                        severity=Severity.WARNING,
                        message=(
                            f"catalogue key {pattern!r} has no emitting"
                            " site in the linted sources (stale"
                            " documentation?)"
                        ),
                        name=pattern,
                    )
                )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analyze.lint",
        description="project-invariant AST linter (rules RA001+)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--docs",
        default="docs/OBSERVABILITY.md",
        help="obs key catalogue (default: docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--no-reverse-drift",
        action="store_true",
        help="skip RA002 (useful when linting a file subset)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    report = lint_paths(
        [Path(p) for p in args.paths],
        Path(args.docs),
        check_reverse_drift=not args.no_reverse_drift,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report:
            print(finding.format())
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
