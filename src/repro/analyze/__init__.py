"""Static analysis for the repo's own conventions.

Two halves, both reporting through the shared
:mod:`repro.check.findings` model and both wired into the
``repro-eco analyze`` CLI subcommand and CI:

* **Pass-contract dataflow verification** (rules ``PA…``) — every
  pipeline stage declares what it reads and writes on the shared
  :class:`~repro.core.pipeline.EcoContext`
  (:mod:`repro.analyze.contracts`); :mod:`repro.analyze.verifier`
  checks any assembled pipeline or ``--passes`` selection *before
  execution* — read-before-write orderings, dead writes, duplicate
  stages — and computes the may-run-in-parallel stage partition the
  process-parallel fan-out will consume.
  :mod:`repro.analyze.enforce` is the dynamic complement:
  ``PassManager(enforce_contracts=True)`` cross-checks declarations
  against actual attribute access at runtime.

* **Project linting** (rules ``RA…``) — :mod:`repro.analyze.lint` is
  an AST checker for cross-layer invariants: obs-key catalogue drift
  (both directions), clause-group release discipline,
  ``Network.clone()`` sanctioning, determinism of core modules, and
  typed-stats discipline.

The rule catalogue lives in ``docs/ANALYSIS.md``.
"""

# NOTE: .lint is deliberately not imported here so that
# ``python -m repro.analyze.lint`` does not re-execute an
# already-imported module (runpy warning); import it explicitly.
from .contracts import (
    declarable_field_names,
    stage_contracts,
    validate_contract,
)
from .enforce import ContextMonitor, ContractViolationError
from .verifier import (
    PipelineAnalysis,
    parallel_partition,
    verify_pipeline,
    verify_selection,
    verify_stage_order,
)

__all__ = [
    "ContextMonitor",
    "ContractViolationError",
    "PipelineAnalysis",
    "declarable_field_names",
    "parallel_partition",
    "stage_contracts",
    "validate_contract",
    "verify_pipeline",
    "verify_selection",
    "verify_stage_order",
]
