"""``python -m repro.analyze`` — alias for ``repro-eco analyze``."""

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["analyze", *sys.argv[1:]]))
