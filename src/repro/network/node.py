"""Node and gate-type definitions for Boolean networks.

A Boolean network (see :mod:`repro.network.network`) is a DAG whose nodes
are either primary inputs, constants, or logic gates.  Gate semantics are
defined once here, both for single-bit evaluation and for bit-parallel
evaluation over Python integers (used by the simulator).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence


class GateType(enum.Enum):
    """Supported gate functions.

    ``MUX`` has fanins ``(s, d0, d1)`` and computes ``d1 if s else d0``.
    All other multi-input gates are symmetric and accept two or more
    fanins; ``BUF``/``NOT`` accept exactly one.
    """

    PI = "pi"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"


#: Gate types that carry no fanins.
LEAF_TYPES = frozenset({GateType.PI, GateType.CONST0, GateType.CONST1})

#: Gate types with exactly one fanin.
UNARY_TYPES = frozenset({GateType.BUF, GateType.NOT})

#: Symmetric gate types accepting two or more fanins.
NARY_TYPES = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR}
)


def arity_ok(gtype: GateType, nfanins: int) -> bool:
    """Return True when ``nfanins`` is a legal fanin count for ``gtype``."""
    if gtype in LEAF_TYPES:
        return nfanins == 0
    if gtype in UNARY_TYPES:
        return nfanins == 1
    if gtype is GateType.MUX:
        return nfanins == 3
    return nfanins >= 2


def eval_gate(gtype: GateType, inputs: Sequence[int], mask: int = 1) -> int:
    """Evaluate a gate bit-parallel over integer words.

    ``inputs`` are integers whose bits carry parallel simulation patterns;
    ``mask`` selects the active bit width (``(1 << w) - 1``).  For
    single-bit evaluation pass 0/1 values with the default mask.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    if gtype is GateType.PI:
        raise ValueError("primary inputs have no gate function")
    if gtype is GateType.BUF:
        return inputs[0] & mask
    if gtype is GateType.NOT:
        return ~inputs[0] & mask
    if gtype is GateType.MUX:
        s, d0, d1 = inputs
        return ((s & d1) | (~s & d0)) & mask
    acc = inputs[0]
    if gtype is GateType.AND or gtype is GateType.NAND:
        for v in inputs[1:]:
            acc &= v
    elif gtype is GateType.OR or gtype is GateType.NOR:
        for v in inputs[1:]:
            acc |= v
    else:  # XOR / XNOR
        for v in inputs[1:]:
            acc ^= v
    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR):
        acc = ~acc
    return acc & mask


@dataclass
class Node:
    """A single node in a :class:`~repro.network.network.Network`.

    Attributes:
        nid: Integer id, stable for the lifetime of the network.
        gtype: The node's gate function (``PI`` for primary inputs).
        fanins: Ids of fanin nodes, in gate-semantic order.
        name: Optional symbolic name (unique within the network).
    """

    nid: int
    gtype: GateType
    fanins: List[int] = field(default_factory=list)
    name: str = ""

    @property
    def is_pi(self) -> bool:
        return self.gtype is GateType.PI

    @property
    def is_const(self) -> bool:
        return self.gtype in (GateType.CONST0, GateType.CONST1)

    @property
    def is_gate(self) -> bool:
        return not (self.is_pi or self.is_const)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"n{self.nid}"
        fan = ",".join(str(f) for f in self.fanins)
        return f"Node({label}:{self.gtype.value}[{fan}])"
