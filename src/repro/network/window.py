"""Structural pruning (paper Section 3.3).

The window narrows the ECO problem to the part of the netlist the
targets can influence:

1. POs reachable from the targets in the implementation (window POs);
2. PIs reachable from those POs in either netlist (window PIs);
3. implementation signals outside the targets' TFO whose structural
   support lies inside the window PIs (candidate divisors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from .network import Network
from .traversal import tfi, tfo


@dataclass
class Window:
    """Result of structural pruning for one ECO instance.

    Attributes:
        po_indices: indices (into ``impl.pos``/``spec.pos``) of outputs
            the patch can affect; the miter only compares these.
        impl_window_pis: PI ids of the implementation inside the window.
        spec_window_pis: PI ids of the specification inside the window.
        divisors: implementation node ids usable as patch inputs,
            excluding anything in the targets' TFO.
        target_tfo: implementation node ids in the TFO of any target.
    """

    po_indices: List[int]
    impl_window_pis: List[int]
    spec_window_pis: List[int]
    divisors: List[int]
    target_tfo: Set[int] = field(default_factory=set)


def compute_window(
    impl: Network, spec: Network, targets: Sequence[int]
) -> Window:
    """Compute the pruning window for ``targets`` in ``impl`` vs ``spec``.

    ``impl`` and ``spec`` must agree on PO names.  PIs are matched by
    name; a window PI name present in only one netlist is still included
    for that netlist.
    """
    impl_po_map = {name: nid for name, nid in impl.pos}
    spec_po_map = {name: nid for name, nid in spec.pos}
    if set(impl_po_map) != set(spec_po_map):
        raise ValueError("implementation and specification PO names differ")

    target_tfo = tfo(impl, targets)
    po_indices = [
        i for i, (_, nid) in enumerate(impl.pos) if nid in target_tfo
    ]
    window_po_names = [impl.pos[i][0] for i in po_indices]

    impl_cone = tfi(impl, [impl_po_map[n] for n in window_po_names])
    spec_cone = tfi(spec, [spec_po_map[n] for n in window_po_names])
    impl_pi_names = {impl.node(x).name for x in impl_cone if impl.node(x).is_pi}
    spec_pi_names = {spec.node(x).name for x in spec_cone if spec.node(x).is_pi}
    window_pi_names = impl_pi_names | spec_pi_names

    impl_window_pis = [
        pi for pi in impl.pis if impl.node(pi).name in window_pi_names
    ]
    spec_window_pis = [
        pi for pi in spec.pis if spec.node(pi).name in window_pi_names
    ]

    window_pi_set = set(impl_window_pis)
    divisors: List[int] = []
    # structural support containment, computed in one bottom-up pass
    supports: Dict[int, bool] = {}
    for node in impl.topo_order():
        if node.is_pi:
            supports[node.nid] = node.nid in window_pi_set
        elif node.is_const:
            supports[node.nid] = True
        else:
            supports[node.nid] = all(supports[f] for f in node.fanins)
        if (
            supports[node.nid]
            and node.nid not in target_tfo
            and not node.is_const
        ):
            divisors.append(node.nid)
    return Window(
        po_indices=po_indices,
        impl_window_pis=impl_window_pis,
        spec_window_pis=spec_window_pis,
        divisors=divisors,
        target_tfo=target_tfo,
    )
