"""Technology-independent network transforms.

The small synthesis toolkit the flow leans on around patch insertion
and specification restructuring:

* :func:`sweep` — constant propagation, structural hashing, dangling
  removal (the post-patch cleanup pass);
* :func:`collapse_buffers` — in-place BUF-chain removal;
* :func:`balance` — depth reduction by Huffman-style rebalancing of
  AND trees (on the strashed AIG);
* :func:`resynthesize` — the pipeline used to make specifications
  structurally dissimilar from implementations.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from .network import Network
from .node import GateType
from .strash import AigBuilder, strash_network


def sweep(net: Network, name: str = "") -> Network:
    """Strash rebuild: constants folded, duplicates shared, cone-trimmed."""
    return strash_network(net, name or net.name)


def collapse_buffers(net: Network) -> int:
    """Bypass every BUF in place; returns the number collapsed.

    The BUF nodes themselves become dangling (run :meth:`Network.cleanup`
    afterwards to drop them); POs driven by a BUF are rebound to the
    source.
    """
    collapsed = 0
    for node in net.topo_order():
        if node.gtype is not GateType.BUF:
            continue
        src = node.fanins[0]
        # src may itself be a collapsed BUF processed earlier; topo order
        # guarantees its own source is already final
        while net.node(src).gtype is GateType.BUF:
            src = net.node(src).fanins[0]
        net.substitute(node.nid, src)
        collapsed += 1
    return collapsed


def balance(net: Network, name: str = "") -> Network:
    """Depth-oriented rebuild: AND cones become balanced trees.

    Works on the strashed AIG; maximal single-fanout AND trees are
    collected into supergates and rebuilt pairing the shallowest
    operands first (Huffman flavor), which minimizes the tree's depth
    contribution.
    """
    aig = strash_network(net)
    builder = AigBuilder()
    pi_lits = {pi: builder.add_pi() for pi in aig.pis}

    # reference counts: nodes with multiple fanouts (or PO refs) are
    # tree boundaries
    refs: Dict[int, int] = {}
    for node in aig.nodes():
        for f in node.fanins:
            refs[f] = refs.get(f, 0) + 1
    for _name, nid in aig.pos:
        refs[nid] = refs.get(nid, 0) + 1

    litmap: Dict[int, int] = {}
    depth: Dict[int, int] = {}

    def lit_of(nid: int, negate: bool) -> int:
        lit = litmap[nid]
        return lit ^ 1 if negate else lit

    def depth_of(lit: int) -> int:
        return depth.get(lit >> 1, 0)

    def gather(nid: int, acc: List[Tuple[int, bool]]) -> None:
        """Collect AND-supergate leaves of the tree rooted at ``nid``."""
        node = aig.node(nid)
        for f in node.fanins:
            child = aig.node(f)
            if (
                child.gtype is GateType.AND
                and refs.get(f, 0) <= 1
            ):
                gather(f, acc)
            else:
                acc.append((f, False))

    for node in aig.topo_order():
        if node.is_pi:
            litmap[node.nid] = pi_lits[node.nid]
            depth[litmap[node.nid] >> 1] = 0
            continue
        if node.is_const:
            litmap[node.nid] = (
                AigBuilder.CONST1
                if node.gtype is GateType.CONST1
                else AigBuilder.CONST0
            )
            continue
        if node.gtype is GateType.NOT:
            litmap[node.nid] = litmap[node.fanins[0]] ^ 1
            continue
        if node.gtype in (GateType.AND, GateType.NAND):
            leaves: List[Tuple[int, bool]] = []
            gather(node.nid, leaves)
            lits = [lit_of(n, neg) for n, neg in leaves]
            # Huffman pairing by current depth
            heap = [(depth_of(l), i, l) for i, l in enumerate(lits)]
            heapq.heapify(heap)
            fresh = len(lits)
            while len(heap) > 1:
                d1, _, l1 = heapq.heappop(heap)
                d2, _, l2 = heapq.heappop(heap)
                combined = builder.and_(l1, l2)
                depth[combined >> 1] = max(d1, d2) + 1
                heapq.heappush(heap, (depth[combined >> 1], fresh, combined))
                fresh += 1
            result = heap[0][2] if heap else AigBuilder.CONST1
            if node.gtype is GateType.NAND:
                result ^= 1
            litmap[node.nid] = result
            continue
        raise ValueError(
            f"unexpected gate {node.gtype} in strashed AIG"
        )

    outputs = [(po_name, litmap[nid]) for po_name, nid in aig.pos]
    pi_names = [aig.node(pi).name for pi in aig.pis]
    out, _ = builder.to_network(outputs, pi_names, name or net.name)
    return out


def resynthesize(net: Network, seed: int = 0, name: str = "") -> Network:
    """Structure-destroying rebuild (strash + balance).

    Used by the benchmark generator to produce specifications that share
    no gate-level structure with the implementation, per the paper's
    "no structural similarity" requirement.
    """
    return balance(net, name or f"{net.name}_resyn")
