"""SAT sweeping (fraiging) — functionally reduced AIGs.

The paper's feasibility check (Section 3.2) relies on industrial-grade
combinational equivalence checking [12], whose workhorse is *SAT
sweeping*: candidate-equivalent nodes are found by bit-parallel
simulation and proven (or refuted, refining the simulation) with cheap
incremental SAT calls; proven-equivalent nodes are merged so downstream
logic — and ultimately the miter output — collapses.  Without it, a
plain CDCL solver faces the full miter monolithically, which is
intractable for XOR-rich cones.

:class:`FraigBuilder` wraps an :class:`~repro.network.strash.AigBuilder`
with exactly this loop; :func:`fraig_network` sweeps a whole network.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.types import mklit, neg
from .network import Network
from .strash import AigBuilder, build_literal


class FraigBuilder:
    """An AIG builder that merges functionally equivalent nodes on the fly.

    Usage mirrors :class:`AigBuilder`: create PIs, build ``and_`` nodes;
    every returned literal is the class representative, so structurally
    different but functionally equal cones collapse to one node.
    Simulation signatures filter candidates; assumption-based SAT calls
    with a conflict budget prove or refute them (refutations extend the
    simulation with the counterexample pattern).
    """

    CONST0 = AigBuilder.CONST0
    CONST1 = AigBuilder.CONST1

    def __init__(
        self,
        sim_words: int = 4,
        seed: int = 2018,
        budget_conflicts: Optional[int] = 4000,
        max_refinements: int = 512,
    ) -> None:
        self.builder = AigBuilder()
        self._rng = random.Random(seed)
        self._nbits = 64 * sim_words
        self._mask = (1 << self._nbits) - 1
        self._budget = budget_conflicts
        self._max_refinements = max_refinements
        self._refinements = 0
        self._solver = solver_for(QueryTraits(incremental=True))
        # per AIG node: simulation word, solver var
        self._sig: Dict[int, int] = {0: 0}
        self._var: Dict[int, int] = {}
        self._classes: Dict[int, int] = {}  # normalized signature -> node
        self._repr: Dict[int, int] = {}  # raw literal -> representative literal
        self.proved = 0
        self.refuted = 0

    # ------------------------------------------------------------------

    def add_pi(self) -> int:
        lit = self.builder.add_pi()
        nid = lit >> 1
        self._sig[nid] = self._rng.getrandbits(self._nbits)
        self._var[nid] = self._solver.new_var()
        self._register(nid)
        return lit

    def _register(self, nid: int) -> None:
        key = self._normalize(self._sig[nid])
        self._classes.setdefault(key, nid)

    def _normalize(self, sig: int) -> int:
        return (~sig & self._mask) if (sig & 1) else sig

    def _node_var(self, nid: int) -> int:
        """Solver variable of an AIG node, encoding its cone lazily."""
        var = self._var.get(nid)
        if var is not None:
            return var
        # iterative post-order encoding (deep cones would blow the stack)
        stack = [nid]
        while stack:
            cur = stack[-1]
            if cur in self._var:
                stack.pop()
                continue
            fan = self.builder._fanins[cur]
            assert fan is not None, "PIs are registered eagerly"
            pending = [f >> 1 for f in fan if (f >> 1) not in self._var and (f >> 1) != 0]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            a, b = fan
            va = self._fanin_solver_lit(a)
            vb = self._fanin_solver_lit(b)
            v = self._solver.new_var()
            o = mklit(v)
            self._solver.add_clause([neg(o), va])
            self._solver.add_clause([neg(o), vb])
            self._solver.add_clause([o, neg(va), neg(vb)])
            self._var[cur] = v
        return self._var[nid]

    def _fanin_solver_lit(self, lit: int) -> int:
        """Solver literal for an AIG fanin literal (const-aware)."""
        nid = lit >> 1
        if nid == 0:
            # constant: use a dedicated always-true variable
            if 0 not in self._var:
                v = self._solver.new_var()
                self._solver.add_clause([mklit(v)])
                self._var[0] = v
            return mklit(self._var[0], not (lit & 1))
        return mklit(self._var[nid], bool(lit & 1))

    def _lit_to_solver(self, lit: int) -> int:
        if lit >> 1 != 0:
            self._node_var(lit >> 1)
        return self._fanin_solver_lit(lit)

    def _resolve(self, lit: int) -> int:
        """Follow the representative chain for a literal."""
        while True:
            rep = self._repr.get(lit)
            if rep is None:
                rep = neg(self._repr[neg(lit)]) if neg(lit) in self._repr else None
            if rep is None or rep == lit:
                return lit
            lit = rep

    def and_(self, a: int, b: int) -> int:
        a = self._resolve(a)
        b = self._resolve(b)
        lit = self.builder.and_(a, b)
        lit = self._resolve(lit)
        nid = lit >> 1
        if nid in self._sig:
            return lit
        fan = self.builder._fanins[nid]
        sa = self._sig[fan[0] >> 1] ^ (self._mask if fan[0] & 1 else 0)
        sb = self._sig[fan[1] >> 1] ^ (self._mask if fan[1] & 1 else 0)
        self._sig[nid] = sa & sb
        merged = self._try_merge(lit)
        if merged is not None:
            return merged
        self._register(nid)
        return lit

    def _try_merge(self, lit: int) -> Optional[int]:
        """SAT-check ``lit`` against its signature class representative."""
        nid = lit >> 1
        sig = self._sig[nid]
        # constant candidates first
        for target_sig, cand in ((0, self.builder.CONST0), (self._mask, self.builder.CONST1)):
            if sig == target_sig:
                got = self._check_equal(lit, cand)
                if got:
                    self._repr[lit] = cand
                    return cand
                if got is None:
                    return None  # budget: keep node
                return None if self._exhausted() else self._try_merge(lit)
        key = self._normalize(sig)
        rep_nid = self._classes.get(key)
        if rep_nid is None or rep_nid == nid:
            return None
        rep_sig = self._sig[rep_nid]
        cand = (rep_nid << 1) | (0 if rep_sig == sig else 1)
        if self._sig_of_lit(cand) != sig:
            return None
        got = self._check_equal(lit, cand)
        if got:
            self.proved += 1
            self._repr[lit] = cand
            return cand
        if got is None:
            return None
        self.refuted += 1
        if self._exhausted():
            return None
        return self._try_merge(lit)  # signatures changed; retry once more

    def _sig_of_lit(self, lit: int) -> int:
        s = self._sig[lit >> 1]
        return (~s & self._mask) if (lit & 1) else s

    def _exhausted(self) -> bool:
        return self._refinements >= self._max_refinements

    def _check_equal(self, a: int, b: int) -> Optional[bool]:
        """True = proven equal, False = refuted (simulation refined),
        None = budget exhausted (assume different, keep both)."""
        la, lb = self._lit_to_solver(a), self._lit_to_solver(b)
        try:
            if self._solver.solve([la, neg(lb)], budget_conflicts=self._budget):
                self._refine_from_model()
                return False
            if self._solver.solve([neg(la), lb], budget_conflicts=self._budget):
                self._refine_from_model()
                return False
        except SatBudgetExceeded:
            return None
        return True

    def _refine_from_model(self) -> None:
        """Append the counterexample pattern and re-simulate everything."""
        self._refinements += 1
        model = self._solver
        bits: Dict[int, int] = {}
        for pi in self.builder.pis:
            var = self._var.get(pi)
            bit = model.model_value(mklit(var)) if var is not None else 0
            bits[pi] = bit
        # shift in the new pattern bit, in topological (ascending-id)
        # order so fanin low bits are fresh when a node reads them
        sig = self._sig
        mask = self._mask
        for nid in range(1, len(self.builder._fanins)):
            if nid not in sig:
                continue
            fan = self.builder._fanins[nid]
            if fan is None:
                low = bits.get(nid, 0)
            else:
                la = (sig[fan[0] >> 1] & 1) ^ (fan[0] & 1)
                lb = (sig[fan[1] >> 1] & 1) ^ (fan[1] & 1)
                low = la & lb
            sig[nid] = ((sig[nid] << 1) & mask) | low
        # class table is stale: rebuild
        self._classes = {}
        for nid in sorted(self._sig):
            if nid == 0:
                continue
            self._register(nid)

    # ------------------------------------------------------------------
    # conveniences mirroring AigBuilder
    # ------------------------------------------------------------------

    @staticmethod
    def lit_not(lit: int) -> int:
        return lit ^ 1

    def or_(self, a: int, b: int) -> int:
        return self.lit_not(self.and_(self.lit_not(a), self.lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, self.lit_not(b)), self.and_(self.lit_not(a), b))

    def xnor_(self, a: int, b: int) -> int:
        return self.lit_not(self.xor_(a, b))

    def mux_(self, s: int, d0: int, d1: int) -> int:
        return self.or_(self.and_(s, d1), self.and_(self.lit_not(s), d0))

    def and_many(self, lits: Sequence[int]) -> int:
        work = list(lits)
        if not work:
            return AigBuilder.CONST1
        while len(work) > 1:
            nxt = [self.and_(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)]
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def or_many(self, lits: Sequence[int]) -> int:
        return self.lit_not(self.and_many([self.lit_not(x) for x in lits]))

    def xor_many(self, lits: Sequence[int]) -> int:
        acc = AigBuilder.CONST0
        for x in lits:
            acc = self.xor_(acc, x)
        return acc

    def resolve_output(self, lit: int) -> int:
        """Final representative of an output literal."""
        return self._resolve(lit)

    def to_network(self, outputs, pi_names=None, name=""):
        """Emit via the underlying (already swept) AIG builder."""
        outs = [(n, self._resolve(lit)) for n, lit in outputs]
        return self.builder.to_network(outs, pi_names, name)


def fraig_into(
    fraig: FraigBuilder, net: Network, pi_lits: Dict[int, int]
) -> Dict[int, int]:
    """Rebuild ``net`` through a sweeping builder (cf. ``strash_into``)."""
    litmap: Dict[int, int] = dict(pi_lits)
    for node in net.topo_order():
        if node.is_pi:
            if node.nid not in litmap:
                raise ValueError(f"unmapped PI {node.name!r}")
            continue
        fanins = [litmap[f] for f in node.fanins]
        litmap[node.nid] = build_literal(fraig, node.gtype, fanins)
    return litmap


def fraig_network(
    net: Network,
    name: str = "",
    budget_conflicts: Optional[int] = 4000,
    seed: int = 2018,
) -> Network:
    """Return a functionally reduced rebuild of ``net``."""
    fraig = FraigBuilder(seed=seed, budget_conflicts=budget_conflicts)
    pi_lits = {pi: fraig.add_pi() for pi in net.pis}
    litmap = fraig_into(fraig, net, pi_lits)
    outputs = [(po_name, litmap[nid]) for po_name, nid in net.pos]
    pi_names = [net.node(pi).name for pi in net.pis]
    out, _ = fraig.to_network(outputs, pi_names, name or net.name)
    return out
