"""Structural hashing (strash) into AIG form and network rebuilding.

``AigBuilder`` provides a literal-based And-Inverter-Graph constructor
with one-level structural hashing and constant/idempotence rewriting —
the same bookkeeping ABC performs when the paper synthesizes miters,
quantified cofactors, and patch circuits.  ``strash_network`` rebuilds a
:class:`~repro.network.network.Network` through the builder, which both
deduplicates logic and propagates constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .network import Network
from .node import GateType


class AigBuilder:
    """An AIG under construction, addressed by *literals*.

    A literal is ``2 * node + phase`` where ``phase`` 1 denotes
    complementation.  Node 0 is the constant; literal 1 is constant 1 and
    literal 0 is constant 0.  Every created AND is hashed on its ordered
    fanin literal pair, so structurally identical logic is built once.
    """

    CONST0 = 0
    CONST1 = 1

    def __init__(self) -> None:
        # node 0 is the constant node; ands[i] holds fanins of node i (i>0 non-PI)
        self._fanins: List[Optional[Tuple[int, int]]] = [None]
        self._hash: Dict[Tuple[int, int], int] = {}
        self.pis: List[int] = []

    # -- literal helpers ------------------------------------------------

    @staticmethod
    def lit_not(lit: int) -> int:
        return lit ^ 1

    @staticmethod
    def lit_node(lit: int) -> int:
        return lit >> 1

    @staticmethod
    def lit_phase(lit: int) -> int:
        return lit & 1

    # -- construction ---------------------------------------------------

    def add_pi(self) -> int:
        """Create a new PI node; returns its positive literal."""
        nid = len(self._fanins)
        self._fanins.append(None)
        self.pis.append(nid)
        return nid << 1

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with structural hashing and rewriting."""
        if a > b:
            a, b = b, a
        if a == self.CONST0:
            return self.CONST0
        if a == self.CONST1:
            return b
        if a == b:
            return a
        if a ^ b == 1:
            return self.CONST0
        key = (a, b)
        hit = self._hash.get(key)
        if hit is not None:
            return hit
        nid = len(self._fanins)
        self._fanins.append(key)
        lit = nid << 1
        self._hash[key] = lit
        return lit

    def or_(self, a: int, b: int) -> int:
        return self.lit_not(self.and_(self.lit_not(a), self.lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, self.lit_not(b)), self.and_(self.lit_not(a), b))

    def xnor_(self, a: int, b: int) -> int:
        return self.lit_not(self.xor_(a, b))

    def mux_(self, s: int, d0: int, d1: int) -> int:
        return self.or_(self.and_(s, d1), self.and_(self.lit_not(s), d0))

    def and_many(self, lits: Sequence[int]) -> int:
        """Balanced AND over a literal list (CONST1 for empty)."""
        work = list(lits)
        if not work:
            return self.CONST1
        while len(work) > 1:
            nxt = [self.and_(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)]
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def or_many(self, lits: Sequence[int]) -> int:
        return self.lit_not(self.and_many([self.lit_not(x) for x in lits]))

    def xor_many(self, lits: Sequence[int]) -> int:
        acc = self.CONST0
        for x in lits:
            acc = self.xor_(acc, x)
        return acc

    @property
    def num_ands(self) -> int:
        return sum(1 for f in self._fanins if f is not None)

    # -- emission -------------------------------------------------------

    def to_network(
        self,
        outputs: Sequence[Tuple[str, int]],
        pi_names: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> Tuple[Network, Dict[int, int]]:
        """Emit a gate-level network for the given output literals.

        Only logic in the TFI of ``outputs`` is emitted.  Returns the
        network and a map literal→node-id covering emitted positive and
        negative literals.  Complemented literals become shared NOT
        gates; complemented ANDs feeding only one phase are emitted as
        NAND directly.
        """
        net = Network(name)
        litmap: Dict[int, int] = {}
        if pi_names is None:
            pi_names = [f"pi{i}" for i in range(len(self.pis))]
        for pi, pname in zip(self.pis, pi_names):
            litmap[pi << 1] = net.add_pi(pname)

        # mark required nodes and phases
        need_pos: Dict[int, bool] = {}
        need_neg: Dict[int, bool] = {}
        stack = [lit for _, lit in outputs]
        seen = set()
        while stack:
            lit = stack.pop()
            nid = lit >> 1
            (need_neg if lit & 1 else need_pos)[nid] = True
            if nid in seen:
                continue
            seen.add(nid)
            fan = self._fanins[nid] if nid < len(self._fanins) else None
            if fan is not None:
                stack.extend(fan)

        # AIG node ids are created fanin-first, so ascending id order is
        # topological: emit each required node/phase in one linear pass.
        for nid in range(len(self._fanins)):
            if nid not in need_pos and nid not in need_neg:
                continue
            if nid == 0:
                if need_pos.get(nid):
                    litmap[0] = net.add_const(0)
                if need_neg.get(nid):
                    litmap[1] = net.add_const(1)
                continue
            fan = self._fanins[nid]
            if fan is None:  # PI — positive phase pre-seeded in litmap
                if need_neg.get(nid):
                    litmap[(nid << 1) | 1] = net.add_gate(
                        GateType.NOT, [litmap[nid << 1]]
                    )
                continue
            fa, fb = litmap[fan[0]], litmap[fan[1]]
            if need_neg.get(nid) and not need_pos.get(nid):
                litmap[(nid << 1) | 1] = net.add_gate(GateType.NAND, [fa, fb])
                continue
            pos = net.add_gate(GateType.AND, [fa, fb])
            litmap[nid << 1] = pos
            if need_neg.get(nid):
                litmap[(nid << 1) | 1] = net.add_gate(GateType.NOT, [pos])

        for oname, lit in outputs:
            net.add_po(litmap[lit], oname)
        return net, litmap


def build_literal(builder: AigBuilder, gtype: GateType, fanins: Sequence[int]) -> int:
    """Build one gate of type ``gtype`` over AIG literals."""
    if gtype is GateType.CONST0:
        return AigBuilder.CONST0
    if gtype is GateType.CONST1:
        return AigBuilder.CONST1
    if gtype is GateType.BUF:
        return fanins[0]
    if gtype is GateType.NOT:
        return builder.lit_not(fanins[0])
    if gtype is GateType.AND:
        return builder.and_many(fanins)
    if gtype is GateType.NAND:
        return builder.lit_not(builder.and_many(fanins))
    if gtype is GateType.OR:
        return builder.or_many(fanins)
    if gtype is GateType.NOR:
        return builder.lit_not(builder.or_many(fanins))
    if gtype is GateType.XOR:
        return builder.xor_many(fanins)
    if gtype is GateType.XNOR:
        return builder.lit_not(builder.xor_many(fanins))
    if gtype is GateType.MUX:
        return builder.mux_(fanins[0], fanins[1], fanins[2])
    raise ValueError(f"cannot strash gate type {gtype}")


def strash_into(
    builder: AigBuilder, net: Network, pi_lits: Dict[int, int]
) -> Dict[int, int]:
    """Rebuild ``net``'s logic inside ``builder``.

    ``pi_lits`` maps ``net``'s PI ids to builder literals.  Returns a map
    node-id→literal for every live node.
    """
    litmap: Dict[int, int] = dict(pi_lits)
    for node in net.topo_order():
        if node.is_pi:
            if node.nid not in litmap:
                raise ValueError(f"unmapped PI {node.name!r}")
            continue
        fanins = [litmap[f] for f in node.fanins]
        litmap[node.nid] = build_literal(builder, node.gtype, fanins)
    return litmap


def cofactor_network(
    net: Network, fixed: Dict[int, int], name: str = ""
) -> Network:
    """Strash-rebuild ``net`` with some PIs fixed to constants.

    ``fixed`` maps PI id → 0/1.  The fixed PIs disappear from the
    interface; the other PIs keep their names and order, and the POs are
    preserved.  Constant propagation happens as a side effect of the
    rebuild.
    """
    builder = AigBuilder()
    pi_lits: Dict[int, int] = {}
    keep_names: List[str] = []
    for pi in net.pis:
        if pi in fixed:
            pi_lits[pi] = AigBuilder.CONST1 if fixed[pi] else AigBuilder.CONST0
        else:
            pi_lits[pi] = builder.add_pi()
            keep_names.append(net.node(pi).name)
    litmap = strash_into(builder, net, pi_lits)
    outputs = [(po_name, litmap[nid]) for po_name, nid in net.pos]
    out, _ = builder.to_network(outputs, keep_names, name or net.name)
    return out


def strash_network(net: Network, name: str = "") -> Network:
    """Return a structurally hashed, constant-propagated rebuild of ``net``.

    The PI/PO interface (names and order) is preserved; internal node
    names are not.
    """
    builder = AigBuilder()
    pi_lits = {pi: builder.add_pi() for pi in net.pis}
    litmap = strash_into(builder, net, pi_lits)
    outputs = [(po_name, litmap[nid]) for po_name, nid in net.pos]
    pi_names = [net.node(pi).name for pi in net.pis]
    out, _ = builder.to_network(outputs, pi_names, name or net.name)
    return out
