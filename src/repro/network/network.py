"""The gate-level Boolean network used throughout the reproduction.

The :class:`Network` is a mutable DAG of :class:`~repro.network.node.Node`
objects.  It is deliberately simple — explicit gates, no complemented
edges — so the ECO algorithms read close to the paper.  Structural
hashing into AIG form lives in :mod:`repro.network.strash`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .node import GateType, Node, arity_ok, eval_gate


class NetworkError(Exception):
    """Raised for malformed network operations."""


class Network:
    """A combinational Boolean network.

    Nodes are created through the ``add_*`` methods and addressed by
    integer ids.  Primary outputs are named references to nodes; several
    POs may reference one node, and a PO may reference a PI directly.
    Fanout lists are maintained incrementally so the ECO algorithms can
    traverse TFO cones cheaply.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: List[Optional[Node]] = []
        self._fanouts: List[Set[int]] = []
        self._name_to_id: Dict[str, int] = {}
        self._pis: List[int] = []
        self._pos: List[Tuple[str, int]] = []
        self._const_ids: Dict[GateType, int] = {}
        self._version = 0
        # (version, hash, layout-is-canonical), see structural_hash()
        self._hash_cache: Optional[Tuple[int, int, bool]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _touch(self) -> None:
        """Record a structural mutation (invalidates the cached hash)."""
        self._version += 1
        self._hash_cache = None

    def _new_node(self, gtype: GateType, fanins: Sequence[int], name: str) -> int:
        if not arity_ok(gtype, len(fanins)):
            raise NetworkError(f"bad fanin count {len(fanins)} for {gtype.value}")
        self._touch()
        nid = len(self._nodes)
        for f in fanins:
            self._node(f)  # validate
        node = Node(nid, gtype, list(fanins), name)
        self._nodes.append(node)
        self._fanouts.append(set())
        for f in fanins:
            self._fanouts[f].add(nid)
        if name:
            if name in self._name_to_id:
                raise NetworkError(f"duplicate node name {name!r}")
            self._name_to_id[name] = nid
        return nid

    def add_pi(self, name: str = "") -> int:
        """Add a primary input and return its id."""
        if not name:
            name = f"pi{len(self._pis)}"
        nid = self._new_node(GateType.PI, [], name)
        self._pis.append(nid)
        return nid

    def add_const(self, value: int) -> int:
        """Return the (shared) constant-0 or constant-1 node id."""
        gtype = GateType.CONST1 if value else GateType.CONST0
        if gtype not in self._const_ids:
            self._const_ids[gtype] = self._new_node(gtype, [], "")
        return self._const_ids[gtype]

    def add_gate(self, gtype: GateType, fanins: Sequence[int], name: str = "") -> int:
        """Add a logic gate and return its id."""
        if gtype in (GateType.PI, GateType.CONST0, GateType.CONST1):
            raise NetworkError("use add_pi/add_const for leaf nodes")
        return self._new_node(gtype, fanins, name)

    def add_po(self, nid: int, name: str = "") -> int:
        """Register node ``nid`` as a primary output; returns the PO index."""
        self._node(nid)
        if not name:
            name = f"po{len(self._pos)}"
        self._touch()
        self._pos.append((name, nid))
        return len(self._pos) - 1

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def _node(self, nid: int) -> Node:
        if nid < 0 or nid >= len(self._nodes) or self._nodes[nid] is None:
            raise NetworkError(f"no node with id {nid}")
        return self._nodes[nid]  # type: ignore[return-value]

    def node(self, nid: int) -> Node:
        """Return the node record for ``nid``."""
        return self._node(nid)

    def has_node(self, nid: int) -> bool:
        return 0 <= nid < len(self._nodes) and self._nodes[nid] is not None

    def node_by_name(self, name: str) -> int:
        """Return the id of the node named ``name``."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise NetworkError(f"no node named {name!r}") from None

    def has_name(self, name: str) -> bool:
        return name in self._name_to_id

    def fanouts(self, nid: int) -> Set[int]:
        """Return the set of node ids driven by ``nid`` (copy-safe view)."""
        self._node(nid)
        return self._fanouts[nid]

    @property
    def pis(self) -> List[int]:
        """Primary-input ids, in creation order."""
        return list(self._pis)

    @property
    def pos(self) -> List[Tuple[str, int]]:
        """Primary outputs as ``(name, node_id)`` pairs."""
        return list(self._pos)

    def po_names(self) -> List[str]:
        return [name for name, _ in self._pos]

    def rename_po(self, index: int, name: str) -> None:
        """Rename the PO at ``index`` (node binding unchanged)."""
        old_name, nid = self._pos[index]
        self._touch()
        self._pos[index] = (name, nid)

    def set_po(self, index: int, nid: int) -> None:
        """Rebind the PO at ``index`` to drive from node ``nid``."""
        self._node(nid)
        name, _ = self._pos[index]
        self._touch()
        self._pos[index] = (name, nid)

    def nodes(self) -> Iterator[Node]:
        """Iterate over live nodes in id order."""
        for node in self._nodes:
            if node is not None:
                yield node

    def node_ids(self) -> List[int]:
        return [n.nid for n in self.nodes()]

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.nodes())

    @property
    def num_gates(self) -> int:
        """Number of logic gates (excludes PIs and constants)."""
        return sum(1 for n in self.nodes() if n.is_gate)

    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def set_fanins(self, nid: int, gtype: GateType, fanins: Sequence[int]) -> None:
        """Replace the local function of node ``nid`` in place.

        The node keeps its id, name, and fanouts; only its gate type and
        fanins change.  This is how ECO targets are corrupted in the
        benchmark generator and how patches are spliced in.
        """
        node = self._node(nid)
        if node.is_pi:
            raise NetworkError("cannot change the function of a PI")
        if not arity_ok(gtype, len(fanins)):
            raise NetworkError(f"bad fanin count {len(fanins)} for {gtype.value}")
        for f in fanins:
            self._node(f)
        self._touch()
        for f in node.fanins:
            self._fanouts[f].discard(nid)
        node.gtype = gtype
        node.fanins = list(fanins)
        for f in fanins:
            self._fanouts[f].add(nid)

    def substitute(self, old: int, new: int) -> None:
        """Redirect every fanout and PO of ``old`` to ``new``.

        ``old`` itself remains in the network (possibly dangling) until a
        :meth:`cleanup` pass removes it.
        """
        if old == new:
            return
        self._node(new)
        self._touch()
        for fo in list(self._fanouts[old]):
            node = self._node(fo)
            node.fanins = [new if f == old else f for f in node.fanins]
            self._fanouts[old].discard(fo)
            self._fanouts[new].add(fo)
        self._pos = [(name, new if nid == old else nid) for name, nid in self._pos]

    def free_pi_for(self, nid: int, name: str = "") -> int:
        """Cut node ``nid`` out of the network by a fresh PI.

        Creates a new PI and substitutes it for ``nid``, turning the node
        into a free variable from the point of view of the fanout logic.
        Returns the PI id.  Used to expose ECO targets in the miter.
        """
        pi = self.add_pi(name or f"__free_{nid}")
        self.substitute(nid, pi)
        return pi

    def cleanup(self) -> int:
        """Remove nodes unreachable from any PO; return the removal count.

        PIs and shared constants are always kept so that interfaces stay
        stable.
        """
        keep: Set[int] = set(self._pis)
        keep.update(self._const_ids.values())
        stack = [nid for _, nid in self._pos]
        while stack:
            nid = stack.pop()
            if nid in keep:
                continue
            keep.add(nid)
            stack.extend(self._node(nid).fanins)
        removed = 0
        for nid in range(len(self._nodes)):
            node = self._nodes[nid]
            if node is None or nid in keep:
                continue
            for f in node.fanins:
                if self._nodes[f] is not None:
                    self._fanouts[f].discard(nid)
            if node.name:
                del self._name_to_id[node.name]
            self._nodes[nid] = None
            self._fanouts[nid] = set()
            removed += 1
        if removed:
            self._touch()
        return removed

    # ------------------------------------------------------------------
    # composite operations
    # ------------------------------------------------------------------

    def append(
        self,
        other: "Network",
        input_map: Dict[int, int],
        prefix: str = "",
    ) -> Dict[int, int]:
        """Import the logic of ``other`` into this network.

        ``input_map`` maps each of ``other``'s PI ids to a node id in this
        network (missing PIs raise).  Returns a map from every live node
        id of ``other`` to the corresponding id here.  ``other``'s POs are
        *not* registered as POs; the caller wires them as needed.
        """
        mapping: Dict[int, int] = {}
        for pi in other._pis:
            if pi not in input_map:
                raise NetworkError(f"append: unmapped PI {other.node(pi).name!r}")
            mapping[pi] = input_map[pi]
        for node in other.topo_order():
            if node.is_pi:
                continue
            if node.is_const:
                mapping[node.nid] = self.add_const(1 if node.gtype is GateType.CONST1 else 0)
                continue
            fanins = [mapping[f] for f in node.fanins]
            name = f"{prefix}{node.name}" if (prefix and node.name) else ""
            if name and name in self._name_to_id:
                name = self._uniquify_name(name)
            mapping[node.nid] = self.add_gate(node.gtype, fanins, name)
        return mapping

    def _uniquify_name(self, name: str) -> str:
        """Return a deterministic collision-free variant of ``name``."""
        k = 2
        while f"{name}__{k}" in self._name_to_id:
            k += 1
        return f"{name}__{k}"

    def clone(self, name: str = "") -> "Network":
        """Return a deep, id-renumbered copy with the same PI/PO interface.

        Single topological pass: names are attached as nodes are copied
        (source names are unique, so no collision handling is needed).
        The id layout is deterministic — PIs first in creation order,
        then gates in topo order — so two clones of the same source get
        identical ids (the fallback chain relies on this to share
        divisor ids across cloned networks).
        """
        out = Network(name or self.name)
        mapping: Dict[int, int] = {}
        for pi in self._pis:
            mapping[pi] = out.add_pi(self.node(pi).name)
        for node in self.topo_order():
            if node.is_pi:
                continue
            if node.is_const:
                mapping[node.nid] = out.add_const(
                    1 if node.gtype is GateType.CONST1 else 0
                )
                continue
            fanins = [mapping[f] for f in node.fanins]
            mapping[node.nid] = out.add_gate(node.gtype, fanins, node.name)
        for po_name, nid in self._pos:
            out.add_po(mapping[nid], po_name)
        return out

    # ------------------------------------------------------------------
    # structural identity
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every structural edit).

        Cheap dirty-flag for callers caching derived data: equal versions
        on the *same* object guarantee no mutation happened in between.
        """
        return self._version

    def structural_hash(self) -> int:
        """A deterministic fingerprint of the network's structure.

        Covers gate types, fanin wiring (in a canonical topological
        renumbering), node names, and the PO interface — two networks
        with equal hashes are structurally identical for the ECO
        algorithms' purposes (same windows, divisors, and patches).  In
        particular ``net.clone().structural_hash() ==
        net.structural_hash()``.  Cached until the next mutation.
        """
        if self._hash_cache is not None and self._hash_cache[0] == self._version:
            return self._hash_cache[1]
        h = hashlib.blake2b(digest_size=16)
        # canonical renumbering: PIs in creation order, then topo order,
        # mirroring the clone() id layout so clones hash identically
        renum: Dict[int, int] = {}
        canonical = True
        for pi in self._pis:
            canonical &= pi == len(renum)
            renum[pi] = len(renum)
            h.update(b"I")
            h.update(self.node(pi).name.encode())
            h.update(b"\x00")
        for node in self.topo_order():
            if node.is_pi:
                continue
            if node.nid not in renum:
                canonical &= node.nid == len(renum)
                renum[node.nid] = len(renum)
            h.update(node.gtype.value.encode())
            for f in node.fanins:
                h.update(renum[f].to_bytes(4, "little"))
            h.update(node.name.encode())
            h.update(b"\x00")
        for po_name, nid in self._pos:
            h.update(b"O")
            h.update(po_name.encode())
            h.update(b"\x00")
            h.update(renum[nid].to_bytes(4, "little"))
        digest = int.from_bytes(h.digest(), "little")
        self._hash_cache = (self._version, digest, canonical)
        return digest

    def has_canonical_layout(self) -> bool:
        """True when raw node ids equal the canonical renumbering.

        Networks built front-to-back (and every :meth:`clone`) are
        canonical; ``cleanup()`` holes or out-of-order construction
        break it.  When two networks hash equal *and* both are
        canonical, their raw node ids are interchangeable — the memo in
        :mod:`repro.core.divisors` relies on this to reuse id-bearing
        extraction results across runs.
        """
        self.structural_hash()
        assert self._hash_cache is not None
        return self._hash_cache[2]

    def topo_order(self) -> List[Node]:
        """Return live nodes in a topological (fanin-before-fanout) order."""
        order: List[Node] = []
        seen: Set[int] = set()
        # iterative DFS from POs plus all live nodes (include dangling ones)
        roots = [n.nid for n in self.nodes()]
        stack: List[Tuple[int, bool]] = [(nid, False) for nid in reversed(roots)]
        while stack:
            nid, expanded = stack.pop()
            if expanded:
                order.append(self._node(nid))
                continue
            if nid in seen:
                continue
            seen.add(nid)
            stack.append((nid, True))
            for f in self._node(nid).fanins:
                if f not in seen:
                    stack.append((f, False))
        return order

    def evaluate(self, pi_values: Dict[int, int], mask: int = 1) -> Dict[int, int]:
        """Evaluate every node given PI values; returns id→value.

        Values may be bit-parallel words when ``mask`` spans more bits.
        """
        values: Dict[int, int] = {}
        for node in self.topo_order():
            if node.is_pi:
                values[node.nid] = pi_values[node.nid] & mask
            else:
                values[node.nid] = eval_gate(
                    node.gtype, [values[f] for f in node.fanins], mask
                )
        return values

    def evaluate_pos(self, pi_values: Dict[int, int], mask: int = 1) -> Dict[str, int]:
        """Evaluate and return PO name → value."""
        values = self.evaluate(pi_values, mask)
        return {name: values[nid] for name, nid in self._pos}

    def validate(self) -> None:
        """Structural sanity check; raises :class:`NetworkError` on damage.

        Delegates to the rule-based linter
        (:func:`repro.check.netlint.lint_network`) and raises on the
        first error-severity finding, so this method and the ``repro
        check`` CLI can never disagree on what a well-formed network is.
        Covers fanin/fanout symmetry, arity legality, acyclicity, name
        map consistency, PI/constant registries, and PO bindings.
        Intended for tests and for callers that hand-edit networks.
        """
        # deferred import: repro.check builds on top of this module
        from ..check.netlint import Severity, lint_network

        for finding in lint_network(self):
            if finding.severity is Severity.ERROR:
                raise NetworkError(finding.format())

    def stats(self) -> Dict[str, int]:
        """Summary statistics used in reports and Table 1."""
        return {
            "pis": self.num_pis,
            "pos": self.num_pos,
            "gates": self.num_gates,
            "nodes": self.num_nodes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({self.name!r}, pi={self.num_pis}, po={self.num_pos}, "
            f"gates={self.num_gates})"
        )
