"""Bit-parallel random simulation.

Simulation packs many input patterns into Python integers (one bit per
pattern) and evaluates the network once per node.  It is used to seed
candidate-equivalence classes for ``CEGAR_min`` (Section 3.6.3) and
functional resubstitution, and as a cheap oracle in tests.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from .network import Network


class Simulator:
    """Bit-parallel simulator bound to one network.

    Patterns are stored per PI as integers; ``nbits`` patterns are active.
    """

    def __init__(self, net: Network, nbits: int = 256, seed: int = 2018) -> None:
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        self.net = net
        self.nbits = nbits
        self.mask = (1 << nbits) - 1
        self._rng = random.Random(seed)
        self.pi_patterns: Dict[int, int] = {
            pi: self._rng.getrandbits(nbits) for pi in net.pis
        }
        self._values: Optional[Dict[int, int]] = None

    def set_pattern(self, pi: int, pattern: int) -> None:
        """Override the pattern word of one PI.

        Raises :class:`ValueError` when ``pi`` is not a primary input of
        the bound network — a pattern stored under any other id would be
        silently ignored by evaluation.
        """
        if pi not in self.pi_patterns:
            raise ValueError(
                f"node {pi} is not a primary input of {self.net.name!r}"
            )
        self.pi_patterns[pi] = pattern & self.mask
        self._values = None

    def add_minterm(self, assignment: Dict[int, int]) -> None:
        """Append one directed input pattern (rotating the oldest out).

        ``assignment`` maps PI id → 0/1; unspecified PIs get random bits.
        Directed patterns come from SAT counterexamples and sharpen the
        equivalence classes.
        """
        for pi in self.net.pis:
            bit = assignment.get(pi, self._rng.getrandbits(1)) & 1
            self.pi_patterns[pi] = ((self.pi_patterns[pi] << 1) | bit) & self.mask
        self._values = None

    def values(self) -> Dict[int, int]:
        """Return (cached) simulation words for every live node."""
        if self._values is None:
            self._values = self.net.evaluate(self.pi_patterns, self.mask)
        return self._values

    def signature(self, nid: int) -> int:
        """The simulation word of node ``nid``."""
        return self.values()[nid]

    def classes(self, nids: Iterable[int]) -> Dict[int, List[int]]:
        """Group ``nids`` into candidate-equivalence classes by signature.

        Complement-equivalent signals land in the same class: the class
        key is the signature normalized so its lowest bit is 0.
        """
        values = self.values()
        groups: Dict[int, List[int]] = {}
        for nid in nids:
            sig = values[nid]
            if sig & 1:
                sig = ~sig & self.mask
            groups.setdefault(sig, []).append(nid)
        return groups


def random_pi_assignment(net: Network, rng: random.Random) -> Dict[int, int]:
    """One random single-bit PI assignment."""
    return {pi: rng.getrandbits(1) for pi in net.pis}


def outputs_equal(
    net_a: Network, net_b: Network, patterns: int = 512, seed: int = 7
) -> bool:
    """Probabilistic output-equivalence check by shared-pattern simulation.

    Both networks must expose identically named PIs and POs.  A ``True``
    result is only evidence; use :mod:`repro.core.verify` for proof.

    Outputs with unique names are matched by name (PO order may differ).
    When either network carries a *duplicated* PO name, name matching is
    ill-defined — a name-keyed dict would silently collapse the
    duplicates and drop outputs from the comparison — so the check
    switches to strict positional comparison: PO ``i`` of ``net_a`` must
    agree with PO ``i`` of ``net_b`` in both name and simulated value.
    """
    rng = random.Random(seed)
    mask = (1 << patterns) - 1
    words = {net_a.node(pi).name: rng.getrandbits(patterns) for pi in net_a.pis}
    vals_a = net_a.evaluate(
        {pi: words[net_a.node(pi).name] for pi in net_a.pis}, mask
    )
    vals_b = net_b.evaluate(
        {pi: words[net_b.node(pi).name] for pi in net_b.pis}, mask
    )
    names_a = [name for name, _ in net_a.pos]
    names_b = [name for name, _ in net_b.pos]
    if len(names_a) != len(names_b):
        return False
    duplicates = len(set(names_a)) != len(names_a) or len(set(names_b)) != len(
        names_b
    )
    if duplicates:
        return all(
            na == nb and vals_a[ida] == vals_b[idb]
            for (na, ida), (nb, idb) in zip(net_a.pos, net_b.pos)
        )
    pos_a = dict(net_a.pos)
    pos_b = dict(net_b.pos)
    if set(pos_a) != set(pos_b):
        return False
    return all(vals_a[pos_a[name]] == vals_b[pos_b[name]] for name in pos_a)
