"""Cone and level computations over :class:`~repro.network.network.Network`.

These are the structural primitives behind the paper's windowing step
(Section 3.3): transitive fanin/fanout cones, reachable-PO ("TFO
support") computation, and topological levels.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from .network import Network


def tfi(net: Network, roots: Iterable[int], include_roots: bool = True) -> Set[int]:
    """Transitive fanin cone of ``roots`` (node ids), including PIs."""
    seen: Set[int] = set()
    stack = list(roots)
    roots_set = set(stack)
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(net.node(nid).fanins)
    if not include_roots:
        seen -= roots_set
    return seen


def tfo(net: Network, roots: Iterable[int], include_roots: bool = True) -> Set[int]:
    """Transitive fanout cone of ``roots`` (node ids)."""
    seen: Set[int] = set()
    stack = list(roots)
    roots_set = set(stack)
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(net.fanouts(nid))
    if not include_roots:
        seen -= roots_set
    return seen


def tfo_pos(net: Network, roots: Iterable[int]) -> List[int]:
    """PO indices reachable from ``roots`` — the paper's "TFO support"."""
    cone = tfo(net, roots)
    return [i for i, (_, nid) in enumerate(net.pos) if nid in cone]


def levels(net: Network) -> Dict[int, int]:
    """Topological level of every node (PIs and constants at level 0)."""
    lev: Dict[int, int] = {}
    for node in net.topo_order():
        if node.fanins:
            lev[node.nid] = 1 + max(lev[f] for f in node.fanins)
        else:
            lev[node.nid] = 0
    return lev


def depth(net: Network) -> int:
    """Maximum PO level (0 for a network of wires)."""
    lev = levels(net)
    if not net.pos:
        return 0
    return max(lev[nid] for _, nid in net.pos)


def support(net: Network, nid: int) -> Set[int]:
    """The PI ids in the TFI of ``nid`` — its structural support."""
    return {x for x in tfi(net, [nid]) if net.node(x).is_pi}
