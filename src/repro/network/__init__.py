"""Boolean-network substrate: DAG netlists, traversal, strash, simulation."""

from .fraig import FraigBuilder, fraig_into, fraig_network
from .network import Network, NetworkError
from .node import GateType, Node, eval_gate
from .simulate import Simulator, outputs_equal
from .strash import (
    AigBuilder,
    build_literal,
    cofactor_network,
    strash_into,
    strash_network,
)
from .transforms import balance, collapse_buffers, resynthesize, sweep
from .traversal import depth, levels, support, tfi, tfo, tfo_pos
from .window import Window, compute_window

__all__ = [
    "AigBuilder",
    "FraigBuilder",
    "GateType",
    "Network",
    "NetworkError",
    "Node",
    "Simulator",
    "Window",
    "balance",
    "build_literal",
    "cofactor_network",
    "collapse_buffers",
    "compute_window",
    "fraig_into",
    "fraig_network",
    "resynthesize",
    "sweep",
    "depth",
    "eval_gate",
    "levels",
    "outputs_equal",
    "strash_into",
    "strash_network",
    "support",
    "tfi",
    "tfo",
    "tfo_pos",
]
