"""Sequential ECO under fixed register correspondence ([10], base case).

With registers matched one-to-one (same names, same initial values) a
sequential ECO reduces to a combinational one on the *transition view*:
latch outputs become free primary inputs, next-state functions become
extra primary outputs, and the combinational engine of the paper runs
unchanged.  The resulting patch is valid for every state — reachable or
not — which implies unbounded sequential equivalence; a BMC check from
reset is run as an independent sanity oracle.

Retiming/resynthesis-aware correspondence (the full generality of [10])
is out of scope; see DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.engine import EcoConfig, EcoEngine, contest_config
from ..core.patch import Patch, apply_patch
from ..io.weights import EcoInstance
from .network import SeqNetwork
from .verify import seq_cec, transition_equivalent


@dataclass
class SeqEcoResult:
    """Outcome of a sequential ECO run."""

    patches: List[Patch]
    cost: int
    gate_count: int
    patched: SeqNetwork
    transition_verified: bool
    bmc_verified: bool
    bmc_frames: int
    runtime_seconds: float
    stats: Dict[str, float] = field(default_factory=dict)


class SeqEcoError(Exception):
    """Raised when interfaces mismatch or verification fails."""


def _check_interfaces(impl: SeqNetwork, spec: SeqNetwork) -> None:
    impl_pis = sorted(impl.core.node(p).name for p in impl.true_pis)
    spec_pis = sorted(spec.core.node(p).name for p in spec.true_pis)
    if impl_pis != spec_pis:
        raise SeqEcoError("primary-input names differ")
    if sorted(impl.core.po_names()) != sorted(spec.core.po_names()):
        raise SeqEcoError("primary-output names differ")
    impl_l = sorted((l.name, l.init) for l in impl.latches)
    spec_l = sorted((l.name, l.init) for l in spec.latches)
    if impl_l != spec_l:
        raise SeqEcoError(
            "register correspondence mismatch (names/initial values)"
        )


def _transition_view(seq: SeqNetwork):
    view = seq.core.clone()
    for latch in seq.latches:
        src = seq.core.node(latch.data_input)
        if not src.name:
            raise SeqEcoError("latch data inputs must be named signals")
        view.add_po(view.node_by_name(src.name), f"__next_{latch.name}")
    return view


def run_sequential_eco(
    impl: SeqNetwork,
    spec: SeqNetwork,
    targets: Sequence[str],
    weights: Optional[Dict[str, int]] = None,
    config: Optional[EcoConfig] = None,
    bmc_frames: int = 8,
    name: str = "seq_eco",
) -> SeqEcoResult:
    """Patch ``targets`` in ``impl``'s core so it matches ``spec``.

    Args:
        impl / spec: sequential netlists with matched interfaces and
            register correspondence.
        targets: names of core nodes of ``impl`` to re-synthesize.
        weights: resource costs of core signals (contest semantics).
        config: engine configuration (contest preset by default).
        bmc_frames: bound for the independent BMC sanity check.

    Returns:
        a :class:`SeqEcoResult` with the patched sequential netlist.

    Raises:
        SeqEcoError: on interface mismatch or failed verification.
    """
    t0 = time.perf_counter()
    _check_interfaces(impl, spec)
    instance = EcoInstance(
        name=name,
        impl=_transition_view(impl),
        spec=_transition_view(spec),
        targets=list(targets),
        weights=dict(weights or {}),
    )
    engine = EcoEngine(config or contest_config())
    comb = engine.run(instance)

    patched = impl.clone()
    for patch in comb.patches:
        apply_patch(patched.core, patch)

    trans = transition_equivalent(patched, spec)
    bmc = seq_cec(patched, spec, frames=bmc_frames)
    if trans.equivalent is False or bmc.equivalent is False:
        raise SeqEcoError("patched sequential netlist failed verification")
    return SeqEcoResult(
        patches=comb.patches,
        cost=comb.cost,
        gate_count=comb.gate_count,
        patched=patched,
        transition_verified=bool(trans.equivalent),
        bmc_verified=bool(bmc.equivalent),
        bmc_frames=bmc_frames,
        runtime_seconds=time.perf_counter() - t0,
        stats=dict(comb.stats),
    )
