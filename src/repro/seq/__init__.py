"""Sequential ECO extension (fixed register correspondence, cf. [10])."""

from .eco import SeqEcoError, SeqEcoResult, run_sequential_eco
from .io import parse_seq_bench, read_seq_bench, write_seq_bench
from .network import Latch, SeqNetwork
from .unroll import unroll
from .verify import SeqCecResult, seq_cec, transition_equivalent

__all__ = [
    "Latch",
    "SeqCecResult",
    "SeqEcoError",
    "SeqEcoResult",
    "SeqNetwork",
    "parse_seq_bench",
    "read_seq_bench",
    "run_sequential_eco",
    "seq_cec",
    "transition_equivalent",
    "unroll",
    "write_seq_bench",
]
