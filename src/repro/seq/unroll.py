"""Time-frame expansion of sequential netlists.

``unroll`` produces a purely combinational network covering ``k``
cycles: frame inputs are fresh PIs named ``<pi>@<t>``, frame outputs are
POs named ``<po>@<t>``, latch outputs of frame t+1 are driven by latch
inputs of frame t, and frame 0 starts from the registers' initial
values (or from free PIs for an arbitrary-state unrolling).
"""

from __future__ import annotations

from typing import Dict

from ..network.network import Network
from .network import SeqNetwork


def unroll(
    seq: SeqNetwork,
    frames: int,
    from_initial_state: bool = True,
    name: str = "",
) -> Network:
    """Unroll ``seq`` for ``frames`` cycles into one combinational net.

    With ``from_initial_state`` False, frame 0's latch outputs become
    free PIs named ``<latch>@0`` (useful for inductive reasoning).
    """
    if frames <= 0:
        raise ValueError("frames must be positive")
    out = Network(name or f"{seq.core.name}_u{frames}")
    state_nodes: Dict[int, int] = {}
    if from_initial_state:
        for latch in seq.latches:
            state_nodes[latch.output] = out.add_const(latch.init)
    else:
        for latch in seq.latches:
            state_nodes[latch.output] = out.add_pi(f"{latch.name}@0")

    for t in range(frames):
        input_map: Dict[int, int] = {}
        for pi in seq.true_pis:
            input_map[pi] = out.add_pi(f"{seq.core.node(pi).name}@{t}")
        for latch in seq.latches:
            input_map[latch.output] = state_nodes[latch.output]
        mapping = out.append(seq.core, input_map)
        for po_name, nid in seq.core.pos:
            out.add_po(mapping[nid], f"{po_name}@{t}")
        state_nodes = {
            latch.output: mapping[latch.data_input] for latch in seq.latches
        }
    return out
