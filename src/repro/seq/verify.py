"""Bounded sequential equivalence checking (BMC-style).

Two sequential netlists with matching PI/PO/latch interfaces are
compared over ``k`` unrolled frames from their initial states.  This is
the verification oracle for the sequential ECO extension — sound for
refutation, bounded for proof (the transition-level combinational check
in :mod:`repro.seq.eco` supplies the unbounded argument when register
correspondence is fixed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.verify import CecResult, cec
from .network import SeqNetwork
from .unroll import unroll


@dataclass
class SeqCecResult:
    """Bounded-equivalence verdict.

    ``equivalent`` refers to the checked bound only; ``frames`` records
    it.  The counterexample maps frame-stamped PI names to values.
    """

    equivalent: Optional[bool]
    frames: int
    counterexample: Optional[Dict[str, int]] = None


def seq_cec(
    a: SeqNetwork,
    b: SeqNetwork,
    frames: int = 8,
    budget_conflicts: Optional[int] = None,
) -> SeqCecResult:
    """Compare ``a`` and ``b`` over ``frames`` cycles from reset."""
    ua = unroll(a, frames)
    ub = unroll(b, frames)
    res = cec(ua, ub, budget_conflicts=budget_conflicts)
    return SeqCecResult(
        equivalent=res.equivalent,
        frames=frames,
        counterexample=res.counterexample,
    )


def transition_equivalent(
    a: SeqNetwork,
    b: SeqNetwork,
    budget_conflicts: Optional[int] = None,
) -> CecResult:
    """Combinational equivalence of the transition relations.

    Latch outputs are treated as free PIs and latch inputs as extra
    POs.  With identical register correspondence and initial values this
    implies full sequential equivalence (stronger than any bounded
    check); it may reject designs that are sequentially equal only via
    unreachable-state don't-cares.
    """
    return cec(
        _transition_view(a),
        _transition_view(b),
        budget_conflicts=budget_conflicts,
    )


def _transition_view(seq: SeqNetwork):
    """Core network with next-state functions exposed as POs."""
    view = seq.core.clone()
    for latch in seq.latches:
        src = seq.core.node(latch.data_input)
        if not src.name:
            raise ValueError("transition view requires named latch inputs")
        view.add_po(view.node_by_name(src.name), f"__next_{latch.name}")
    return view
