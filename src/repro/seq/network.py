"""Sequential netlists: combinational core plus registers.

The paper notes its combinational ECO "can be extended to be sequential
as shown in [10]".  This subpackage implements the fixed-register-
correspondence case of that extension: a :class:`SeqNetwork` is a
combinational :class:`~repro.network.network.Network` whose interface
includes register outputs (as pseudo-PIs) and register inputs (driven
nodes), plus initial values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.network import Network, NetworkError


@dataclass
class Latch:
    """One register.

    Attributes:
        name: register name (its output signal name).
        output: node id of the register *output* (a PI of the core).
        data_input: node id of the register *input* (next-state driver).
        init: initial value (0 or 1).
    """

    name: str
    output: int
    data_input: int
    init: int = 0


class SeqNetwork:
    """A sequential circuit with a combinational core.

    The core network's PIs are the true primary inputs followed by the
    latch outputs; its POs are the true primary outputs.  Latch data
    inputs reference core nodes directly.
    """

    def __init__(self, core: Network, latches: Optional[List[Latch]] = None) -> None:
        self.core = core
        self.latches: List[Latch] = list(latches or [])
        self._check()

    def _check(self) -> None:
        latch_outputs = {l.output for l in self.latches}
        for latch in self.latches:
            node = self.core.node(latch.output)
            if not node.is_pi:
                raise NetworkError(
                    f"latch output {latch.name!r} must be a core PI"
                )
            self.core.node(latch.data_input)
            if latch.init not in (0, 1):
                raise NetworkError("latch init must be 0 or 1")
        if len(latch_outputs) != len(self.latches):
            raise NetworkError("duplicate latch outputs")

    @property
    def true_pis(self) -> List[int]:
        """Primary inputs excluding latch outputs."""
        latch_outputs = {l.output for l in self.latches}
        return [pi for pi in self.core.pis if pi not in latch_outputs]

    @property
    def num_latches(self) -> int:
        return len(self.latches)

    def initial_state(self) -> Dict[int, int]:
        """Latch-output PI id → initial value."""
        return {l.output: l.init for l in self.latches}

    def step(
        self, state: Dict[int, int], inputs: Dict[int, int]
    ) -> Tuple[Dict[str, int], Dict[int, int]]:
        """One clock cycle: returns ``(po_values, next_state)``.

        ``state`` maps latch-output PI ids to values; ``inputs`` maps
        true-PI ids to values.
        """
        assign = dict(inputs)
        assign.update(state)
        values = self.core.evaluate(assign)
        outputs = {name: values[nid] for name, nid in self.core.pos}
        next_state = {
            l.output: values[l.data_input] for l in self.latches
        }
        return outputs, next_state

    def simulate(
        self, input_sequence: Sequence[Dict[int, int]]
    ) -> List[Dict[str, int]]:
        """Run from the initial state; returns per-cycle PO values."""
        state = self.initial_state()
        trace = []
        for inputs in input_sequence:
            outputs, state = self.step(state, inputs)
            trace.append(outputs)
        return trace

    def clone(self) -> "SeqNetwork":
        """Deep copy preserving the interface and register bindings."""
        mapping_core = self.core.clone()
        # clone() renumbers ids; rebuild the latch bindings by name
        latches = []
        for latch in self.latches:
            out_name = self.core.node(latch.output).name
            in_node = self.core.node(latch.data_input)
            if in_node.name:
                new_input = mapping_core.node_by_name(in_node.name)
            else:
                raise NetworkError(
                    "clone requires named latch data inputs "
                    f"(latch {latch.name!r})"
                )
            latches.append(
                Latch(
                    name=latch.name,
                    output=mapping_core.node_by_name(out_name),
                    data_input=new_input,
                    init=latch.init,
                )
            )
        return SeqNetwork(mapping_core, latches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SeqNetwork(pis={len(self.true_pis)}, latches={self.num_latches}, "
            f"pos={self.core.num_pos}, gates={self.core.num_gates})"
        )


def add_latch(
    seq_core: Network, name: str, init: int = 0
) -> int:
    """Create a latch-output PI in a core under construction."""
    return seq_core.add_pi(name)
