"""Sequential ``.bench`` I/O (ISCAS-89 style, DFF primitives)."""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..io.bench import BenchError, parse_bench, write_bench
from ..network.network import Network
from ..network.node import GateType
from .network import Latch, SeqNetwork

_BENCH_GATES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "MUX": GateType.MUX,
}


def parse_seq_bench(text: str) -> SeqNetwork:
    """Parse a sequential ``.bench`` netlist (DFFs become latches)."""
    inputs: List[str] = []
    outputs: List[str] = []
    dffs: List[Tuple[str, str]] = []  # (output signal, input signal)
    driver: Dict[str, Tuple[GateType, List[str]]] = {}
    for raw in text.split("\n"):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = re.fullmatch(r"INPUT\s*\(\s*(\S+?)\s*\)", line, flags=re.I)
        if m:
            inputs.append(m.group(1))
            continue
        m = re.fullmatch(r"OUTPUT\s*\(\s*(\S+?)\s*\)", line, flags=re.I)
        if m:
            outputs.append(m.group(1))
            continue
        m = re.fullmatch(r"(\S+)\s*=\s*(\w+)\s*\(\s*(.*?)\s*\)", line)
        if not m:
            raise BenchError(f"unsupported line: {line!r}")
        out, prim, args = m.group(1), m.group(2).upper(), m.group(3)
        ins = [a.strip() for a in args.split(",") if a.strip()]
        if prim == "DFF":
            if len(ins) != 1:
                raise BenchError(f"DFF takes one input: {line!r}")
            dffs.append((out, ins[0]))
            continue
        if prim not in _BENCH_GATES:
            raise BenchError(f"unknown primitive {prim!r}")
        if out in driver:
            raise BenchError(f"signal {out!r} defined twice")
        driver[out] = (_BENCH_GATES[prim], ins)

    core = Network("seq_bench")
    for pin in inputs:
        core.add_pi(pin)
    for latch_out, _ in dffs:
        core.add_pi(latch_out)

    def build(goal: str) -> int:
        if core.has_name(goal):
            return core.node_by_name(goal)
        stack: List[Tuple[str, bool]] = [(goal, False)]
        on_path: set = set()
        while stack:
            wire, expanded = stack.pop()
            if core.has_name(wire):
                continue
            if expanded:
                on_path.discard(wire)
                if wire not in driver:
                    raise BenchError(f"signal {wire!r} has no driver")
                gtype, ins = driver[wire]
                core.add_gate(gtype, [core.node_by_name(x) for x in ins], wire)
                continue
            if wire in on_path:
                raise BenchError(f"combinational cycle through {wire!r}")
            on_path.add(wire)
            stack.append((wire, True))
            if wire in driver:
                for dep in driver[wire][1]:
                    if not core.has_name(dep):
                        stack.append((dep, False))
        return core.node_by_name(goal)

    for out in outputs:
        core.add_po(build(out), out)
    latches = []
    for latch_out, latch_in in dffs:
        latches.append(
            Latch(
                name=latch_out,
                output=core.node_by_name(latch_out),
                data_input=build(latch_in),
                init=0,
            )
        )
    for wire in driver:
        build(wire)
    return SeqNetwork(core, latches)


def read_seq_bench(path: str) -> SeqNetwork:
    """Read a sequential ``.bench`` file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_seq_bench(f.read())


def write_seq_bench(seq: SeqNetwork, path: Optional[str] = None) -> str:
    """Serialize a sequential netlist as ``.bench`` text."""
    text = write_bench(seq.core)
    lines = [l for l in text.split("\n") if l.strip()]
    # strip the INPUT() declarations of latch outputs and re-emit as DFFs
    latch_names = {l.name for l in seq.latches}
    kept = []
    for line in lines:
        m = re.fullmatch(r"INPUT\((\S+)\)", line.strip())
        if m and m.group(1) in latch_names:
            continue
        kept.append(line)
    for latch in seq.latches:
        src = seq.core.node(latch.data_input)
        src_name = src.name or f"n{latch.data_input}"
        kept.append(f"{latch.name} = DFF({src_name})")
    out = "\n".join(kept) + "\n"
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(out)
    return out
