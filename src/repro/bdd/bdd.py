"""Reduced Ordered Binary Decision Diagrams.

A classic shared-ROBDD manager with unique and computed tables:
``apply`` for the Boolean connectives, cofactoring, existential and
universal quantification, satisfiability counts, and circuit import.

The SAT-based flow of the paper superseded BDD-based ECO engines (cf.
[11], [13]); this manager serves the reproduction as (a) an independent
*oracle* in the test suite — equivalence, quantification, and care-set
computations cross-checked against the SAT results — and (b) the
symbolic route for small patch functions (interval [onset, ¬offset] →
cover via :mod:`repro.sop.isop`).

Nodes are integers; complement edges are not used (keeps the code
close to the textbook algorithms).  Terminal nodes are 0 and 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..network.network import Network
from ..network.node import GateType

ZERO = 0
ONE = 1


class BddError(Exception):
    """Raised on manager misuse (foreign nodes, bad variables)."""


class Bdd:
    """A shared ROBDD manager over variables ``0..num_vars-1``.

    The variable order is the index order.  All operations return node
    handles valid for this manager only.
    """

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise BddError("num_vars must be non-negative")
        self.num_vars = num_vars
        # node storage: parallel lists, ids 0/1 reserved for terminals
        self._var: List[int] = [num_vars, num_vars]  # terminals sort last
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        hit = self._unique.get(key)
        if hit is not None:
            return hit
        nid = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = nid
        return nid

    def var(self, index: int) -> int:
        """The BDD of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise BddError(f"variable {index} out of range")
        return self._mk(index, ZERO, ONE)

    def nvar(self, index: int) -> int:
        """The BDD of ``¬x_index``."""
        return self._mk(index, ONE, ZERO)

    # ------------------------------------------------------------------
    # the core operator
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + ¬f·h`` (the universal connective)."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        hit = self._ite_cache.get(key)
        if hit is not None:
            return hit
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactor_node(f, top)
        g0, g1 = self._cofactor_node(g, top)
        h0, h1 = self._cofactor_node(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactor_node(self, f: int, var: int) -> Tuple[int, int]:
        if self._var[f] != var:
            return f, f
        return self._low[f], self._high[f]

    # -- connectives -----------------------------------------------------

    def not_(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, ONE)

    def and_many(self, fs: Iterable[int]) -> int:
        acc = ONE
        for f in fs:
            acc = self.and_(acc, f)
        return acc

    def or_many(self, fs: Iterable[int]) -> int:
        acc = ZERO
        for f in fs:
            acc = self.or_(acc, f)
        return acc

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    def cofactor(self, f: int, var: int, value: int) -> int:
        """Shannon cofactor of ``f`` w.r.t. one variable."""
        return self._restrict(f, var, value)

    def _restrict(self, f: int, var: int, value: int) -> int:
        if f in (ZERO, ONE) or self._var[f] > var:
            return f
        if self._var[f] == var:
            return self._high[f] if value else self._low[f]
        low = self._restrict(self._low[f], var, value)
        high = self._restrict(self._high[f], var, value)
        return self._mk(self._var[f], low, high)

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification over ``variables``."""
        out = f
        for var in sorted(variables, reverse=True):
            out = self.or_(
                self._restrict(out, var, 0), self._restrict(out, var, 1)
            )
        return out

    def forall(self, f: int, variables: Sequence[int]) -> int:
        """Universal quantification over ``variables``."""
        out = f
        for var in sorted(variables, reverse=True):
            out = self.and_(
                self._restrict(out, var, 0), self._restrict(out, var, 1)
            )
        return out

    def evaluate(self, f: int, assignment: Sequence[int]) -> int:
        """Evaluate under a full 0/1 assignment (indexed by variable)."""
        node = f
        while node not in (ZERO, ONE):
            node = (
                self._high[node]
                if assignment[self._var[node]]
                else self._low[node]
            )
        return node

    def sat_count(self, f: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` vars.

        Standard level-aware recursion: ``c(node)`` counts assignments
        of the variables at or below the node's level; skipped levels
        contribute factors of two.
        """
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            """Count over variables strictly below node's level."""
            if node == ZERO:
                return 0
            if node == ONE:
                return 1
            if node in memo:
                return memo[node]
            var = self._var[node]
            lo, hi = self._low[node], self._high[node]
            lo_count = walk(lo) << (self._level_gap(var, lo))
            hi_count = walk(hi) << (self._level_gap(var, hi))
            memo[node] = lo_count + hi_count
            return memo[node]

        total = walk(f)
        if f in (ZERO, ONE):
            return 0 if f == ZERO else (1 << self.num_vars)
        return total << self._var[f]

    def _level_gap(self, var: int, child: int) -> int:
        child_var = self._var[child]
        return child_var - var - 1

    def one_sat(self, f: int) -> Optional[Dict[int, int]]:
        """A satisfying partial assignment (var → 0/1), or None."""
        if f == ZERO:
            return None
        out: Dict[int, int] = {}
        node = f
        while node != ONE:
            if self._low[node] != ZERO:
                out[self._var[node]] = 0
                node = self._low[node]
            else:
                out[self._var[node]] = 1
                node = self._high[node]
        return out

    def size(self, f: int) -> int:
        """Node count of the (shared) DAG rooted at ``f``."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or node in (ZERO, ONE):
                continue
            seen.add(node)
            stack.extend((self._low[node], self._high[node]))
        return len(seen)

    def support_vars(self, f: int) -> List[int]:
        """Variables ``f`` depends on."""
        seen = set()
        out = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or node in (ZERO, ONE):
                continue
            seen.add(node)
            out.add(self._var[node])
            stack.extend((self._low[node], self._high[node]))
        return sorted(out)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    def truth_table(self, f: int) -> int:
        """Exhaustive table (bit m = value on minterm m); small managers."""
        if self.num_vars > 16:
            raise BddError("truth_table limited to <= 16 variables")
        out = 0
        for m in range(1 << self.num_vars):
            bits = [(m >> i) & 1 for i in range(self.num_vars)]
            if self.evaluate(f, bits):
                out |= 1 << m
        return out


def build_from_network(
    bdd: Bdd, net: Network, pi_vars: Dict[int, int]
) -> Dict[int, int]:
    """Import a network's nodes as BDDs; returns node-id → bdd handle.

    ``pi_vars`` maps each network PI to a manager variable index.
    """
    handles: Dict[int, int] = {}
    for node in net.topo_order():
        if node.is_pi:
            handles[node.nid] = bdd.var(pi_vars[node.nid])
            continue
        if node.gtype is GateType.CONST0:
            handles[node.nid] = ZERO
            continue
        if node.gtype is GateType.CONST1:
            handles[node.nid] = ONE
            continue
        ins = [handles[f] for f in node.fanins]
        handles[node.nid] = _apply_gate(bdd, node.gtype, ins)
    return handles


def _apply_gate(bdd: Bdd, gtype: GateType, ins: List[int]) -> int:
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return bdd.not_(ins[0])
    if gtype is GateType.MUX:
        s, d0, d1 = ins
        return bdd.ite(s, d1, d0)
    if gtype is GateType.AND:
        return bdd.and_many(ins)
    if gtype is GateType.NAND:
        return bdd.not_(bdd.and_many(ins))
    if gtype is GateType.OR:
        return bdd.or_many(ins)
    if gtype is GateType.NOR:
        return bdd.not_(bdd.or_many(ins))
    if gtype in (GateType.XOR, GateType.XNOR):
        acc = ins[0]
        for g in ins[1:]:
            acc = bdd.xor_(acc, g)
        return acc if gtype is GateType.XOR else bdd.not_(acc)
    raise BddError(f"cannot import gate type {gtype}")
