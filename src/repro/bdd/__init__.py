"""ROBDD substrate and the symbolic ECO oracle."""

from .bdd import ONE, ZERO, Bdd, BddError, build_from_network
from .eco_oracle import (
    PatchInterval,
    image_over_divisors,
    patch_in_interval,
    single_target_interval,
)

__all__ = [
    "Bdd",
    "BddError",
    "ONE",
    "PatchInterval",
    "ZERO",
    "build_from_network",
    "image_over_divisors",
    "patch_in_interval",
    "single_target_interval",
]
