"""BDD-based ECO oracle.

Symbolically computes, for a single target, the exact interval of legal
patch functions: ``onset ⊆ patch ⊆ ¬offset`` with ``onset = M(0, x)``
and ``offset = M(1, x)`` (Section 2.5.2).  Used by the test suite to
validate the SAT engine's patches independently, and usable as a
small-instance symbolic backend.

With internal divisors, the care sets are *imaged* into divisor space:
``onset_d = ∃x [d = D(x)] ∧ onset(x)`` over fresh d variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.miter import MITER_PO, build_miter
from ..network.network import Network
from .bdd import ONE, ZERO, Bdd, BddError, build_from_network


@dataclass
class PatchInterval:
    """The legal patch interval for one target.

    Attributes:
        bdd: the manager (variables = miter x PIs, in ``pi_order``).
        onset: minterms the patch must map to 1 (``M(0, x)``).
        offset: minterms the patch must map to 0 (``M(1, x)``).
        feasible: True iff onset ∧ offset = 0.
        pi_order: miter x-PI ids in manager-variable order.
        pi_names: their signal names.
    """

    bdd: Bdd
    onset: int
    offset: int
    feasible: bool
    pi_order: List[int]
    pi_names: List[str]


def single_target_interval(
    impl: Network,
    spec: Network,
    target: int,
    po_indices: Optional[Sequence[int]] = None,
) -> PatchInterval:
    """Compute the exact patch interval for one implementation target."""
    miter = build_miter(impl, spec, [target], po_indices)
    bdd = Bdd(len(miter.x_pis) + 1)
    pi_vars = {pi: i for i, pi in enumerate(miter.x_pis)}
    n_var = len(miter.x_pis)
    pi_vars[miter.target_pis[0]] = n_var
    handles = build_from_network(bdd, miter.net, pi_vars)
    m = handles[dict(miter.net.pos)[MITER_PO]]
    onset = bdd.cofactor(m, n_var, 0)
    offset = bdd.cofactor(m, n_var, 1)
    return PatchInterval(
        bdd=bdd,
        onset=onset,
        offset=offset,
        feasible=bdd.and_(onset, offset) == ZERO,
        pi_order=list(miter.x_pis),
        pi_names=[miter.net.node(p).name for p in miter.x_pis],
    )


def patch_in_interval(interval: PatchInterval, patch: Network) -> bool:
    """Check a patch (over PI names) against the exact interval."""
    name_to_var = {
        name: i for i, name in enumerate(interval.pi_names)
    }
    pi_vars = {}
    for pi in patch.pis:
        name = patch.node(pi).name
        if name not in name_to_var:
            raise BddError(f"patch input {name!r} is not a miter PI")
        pi_vars[pi] = name_to_var[name]
    handles = build_from_network(interval.bdd, patch, pi_vars)
    p = handles[patch.pos[0][1]]
    bdd = interval.bdd
    covers_onset = bdd.and_(interval.onset, bdd.not_(p)) == ZERO
    avoids_offset = bdd.and_(interval.offset, p) == ZERO
    return covers_onset and avoids_offset


def image_over_divisors(
    interval: PatchInterval,
    impl: Network,
    divisor_ids: Sequence[int],
) -> Tuple[Bdd, int, int]:
    """Project the care sets into divisor space.

    Returns a fresh manager over ``len(divisor_ids)`` variables plus
    the imaged onset/offset: ``onset_d = ∃x (∧_i d_i = D_i(x)) ∧ onset``.
    The patch over divisors is legal iff it covers ``onset_d`` and
    avoids ``offset_d`` (and feasibility in d-space means
    ``onset_d ∧ offset_d = 0``).
    """
    n_x = len(interval.pi_order)
    n_d = len(divisor_ids)
    big = Bdd(n_x + n_d)
    # rebuild onset/offset in the larger manager via truth transfer:
    # evaluate the original interval functions over x assignments is
    # exponential; instead rebuild from the implementation miter again
    # — cheaper: import the divisor functions and the interval by
    # composing over the shared x variables
    # Import divisor functions over x vars 0..n_x-1
    # map impl PIs by name onto the interval's x variables
    name_to_var = {n: i for i, n in enumerate(interval.pi_names)}
    impl_pi_vars = {}
    for pi in impl.pis:
        name = impl.node(pi).name
        if name in name_to_var:
            impl_pi_vars[pi] = name_to_var[name]
        else:
            raise BddError(f"implementation PI {name!r} unknown to interval")
    handles = build_from_network(big, impl, impl_pi_vars)

    # transfer onset/offset into the big manager by re-walking the
    # original BDD structure
    onset = _transfer(interval.bdd, big, interval.onset)
    offset = _transfer(interval.bdd, big, interval.offset)

    relation = ONE
    for k, nid in enumerate(divisor_ids):
        d_var = big.var(n_x + k)
        relation = big.and_(relation, big.xnor_(d_var, handles[nid]))

    x_vars = list(range(n_x))
    onset_d = big.exists(big.and_(relation, onset), x_vars)
    offset_d = big.exists(big.and_(relation, offset), x_vars)

    # shrink onto a d-only manager for convenient downstream use
    small = Bdd(n_d)
    onset_small = _rebase(big, small, onset_d, n_x)
    offset_small = _rebase(big, small, offset_d, n_x)
    return small, onset_small, offset_small


def _transfer(src: Bdd, dst: Bdd, f: int) -> int:
    """Copy a BDD between managers with identical leading variables."""
    memo: Dict[int, int] = {ZERO: ZERO, ONE: ONE}

    def walk(node: int) -> int:
        if node in memo:
            return memo[node]
        var = src._var[node]
        low = walk(src._low[node])
        high = walk(src._high[node])
        out = dst.ite(dst.var(var), high, low)
        memo[node] = out
        return out

    return walk(f)


def _rebase(src: Bdd, dst: Bdd, f: int, shift: int) -> int:
    """Copy ``f`` shifting every variable down by ``shift``."""
    memo: Dict[int, int] = {ZERO: ZERO, ONE: ONE}

    def walk(node: int) -> int:
        if node in memo:
            return memo[node]
        var = src._var[node] - shift
        if var < 0:
            raise BddError("rebase would move a variable below zero")
        low = walk(src._low[node])
        high = walk(src._high[node])
        out = dst.ite(dst.var(var), high, low)
        memo[node] = out
        return out

    return walk(f)
