"""Synthesis of factored forms and SOPs into gate-level networks.

The patch circuit is built *inside* an existing network (the patched
implementation) or as a standalone network with named PIs — both entry
points are provided.  NOT gates for negative literals are shared.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .. import obs
from ..network.network import Network
from ..network.node import GateType
from .factor import FactorNode, FactorOp, factor
from .sop import Sop


def synthesize_factored(
    net: Network, tree: FactorNode, support_nodes: Sequence[int]
) -> Tuple[int, int]:
    """Materialize a factored tree in ``net`` over ``support_nodes``.

    ``support_nodes[i]`` is the node id feeding tree position ``i``.
    Returns ``(output_node_id, gates_added)``.
    """
    before = net.num_gates
    not_cache: Dict[int, int] = {}

    def lit_node(pos: int, phase: int) -> int:
        base = support_nodes[pos]
        if phase:
            return base
        if base not in not_cache:
            not_cache[base] = net.add_gate(GateType.NOT, [base])
        return not_cache[base]

    def build(node: FactorNode) -> int:
        if node.op is FactorOp.CONST0:
            return net.add_const(0)
        if node.op is FactorOp.CONST1:
            return net.add_const(1)
        if node.op is FactorOp.LIT:
            return lit_node(node.position, node.phase)
        kids = [build(c) for c in node.children]
        if len(kids) == 1:
            return kids[0]
        gtype = GateType.AND if node.op is FactorOp.AND else GateType.OR
        return net.add_gate(gtype, kids)

    out = build(tree)
    return out, net.num_gates - before


def synthesize_sop(
    net: Network, sop: Sop, support_nodes: Sequence[int], factored: bool = True
) -> Tuple[int, int]:
    """Materialize ``sop`` in ``net``; factors first unless disabled.

    Returns ``(output_node_id, gates_added)``.
    """
    with obs.span("sop.synthesize", cubes=len(sop.cubes)):
        if factored:
            with obs.span("sop.factor"):
                tree = factor(sop)
        else:
            from .factor import FactorNode as _FN, FactorOp as _FO, _cube_to_and

            if not sop.cubes:
                tree = _FN(_FO.CONST0)
            elif any(c.num_literals == 0 for c in sop.cubes):
                tree = _FN(_FO.CONST1)
            elif len(sop.cubes) == 1:
                tree = _cube_to_and(sop.cubes[0])
            else:
                tree = _FN(_FO.OR, children=[_cube_to_and(c) for c in sop.cubes])
        out, added = synthesize_factored(net, tree, support_nodes)
    obs.inc("sop.gates_added", added)
    return out, added


def sop_to_network(
    sop: Sop,
    input_names: Sequence[str],
    output_name: str = "f",
    factored: bool = True,
) -> Network:
    """Build a standalone network computing ``sop`` over named PIs."""
    if len(input_names) != sop.width:
        raise ValueError("input_names must match the SOP width")
    net = Network(name="sop")
    pis = [net.add_pi(n) for n in input_names]
    out, _ = synthesize_sop(net, sop, pis, factored=factored)
    net.add_po(out, output_name)
    return net
