"""Sum-of-products manipulation.

The patch-function computation (Section 3.5) enumerates prime cubes into
an SOP; this module provides the bookkeeping around that cover:
evaluation, single-cube containment cleanup, irredundancy with respect
to an onset, and literal statistics that feed the factoring stage.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .cube import DC, ONE, ZERO, Cube


class Sop:
    """A cover (disjunction) of :class:`Cube` objects of uniform width."""

    def __init__(self, width: int, cubes: Optional[Iterable[Cube]] = None) -> None:
        self.width = width
        self.cubes: List[Cube] = []
        for cube in cubes or []:
            self.add(cube)

    def add(self, cube: Cube) -> None:
        if cube.width != self.width:
            raise ValueError("cube width mismatch")
        self.cubes.append(cube)

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        return sum(c.num_literals for c in self.cubes)

    def evaluate(self, minterm: Sequence[int]) -> int:
        """1 when any cube contains the minterm."""
        return 1 if any(c.contains(minterm) for c in self.cubes) else 0

    def evaluate_parallel(self, var_words: Sequence[int], mask: int) -> int:
        """Bit-parallel evaluation: ``var_words[i]`` is variable i's word."""
        out = 0
        for cube in self.cubes:
            word = mask
            for pos, val in cube.literals().items():
                word &= var_words[pos] if val else ~var_words[pos] & mask
                if not word:
                    break
            out |= word
            if out == mask:
                break
        return out

    def remove_contained_cubes(self) -> int:
        """Drop cubes covered by a single other cube; returns #removed.

        (Single-cube containment — the cheap part of irredundancy.)
        """
        keep: List[Cube] = []
        cubes = sorted(self.cubes, key=lambda c: c.num_literals)
        for cube in cubes:
            if any(other.covers(cube) for other in keep):
                continue
            keep.append(cube)
        removed = len(self.cubes) - len(keep)
        self.cubes = keep
        return removed

    def copy(self) -> "Sop":
        return Sop(self.width, self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def __repr__(self) -> str:
        return " + ".join(repr(c) for c in self.cubes) or "0"


def sop_covers_minterm_uniquely(sop: Sop, idx: int, minterm: Sequence[int]) -> bool:
    """True when only cube ``idx`` of ``sop`` contains ``minterm``."""
    if not sop.cubes[idx].contains(minterm):
        return False
    return not any(
        i != idx and c.contains(minterm) for i, c in enumerate(sop.cubes)
    )


def truth_table(sop: Sop) -> int:
    """Exhaustive truth table (LSB = all-zero minterm); small widths only."""
    if sop.width > 16:
        raise ValueError("truth_table limited to width <= 16")
    table = 0
    for m in range(1 << sop.width):
        minterm = [(m >> i) & 1 for i in range(sop.width)]
        if sop.evaluate(minterm):
            table |= 1 << m
    return table
