"""Two-level logic substrate: cubes, SOP covers, factoring, synthesis."""

from .cube import DC, ONE, ZERO, Cube
from .factor import FactorNode, FactorOp, factor
from .sop import Sop, truth_table
from .synth import sop_to_network, synthesize_factored, synthesize_sop

__all__ = [
    "Cube",
    "DC",
    "FactorNode",
    "FactorOp",
    "ONE",
    "Sop",
    "ZERO",
    "factor",
    "sop_to_network",
    "synthesize_factored",
    "synthesize_sop",
    "truth_table",
]
