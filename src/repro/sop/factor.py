"""Algebraic factoring of SOP covers.

After cube enumeration, the paper factors the prime irredundant SOP and
synthesizes a multi-level circuit (Section 3.5, "factored and
synthesized in ABC").  This module implements literal-count-driven
*quick factoring* (the same divide-on-most-frequent-literal scheme as
SIS/ABC's ``factor``): F = l · (F / l) + R, recursively, with
single-cube covers emitted as plain ANDs.

The result is an expression tree consumed by :mod:`repro.sop.synth`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .cube import Cube
from .sop import Sop


class FactorOp(enum.Enum):
    LIT = "lit"
    AND = "and"
    OR = "or"
    CONST0 = "const0"
    CONST1 = "const1"


@dataclass
class FactorNode:
    """A node of the factored expression tree.

    ``LIT`` nodes carry ``(position, phase)``; ``AND``/``OR`` nodes carry
    children.
    """

    op: FactorOp
    position: int = -1
    phase: int = 1
    children: List["FactorNode"] = field(default_factory=list)

    def num_literals(self) -> int:
        """Literal count of the factored form (the paper's size metric)."""
        if self.op is FactorOp.LIT:
            return 1
        return sum(c.num_literals() for c in self.children)

    def evaluate(self, minterm: Sequence[int]) -> int:
        if self.op is FactorOp.CONST0:
            return 0
        if self.op is FactorOp.CONST1:
            return 1
        if self.op is FactorOp.LIT:
            v = minterm[self.position]
            return v if self.phase else 1 - v
        vals = [c.evaluate(minterm) for c in self.children]
        if self.op is FactorOp.AND:
            return 1 if all(vals) else 0
        return 1 if any(vals) else 0

    def __repr__(self) -> str:
        if self.op is FactorOp.CONST0:
            return "0"
        if self.op is FactorOp.CONST1:
            return "1"
        if self.op is FactorOp.LIT:
            return f"x{self.position}" if self.phase else f"~x{self.position}"
        sep = " & " if self.op is FactorOp.AND else " | "
        return "(" + sep.join(repr(c) for c in self.children) + ")"


def _literal_counts(cubes: Sequence[Cube], width: int) -> Dict[Tuple[int, int], int]:
    counts: Dict[Tuple[int, int], int] = {}
    for cube in cubes:
        for pos, val in cube.literals().items():
            counts[(pos, val)] = counts.get((pos, val), 0) + 1
    return counts


def _cube_to_and(cube: Cube) -> FactorNode:
    lits = [
        FactorNode(FactorOp.LIT, position=pos, phase=val)
        for pos, val in sorted(cube.literals().items())
    ]
    if not lits:
        return FactorNode(FactorOp.CONST1)
    if len(lits) == 1:
        return lits[0]
    return FactorNode(FactorOp.AND, children=lits)


def factor(sop: Sop) -> FactorNode:
    """Quick-factor ``sop`` into an expression tree.

    The most frequent literal l (appearing in ≥ 2 cubes) is divided out:
    ``F = l * (F/l) + R``; both quotient and remainder are factored
    recursively.  When no literal repeats, the SOP is emitted flat.
    """
    cubes = list(sop.cubes)
    if not cubes:
        return FactorNode(FactorOp.CONST0)
    if any(c.num_literals == 0 for c in cubes):
        return FactorNode(FactorOp.CONST1)
    return _factor_cubes(cubes, sop.width)


def _factor_cubes(cubes: List[Cube], width: int) -> FactorNode:
    if any(c.num_literals == 0 for c in cubes):
        return FactorNode(FactorOp.CONST1)  # a tautologous cube absorbs all
    cubes = list(dict.fromkeys(cubes))  # drop duplicates, keep order
    if len(cubes) == 1:
        return _cube_to_and(cubes[0])
    counts = _literal_counts(cubes, width)
    (pos, val), best = max(counts.items(), key=lambda kv: (kv[1], -kv[0][0]))
    if best < 2:
        return FactorNode(
            FactorOp.OR, children=[_cube_to_and(c) for c in cubes]
        )
    quotient: List[Cube] = []
    remainder: List[Cube] = []
    for cube in cubes:
        if cube.slots[pos] == val:
            quotient.append(cube.expand(pos))
        else:
            remainder.append(cube)
    lit = FactorNode(FactorOp.LIT, position=pos, phase=val)
    qnode = _factor_cubes(quotient, width)
    if qnode.op is FactorOp.CONST1:
        divided: FactorNode = lit
    elif qnode.op is FactorOp.AND:
        divided = FactorNode(FactorOp.AND, children=[lit] + qnode.children)
    else:
        divided = FactorNode(FactorOp.AND, children=[lit, qnode])
    if not remainder:
        return divided
    rnode = _factor_cubes(remainder, width)
    if rnode.op is FactorOp.OR:
        return FactorNode(FactorOp.OR, children=[divided] + rnode.children)
    return FactorNode(FactorOp.OR, children=[divided, rnode])
