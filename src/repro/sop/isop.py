"""Irredundant SOP computation (Minato-Morreale ISOP).

Given an incompletely specified function as truth-table bitmasks —
``onset`` (must be covered) and ``dc`` (may be covered) — ``isop``
returns an irredundant prime cover between the bounds.  The engine uses
it as an optional refinement of enumerated patch SOPs: the cube
enumeration of Section 3.5 discovers the care sets, and ISOP then
exploits the don't-cares globally, often shrinking the final patch.

Truth tables are Python ints: bit ``m`` holds the function value on the
minterm whose variable ``i`` equals bit ``i`` of ``m``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .cube import ONE, ZERO, Cube
from .sop import Sop


def tt_mask(num_vars: int) -> int:
    """All-ones truth table for ``num_vars`` variables."""
    return (1 << (1 << num_vars)) - 1


def tt_var(var: int, num_vars: int) -> int:
    """Truth table of the projection function ``x_var``."""
    width = 1 << num_vars
    out = 0
    for m in range(width):
        if (m >> var) & 1:
            out |= 1 << m
    return out


def tt_cofactors(table: int, var: int, num_vars: int) -> Tuple[int, int]:
    """Negative and positive cofactor tables (each over the same vars)."""
    pos_mask = tt_var(var, num_vars)
    neg_mask = tt_mask(num_vars) & ~pos_mask
    shift = 1 << var
    neg = table & neg_mask
    pos = table & pos_mask
    # replicate each half onto the other positions so cofactors stay
    # functions over all variables (value independent of var)
    neg_full = neg | (neg << shift)
    pos_full = pos | (pos >> shift)
    return neg_full & tt_mask(num_vars), pos_full & tt_mask(num_vars)


def tt_support(table: int, num_vars: int) -> List[int]:
    """Variables the table actually depends on."""
    out = []
    for v in range(num_vars):
        neg, pos = tt_cofactors(table, v, num_vars)
        if neg != pos:
            out.append(v)
    return out


def sop_to_tt(sop: Sop) -> int:
    """Truth table of a cover (widths up to 16)."""
    if sop.width > 16:
        raise ValueError("sop_to_tt limited to width <= 16")
    out = 0
    for m in range(1 << sop.width):
        minterm = [(m >> i) & 1 for i in range(sop.width)]
        if sop.evaluate(minterm):
            out |= 1 << m
    return out


def cube_tt(cube: Cube, num_vars: int) -> int:
    """Truth table of one cube."""
    table = tt_mask(num_vars)
    for pos, val in cube.literals().items():
        var_tt = tt_var(pos, num_vars)
        table &= var_tt if val else (tt_mask(num_vars) & ~var_tt)
    return table


def isop(onset: int, upper: int, num_vars: int) -> Sop:
    """Minato-Morreale ISOP: cover L with ``onset ⊆ cover ⊆ upper``.

    ``upper`` is onset ∪ don't-cares.  The result is a prime,
    irredundant cover of the interval.
    """
    if onset & ~upper:
        raise ValueError("onset must be contained in upper")
    cubes = _isop(onset, upper, num_vars, 0)
    return Sop(num_vars, cubes)


def _isop(lower: int, upper: int, num_vars: int, var: int) -> List[Cube]:
    if lower == 0:
        return []
    if upper == tt_mask(num_vars):
        return [Cube.full_dc(num_vars)]
    # find the first variable both bounds still depend on
    while var < num_vars:
        ln, lp = tt_cofactors(lower, var, num_vars)
        un, up = tt_cofactors(upper, var, num_vars)
        if ln != lp or un != up:
            break
        var += 1
    if var >= num_vars:
        # lower nonzero, upper not tautology, but no dependence: the
        # bounds are constants; lower != 0 means cover everything allowed
        return [Cube.full_dc(num_vars)]

    c0 = _isop(ln & ~up, un, num_vars, var + 1)
    c1 = _isop(lp & ~un, up, num_vars, var + 1)
    cover0 = _cubes_tt(c0, num_vars)
    cover1 = _cubes_tt(c1, num_vars)
    l_rest = (ln & ~cover0) | (lp & ~cover1)
    cd = _isop(l_rest, un & up, num_vars, var + 1)
    out: List[Cube] = []
    for cube in c0:
        out.append(_with_literal(cube, var, 0))
    for cube in c1:
        out.append(_with_literal(cube, var, 1))
    out.extend(cd)
    return out


def _cubes_tt(cubes: Sequence[Cube], num_vars: int) -> int:
    out = 0
    for cube in cubes:
        out |= cube_tt(cube, num_vars)
    return out


def _with_literal(cube: Cube, var: int, val: int) -> Cube:
    slots = list(cube.slots)
    slots[var] = ONE if val else ZERO
    return Cube(slots)


def isop_refine(onset_sop: Sop, offset_sop: Sop, strict: bool = False) -> Sop:
    """Care-aware re-minimization of an enumerated patch cover.

    ``onset_sop``/``offset_sop`` are the prime covers found by cube
    enumeration for the required onset and offset.  Each was verified
    against the *other true care set*, so the true onset lies in
    ``onset_sop \\ offset_sop`` and the true offset in
    ``offset_sop \\ onset_sop``; minterms claimed by both covers are
    don't-cares the prime expansions happened to share.  The ISOP is
    computed between those bounds — never functionally wrong, usually
    no larger than the input cover (kept only when it is).

    With ``strict`` True, overlapping covers raise instead (for callers
    whose covers are exact by construction).
    """
    if onset_sop.width != offset_sop.width:
        raise ValueError("width mismatch")
    n = onset_sop.width
    if n > 14:
        return onset_sop  # truth-table route impractical; keep as-is
    on_tt = sop_to_tt(onset_sop)
    off_tt = sop_to_tt(offset_sop)
    if strict and on_tt & off_tt:
        raise ValueError("onset and offset overlap")
    lower = on_tt & ~off_tt
    upper = on_tt | (tt_mask(n) & ~off_tt)
    refined = isop(lower, upper, n)
    refined.remove_contained_cubes()
    if refined.num_literals <= onset_sop.num_literals:
        return refined
    return onset_sop
