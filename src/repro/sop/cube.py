"""Cubes over an ordered set of support variables.

A cube is a conjunction of literals.  Positionally, slot ``i`` holds
``ONE`` (positive literal), ``ZERO`` (negative literal), or ``DC``
(variable absent).  Cubes are immutable value objects; the patch
computation of Section 3.5 produces them from minimized assumption sets.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

ZERO = 0
ONE = 1
DC = 2


class Cube:
    """An immutable cube over ``width`` positional variables."""

    __slots__ = ("slots",)

    def __init__(self, slots: Sequence[int]) -> None:
        for s in slots:
            if s not in (ZERO, ONE, DC):
                raise ValueError(f"bad cube slot value {s}")
        self.slots: Tuple[int, ...] = tuple(slots)

    @classmethod
    def full_dc(cls, width: int) -> "Cube":
        """The universal cube (tautology) of the given width."""
        return cls((DC,) * width)

    @classmethod
    def from_literals(cls, width: int, literals: Dict[int, int]) -> "Cube":
        """Cube with ``literals`` mapping position → 0/1."""
        slots = [DC] * width
        for pos, val in literals.items():
            if not 0 <= pos < width:
                raise ValueError(f"literal position {pos} out of range")
            slots[pos] = ONE if val else ZERO
        return cls(slots)

    @property
    def width(self) -> int:
        return len(self.slots)

    @property
    def num_literals(self) -> int:
        """Number of care slots (the cube's literal count)."""
        return sum(1 for s in self.slots if s != DC)

    def literals(self) -> Dict[int, int]:
        """The care slots as position → 0/1."""
        return {i: s for i, s in enumerate(self.slots) if s != DC}

    def contains(self, minterm: Sequence[int]) -> bool:
        """True when the 0/1 ``minterm`` lies inside this cube."""
        if len(minterm) != len(self.slots):
            raise ValueError("minterm width mismatch")
        return all(s == DC or s == m for s, m in zip(self.slots, minterm))

    def covers(self, other: "Cube") -> bool:
        """True when every minterm of ``other`` is inside this cube."""
        if other.width != self.width:
            raise ValueError("cube width mismatch")
        return all(
            s == DC or s == o for s, o in zip(self.slots, other.slots)
        )

    def intersects(self, other: "Cube") -> bool:
        """True when the two cubes share at least one minterm."""
        if other.width != self.width:
            raise ValueError("cube width mismatch")
        return all(
            s == DC or o == DC or s == o
            for s, o in zip(self.slots, other.slots)
        )

    def expand(self, position: int) -> "Cube":
        """Copy of this cube with one slot raised to don't-care."""
        slots = list(self.slots)
        slots[position] = DC
        return Cube(slots)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cube) and self.slots == other.slots

    def __hash__(self) -> int:
        return hash(self.slots)

    def __repr__(self) -> str:
        chars = {ZERO: "0", ONE: "1", DC: "-"}
        return "".join(chars[s] for s in self.slots)
