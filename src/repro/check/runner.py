"""The one-call entry point: :func:`run_checks`.

Bundles the netlist linter and the encoding validator into a single
sweep over a :class:`~repro.network.network.Network`, producing one
:class:`CheckReport`.  The encoding cross-check only runs on
lint-error-free networks — feeding a cyclic or inconsistent netlist to
the Tseitin encoder would crash rather than report.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..network.network import Network
from .cnfcheck import check_encoding
from .findings import CheckReport
from .netlint import lint_network


def run_checks(
    net: Network,
    name: str = "",
    rules: Optional[Sequence[str]] = None,
    encoding: bool = True,
    patterns: int = 64,
    seed: int = 2018,
    budget_conflicts: Optional[int] = 100000,
) -> CheckReport:
    """Run all static checks over ``net``; returns a full report.

    Args:
        net: the network to analyze.
        name: report subject (defaults to the network's name).
        rules: lint rule ids to run (default: all but NL006).
        encoding: also validate the Tseitin encoding against random
            simulation (skipped automatically when lint found errors).
        patterns: number of random vectors for the encoding cross-check.
        seed: randomization seed for the cross-check.
        budget_conflicts: per-solve conflict budget of the cross-check.
    """
    report = CheckReport(subject=name or net.name or "network")
    report.extend(lint_network(net, rules=rules))
    if encoding and report.ok:
        report.extend(
            check_encoding(
                net,
                patterns=patterns,
                seed=seed,
                budget_conflicts=budget_conflicts,
            )
        )
    return report
