"""Machine-readable findings shared by every ``repro.check`` analyzer.

Every analyzer in this package reports problems as :class:`Finding`
records instead of raising on the first defect, so callers (the
``repro check`` CLI, the engine's certificate self-check, CI gates) can
collect, filter, and serialize complete reports.  Rule identifiers are
stable strings (``NL…`` netlist lint, ``CN…`` CNF/encoding, ``PC…``
proof checking, ``CF…`` ECO certificates) catalogued in
``docs/CHECKING.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """Defect severity; ``ERROR`` findings make a check fail."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One defect discovered by an analyzer.

    Attributes:
        rule: stable rule id, e.g. ``"NL001"``.
        severity: how bad the defect is.
        message: human-readable description.
        node: network node id (or clause/proof id) the finding anchors
            to, when one exists.
        name: symbolic name of the offending object, when one exists.
    """

    rule: str
    severity: Severity
    message: str
    node: Optional[int] = None
    name: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        out: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.name:
            out["name"] = self.name
        return out

    def format(self) -> str:
        """One-line rendering used by the CLI."""
        where = ""
        if self.name:
            where = f" [{self.name}]"
        elif self.node is not None:
            where = f" [node {self.node}]"
        return f"{self.rule} {self.severity.value}{where}: {self.message}"


@dataclass
class CheckReport:
    """A collection of findings plus convenience accessors."""

    subject: str = ""
    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    def rules(self) -> List[str]:
        """Sorted distinct rule ids present in the report."""
        return sorted({f.rule for f in self.findings})

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def summary(self) -> str:
        """Short human-readable verdict line."""
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.findings) - n_err - n_warn
        subject = f"{self.subject}: " if self.subject else ""
        if not self.findings:
            return f"{subject}clean"
        return (
            f"{subject}{n_err} error(s), {n_warn} warning(s), "
            f"{n_info} info finding(s)"
        )
