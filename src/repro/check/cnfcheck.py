"""CNF well-formedness and Tseitin-encoding validation.

Two layers of defense for the encoding pipeline:

* :func:`check_cnf` — syntactic sweep over a clause list (variable
  bounds, empty/tautological clauses, duplicate literals/clauses);
* :func:`cross_check_tseitin` — semantic cross-check that the CNF
  produced by :func:`repro.sat.tseitin.encode_network` agrees with
  :meth:`Network.evaluate` on random input vectors, in both directions:
  the simulated assignment must be satisfiable (the encoding is not
  over-constrained) and its complement at each output must be
  unsatisfiable (the encoding is not under-constrained).

Rule ids:

========  =======================  ========
CN001     variable-out-of-bounds   error
CN002     empty-clause             warning
CN003     tautological-clause      warning
CN004     duplicate-literal        warning
CN005     duplicate-clause         info
CN006     encoding-overconstrained error
CN007     encoding-underconstrained error
========  =======================  ========
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..network.network import Network
from ..sat.simplify import ClauseCollector
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.template import CnfTemplate
from ..sat.tseitin import encode_network
from ..sat.types import mklit
from .findings import Finding, Severity

#: Simulation word width used by the bit-parallel cross-check.
_WORD_BITS = 64


def check_cnf(
    clauses: Sequence[Sequence[int]], nvars: int
) -> List[Finding]:
    """Syntactic well-formedness sweep over internal-literal clauses.

    ``nvars`` bounds the legal variable range ``[0, nvars)``.  Clause
    indices are reported through :attr:`Finding.node`.
    """
    out: List[Finding] = []
    seen_clauses: Dict[frozenset, int] = {}
    for idx, clause in enumerate(clauses):
        lits = list(clause)
        if not lits:
            out.append(
                Finding(
                    "CN002",
                    Severity.WARNING,
                    f"clause {idx} is empty (formula trivially UNSAT)",
                    node=idx,
                )
            )
            continue
        litset = set(lits)
        for lit in litset:
            var = lit >> 1
            if lit < 0 or var >= nvars:
                out.append(
                    Finding(
                        "CN001",
                        Severity.ERROR,
                        f"clause {idx} uses literal {lit} outside the "
                        f"declared {nvars} variable(s)",
                        node=idx,
                    )
                )
        if len(litset) < len(lits):
            out.append(
                Finding(
                    "CN004",
                    Severity.WARNING,
                    f"clause {idx} repeats a literal",
                    node=idx,
                )
            )
        if any(lit ^ 1 in litset for lit in litset):
            out.append(
                Finding(
                    "CN003",
                    Severity.WARNING,
                    f"clause {idx} is tautological",
                    node=idx,
                )
            )
            continue
        key = frozenset(litset)
        first = seen_clauses.get(key)
        if first is not None:
            out.append(
                Finding(
                    "CN005",
                    Severity.INFO,
                    f"clause {idx} duplicates clause {first}",
                    node=idx,
                )
            )
        else:
            seen_clauses[key] = idx
    return out


def cross_check_tseitin(
    net: Network,
    patterns: int = 64,
    seed: int = 2018,
    complement_patterns: int = 4,
    budget_conflicts: Optional[int] = 100000,
) -> List[Finding]:
    """Cross-check the Tseitin encoding of ``net`` against simulation.

    Draws ``patterns`` random input vectors (bit-parallel, in words of
    64).  For each vector the encoding is solved under the PI
    assignment; every node variable must agree with the simulated value
    (CN006 otherwise).  For the first ``complement_patterns`` vectors
    each PO variable is additionally forced to the complement of its
    simulated value, which must be UNSAT (CN007 otherwise).

    The network must be lint-clean (acyclic, consistent); run
    :func:`repro.check.netlint.lint_network` first.
    """
    out: List[Finding] = []
    rng = random.Random(seed)
    pis = net.pis
    solver = solver_for(QueryTraits(incremental=True))
    varmap = CnfTemplate(net).stamp(solver)

    done = 0
    complements_left = complement_patterns
    while done < patterns:
        width = min(_WORD_BITS, patterns - done)
        mask = (1 << width) - 1
        pi_words = {pi: rng.getrandbits(width) for pi in pis}
        values = net.evaluate(pi_words, mask)
        for bit in range(width):
            assumptions = [
                mklit(varmap[pi], not ((pi_words[pi] >> bit) & 1))
                for pi in pis
            ]
            try:
                sat = solver.solve(
                    assumptions, budget_conflicts=budget_conflicts
                )
            except SatBudgetExceeded:
                out.append(
                    Finding(
                        "CN006",
                        Severity.ERROR,
                        "SAT budget exhausted while cross-checking the "
                        "encoding (vector undecided)",
                    )
                )
                return out
            if not sat:
                out.append(
                    Finding(
                        "CN006",
                        Severity.ERROR,
                        "encoding is over-constrained: the simulated "
                        f"input vector #{done + bit} is UNSAT",
                    )
                )
                return out
            for nid, var in varmap.items():
                want = (values[nid] >> bit) & 1
                got = solver.model_value(mklit(var))
                if want != got:
                    node = net.node(nid)
                    out.append(
                        Finding(
                            "CN006",
                            Severity.ERROR,
                            f"node {nid} simulates to {want} but the "
                            f"model assigns {got} on vector "
                            f"#{done + bit}",
                            node=nid,
                            name=node.name,
                        )
                    )
                    return out
            if complements_left > 0:
                complements_left -= 1
                for po_name, po_nid in net.pos:
                    want = (values[po_nid] >> bit) & 1
                    forced = assumptions + [
                        mklit(varmap[po_nid], bool(want))
                    ]
                    try:
                        sat = solver.solve(
                            forced, budget_conflicts=budget_conflicts
                        )
                    except SatBudgetExceeded:
                        sat = False  # cannot refute; treat as pass
                    if sat:
                        out.append(
                            Finding(
                                "CN007",
                                Severity.ERROR,
                                f"encoding is under-constrained: PO "
                                f"{po_name!r} can take value "
                                f"{1 - want} under input vector "
                                f"#{done + bit}",
                                node=po_nid,
                                name=po_name,
                            )
                        )
                        return out
        done += width
    return out


def collect_encoding(net: Network) -> ClauseCollector:
    """Encode ``net`` into a :class:`ClauseCollector` (no solving)."""
    collector = ClauseCollector()
    encode_network(collector, net)
    return collector


def check_encoding(
    net: Network,
    patterns: int = 64,
    seed: int = 2018,
    budget_conflicts: Optional[int] = 100000,
) -> List[Finding]:
    """Full encoding validation: syntactic sweep + simulation cross-check."""
    collector = collect_encoding(net)
    out = check_cnf(collector.clause_list, collector.nvars)
    if not any(f.severity is Severity.ERROR for f in out):
        out.extend(
            cross_check_tseitin(
                net,
                patterns=patterns,
                seed=seed,
                budget_conflicts=budget_conflicts,
            )
        )
    return out
