"""Independent forward clausal (DRUP-style) proof checking.

:func:`repro.sat.proof.check_proof` *replays the solver's own recorded
resolution chains* — it trusts the solver's bookkeeping.  This module
closes that loop with a checker in the DRUP tradition: it consumes only
the **clause stream** (original clauses as axioms, learned clauses as
claims) and validates each learned clause by *reverse unit propagation*
(RUP): assuming the clause's negation must yield a conflict by unit
propagation over the clauses seen so far.  An UNSAT conclusion is
certified when the stream propagates to a top-level conflict.

Every clause a CDCL solver learns by first-UIP conflict analysis is RUP
with respect to its clause database at learning time, so a healthy
:class:`~repro.sat.solver.Solver` run with ``proof_logging=True`` always
passes; a corrupted chain, a miscopied literal, or an unsound learned
clause does not.

Rule ids (used when reporting instead of raising):

========  ====================  ========
PC001     non-rup-clause        error
PC002     missing-conclusion    error
PC003     malformed-stream      error
========  ====================  ========
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sat.solver import Solver
from .findings import Finding, Severity


class ProofCheckError(Exception):
    """Raised when the clause stream does not certify the conclusion."""


class RupChecker:
    """Incremental RUP checker over internal literals (``2*var+neg``).

    Permanent clauses are added with :meth:`add_clause`; candidate
    clauses are validated with :meth:`check_rup`.  Unit propagation uses
    two watched literals; temporary propagation during a RUP check is
    rolled back, permanent (top-level) units persist.
    """

    def __init__(self) -> None:
        self._assign: Dict[int, int] = {}  # var -> 0/1
        self._watches: Dict[int, List[List[int]]] = {}
        self._trail: List[int] = []
        self._units: List[int] = []  # pending permanent units
        self.top_conflict = False  # empty clause derived at top level

    # ------------------------------------------------------------------

    def _value(self, lit: int) -> int:
        v = self._assign.get(lit >> 1, -1)
        if v < 0:
            return -1
        return v ^ (lit & 1)

    def _enqueue(self, lit: int) -> bool:
        """Assign ``lit`` true; False when it is already false."""
        v = self._value(lit)
        if v == 0:
            return False
        if v == -1:
            self._assign[lit >> 1] = 1 - (lit & 1)
            self._trail.append(lit)
        return True

    def _propagate(self, start: int) -> bool:
        """Propagate trail entries from index ``start``; False on conflict."""
        qhead = start
        while qhead < len(self._trail):
            p = self._trail[qhead]
            qhead += 1
            false_lit = p ^ 1
            # clauses watching ``false_lit`` live in watches[p]
            wlist = self._watches.get(p)
            if not wlist:
                continue
            keep: List[List[int]] = []
            for i, clause in enumerate(wlist):
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == 1:
                    keep.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(
                            clause[1] ^ 1, []
                        ).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(clause)
                if not self._enqueue(clause[0]):
                    keep.extend(wlist[i + 1 :])
                    self._watches[p] = keep
                    return False
            self._watches[p] = keep
        return True

    def _undo_to(self, mark: int) -> None:
        for lit in self._trail[mark:]:
            del self._assign[lit >> 1]
        del self._trail[mark:]

    # ------------------------------------------------------------------

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a permanent clause; returns False once UNSAT is evident.

        Duplicate literals are merged; tautologies are ignored.
        """
        if self.top_conflict:
            return False
        seen = set()
        out: List[int] = []
        for lit in lits:
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            out.append(lit)
        if not out:
            self.top_conflict = True
            return False
        if any(self._value(lit) == 1 for lit in out):
            # satisfied at top level; sound to keep, pointless to watch
            return True
        nonfalse = [lit for lit in out if self._value(lit) != 0]
        if not nonfalse:
            self.top_conflict = True
            return False
        if len(nonfalse) == 1:
            if not self._enqueue(nonfalse[0]) or not self._propagate(
                len(self._trail) - 1
            ):
                self.top_conflict = True
                return False
            return True
        # watch two non-false literals
        clause = list(out)
        a = clause.index(nonfalse[0])
        clause[0], clause[a] = clause[a], clause[0]
        b = clause.index(nonfalse[1])
        clause[1], clause[b] = clause[b], clause[1]
        self._watches.setdefault(clause[0] ^ 1, []).append(clause)
        self._watches.setdefault(clause[1] ^ 1, []).append(clause)
        return True

    def check_rup(self, lits: Sequence[int]) -> bool:
        """True when assuming the negation of ``lits`` propagates to
        conflict against the permanent clauses (reverse unit propagation).
        """
        if self.top_conflict:
            return True  # ex falso: everything is implied
        mark = len(self._trail)
        ok = True
        for lit in lits:
            if not self._enqueue(lit ^ 1):
                ok = False  # negation conflicts immediately
                break
        if ok:
            ok = self._propagate(mark)
        self._undo_to(mark)
        return not ok


def check_drup(solver: Solver, strict: bool = True) -> int:
    """Certify ``solver``'s clause stream without trusting its chains.

    Walks the registered clauses in creation (cid) order: clauses
    without a recorded derivation chain are axioms; clauses *with* a
    chain are claims and must pass a RUP check before joining the
    database.  When the solver concluded UNSAT at level 0
    (``empty_clause_cid`` set), the stream must reach a top-level
    conflict.  Returns the number of RUP-checked clauses; raises
    :class:`ProofCheckError` on the first failure when ``strict``.
    """
    findings = drup_findings(solver)
    if strict and findings:
        raise ProofCheckError(findings[0].message)
    return _count_checked(solver)


def drup_findings(solver: Solver) -> List[Finding]:
    """Finding-list variant of :func:`check_drup` (never raises)."""
    out: List[Finding] = []
    if not solver.proof_logging:
        out.append(
            Finding(
                "PC003",
                Severity.ERROR,
                "solver was not run with proof_logging=True",
            )
        )
        return out
    checker = RupChecker()
    for cid in sorted(solver.clause_lits):
        lits = solver.clause_lits[cid]
        if cid in solver.proof_chains:
            if not checker.check_rup(lits):
                out.append(
                    Finding(
                        "PC001",
                        Severity.ERROR,
                        f"learned clause {cid} {sorted(lits)} is not a "
                        "reverse-unit-propagation consequence of the "
                        "clauses before it",
                        node=cid,
                    )
                )
                return out
        checker.add_clause(lits)
    if solver.empty_clause_cid is not None and not checker.top_conflict:
        out.append(
            Finding(
                "PC002",
                Severity.ERROR,
                "solver recorded an UNSAT conclusion but the clause "
                "stream does not propagate to a conflict",
                node=solver.empty_clause_cid,
            )
        )
    return out


def _count_checked(solver: Solver) -> int:
    return sum(1 for cid in solver.proof_chains if cid in solver.clause_lits)
