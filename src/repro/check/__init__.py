"""Static analysis and independent certification (``repro.check``).

The trust backstop of the reproduction: rule-based netlist linting,
CNF/Tseitin encoding validation, DRUP-style proof checking that does not
trust the solver's recorded chains, and first-principles re-verification
of ECO results.  All analyzers emit machine-readable
:class:`~repro.check.findings.Finding` records with stable rule ids
(catalogued in ``docs/CHECKING.md``) and are reachable from one API
(:func:`run_checks`) and one CLI subcommand (``repro-eco check``).
"""

from .certificate import CertificateError, certify, check_certificate
from .cnfcheck import (
    check_cnf,
    check_encoding,
    collect_encoding,
    cross_check_tseitin,
)
from .findings import CheckReport, Finding, Severity
from .netlint import DEFAULT_RULES, LINT_RULES, LintRule, lint_network
from .proofcheck import (
    ProofCheckError,
    RupChecker,
    check_drup,
    drup_findings,
)
from .runner import run_checks

__all__ = [
    "CertificateError",
    "CheckReport",
    "DEFAULT_RULES",
    "Finding",
    "LINT_RULES",
    "LintRule",
    "ProofCheckError",
    "RupChecker",
    "Severity",
    "certify",
    "check_certificate",
    "check_cnf",
    "check_drup",
    "check_encoding",
    "collect_encoding",
    "cross_check_tseitin",
    "drup_findings",
    "lint_network",
    "run_checks",
]
