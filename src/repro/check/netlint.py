"""Rule-based structural linting of :class:`~repro.network.network.Network`.

Unlike ``Network.validate()`` — which raises on the first problem — the
linter sweeps the whole netlist and emits one :class:`Finding` per
defect, with stable rule ids:

========  ====================  ========  =========================================
rule      slug                  severity  meaning
========  ====================  ========  =========================================
NL001     combinational-cycle   error     fanin edges form a cycle
NL002     dangling-node         error     reference to a dead node / broken
                                          fanin-fanout symmetry / corrupt PI or
                                          constant registry
NL003     duplicate-fanin       warning   a gate lists the same fanin twice
NL004     arity-violation       error     fanin count illegal for the gate type
NL005     undriven-po           error     a PO is bound to a missing node
NL006     strash-violation      info      structurally duplicate gates (the
                                          network is not structurally hashed)
NL007     name-collision        error     node names and the name map disagree
========  ====================  ========  =========================================

``Network.validate()`` delegates here and raises
:class:`~repro.network.network.NetworkError` on the first error-severity
finding, so the two entry points can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..network.network import Network
from ..network.node import GateType, arity_ok
from .findings import Finding, Severity


@dataclass(frozen=True)
class LintRule:
    """One linter rule: stable id, slug, severity, and checker."""

    rule: str
    slug: str
    severity: Severity
    description: str
    check: Callable[[Network], List[Finding]]


def _finding(
    rule: "LintRule", message: str, node: Optional[int] = None, name: str = ""
) -> Finding:
    return Finding(
        rule=rule.rule,
        severity=rule.severity,
        message=message,
        node=node,
        name=name,
    )


# ----------------------------------------------------------------------
# individual rules
# ----------------------------------------------------------------------


def _check_cycles(net: Network) -> List[Finding]:
    """NL001: cycle detection by Kahn's algorithm over live nodes."""
    out: List[Finding] = []
    live = {n.nid for n in net.nodes()}
    indeg: Dict[int, int] = {nid: 0 for nid in live}
    for node in net.nodes():
        for f in node.fanins:
            if f in live and f != node.nid:
                indeg[node.nid] += 1
        if node.nid in node.fanins:
            out.append(
                _finding(
                    NL001,
                    f"node {node.nid} feeds itself",
                    node.nid,
                    node.name,
                )
            )
    queue = [nid for nid, d in indeg.items() if d == 0]
    visited = 0
    while queue:
        nid = queue.pop()
        visited += 1
        for fo in net._fanouts[nid]:
            if fo not in live:
                continue
            uses = sum(1 for f in net.node(fo).fanins if f == nid)
            if not uses:
                continue  # asymmetric edge; NL002's business
            indeg[fo] -= uses
            if indeg[fo] == 0:
                queue.append(fo)
    if visited < len(live):
        # stuck nodes that cannot reach themselves are *not* reported:
        # they are stuck because a fanout list is out of sync, which is
        # NL002's business, not a cycle
        stuck = sorted(nid for nid, d in indeg.items() if d > 0)
        cyclic = [n for n in stuck if _on_cycle(net, n, live)]
        for nid in cyclic:
            node = net.node(nid)
            out.append(
                _finding(
                    NL001,
                    f"node {nid} lies on a combinational cycle",
                    nid,
                    node.name,
                )
            )
    return out


def _on_cycle(net: Network, start: int, live: set) -> bool:
    """True when ``start`` can reach itself through fanin edges."""
    stack = [f for f in net.node(start).fanins if f in live]
    seen = set()
    while stack:
        nid = stack.pop()
        if nid == start:
            return True
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(f for f in net.node(nid).fanins if f in live)
    return False


def _check_dangling(net: Network) -> List[Finding]:
    """NL002: dead references and fanin/fanout asymmetry."""
    out: List[Finding] = []
    for node in net.nodes():
        for f in node.fanins:
            if not net.has_node(f):
                out.append(
                    _finding(
                        NL002,
                        f"node {node.nid} has dangling fanin {f}",
                        node.nid,
                        node.name,
                    )
                )
            elif node.nid not in net._fanouts[f]:
                out.append(
                    _finding(
                        NL002,
                        f"fanout list of {f} misses consumer {node.nid}",
                        f,
                        node.name,
                    )
                )
        for fo in net._fanouts[node.nid]:
            if not net.has_node(fo):
                out.append(
                    _finding(
                        NL002,
                        f"node {node.nid} lists dangling fanout {fo}",
                        node.nid,
                        node.name,
                    )
                )
            elif node.nid not in net.node(fo).fanins:
                out.append(
                    _finding(
                        NL002,
                        f"node {fo} does not list {node.nid} as fanin",
                        fo,
                        node.name,
                    )
                )
    for pi in net._pis:
        if not net.has_node(pi):
            out.append(_finding(NL002, f"PI registry references dead node {pi}", pi))
        elif not net.node(pi).is_pi:
            out.append(
                _finding(
                    NL002,
                    f"PI registry entry {pi} is a "
                    f"{net.node(pi).gtype.value} node",
                    pi,
                    net.node(pi).name,
                )
            )
    for gtype, cid in net._const_ids.items():
        if not net.has_node(cid):
            out.append(
                _finding(
                    NL002,
                    f"constant registry references dead node {cid}",
                    cid,
                )
            )
        elif net.node(cid).gtype is not gtype:
            out.append(
                _finding(
                    NL002,
                    f"constant registry maps {gtype.value} to a "
                    f"{net.node(cid).gtype.value} node",
                    cid,
                )
            )
    return out


def _check_duplicate_fanins(net: Network) -> List[Finding]:
    """NL003: the same signal wired into one gate more than once."""
    out: List[Finding] = []
    for node in net.nodes():
        if not node.is_gate:
            continue
        seen = set()
        for f in node.fanins:
            if f in seen:
                out.append(
                    _finding(
                        NL003,
                        f"node {node.nid} ({node.gtype.value}) lists "
                        f"fanin {f} more than once",
                        node.nid,
                        node.name,
                    )
                )
                break
            seen.add(f)
    return out


def _check_arity(net: Network) -> List[Finding]:
    """NL004: fanin counts must match the gate type."""
    out: List[Finding] = []
    for node in net.nodes():
        if not arity_ok(node.gtype, len(node.fanins)):
            out.append(
                _finding(
                    NL004,
                    f"node {node.nid}: {len(node.fanins)} fanin(s) is "
                    f"illegal for {node.gtype.value}",
                    node.nid,
                    node.name,
                )
            )
    return out


def _check_pos(net: Network) -> List[Finding]:
    """NL005: every PO must be bound to a live node."""
    out: List[Finding] = []
    for index, (name, nid) in enumerate(net.pos):
        if not net.has_node(nid):
            out.append(
                _finding(
                    NL005,
                    f"PO #{index} {name!r} is bound to dead node {nid}",
                    nid,
                    name,
                )
            )
    return out


def _check_strash(net: Network) -> List[Finding]:
    """NL006: structurally duplicate gates (commutative fanins sorted)."""
    out: List[Finding] = []
    seen: Dict[Tuple[GateType, Tuple[int, ...]], int] = {}
    for node in net.nodes():
        if not node.is_gate:
            continue
        if node.gtype is GateType.MUX:
            key_fanins = tuple(node.fanins)
        else:
            key_fanins = tuple(sorted(node.fanins))
        key = (node.gtype, key_fanins)
        first = seen.get(key)
        if first is None:
            seen[key] = node.nid
            continue
        out.append(
            _finding(
                NL006,
                f"node {node.nid} duplicates node {first} "
                f"({node.gtype.value} over the same fanins)",
                node.nid,
                node.name,
            )
        )
    return out


def _check_names(net: Network) -> List[Finding]:
    """NL007: node names and the name map must agree bijectively."""
    out: List[Finding] = []
    by_name: Dict[str, int] = {}
    for node in net.nodes():
        if not node.name:
            continue
        other = by_name.get(node.name)
        if other is not None:
            out.append(
                _finding(
                    NL007,
                    f"nodes {other} and {node.nid} share the name "
                    f"{node.name!r}",
                    node.nid,
                    node.name,
                )
            )
            continue
        by_name[node.name] = node.nid
        mapped = net._name_to_id.get(node.name)
        if mapped != node.nid:
            out.append(
                _finding(
                    NL007,
                    f"name map binds {node.name!r} to "
                    f"{mapped if mapped is not None else 'nothing'}, "
                    f"but node {node.nid} carries that name",
                    node.nid,
                    node.name,
                )
            )
    for name, nid in net._name_to_id.items():
        if not net.has_node(nid):
            out.append(
                _finding(
                    NL007,
                    f"name map binds {name!r} to dead node {nid}",
                    nid,
                    name,
                )
            )
        elif net.node(nid).name != name:
            out.append(
                _finding(
                    NL007,
                    f"name map binds {name!r} to node {nid}, which is "
                    f"named {net.node(nid).name!r}",
                    nid,
                    name,
                )
            )
    return out


NL001 = LintRule(
    "NL001",
    "combinational-cycle",
    Severity.ERROR,
    "Fanin edges must form a DAG; cycles make evaluation undefined.",
    _check_cycles,
)
NL002 = LintRule(
    "NL002",
    "dangling-node",
    Severity.ERROR,
    "Fanin/fanout references must point at live nodes and stay symmetric; "
    "the PI and constant registries must be consistent.",
    _check_dangling,
)
NL003 = LintRule(
    "NL003",
    "duplicate-fanin",
    Severity.WARNING,
    "A gate reading the same signal twice is legal but almost always a "
    "construction bug (the duplicate is redundant or flips XOR parity).",
    _check_duplicate_fanins,
)
NL004 = LintRule(
    "NL004",
    "arity-violation",
    Severity.ERROR,
    "Leaf nodes take 0 fanins, BUF/NOT exactly 1, MUX exactly 3, "
    "symmetric gates 2 or more.",
    _check_arity,
)
NL005 = LintRule(
    "NL005",
    "undriven-po",
    Severity.ERROR,
    "Every primary output must be bound to a live node.",
    _check_pos,
)
NL006 = LintRule(
    "NL006",
    "strash-violation",
    Severity.INFO,
    "Two gates computing the same function over the same fanins indicate "
    "the network is not structurally hashed.",
    _check_strash,
)
NL007 = LintRule(
    "NL007",
    "name-collision",
    Severity.ERROR,
    "Node names are unique and the name map mirrors them exactly.",
    _check_names,
)

#: All rules, id-ordered.  NL006 is informational and excluded from the
#: default sweep (unhashed networks are the common, legal case).
LINT_RULES: Dict[str, LintRule] = {
    r.rule: r for r in (NL001, NL002, NL003, NL004, NL005, NL006, NL007)
}

#: Rules applied when the caller does not select a subset.
DEFAULT_RULES: Tuple[str, ...] = (
    "NL001",
    "NL002",
    "NL003",
    "NL004",
    "NL005",
    "NL007",
)


def lint_network(
    net: Network, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected lint rules (default: all but NL006) over ``net``.

    Returns every finding, id-ordered by rule; never raises on netlist
    damage.  Unknown rule ids raise :class:`KeyError`.
    """
    chosen = DEFAULT_RULES if rules is None else tuple(rules)
    out: List[Finding] = []
    for rid in chosen:
        out.extend(LINT_RULES[rid].check(net))
    return out
