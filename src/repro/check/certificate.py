"""Independent certification of ECO results.

The engine verifies its own work (final CEC, ``verified`` flag) — but it
does so with the same solver objects and the same patched network it
built.  :func:`check_certificate` re-derives everything from the
*instance* and the *result* alone:

1. the patches are re-applied to a fresh clone of the implementation
   and the patched miter against the specification is re-proved UNSAT
   by a **fresh solver** (optionally DRUP-certified);
2. every patch input is a member of the allowed divisor set (signals
   outside every target's fanout cone whose support lies inside the
   window);
3. the reported cost equals the recomputed distinct-signal weight sum
   and the reported gate counts match the synthesized patch netlists;
4. the patch netlists and the patched implementation are lint-clean.

Rule ids:

========  ========================  ========
CF001     miter-not-unsat           error
CF002     divisor-violation         error
CF003     cost-mismatch             error
CF004     gate-count-mismatch       error
CF005     patch-netlist-damage      error
CF006     verification-undecided    warning
========  ========================  ========
"""

from __future__ import annotations

from typing import Optional, Set

from ..core.miter import MITER_PO, build_miter
from ..core.patch import EcoResult, apply_patches
from ..io.weights import EcoInstance
from ..network.network import NetworkError
from ..network.window import compute_window
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.tseitin import encode_network
from ..sat.types import mklit
from .findings import CheckReport, Finding, Severity
from .netlint import lint_network
from .proofcheck import drup_findings


class CertificateError(Exception):
    """Raised by :func:`certify` when a certificate check fails."""


def check_certificate(
    instance: EcoInstance,
    result: EcoResult,
    budget_conflicts: Optional[int] = None,
    drup: bool = False,
) -> CheckReport:
    """Re-verify ``result`` against ``instance`` from first principles.

    Returns a :class:`CheckReport`; :attr:`CheckReport.ok` is the
    verdict.  With ``drup`` the UNSAT re-proof is additionally certified
    by the independent clause-stream checker (slower; the solver runs
    with proof logging).
    """
    report = CheckReport(subject=f"certificate:{result.instance_name}")

    # --- patch shape and lint ------------------------------------------
    targets = set(instance.targets)
    patched_targets: Set[str] = set()
    for patch in result.patches:
        if patch.target not in targets:
            report.add(
                Finding(
                    "CF005",
                    Severity.ERROR,
                    f"patch drives {patch.target!r}, which is not a "
                    "target of the instance",
                    name=patch.target,
                )
            )
            continue
        patched_targets.add(patch.target)
        if patch.network.num_pos != 1:
            report.add(
                Finding(
                    "CF005",
                    Severity.ERROR,
                    f"patch for {patch.target!r} has "
                    f"{patch.network.num_pos} outputs (want 1)",
                    name=patch.target,
                )
            )
        for lint in lint_network(patch.network):
            if lint.severity is Severity.ERROR:
                report.add(
                    Finding(
                        "CF005",
                        Severity.ERROR,
                        f"patch for {patch.target!r} fails lint "
                        f"{lint.rule}: {lint.message}",
                        node=lint.node,
                        name=patch.target,
                    )
                )
        support_names = {
            patch.network.node(pi).name for pi in patch.network.pis
        }
        if set(patch.support) != support_names:
            report.add(
                Finding(
                    "CF005",
                    Severity.ERROR,
                    f"patch for {patch.target!r} declares support "
                    f"{sorted(patch.support)} but its netlist reads "
                    f"{sorted(support_names)}",
                    name=patch.target,
                )
            )
    if patched_targets != targets:
        missing = sorted(targets - patched_targets)
        report.add(
            Finding(
                "CF005",
                Severity.ERROR,
                f"targets without a patch: {missing}",
                name=",".join(missing),
            )
        )
    if not report.ok:
        return report  # netlist damage: re-proof would be meaningless

    # --- divisor-subset check ------------------------------------------
    window = compute_window(
        instance.impl, instance.spec, instance.target_ids()
    )
    allowed = {
        instance.impl.node(nid).name or f"n{nid}"
        for nid in window.divisors
    }
    for patch in result.patches:
        for sname in patch.support:
            if sname not in allowed:
                report.add(
                    Finding(
                        "CF002",
                        Severity.ERROR,
                        f"patch for {patch.target!r} reads {sname!r}, "
                        "which is not in the allowed divisor set "
                        "(inside a target's fanout cone or outside "
                        "the window)",
                        name=sname,
                    )
                )

    # --- accounting ----------------------------------------------------
    distinct = sorted({n for p in result.patches for n in p.support})
    want_cost = sum(
        instance.weights.get(n, instance.default_weight) for n in distinct
    )
    if want_cost != result.cost:
        report.add(
            Finding(
                "CF003",
                Severity.ERROR,
                f"result reports cost {result.cost} but the distinct "
                f"support signals weigh {want_cost}",
            )
        )
    gates = 0
    for patch in result.patches:
        actual = patch.network.num_gates
        gates += actual
        if patch.gate_count != actual:
            report.add(
                Finding(
                    "CF004",
                    Severity.ERROR,
                    f"patch for {patch.target!r} reports "
                    f"{patch.gate_count} gates but its netlist has "
                    f"{actual}",
                    name=patch.target,
                )
            )
    if gates != result.gate_count:
        report.add(
            Finding(
                "CF004",
                Severity.ERROR,
                f"result reports {result.gate_count} gates but the "
                f"patch netlists total {gates}",
            )
        )

    # --- independent UNSAT re-proof ------------------------------------
    try:
        patched = apply_patches(instance.impl, result.patches)
    except (ValueError, NetworkError) as exc:
        report.add(
            Finding(
                "CF005",
                Severity.ERROR,
                f"patches do not apply to the implementation: {exc}",
            )
        )
        return report
    for lint in lint_network(patched):
        if lint.severity is Severity.ERROR:
            report.add(
                Finding(
                    "CF005",
                    Severity.ERROR,
                    f"patched implementation fails lint {lint.rule}: "
                    f"{lint.message}",
                    node=lint.node,
                )
            )
    if not report.ok:
        return report

    miter = build_miter(patched, instance.spec, targets=[])
    solver = solver_for(QueryTraits(incremental=False, needs_proof=drup))
    varmap = encode_network(solver, miter.net)
    out_var = varmap[dict(miter.net.pos)[MITER_PO]]
    solver.add_clause([mklit(out_var)])
    try:
        sat = solver.solve(budget_conflicts=budget_conflicts)
    except SatBudgetExceeded:
        report.add(
            Finding(
                "CF006",
                Severity.WARNING,
                "SAT budget exhausted before the patched miter was "
                "re-proved UNSAT (verification undecided)",
            )
        )
        return report
    if sat:
        cex = {
            miter.net.node(pi).name: solver.model_value(
                mklit(varmap[pi])
            )
            for pi in miter.x_pis
        }
        report.add(
            Finding(
                "CF001",
                Severity.ERROR,
                "patched implementation differs from the "
                f"specification (counterexample {cex})",
            )
        )
        return report
    if drup:
        for f in drup_findings(solver):
            report.add(
                Finding(
                    "CF001",
                    Severity.ERROR,
                    f"UNSAT re-proof failed independent checking "
                    f"({f.rule}): {f.message}",
                    node=f.node,
                )
            )
    return report


def certify(
    instance: EcoInstance,
    result: EcoResult,
    budget_conflicts: Optional[int] = None,
    drup: bool = False,
) -> CheckReport:
    """Raise-on-failure wrapper around :func:`check_certificate`."""
    report = check_certificate(
        instance, result, budget_conflicts=budget_conflicts, drup=drup
    )
    if not report.ok:
        first = report.errors[0]
        raise CertificateError(
            f"{result.instance_name}: {len(report.errors)} certificate "
            f"error(s); first: {first.format()}"
        )
    return report
