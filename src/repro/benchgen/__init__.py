"""Synthetic ICCAD'17-style benchmark generation."""

from .circuits import C17_BENCH, c17, c17_eco_instance
from .generators import (
    GENERATORS,
    alu_slice,
    comparator,
    decoder,
    parity_cone,
    random_dag,
    ripple_adder,
    small_multiplier,
)
from .harness import (
    METHODS,
    UnitRow,
    config_for,
    format_table,
    geomean,
    geomean_ratios,
    run_suite,
    run_unit,
    telemetry_document,
    unit_telemetry,
)
from .mutations import MutationRecord, corrupt, make_specification
from .suite import SUITE, SuiteUnit, build_suite, build_unit, unit_spec
from .weightgen import generate_weights

__all__ = [
    "C17_BENCH",
    "GENERATORS",
    "c17",
    "c17_eco_instance",
    "METHODS",
    "MutationRecord",
    "SUITE",
    "SuiteUnit",
    "UnitRow",
    "config_for",
    "format_table",
    "geomean",
    "geomean_ratios",
    "run_suite",
    "run_unit",
    "telemetry_document",
    "unit_telemetry",
    "alu_slice",
    "build_suite",
    "build_unit",
    "comparator",
    "corrupt",
    "decoder",
    "generate_weights",
    "make_specification",
    "parity_cone",
    "random_dag",
    "ripple_adder",
    "small_multiplier",
    "unit_spec",
]
