"""Deterministic circuit generators for the synthetic benchmark suite.

The ICCAD'17 contest units came from ISCAS/ITC/IWLS/OpenCore circuits;
those files are not redistributable here, so the suite is rebuilt from
parameterized generators of the same flavors: random control logic,
arithmetic (adders, comparators, ALU slices, small multipliers), and
wide AND-OR/parity cones.  All generators are seeded and reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

from ..network.network import Network
from ..network.node import GateType

_BIN_TYPES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


def random_dag(
    n_pi: int, n_gates: int, n_po: int, seed: int = 0, name: str = "rand"
) -> Network:
    """Random control-style logic with locality-biased fanin selection."""
    rng = random.Random(seed)
    net = Network(name)
    nodes = [net.add_pi(f"i{k}") for k in range(n_pi)]
    # control-logic gate mix: mostly AND/OR family, sparse XOR (XOR-rich
    # random cones are unrepresentative of the contest units and
    # needlessly adversarial for CNF reasoning)
    palette = (
        [GateType.AND] * 3
        + [GateType.OR] * 3
        + [GateType.NAND] * 2
        + [GateType.NOR] * 2
        + [GateType.XOR, GateType.XNOR]
        + [GateType.NOT] * 2
    )
    for g in range(n_gates):
        gtype = rng.choice(palette)
        if gtype is GateType.NOT:
            ins = [_pick(rng, nodes)]
        elif gtype in (GateType.XOR, GateType.XNOR):
            ins = _pick_distinct(rng, nodes, 2)
        else:
            ins = _pick_distinct(rng, nodes, rng.choice([2, 2, 2, 3]))
        nodes.append(net.add_gate(gtype, ins, f"g{g}"))
    # drive POs from late nodes so the cones are deep
    tail = nodes[max(0, len(nodes) - max(2 * n_po, 8)):]
    for p in range(n_po):
        net.add_po(tail[rng.randrange(len(tail))], f"o{p}")
    return net


def _pick(rng: random.Random, nodes: Sequence[int]) -> int:
    """Pick a fanin, biased toward recent nodes (locality)."""
    n = len(nodes)
    if n == 1 or rng.random() < 0.3:
        return nodes[rng.randrange(n)]
    lo = max(0, n - 24)
    return nodes[rng.randrange(lo, n)]


def _pick_distinct(rng: random.Random, nodes: Sequence[int], k: int) -> List[int]:
    """Pick ``k`` distinct fanins (duplicates make gates degenerate:
    AND(a,a) is a buffer, XOR(a,a) a constant)."""
    k = min(k, len(set(nodes)))
    out: List[int] = []
    while len(out) < k:
        cand = _pick(rng, nodes)
        if cand not in out:
            out.append(cand)
    return out


def ripple_adder(width: int, name: str = "add") -> Network:
    """``width``-bit ripple-carry adder: sum bits plus carry out."""
    net = Network(name)
    a = [net.add_pi(f"a{i}") for i in range(width)]
    b = [net.add_pi(f"b{i}") for i in range(width)]
    carry = net.add_pi("cin")
    for i in range(width):
        axb = net.add_gate(GateType.XOR, [a[i], b[i]], f"axb{i}")
        s = net.add_gate(GateType.XOR, [axb, carry], f"sum{i}")
        c1 = net.add_gate(GateType.AND, [a[i], b[i]], f"cg{i}")
        c2 = net.add_gate(GateType.AND, [axb, carry], f"cp{i}")
        carry = net.add_gate(GateType.OR, [c1, c2], f"c{i}")
        net.add_po(s, f"s{i}")
    net.add_po(carry, "cout")
    return net


def comparator(width: int, name: str = "cmp") -> Network:
    """Unsigned comparator: outputs ``lt``, ``eq``, ``gt``."""
    net = Network(name)
    a = [net.add_pi(f"a{i}") for i in range(width)]
    b = [net.add_pi(f"b{i}") for i in range(width)]
    eq_sofar = None
    lt = None
    for i in range(width - 1, -1, -1):
        bit_eq = net.add_gate(GateType.XNOR, [a[i], b[i]], f"eq{i}")
        na = net.add_gate(GateType.NOT, [a[i]], f"na{i}")
        bit_lt = net.add_gate(GateType.AND, [na, b[i]], f"blt{i}")
        if eq_sofar is None:
            eq_sofar = bit_eq
            lt = bit_lt
        else:
            guarded = net.add_gate(GateType.AND, [eq_sofar, bit_lt], f"glt{i}")
            lt = net.add_gate(GateType.OR, [lt, guarded], f"lt{i}")
            eq_sofar = net.add_gate(GateType.AND, [eq_sofar, bit_eq], f"eqp{i}")
    nlt = net.add_gate(GateType.NOT, [lt], "nlt")
    gt = net.add_gate(GateType.AND, [nlt, net.add_gate(GateType.NOT, [eq_sofar], "neq")], "gtw")
    net.add_po(lt, "lt")
    net.add_po(eq_sofar, "eq")
    net.add_po(gt, "gt")
    return net


def alu_slice(width: int, name: str = "alu") -> Network:
    """Tiny ALU: two opcode bits select AND / OR / XOR / ADD."""
    net = Network(name)
    op0 = net.add_pi("op0")
    op1 = net.add_pi("op1")
    a = [net.add_pi(f"a{i}") for i in range(width)]
    b = [net.add_pi(f"b{i}") for i in range(width)]
    carry = None
    for i in range(width):
        f_and = net.add_gate(GateType.AND, [a[i], b[i]], f"fand{i}")
        f_or = net.add_gate(GateType.OR, [a[i], b[i]], f"for{i}")
        f_xor = net.add_gate(GateType.XOR, [a[i], b[i]], f"fxor{i}")
        if carry is None:
            f_add = f_xor
            carry = f_and
        else:
            f_add = net.add_gate(GateType.XOR, [f_xor, carry], f"fadd{i}")
            c1 = net.add_gate(GateType.AND, [f_xor, carry], f"ca{i}")
            carry = net.add_gate(GateType.OR, [f_and, c1], f"cb{i}")
        lo = net.add_gate(GateType.MUX, [op0, f_and, f_or], f"lo{i}")
        if f_add == f_xor:  # bit 0: no carry yet, XOR and ADD coincide
            hi = f_xor
        else:
            hi = net.add_gate(GateType.MUX, [op0, f_xor, f_add], f"hi{i}")
        out = net.add_gate(GateType.MUX, [op1, lo, hi], f"alu{i}")
        net.add_po(out, f"y{i}")
    return net


def parity_cone(width: int, taps: int = 3, seed: int = 0, name: str = "par") -> Network:
    """Parity/ECC-flavored cone: XOR trees over overlapping tap groups."""
    rng = random.Random(seed)
    net = Network(name)
    pis = [net.add_pi(f"d{i}") for i in range(width)]
    outs = []
    for o in range(max(2, width // 4)):
        group = rng.sample(pis, min(len(pis), taps + rng.randrange(3)))
        acc = group[0]
        for idx, g in enumerate(group[1:]):
            acc = net.add_gate(GateType.XOR, [acc, g], f"x{o}_{idx}")
        outs.append(acc)
        net.add_po(acc, f"p{o}")
    # a few AND-OR checker outputs
    for o in range(2):
        g1 = net.add_gate(GateType.AND, rng.sample(outs, min(2, len(outs))), f"chk_a{o}")
        g2 = net.add_gate(GateType.OR, [g1, rng.choice(pis)], f"chk{o}")
        net.add_po(g2, f"c{o}")
    return net


def small_multiplier(width: int, name: str = "mul") -> Network:
    """``width`` x ``width`` array multiplier (keep width small)."""
    net = Network(name)
    a = [net.add_pi(f"a{i}") for i in range(width)]
    b = [net.add_pi(f"b{i}") for i in range(width)]
    # partial products
    rows: List[List[int]] = []
    for j in range(width):
        rows.append(
            [net.add_gate(GateType.AND, [a[i], b[j]], f"pp{i}_{j}") for i in range(width)]
        )
    # ripple accumulation of shifted rows
    acc: List[int] = list(rows[0])
    zero = net.add_const(0)
    for j in range(1, width):
        addend = rows[j]
        new_acc: List[int] = acc[:j]
        carry = zero
        for i in range(width):
            x = acc[j + i] if j + i < len(acc) else zero
            y = addend[i]
            s1 = net.add_gate(GateType.XOR, [x, y], f"s1_{i}_{j}")
            s = net.add_gate(GateType.XOR, [s1, carry], f"s_{i}_{j}")
            c1 = net.add_gate(GateType.AND, [x, y], f"c1_{i}_{j}")
            c2 = net.add_gate(GateType.AND, [s1, carry], f"c2_{i}_{j}")
            carry = net.add_gate(GateType.OR, [c1, c2], f"c_{i}_{j}")
            new_acc.append(s)
        new_acc.append(carry)
        acc = new_acc
    for i, bit in enumerate(acc[: 2 * width]):
        net.add_po(bit, f"m{i}")
    return net


def decoder(bits: int, name: str = "dec") -> Network:
    """``bits``-to-2^bits one-hot decoder with an enable."""
    net = Network(name)
    sel = [net.add_pi(f"s{i}") for i in range(bits)]
    en = net.add_pi("en")
    nsel = [net.add_gate(GateType.NOT, [s], f"ns{i}") for i, s in enumerate(sel)]
    for m in range(1 << bits):
        ins = [sel[i] if (m >> i) & 1 else nsel[i] for i in range(bits)]
        ins.append(en)
        net.add_po(net.add_gate(GateType.AND, ins, f"d{m}"), f"q{m}")
    return net


GENERATORS: Dict[str, Callable[..., Network]] = {
    "random_dag": random_dag,
    "ripple_adder": ripple_adder,
    "comparator": comparator,
    "alu_slice": alu_slice,
    "parity_cone": parity_cone,
    "small_multiplier": small_multiplier,
    "decoder": decoder,
}
