"""ECO-instance construction by netlist corruption.

An instance is built from a golden circuit: ``k`` internal nodes are
*corrupted* (their local functions rewritten), producing the old
implementation; the corrupted nodes are the ECO targets; and the golden
circuit — resynthesized through structural hashing so it shares no
gate-level structure with the implementation — becomes the new
specification.  By construction the targets are always sufficient
(restoring each target's original function rectifies the netlist), which
matches how the contest organizers derived their units from real ECO
scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..network.network import Network
from ..network.node import GateType
from ..network.strash import strash_network
from ..network.traversal import tfi, tfo

_MUTATION_KINDS = (
    "gate_type",
    "gate_type",
    "rewire",
    "rewire",
    "rebuild",
    "xor_mask",
    "xor_mask",
    "invert",
)

_SWAP = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.NOT: GateType.BUF,
    GateType.BUF: GateType.NOT,
}


@dataclass
class MutationRecord:
    """How one target was corrupted (kept for provenance/debugging)."""

    node_name: str
    kind: str


def corrupt(
    golden: Network,
    num_targets: int,
    seed: int = 0,
) -> Tuple[Network, List[str], List[MutationRecord]]:
    """Corrupt ``num_targets`` nodes of a copy of ``golden``.

    Returns ``(implementation, target_names, records)``.  Corrupted
    nodes keep their names; replacement fanins are always chosen outside
    the node's TFO so the network stays acyclic.  Mutations that leave
    the circuit functionally unchanged are possible in principle but the
    chosen rewrites (gate-type swap / fanin rewire / function rebuild /
    inversion) change the local function except in degenerate cases,
    which is sufficient for benchmark purposes.
    """
    rng = random.Random(seed)
    impl = golden.clone()
    # prefer live gates (in some PO's fanin cone): corrupting a dead
    # gate is silent, which makes a useless ECO instance
    live = tfi(impl, [nid for _, nid in impl.pos])
    gates = [
        n.nid
        for n in impl.nodes()
        if n.is_gate
        and n.name
        and n.gtype is not GateType.BUF
        and n.nid in live
    ]
    if len(gates) < num_targets:
        gates = [
            n.nid
            for n in impl.nodes()
            if n.is_gate and n.name and n.gtype is not GateType.BUF
        ]
    if len(gates) < num_targets:
        raise ValueError("not enough gates to corrupt")
    # spread targets across the netlist
    rng.shuffle(gates)
    chosen = sorted(gates[:num_targets])
    records: List[MutationRecord] = []
    target_names: List[str] = []
    for nid in chosen:
        node = impl.node(nid)
        kind = rng.choice(_MUTATION_KINDS)
        _apply_mutation(impl, nid, kind, rng)
        records.append(MutationRecord(node_name=node.name, kind=kind))
        target_names.append(node.name)
    return impl, target_names, records


def _apply_mutation(
    impl: Network, nid: int, kind: str, rng: random.Random
) -> None:
    node = impl.node(nid)
    forbidden = tfo(impl, [nid])
    candidates = [
        n.nid
        for n in impl.nodes()
        if n.nid not in forbidden and not n.is_const
    ]
    if kind == "gate_type" and node.gtype in _SWAP:
        impl.set_fanins(nid, _SWAP[node.gtype], node.fanins)
        return
    if kind == "rewire" and node.fanins and candidates:
        fanins = list(node.fanins)
        pos = rng.randrange(len(fanins))
        # avoid every current fanin, not just the replaced one: a
        # duplicate fanin degenerates the gate (AND(a,a) == BUF(a))
        pool = [c for c in candidates if c not in fanins]
        if pool:
            fanins[pos] = rng.choice(pool)
            impl.set_fanins(nid, node.gtype, fanins)
            return
    if kind == "rebuild" and len(candidates) >= 2:
        gtype = rng.choice(
            [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND]
        )
        fanins = rng.sample(candidates, 2)
        impl.set_fanins(nid, gtype, fanins)
        return
    if kind == "xor_mask" and candidates:
        # t := original(t) XOR s — an input-dependent corruption whose
        # repair genuinely needs signal information (never a constant)
        shadow = impl.add_gate(
            node.gtype, list(node.fanins), f"{node.name}__pre"
        )
        mask_sig = rng.choice(candidates)
        impl.set_fanins(nid, GateType.XOR, [shadow, mask_sig])
        return
    # fallback / "invert": complement (or, for MUX, swap the data legs)
    inverted = _SWAP.get(node.gtype)
    if inverted is not None:
        impl.set_fanins(nid, inverted, node.fanins)
    else:  # MUX is the only gate type without a _SWAP entry
        s, d0, d1 = node.fanins
        impl.set_fanins(nid, GateType.MUX, [s, d1, d0])


def make_specification(golden: Network, seed: int = 0) -> Network:
    """Resynthesized copy of the golden netlist (the "new" spec).

    Structural hashing rebuilds the circuit as an AIG, destroying any
    gate-level correspondence with the implementation — the paper
    stresses that no structural similarity may be assumed.
    """
    return strash_network(golden, name=f"{golden.name}_spec")
