"""Experiment harness: Table 1 rows and summary statistics.

Maps the paper's three method columns onto engine configurations, runs
units (honoring ``force_structural`` for the units the paper solved
structurally), and formats the resulting table with the geomean ratio
row exactly as Table 1 reports it.

The parallel path (``run_suite(jobs=N, unit_timeout=T)``) is
crash-safe: per-unit deadlines are measured from *submission* (at most
``jobs`` units are in flight, so submission ≈ start of execution), a
timed-out straggler's worker process is actually terminated, worker
death (``BrokenProcessPool``) recycles the pool and retries the
interrupted units a bounded number of times before degrading them to
``"crashed"`` placeholder rows, and an optional ``checkpoint`` JSON
lets an interrupted suite resume from the units it already finished.
Fault injection for all of this is driven by a
:class:`~repro.resilience.faultplan.FaultPlan` (see
docs/RESILIENCE.md).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.engine import (
    EcoConfig,
    EcoEngine,
    baseline_config,
    best_config,
    contest_config,
)
from ..core.patch import EcoResult
from ..io.weights import EcoInstance
from ..resilience.faultplan import EngineFault, FaultPlan, corrupt_instance
from ..resilience.retry import RetryPolicy
from .suite import SUITE, SuiteUnit, build_unit

#: Table 1 method columns, in paper order.
METHODS = ("baseline", "minassump", "satprune_cegarmin")

_METHOD_CONFIG = {
    "baseline": baseline_config,
    "minassump": contest_config,
    "satprune_cegarmin": best_config,
}

_METHOD_TITLE = {
    "baseline": "w/o minimize_assumptions",
    "minassump": "w/ minimize_assumptions",
    "satprune_cegarmin": "SAT_prune+CEGAR_min",
}


@dataclass
class UnitRow:
    """One unit's results across the three methods (a Table 1 row)."""

    name: str
    n_pi: int
    n_po: int
    gates_impl: int
    gates_spec: int
    n_targets: int
    results: Dict[str, EcoResult] = field(default_factory=dict)
    #: per-method telemetry entries (bench baseline schema), populated
    #: when :func:`run_unit` runs with ``collect_telemetry=True``
    telemetry: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def cost(self, method: str) -> int:
        return self.results[method].cost

    def gates(self, method: str) -> int:
        return self.results[method].gate_count

    def runtime(self, method: str) -> float:
        return self.results[method].runtime_seconds


def config_for(spec: SuiteUnit, method: str) -> EcoConfig:
    """Engine configuration for a unit under a Table 1 method column."""
    cfg = _METHOD_CONFIG[method]()
    if spec.force_structural:
        # the paper's SAT flow timed out on these units; route them
        # through the structural path like the original runs did
        cfg = dataclasses.replace(
            cfg, structural_only=True, feasibility_method="qbf"
        )
    return cfg


def run_unit(
    spec: SuiteUnit,
    methods: Sequence[str] = METHODS,
    instance: Optional[EcoInstance] = None,
    collect_telemetry: bool = False,
    *,
    faults: Optional[EngineFault] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> UnitRow:
    """Run one unit under each method; returns the populated row.

    With ``collect_telemetry`` the process-wide :mod:`repro.obs`
    registry is reset + enabled around each method run and a bench
    telemetry entry (phases, counters, solver breakdown) is stored in
    ``row.telemetry[method]``.  The registry's previous enabled state is
    restored afterwards.

    ``faults`` / ``retry_policy`` are threaded into every method's
    engine configuration (chaos testing and transient-failure retry;
    see :mod:`repro.resilience`).
    """
    inst = instance if instance is not None else build_unit(spec)
    row = UnitRow(
        name=spec.name,
        n_pi=inst.impl.num_pis,
        n_po=inst.impl.num_pos,
        gates_impl=inst.impl.num_gates,
        gates_spec=inst.spec.num_gates,
        n_targets=len(inst.targets),
    )
    for method in methods:
        cfg = config_for(spec, method)
        if faults is not None or retry_policy is not None:
            cfg = dataclasses.replace(
                cfg, faults=faults, retry_policy=retry_policy
            )
        engine = EcoEngine(cfg)
        if not collect_telemetry:
            row.results[method] = engine.run(inst)
            continue
        registry = obs.get_registry()
        was_enabled = registry.enabled
        registry.reset()
        registry.enable()
        try:
            result = engine.run(inst)
        finally:
            registry.enabled = was_enabled
        row.results[method] = result
        row.telemetry[method] = unit_telemetry(
            spec.name, method, result, registry, backend=cfg.backend
        )
        registry.reset()
    return row


#: bench ``memo`` column -> the counter stem its hit-rate is derived from
_MEMO_RATE_STEMS = {
    "window": "engine.window_memo",
    "divisors": "engine.divisors_memo",
    "template": "engine.template_memo",
    "support": "engine.support_memo",
}


def memo_rates(counters: Dict[str, int]) -> Dict[str, float]:
    """Per-memo hit rates (``hit / (hit + miss)``) from run counters.

    A memo with no lookups at all reports 0.0 — the column is always
    present so baseline diffs stay positional.
    """
    rates = {}
    for column, stem in _MEMO_RATE_STEMS.items():
        hits = counters.get(f"{stem}_hit", 0)
        lookups = hits + counters.get(f"{stem}_miss", 0)
        rates[column] = round(hits / lookups, 6) if lookups else 0.0
    return rates


def unit_telemetry(
    unit: str,
    method: str,
    result: EcoResult,
    registry: "obs.Registry",
    backend: str = "native",
) -> Dict[str, Any]:
    """One bench-baseline unit entry from a run's registry contents."""
    from ..core.pipeline import STAGE_NAMES
    from ..obs.export import SOLVER_COUNTER_FIELDS

    counters = dict(registry.counters)
    phases = {k: round(v, 6) for k, v in registry.phase_times().items()}
    return {
        "unit": unit,
        "method": method,
        "backend": backend,
        "cost": result.cost,
        "gates": result.gate_count,
        "runtime_s": round(result.runtime_seconds, 6),
        "verified": result.verified,
        "phases": phases,
        "passes": {
            name: phases["engine." + name]
            for name in STAGE_NAMES
            if "engine." + name in phases
        },
        "counters": counters,
        "solver": {
            fld: counters.get("sat." + fld, 0) for fld in SOLVER_COUNTER_FIELDS
        },
        "memo": memo_rates(counters),
    }


def telemetry_document(
    rows: Sequence[UnitRow],
    suite: str = "benchgen-20",
    comparison: Optional[Dict[str, float]] = None,
    context: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble + validate the bench baseline document from unit rows.

    ``comparison`` optionally records before/after aggregate wall clock
    against the previously committed baseline (see
    ``benchmarks/bench_table1.py``).  ``context`` records the
    measurement settings (currently the worker-process count): on a
    low-core machine parallel workers contend and inflate every unit's
    wall clock, so ``bench_guard`` refuses to compare exports measured
    under different ``jobs`` settings.
    """
    from ..obs.export import BENCH_SCHEMA, validate_bench_document

    units = [
        entry
        for row in rows
        for entry in (row.telemetry[m] for m in row.telemetry)
    ]
    doc = {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "generated_by": "benchmarks/bench_table1.py",
        "units": units,
    }
    if comparison is not None:
        doc["comparison"] = dict(comparison)
    if context is not None:
        doc["context"] = dict(context)
    validate_bench_document(doc)
    return doc


#: Schema tag written into checkpoint files (see docs/RESILIENCE.md).
CHECKPOINT_SCHEMA = "repro.bench.checkpoint/v1"

#: Placeholder methods marking rows the harness could not finish.
DEGRADED_METHODS = frozenset({"timeout", "error", "crashed"})


def row_degraded(row: UnitRow) -> bool:
    """True when any method slot holds a degraded placeholder result."""
    return any(r.method in DEGRADED_METHODS for r in row.results.values())


def _row_to_json(row: UnitRow) -> Dict[str, Any]:
    return {
        "name": row.name,
        "n_pi": row.n_pi,
        "n_po": row.n_po,
        "gates_impl": row.gates_impl,
        "gates_spec": row.gates_spec,
        "n_targets": row.n_targets,
        "results": {
            m: {
                "cost": r.cost,
                "gate_count": r.gate_count,
                "verified": r.verified,
                "runtime_seconds": r.runtime_seconds,
                "method": r.method,
                "stats": dict(r.stats),
            }
            for m, r in row.results.items()
        },
        "telemetry": row.telemetry,
    }


def _row_from_json(data: Dict[str, Any]) -> UnitRow:
    row = UnitRow(
        name=data["name"],
        n_pi=int(data["n_pi"]),
        n_po=int(data["n_po"]),
        gates_impl=int(data["gates_impl"]),
        gates_spec=int(data["gates_spec"]),
        n_targets=int(data["n_targets"]),
    )
    for method, rd in data["results"].items():
        # patches and engine_stats are not serialized; restored rows
        # carry the table-level numbers only
        row.results[method] = EcoResult(
            instance_name=row.name,
            patches=[],
            cost=int(rd["cost"]),
            gate_count=int(rd["gate_count"]),
            verified=bool(rd["verified"]),
            runtime_seconds=float(rd["runtime_seconds"]),
            method=str(rd["method"]),
            stats=dict(rd.get("stats", {})),
        )
    row.telemetry = {m: dict(t) for m, t in data.get("telemetry", {}).items()}
    return row


def save_checkpoint(path: str, rows: Sequence[UnitRow]) -> None:
    """Atomically persist the finished (non-degraded) rows to ``path``."""
    doc = {
        "schema": CHECKPOINT_SCHEMA,
        "rows": [_row_to_json(r) for r in rows if not row_degraded(r)],
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Dict[str, UnitRow]:
    """Rows from a previous partial run, keyed by unit name.

    Missing, unreadable, or schema-mismatched files yield ``{}`` (a
    fresh run); degraded rows are dropped so the units re-run.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(doc, dict) or doc.get("schema") != CHECKPOINT_SCHEMA:
        return {}
    out: Dict[str, UnitRow] = {}
    for data in doc.get("rows", []):
        try:
            row = _row_from_json(data)
        except (KeyError, TypeError, ValueError):
            continue
        if not row_degraded(row):
            out[row.name] = row
    return out


def _execute_unit(
    spec: SuiteUnit,
    methods: Tuple[str, ...],
    collect_telemetry: bool,
    plan: Optional[FaultPlan],
    retry_policy: Optional[RetryPolicy],
    scratch: Optional[str],
    attempt: int = 0,
) -> UnitRow:
    """Worker-process entry point: apply planned faults, run the unit.

    Writes a ``{pid}.unit`` marker into ``scratch`` before doing any
    work so the parent can (a) terminate the exact worker whose unit
    timed out and (b) attribute a pool-breaking crash to the unit the
    dead worker was running.  ``attempt`` is the parent-side retry
    count at submission (0 on the first try), which lets a
    ``FaultPlan.crash_times`` unit crash a fixed number of times and
    then succeed.
    """
    if scratch is not None:
        try:
            with open(
                os.path.join(scratch, f"{os.getpid()}.unit"),
                "w",
                encoding="utf-8",
            ) as fh:
                fh.write(spec.name)
        except OSError:
            pass
    faults: Optional[EngineFault] = None
    instance: Optional[EcoInstance] = None
    if plan is not None:
        if plan.crashes_attempt(spec.name, attempt):
            # simulated hard worker death (segfault stand-in); skips
            # all interpreter cleanup, so the pool sees a broken pipe
            if plan.crash_after_s > 0:
                time.sleep(plan.crash_after_s)
            os._exit(13)
        if spec.name in plan.hang:
            time.sleep(plan.hang_seconds)
        mode = plan.corrupt.get(spec.name)
        if mode is not None:
            instance = build_unit(spec)
            corrupt_instance(instance, mode)
        faults = plan.engine_fault(spec.name)
    return run_unit(
        spec,
        methods,
        instance,
        collect_telemetry,
        faults=faults,
        retry_policy=retry_policy,
    )


def run_suite(
    names: Optional[Sequence[str]] = None,
    methods: Sequence[str] = METHODS,
    jobs: int = 1,
    unit_timeout: Optional[float] = None,
    collect_telemetry: bool = False,
    *,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    max_unit_retries: int = 2,
    retry_backoff_s: float = 0.05,
    checkpoint: Optional[str] = None,
) -> List[UnitRow]:
    """Run the (sub)suite; returns one row per unit, in suite order.

    With ``jobs > 1``, ``unit_timeout`` set, or a ``fault_plan``, units
    fan out across a ``ProcessPoolExecutor``.  At most ``jobs`` units
    are in flight at a time, so each unit's ``unit_timeout`` deadline —
    measured from submission — tracks its actual execution time rather
    than queue time.  A unit that times out degrades to a placeholder
    row (method ``"timeout"``) and its still-running worker is
    terminated; a unit that raises degrades to ``"error"``; a unit
    whose worker dies (``BrokenProcessPool``) is retried up to
    ``max_unit_retries`` times with exponential backoff
    (``retry_backoff_s`` base) on a recycled pool before degrading to
    ``"crashed"``.  Degraded rows record the measured wall-clock spent
    on the *final* failed attempt — never the sum over attempts — and a
    unit that crashes and then succeeds on retry records only the
    successful attempt's runtime in its row.  Counters:
    ``harness.unit_timeout``,
    ``harness.unit_error``, ``harness.unit_crashed``,
    ``harness.unit_retry``, ``harness.pool_recycled``.

    ``checkpoint`` names a JSON file: finished (non-degraded) rows are
    saved there after every unit, and a restarted ``run_suite`` with the
    same path resumes from them (``harness.checkpoint_restored``).

    ``fault_plan`` always forces the process-pool path — crash faults
    call ``os._exit`` and must not run in the caller's process.
    """
    specs = [u for u in SUITE if names is None or u.name in names]
    done: Dict[str, UnitRow] = {}
    if checkpoint is not None:
        wanted = {s.name for s in specs}
        done = {
            n: r for n, r in load_checkpoint(checkpoint).items() if n in wanted
        }
        if done:
            obs.inc("harness.checkpoint_restored", len(done))
    if jobs <= 1 and unit_timeout is None and fault_plan is None:
        for spec in specs:
            if spec.name in done:
                continue
            done[spec.name] = run_unit(
                spec, methods, None, collect_telemetry,
                retry_policy=retry_policy,
            )
            if checkpoint is not None:
                save_checkpoint(
                    checkpoint,
                    [done[s.name] for s in specs if s.name in done],
                )
        return [done[s.name] for s in specs]
    return _run_suite_parallel(
        specs,
        methods,
        jobs,
        unit_timeout,
        collect_telemetry,
        fault_plan,
        retry_policy,
        max_unit_retries,
        retry_backoff_s,
        checkpoint,
        done,
    )


def _run_suite_parallel(
    specs: Sequence[SuiteUnit],
    methods: Sequence[str],
    jobs: int,
    unit_timeout: Optional[float],
    collect_telemetry: bool,
    fault_plan: Optional[FaultPlan],
    retry_policy: Optional[RetryPolicy],
    max_unit_retries: int,
    retry_backoff_s: float,
    checkpoint: Optional[str],
    done: Dict[str, UnitRow],
) -> List[UnitRow]:
    import concurrent.futures as cf
    import shutil
    import signal
    import tempfile
    from collections import deque
    from concurrent.futures.process import BrokenProcessPool

    workers = max(1, jobs)
    scratch = tempfile.mkdtemp(prefix="repro-harness-")
    tries: Dict[str, int] = {s.name: 0 for s in specs}
    queue = deque(s for s in specs if s.name not in done)
    ex = cf.ProcessPoolExecutor(max_workers=workers)
    # Future -> (spec, submission time); capped at `workers` entries so
    # submission time ≈ execution start time (deadline fairness)
    inflight: Dict[Any, Tuple[SuiteUnit, float]] = {}

    def finish(spec: SuiteUnit, row: UnitRow) -> None:
        done[spec.name] = row
        if checkpoint is not None:
            save_checkpoint(
                checkpoint, [done[s.name] for s in specs if s.name in done]
            )

    announced: set = set()

    def submit(spec: SuiteUnit) -> None:
        # crash/hang fire inside the worker where counters are lost;
        # record the injection on the parent's registry instead
        if fault_plan is not None and spec.name not in announced:
            announced.add(spec.name)
            if spec.name in fault_plan.crash or spec.name in fault_plan.crash_times:
                obs.inc("resilience.injected.crash")
            if spec.name in fault_plan.hang:
                obs.inc("resilience.injected.hang")
        fut = ex.submit(
            _execute_unit,
            spec,
            tuple(methods),
            collect_telemetry,
            fault_plan,
            retry_policy,
            scratch,
            tries[spec.name],
        )
        inflight[fut] = (spec, time.monotonic())

    def unit_for_pid(pid: int) -> Optional[str]:
        try:
            with open(
                os.path.join(scratch, f"{pid}.unit"), encoding="utf-8"
            ) as fh:
                return fh.read().strip()
        except OSError:
            return None

    def pids_for_unit(name: str) -> List[int]:
        out = []
        for pid in list(getattr(ex, "_processes", {})):
            if unit_for_pid(pid) == name:
                out.append(pid)
        return out

    def recycle_pool() -> None:
        """Terminate every worker and stand up a fresh pool."""
        nonlocal ex
        obs.inc("harness.pool_recycled")
        procs = list(getattr(ex, "_processes", {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        ex.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.join(timeout=5)
            except Exception:
                pass
        ex = cf.ProcessPoolExecutor(max_workers=workers)

    def crash_suspects(poll_s: float = 1.5) -> set:
        """Units whose workers died abnormally (from pid markers).

        ``cf.wait`` wakes up the moment the pool marks futures broken,
        often *before* any dead worker has been reaped — so poll
        briefly until an abnormal exit code surfaces (or every worker
        has been accounted for) rather than reading exit codes once.
        """
        deadline = time.monotonic() + poll_s
        while True:
            suspects = set()
            codes = []
            for pid, proc in list(getattr(ex, "_processes", {}).items()):
                code = proc.exitcode
                codes.append(code)
                if code is not None and code not in (0, -signal.SIGTERM):
                    unit = unit_for_pid(pid)
                    if unit is not None:
                        suspects.add(unit)
            if suspects or not codes or all(c is not None for c in codes):
                return suspects
            if time.monotonic() > deadline:
                return suspects
            time.sleep(0.02)

    def penalize_crash(spec: SuiteUnit, elapsed: float) -> None:
        tries[spec.name] += 1
        if tries[spec.name] > max_unit_retries:
            obs.inc("harness.unit_crashed")
            finish(
                spec,
                _degraded_row(
                    spec, methods, "crashed", elapsed, collect_telemetry
                ),
            )
        else:
            obs.inc("harness.unit_retry")
            queue.appendleft(spec)

    recycles = 0
    try:
        while queue or inflight:
            while queue and len(inflight) < workers:
                submit(queue.popleft())
            wait_timeout = None
            if unit_timeout is not None:
                earliest = min(t for (_, t) in inflight.values())
                wait_timeout = max(
                    0.0, earliest + unit_timeout - time.monotonic()
                )
            finished, _ = cf.wait(
                set(inflight),
                timeout=wait_timeout,
                return_when=cf.FIRST_COMPLETED,
            )

            broken = False
            interrupted: List[Tuple[SuiteUnit, float]] = []
            for fut in finished:
                spec, submitted = inflight.pop(fut)
                elapsed = time.monotonic() - submitted
                try:
                    row = fut.result()
                except BrokenProcessPool:
                    broken = True
                    interrupted.append((spec, elapsed))
                except cf.CancelledError:
                    queue.appendleft(spec)
                except Exception:
                    obs.inc("harness.unit_error")
                    finish(
                        spec,
                        _degraded_row(
                            spec, methods, "error", elapsed, collect_telemetry
                        ),
                    )
                else:
                    finish(spec, row)

            if broken:
                # pool breakage kills every in-flight future; attribute
                # the crash via the dead workers' pid markers, retry the
                # guilty unit (bounded), requeue innocent co-victims.
                # Snapshot the co-victims' elapsed *before* the suspect
                # poll (it can block ~1.5s): a unit's recorded attempt
                # time must cover only the time its attempt actually ran
                now = time.monotonic()
                for fut in list(inflight):
                    spec, submitted = inflight.pop(fut)
                    interrupted.append((spec, now - submitted))
                suspects = crash_suspects()
                for spec, elapsed in interrupted:
                    if not suspects or spec.name in suspects:
                        penalize_crash(spec, elapsed)
                    else:
                        queue.appendleft(spec)
                recycle_pool()
                recycles += 1
                if retry_backoff_s > 0:
                    time.sleep(
                        min(2.0, retry_backoff_s * (2.0 ** (recycles - 1)))
                    )
                continue

            if unit_timeout is None:
                continue
            now = time.monotonic()
            expired = [
                (fut, spec, submitted)
                for fut, (spec, submitted) in inflight.items()
                if now - submitted > unit_timeout
            ]
            if not expired:
                continue
            for fut, spec, submitted in expired:
                del inflight[fut]
                obs.inc("harness.unit_timeout")
                finish(
                    spec,
                    _degraded_row(
                        spec,
                        methods,
                        "timeout",
                        now - submitted,
                        collect_telemetry,
                    ),
                )
                # actually stop the straggler's worker, not just the future
                procs = getattr(ex, "_processes", {})
                for pid in pids_for_unit(spec.name):
                    proc = procs.get(pid)
                    if proc is not None:
                        try:
                            proc.terminate()
                        except Exception:
                            pass
            # terminating workers breaks the pool for the survivors:
            # harvest any that finished in the meantime, requeue the
            # rest (no penalty — their time was not up), start fresh.
            # A survivor that finished with a genuine unit error is
            # degraded here like on the main path: requeueing it would
            # re-run it without bumping `tries`, and its eventual row
            # would charge a fresh attempt's clock for a unit that had
            # already failed
            for fut in list(inflight):
                spec, submitted = inflight.pop(fut)
                if fut.done():
                    try:
                        finish(spec, fut.result())
                        continue
                    except (BrokenProcessPool, cf.CancelledError):
                        pass
                    except Exception:
                        obs.inc("harness.unit_error")
                        finish(
                            spec,
                            _degraded_row(
                                spec,
                                methods,
                                "error",
                                time.monotonic() - submitted,
                                collect_telemetry,
                            ),
                        )
                        continue
                queue.appendleft(spec)
            recycle_pool()
    finally:
        # no zombies: terminate whatever is left, then reap
        procs = list(getattr(ex, "_processes", {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        ex.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.join(timeout=5)
            except Exception:
                pass
        shutil.rmtree(scratch, ignore_errors=True)
    return [done[s.name] for s in specs]


def _degraded_row(
    spec: SuiteUnit,
    methods: Sequence[str],
    kind: str,
    runtime_s: float,
    collect_telemetry: bool,
) -> UnitRow:
    """Placeholder row for a unit the parallel harness could not finish.

    ``runtime_s`` is the measured wall clock the failed attempt consumed
    (0.0 only when genuinely unknown), recorded in every method slot.
    """
    from ..obs.export import SOLVER_COUNTER_FIELDS

    row = UnitRow(
        name=spec.name,
        n_pi=0,
        n_po=0,
        gates_impl=0,
        gates_spec=0,
        n_targets=spec.num_targets,
    )
    for method in methods:
        row.results[method] = EcoResult(
            instance_name=spec.name,
            patches=[],
            cost=0,
            gate_count=0,
            verified=False,
            runtime_seconds=float(runtime_s),
            method=kind,
            stats={},
        )
        if collect_telemetry:
            row.telemetry[method] = {
                "unit": spec.name,
                "method": method,
                "backend": config_for(spec, method).backend,
                "cost": 0,
                "gates": 0,
                "runtime_s": float(runtime_s),
                "verified": False,
                "phases": {},
                "passes": {},
                "counters": {f"harness.unit_{kind}": 1},
                "solver": {fld: 0 for fld in SOLVER_COUNTER_FIELDS},
                "memo": memo_rates({}),
            }
    return row


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (non-positive entries are skipped)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def geomean_ratios(
    rows: Sequence[UnitRow], methods: Sequence[str] = METHODS
) -> Dict[str, Dict[str, float]]:
    """Per-method geomean of (value / baseline value), as in Table 1.

    Returns ``{method: {"cost": r, "gates": r, "time": r}}`` with the
    baseline method normalized to 1.0.
    """
    base = methods[0]
    out: Dict[str, Dict[str, float]] = {}
    for method in methods:
        cost_r = geomean(
            [
                (max(r.cost(method), 1) / max(r.cost(base), 1))
                for r in rows
            ]
        )
        gate_r = geomean(
            [
                (max(r.gates(method), 1) / max(r.gates(base), 1))
                for r in rows
            ]
        )
        time_r = geomean(
            [
                (max(r.runtime(method), 1e-4) / max(r.runtime(base), 1e-4))
                for r in rows
            ]
        )
        out[method] = {"cost": cost_r, "gates": gate_r, "time": time_r}
    return out


def format_table(rows: Sequence[UnitRow], methods: Sequence[str] = METHODS) -> str:
    """Render rows in the layout of Table 1 (plus the geomean row)."""
    headers = ["name", "#PI", "#PO", "#g(F)", "#g(S)", "#tgt"]
    for m in methods:
        headers += [f"cost[{m}]", f"#g[{m}]", f"t[{m}](s)"]
    lines = ["  ".join(f"{h:>14}" for h in headers)]
    for r in rows:
        cells = [
            r.name,
            str(r.n_pi),
            str(r.n_po),
            str(r.gates_impl),
            str(r.gates_spec),
            str(r.n_targets),
        ]
        for m in methods:
            cells += [
                str(r.cost(m)),
                str(r.gates(m)),
                f"{r.runtime(m):.2f}",
            ]
        lines.append("  ".join(f"{c:>14}" for c in cells))
    ratios = geomean_ratios(rows, methods)
    cells = ["Geomean", "", "", "", "", ""]
    for m in methods:
        cells += [
            f"{ratios[m]['cost']:.2f}",
            f"{ratios[m]['gates']:.2f}",
            f"{ratios[m]['time']:.2f}x",
        ]
    lines.append("  ".join(f"{c:>14}" for c in cells))
    return "\n".join(lines)
