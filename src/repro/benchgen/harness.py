"""Experiment harness: Table 1 rows and summary statistics.

Maps the paper's three method columns onto engine configurations, runs
units (honoring ``force_structural`` for the units the paper solved
structurally), and formats the resulting table with the geomean ratio
row exactly as Table 1 reports it.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..core.engine import (
    EcoConfig,
    EcoEngine,
    baseline_config,
    best_config,
    contest_config,
)
from ..core.patch import EcoResult
from ..io.weights import EcoInstance
from .suite import SUITE, SuiteUnit, build_unit

#: Table 1 method columns, in paper order.
METHODS = ("baseline", "minassump", "satprune_cegarmin")

_METHOD_CONFIG = {
    "baseline": baseline_config,
    "minassump": contest_config,
    "satprune_cegarmin": best_config,
}

_METHOD_TITLE = {
    "baseline": "w/o minimize_assumptions",
    "minassump": "w/ minimize_assumptions",
    "satprune_cegarmin": "SAT_prune+CEGAR_min",
}


@dataclass
class UnitRow:
    """One unit's results across the three methods (a Table 1 row)."""

    name: str
    n_pi: int
    n_po: int
    gates_impl: int
    gates_spec: int
    n_targets: int
    results: Dict[str, EcoResult] = field(default_factory=dict)
    #: per-method telemetry entries (bench baseline schema), populated
    #: when :func:`run_unit` runs with ``collect_telemetry=True``
    telemetry: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def cost(self, method: str) -> int:
        return self.results[method].cost

    def gates(self, method: str) -> int:
        return self.results[method].gate_count

    def runtime(self, method: str) -> float:
        return self.results[method].runtime_seconds


def config_for(spec: SuiteUnit, method: str) -> EcoConfig:
    """Engine configuration for a unit under a Table 1 method column."""
    cfg = _METHOD_CONFIG[method]()
    if spec.force_structural:
        # the paper's SAT flow timed out on these units; route them
        # through the structural path like the original runs did
        cfg = dataclasses.replace(
            cfg, structural_only=True, feasibility_method="qbf"
        )
    return cfg


def run_unit(
    spec: SuiteUnit,
    methods: Sequence[str] = METHODS,
    instance: Optional[EcoInstance] = None,
    collect_telemetry: bool = False,
) -> UnitRow:
    """Run one unit under each method; returns the populated row.

    With ``collect_telemetry`` the process-wide :mod:`repro.obs`
    registry is reset + enabled around each method run and a bench
    telemetry entry (phases, counters, solver breakdown) is stored in
    ``row.telemetry[method]``.  The registry's previous enabled state is
    restored afterwards.
    """
    inst = instance if instance is not None else build_unit(spec)
    row = UnitRow(
        name=spec.name,
        n_pi=inst.impl.num_pis,
        n_po=inst.impl.num_pos,
        gates_impl=inst.impl.num_gates,
        gates_spec=inst.spec.num_gates,
        n_targets=len(inst.targets),
    )
    for method in methods:
        engine = EcoEngine(config_for(spec, method))
        if not collect_telemetry:
            row.results[method] = engine.run(inst)
            continue
        registry = obs.get_registry()
        was_enabled = registry.enabled
        registry.reset()
        registry.enable()
        try:
            result = engine.run(inst)
        finally:
            registry.enabled = was_enabled
        row.results[method] = result
        row.telemetry[method] = unit_telemetry(spec.name, method, result, registry)
        registry.reset()
    return row


def unit_telemetry(
    unit: str,
    method: str,
    result: EcoResult,
    registry: "obs.Registry",
) -> Dict[str, Any]:
    """One bench-baseline unit entry from a run's registry contents."""
    from ..core.pipeline import STAGE_NAMES
    from ..obs.export import SOLVER_COUNTER_FIELDS

    counters = dict(registry.counters)
    phases = {k: round(v, 6) for k, v in registry.phase_times().items()}
    return {
        "unit": unit,
        "method": method,
        "cost": result.cost,
        "gates": result.gate_count,
        "runtime_s": round(result.runtime_seconds, 6),
        "verified": result.verified,
        "phases": phases,
        "passes": {
            name: phases["engine." + name]
            for name in STAGE_NAMES
            if "engine." + name in phases
        },
        "counters": counters,
        "solver": {
            fld: counters.get("sat." + fld, 0) for fld in SOLVER_COUNTER_FIELDS
        },
    }


def telemetry_document(
    rows: Sequence[UnitRow],
    suite: str = "benchgen-20",
    comparison: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Assemble + validate the bench baseline document from unit rows.

    ``comparison`` optionally records before/after aggregate wall clock
    against the previously committed baseline (see
    ``benchmarks/bench_table1.py``).
    """
    from ..obs.export import BENCH_SCHEMA, validate_bench_document

    units = [
        entry
        for row in rows
        for entry in (row.telemetry[m] for m in row.telemetry)
    ]
    doc = {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "generated_by": "benchmarks/bench_table1.py",
        "units": units,
    }
    if comparison is not None:
        doc["comparison"] = dict(comparison)
    validate_bench_document(doc)
    return doc


def run_suite(
    names: Optional[Sequence[str]] = None,
    methods: Sequence[str] = METHODS,
    jobs: int = 1,
    unit_timeout: Optional[float] = None,
    collect_telemetry: bool = False,
) -> List[UnitRow]:
    """Run the (sub)suite; returns one row per unit, in suite order.

    With ``jobs > 1`` (or with ``unit_timeout`` set) units fan out
    across a ``ProcessPoolExecutor``.  ``unit_timeout`` caps how long
    the harness waits for each unit (measured from when its result is
    first awaited, so queue time behind slower units counts); a unit
    that times out or raises degrades gracefully to a placeholder row
    (zero cost/gates, ``verified=False``, method ``"timeout"`` /
    ``"error"``) instead of killing the run, and bumps the
    ``harness.unit_timeout`` / ``harness.unit_error`` counters.
    """
    specs = [u for u in SUITE if names is None or u.name in names]
    if jobs <= 1 and unit_timeout is None:
        return [run_unit(spec, methods, None, collect_telemetry) for spec in specs]
    return _run_suite_parallel(specs, methods, jobs, unit_timeout, collect_telemetry)


def _run_suite_parallel(
    specs: Sequence[SuiteUnit],
    methods: Sequence[str],
    jobs: int,
    unit_timeout: Optional[float],
    collect_telemetry: bool,
) -> List[UnitRow]:
    import concurrent.futures as cf

    rows: List[UnitRow] = []
    degraded = False
    with cf.ProcessPoolExecutor(max_workers=max(1, jobs)) as ex:
        futures = [
            ex.submit(run_unit, spec, tuple(methods), None, collect_telemetry)
            for spec in specs
        ]
        for spec, fut in zip(specs, futures):
            try:
                rows.append(fut.result(timeout=unit_timeout))
            except cf.TimeoutError:
                degraded = True
                obs.inc("harness.unit_timeout")
                fut.cancel()
                rows.append(
                    _degraded_row(
                        spec, methods, "timeout", unit_timeout or 0.0,
                        collect_telemetry,
                    )
                )
            except Exception:
                obs.inc("harness.unit_error")
                rows.append(
                    _degraded_row(spec, methods, "error", 0.0, collect_telemetry)
                )
        if degraded:
            # a timed-out worker may still be computing; every finished
            # future has been collected, so don't let the executor's
            # exit join block on the stuck process
            for proc in getattr(ex, "_processes", {}).values():
                proc.terminate()
            ex.shutdown(wait=False, cancel_futures=True)
    return rows


def _degraded_row(
    spec: SuiteUnit,
    methods: Sequence[str],
    kind: str,
    runtime_s: float,
    collect_telemetry: bool,
) -> UnitRow:
    """Placeholder row for a unit the parallel harness could not finish."""
    from ..obs.export import SOLVER_COUNTER_FIELDS

    row = UnitRow(
        name=spec.name,
        n_pi=0,
        n_po=0,
        gates_impl=0,
        gates_spec=0,
        n_targets=spec.num_targets,
    )
    for method in methods:
        row.results[method] = EcoResult(
            instance_name=spec.name,
            patches=[],
            cost=0,
            gate_count=0,
            verified=False,
            runtime_seconds=float(runtime_s),
            method=kind,
            stats={},
        )
        if collect_telemetry:
            row.telemetry[method] = {
                "unit": spec.name,
                "method": method,
                "cost": 0,
                "gates": 0,
                "runtime_s": float(runtime_s),
                "verified": False,
                "phases": {},
                "passes": {},
                "counters": {f"harness.unit_{kind}": 1},
                "solver": {fld: 0 for fld in SOLVER_COUNTER_FIELDS},
            }
    return row


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (non-positive entries are skipped)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def geomean_ratios(
    rows: Sequence[UnitRow], methods: Sequence[str] = METHODS
) -> Dict[str, Dict[str, float]]:
    """Per-method geomean of (value / baseline value), as in Table 1.

    Returns ``{method: {"cost": r, "gates": r, "time": r}}`` with the
    baseline method normalized to 1.0.
    """
    base = methods[0]
    out: Dict[str, Dict[str, float]] = {}
    for method in methods:
        cost_r = geomean(
            [
                (max(r.cost(method), 1) / max(r.cost(base), 1))
                for r in rows
            ]
        )
        gate_r = geomean(
            [
                (max(r.gates(method), 1) / max(r.gates(base), 1))
                for r in rows
            ]
        )
        time_r = geomean(
            [
                (max(r.runtime(method), 1e-4) / max(r.runtime(base), 1e-4))
                for r in rows
            ]
        )
        out[method] = {"cost": cost_r, "gates": gate_r, "time": time_r}
    return out


def format_table(rows: Sequence[UnitRow], methods: Sequence[str] = METHODS) -> str:
    """Render rows in the layout of Table 1 (plus the geomean row)."""
    headers = ["name", "#PI", "#PO", "#g(F)", "#g(S)", "#tgt"]
    for m in methods:
        headers += [f"cost[{m}]", f"#g[{m}]", f"t[{m}](s)"]
    lines = ["  ".join(f"{h:>14}" for h in headers)]
    for r in rows:
        cells = [
            r.name,
            str(r.n_pi),
            str(r.n_po),
            str(r.gates_impl),
            str(r.gates_spec),
            str(r.n_targets),
        ]
        for m in methods:
            cells += [
                str(r.cost(m)),
                str(r.gates(m)),
                f"{r.runtime(m):.2f}",
            ]
        lines.append("  ".join(f"{c:>14}" for c in cells))
    ratios = geomean_ratios(rows, methods)
    cells = ["Geomean", "", "", "", "", ""]
    for m in methods:
        cells += [
            f"{ratios[m]['cost']:.2f}",
            f"{ratios[m]['gates']:.2f}",
            f"{ratios[m]['time']:.2f}x",
        ]
    lines.append("  ".join(f"{c:>14}" for c in cells))
    return "\n".join(lines)
