"""Real reference circuits shipped inline.

The contest units derived from ISCAS/ITC suites; most are too large to
embed, but the public-domain ISCAS-85 ``c17`` (the canonical six-NAND
example) is included verbatim for tests, examples, and as a sanity
anchor that the flow handles a *real* netlist, not only generated ones.
"""

from __future__ import annotations

from ..io.bench import parse_bench
from ..io.weights import EcoInstance
from ..network.network import Network
from .mutations import corrupt, make_specification
from .weightgen import generate_weights

#: ISCAS-85 c17 in .bench format (Brglez/Fujiwara 1985; public domain).
C17_BENCH = """
# c17 — ISCAS-85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Network:
    """The ISCAS-85 c17 netlist."""
    net = parse_bench(C17_BENCH)
    net.name = "c17"
    return net


def c17_eco_instance(
    num_targets: int = 1, seed: int = 17, weight_type: str = "T1"
) -> EcoInstance:
    """A ready-made ECO instance over c17 (corrupted impl vs golden)."""
    golden = c17()
    impl, targets, _ = corrupt(golden, num_targets, seed=seed)
    return EcoInstance(
        name="c17_eco",
        impl=impl,
        spec=make_specification(golden),
        targets=targets,
        weights=generate_weights(impl, weight_type, seed=seed),
    )
