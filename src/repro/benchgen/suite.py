"""The synthetic 20-unit benchmark suite (Table 1 counterpart).

Each unit mirrors its ICCAD'17 contest namesake in target count and in
relative size/role (scaled down so the pure-Python SAT substrate stays
in seconds); units the paper reports as *structurally solved* (unit6,
unit10, unit11, unit19) carry ``force_structural`` so harnesses can
route them through the Section 3.6 path like the original flow did when
its SAT queries timed out.  Weight distributions T1-T8 rotate across
the suite per Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..io.weights import EcoInstance
from .generators import GENERATORS
from .mutations import corrupt, make_specification
from .weightgen import generate_weights


@dataclass(frozen=True)
class SuiteUnit:
    """Recipe for one synthetic benchmark unit."""

    name: str
    generator: str
    params: Dict[str, object]
    num_targets: int
    weight_type: str
    seed: int
    force_structural: bool = False
    paper_targets: int = 0  # the target count of the contest namesake


SUITE: List[SuiteUnit] = [
    SuiteUnit("unit1", "random_dag", {"n_pi": 3, "n_gates": 6, "n_po": 2}, 1, "T1", 5101, paper_targets=1),
    SuiteUnit("unit2", "random_dag", {"n_pi": 24, "n_gates": 140, "n_po": 10}, 1, "T2", 102, paper_targets=1),
    SuiteUnit("unit3", "random_dag", {"n_pi": 30, "n_gates": 180, "n_po": 12}, 1, "T3", 2103, paper_targets=1),
    SuiteUnit("unit4", "ripple_adder", {"width": 5}, 1, "T4", 104, paper_targets=1),
    SuiteUnit("unit5", "random_dag", {"n_pi": 32, "n_gates": 240, "n_po": 14}, 2, "T5", 105, paper_targets=2),
    SuiteUnit("unit6", "parity_cone", {"width": 28, "taps": 4, "seed": 6}, 2, "T6", 106, force_structural=True, paper_targets=2),
    SuiteUnit("unit7", "alu_slice", {"width": 8}, 1, "T7", 107, paper_targets=1),
    SuiteUnit("unit8", "comparator", {"width": 12}, 1, "T8", 108, paper_targets=1),
    SuiteUnit("unit9", "random_dag", {"n_pi": 26, "n_gates": 170, "n_po": 10}, 4, "T1", 109, paper_targets=4),
    SuiteUnit("unit10", "alu_slice", {"width": 6}, 2, "T2", 110, force_structural=True, paper_targets=2),
    SuiteUnit("unit11", "random_dag", {"n_pi": 18, "n_gates": 130, "n_po": 8}, 8, "T3", 111, force_structural=True, paper_targets=8),
    SuiteUnit("unit12", "random_dag", {"n_pi": 22, "n_gates": 220, "n_po": 6}, 1, "T4", 2112, paper_targets=1),
    SuiteUnit("unit13", "random_dag", {"n_pi": 14, "n_gates": 90, "n_po": 8}, 1, "T5", 2113, paper_targets=1),
    SuiteUnit("unit14", "random_dag", {"n_pi": 14, "n_gates": 110, "n_po": 6}, 12, "T6", 114, paper_targets=12),
    SuiteUnit("unit15", "random_dag", {"n_pi": 26, "n_gates": 150, "n_po": 6}, 1, "T7", 4115, paper_targets=1),
    SuiteUnit("unit16", "ripple_adder", {"width": 12}, 2, "T8", 116, paper_targets=2),
    SuiteUnit("unit17", "random_dag", {"n_pi": 20, "n_gates": 140, "n_po": 8}, 8, "T1", 117, paper_targets=8),
    SuiteUnit("unit18", "random_dag", {"n_pi": 26, "n_gates": 200, "n_po": 10}, 1, "T2", 1118, paper_targets=1),
    SuiteUnit("unit19", "small_multiplier", {"width": 4}, 4, "T3", 119, force_structural=True, paper_targets=4),
    SuiteUnit("unit20", "random_dag", {"n_pi": 40, "n_gates": 280, "n_po": 24}, 4, "T4", 120, paper_targets=4),
]


def build_unit(spec: SuiteUnit) -> EcoInstance:
    """Materialize one unit: golden → (corrupted impl, strashed spec)."""
    gen = GENERATORS[spec.generator]
    params = dict(spec.params)
    if spec.generator == "random_dag":
        params.setdefault("seed", spec.seed)
    golden = gen(name=spec.name, **params)
    impl, targets, _records = corrupt(golden, spec.num_targets, seed=spec.seed)
    spec_net = make_specification(golden, seed=spec.seed)
    weights = generate_weights(impl, spec.weight_type, seed=spec.seed)
    return EcoInstance(
        name=spec.name,
        impl=impl,
        spec=spec_net,
        targets=targets,
        weights=weights,
        default_weight=1,
    )


def build_suite(names: Optional[Sequence[str]] = None) -> List[EcoInstance]:
    """Build the whole suite (or the named subset), in suite order."""
    chosen = [u for u in SUITE if names is None or u.name in names]
    return [build_unit(u) for u in chosen]


def unit_spec(name: str) -> SuiteUnit:
    """Look up a unit recipe by name."""
    for u in SUITE:
        if u.name == name:
            return u
    raise KeyError(f"no suite unit named {name!r}")
