"""Contest weight distributions T1-T8 (paper Section 4.1).

The 2017 contest attached one of eight resource-weight distributions to
each unit, modeling different physical-design concerns:

* **T1** distance-aware A — heavier *near* the PIs (in some regions);
* **T2** distance-aware B — heavier *far from* the PIs;
* **T3** path-aware — nodes on selected PI→PO paths are heavy;
* **T4** locality-aware — selected structural neighborhoods are heavy;
* **T5** = T1 ∘ T3, **T6** = T2 ∘ T3, **T7** = T1 ∘ T4;
* **T8** — highly mixed, undulating with level.

Weights are positive integers over every named implementation signal.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Set

from ..network.network import Network
from ..network.traversal import levels, tfi

BASE_WEIGHT = 10


def generate_weights(net: Network, wtype: str, seed: int = 0) -> Dict[str, int]:
    """Weights for every named node of ``net`` under distribution ``wtype``."""
    rng = random.Random(seed)
    lev = levels(net)
    max_lev = max(lev.values()) if lev else 1
    max_lev = max(max_lev, 1)
    named = [n for n in net.nodes() if n.name]

    if wtype == "T1":
        factor = _region_mask(net, rng, fraction=0.6)
        raw = {
            n.nid: _distance_a(lev[n.nid], max_lev)
            if n.nid in factor
            else BASE_WEIGHT
            for n in named
        }
    elif wtype == "T2":
        factor = _region_mask(net, rng, fraction=0.6)
        raw = {
            n.nid: _distance_b(lev[n.nid], max_lev)
            if n.nid in factor
            else BASE_WEIGHT
            for n in named
        }
    elif wtype == "T3":
        heavy = _path_nodes(net, rng, num_paths=max(2, net.num_pos // 4))
        raw = {
            n.nid: BASE_WEIGHT * 20 if n.nid in heavy else BASE_WEIGHT
            for n in named
        }
    elif wtype == "T4":
        heavy = _locality_nodes(net, rng, num_clusters=3)
        raw = {
            n.nid: BASE_WEIGHT * 15 if n.nid in heavy else BASE_WEIGHT
            for n in named
        }
    elif wtype in ("T5", "T6", "T7"):
        first = "T1" if wtype in ("T5", "T7") else "T2"
        second = "T3" if wtype in ("T5", "T6") else "T4"
        w1 = generate_weights(net, first, seed)
        w2 = generate_weights(net, second, seed + 1)
        return {
            name: max(1, (w1[name] + w2[name]) // 2) for name in w1
        }
    elif wtype == "T8":
        raw = {}
        for n in named:
            wave = 1.0 + 0.9 * math.sin(lev[n.nid] * 1.7 + rng.random() * 0.5)
            noise = rng.uniform(0.5, 3.0)
            raw[n.nid] = int(BASE_WEIGHT * wave * noise) + 1
    else:
        raise ValueError(f"unknown weight type {wtype!r}")

    return {net.node(nid).name: max(1, int(w)) for nid, w in raw.items()}


def _distance_a(level: int, max_level: int) -> int:
    """Heavier close to the PIs."""
    return BASE_WEIGHT + int(BASE_WEIGHT * 10 * (1.0 - level / max_level))


def _distance_b(level: int, max_level: int) -> int:
    """Heavier far from the PIs."""
    return BASE_WEIGHT + int(BASE_WEIGHT * 10 * (level / max_level))


def _region_mask(net: Network, rng: random.Random, fraction: float) -> Set[int]:
    """"Some parts of the circuit": the TFI cones of a PO subset."""
    pos = net.pos
    if not pos:
        return set()
    k = max(1, int(len(pos) * fraction))
    chosen = rng.sample(range(len(pos)), k)
    return tfi(net, [pos[i][1] for i in chosen])


def _path_nodes(net: Network, rng: random.Random, num_paths: int) -> Set[int]:
    """Nodes on randomly walked PO→PI paths."""
    heavy: Set[int] = set()
    pos = net.pos
    if not pos:
        return heavy
    for _ in range(num_paths):
        nid = pos[rng.randrange(len(pos))][1]
        while True:
            heavy.add(nid)
            fanins = net.node(nid).fanins
            if not fanins:
                break
            nid = fanins[rng.randrange(len(fanins))]
    return heavy


def _locality_nodes(
    net: Network, rng: random.Random, num_clusters: int
) -> Set[int]:
    """BFS balls around random seed nodes."""
    ids = [n.nid for n in net.nodes()]
    heavy: Set[int] = set()
    if not ids:
        return heavy
    radius = 3
    for _ in range(num_clusters):
        frontier = {ids[rng.randrange(len(ids))]}
        for _ in range(radius):
            nxt = set()
            for nid in frontier:
                nxt.update(net.node(nid).fanins)
                nxt.update(net.fanouts(nid))
            heavy.update(frontier)
            frontier = nxt - heavy
        heavy.update(frontier)
    return heavy
