"""JSON/CSV exporters and hand-rolled schema validation.

Two document shapes are produced by the repo:

* **profile export** (``repro.obs/v1``) — a registry snapshot: counters,
  histogram summaries, and the span tree.  Emitted by
  ``repro-eco run --profile`` and by :func:`export_json`.
* **bench baseline** (``repro.obs.bench/v1``) — the machine-readable
  Table 1 companion written by ``benchmarks/bench_table1.py``: one entry
  per (unit, method) with cost/gates/runtime, aggregated per-phase wall
  times, and the full counter map (solver counters included).

Validation is hand-rolled (no ``jsonschema`` dependency): each
``validate_*`` function raises :class:`TelemetrySchemaError` naming the
first offending path.
"""

from __future__ import annotations

import io
import json
from typing import Any, List, Mapping, Union

from .core import Registry

#: Schema tag of a profile export.
TELEMETRY_SCHEMA = "repro.obs/v1"

#: Schema tag of the bench baseline document.
BENCH_SCHEMA = "repro.obs.bench/v1"

_NUMBER = (int, float)


class TelemetrySchemaError(ValueError):
    """An export does not conform to its declared telemetry schema."""


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def export_json(registry: Union[Registry, None] = None, indent: int = 2) -> str:
    """Serialize a registry snapshot as schema-tagged JSON."""
    from .core import DEFAULT

    reg = registry if registry is not None else DEFAULT
    doc = reg.snapshot()
    validate_telemetry(doc)
    return json.dumps(doc, indent=indent, sort_keys=True)


def export_csv(registry: Union[Registry, None] = None) -> str:
    """Flatten a registry to CSV rows: ``kind,key,value``.

    Spans are flattened to their slash-joined path with the duration in
    seconds; histograms emit one row per summary field.
    """
    from .core import DEFAULT

    reg = registry if registry is not None else DEFAULT
    buf = io.StringIO()
    buf.write("kind,key,value\n")

    def esc(text: str) -> str:
        if "," in text or '"' in text:
            return '"' + text.replace('"', '""') + '"'
        return text

    for name in sorted(reg.counters):
        buf.write(f"counter,{esc(name)},{reg.counters[name]}\n")
    for name in sorted(reg.histograms):
        hist = reg.histograms[name]
        for k, v in (
            ("count", hist.count),
            ("sum", hist.total),
            ("min", hist.min),
            ("max", hist.max),
        ):
            buf.write(f"histogram,{esc(name + '.' + k)},{v}\n")

    def walk(rec, prefix: str) -> None:
        path = f"{prefix}/{rec.name}" if prefix else rec.name
        buf.write(f"span,{esc(path)},{rec.duration:.6f}\n")
        for child in rec.children:
            walk(child, path)

    for root in reg.roots:
        walk(root, "")
    return buf.getvalue()


def format_spans(registry: Union[Registry, None] = None) -> str:
    """Human-readable indented span tree (for ``repro-eco run --trace``)."""
    from .core import DEFAULT

    reg = registry if registry is not None else DEFAULT
    lines: List[str] = []

    def walk(rec, depth: int) -> None:
        attrs = ""
        if rec.attrs:
            attrs = "  " + " ".join(f"{k}={v}" for k, v in rec.attrs.items())
        lines.append(f"{'  ' * depth}{rec.name:<{32 - 2 * depth}} {rec.duration * 1e3:10.3f} ms{attrs}")
        for child in rec.children:
            walk(child, depth + 1)

    for root in reg.roots:
        walk(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------


def _fail(path: str, message: str) -> None:
    raise TelemetrySchemaError(f"{path}: {message}")


def _require(cond: bool, path: str, message: str) -> None:
    if not cond:
        _fail(path, message)


def _check_span(node: Any, path: str) -> None:
    _require(isinstance(node, Mapping), path, "span must be an object")
    _require(isinstance(node.get("name"), str), path, "span.name must be a string")
    _require(
        isinstance(node.get("duration_s"), _NUMBER),
        path,
        "span.duration_s must be a number",
    )
    attrs = node.get("attrs", {})
    _require(isinstance(attrs, Mapping), path, "span.attrs must be an object")
    children = node.get("children", [])
    _require(isinstance(children, list), path, "span.children must be a list")
    for i, child in enumerate(children):
        _check_span(child, f"{path}.children[{i}]")


def _check_counters(counters: Any, path: str) -> None:
    _require(isinstance(counters, Mapping), path, "must be an object")
    for key, value in counters.items():
        _require(isinstance(key, str), path, "counter keys must be strings")
        _require(
            isinstance(value, _NUMBER),
            f"{path}.{key}",
            "counter values must be numbers",
        )


def validate_telemetry(doc: Any) -> None:
    """Validate a profile export (``repro.obs/v1``); raise on violation."""
    _require(isinstance(doc, Mapping), "$", "document must be an object")
    _require(
        doc.get("schema") == TELEMETRY_SCHEMA,
        "$.schema",
        f"expected {TELEMETRY_SCHEMA!r}, got {doc.get('schema')!r}",
    )
    _check_counters(doc.get("counters"), "$.counters")
    hists = doc.get("histograms")
    _require(isinstance(hists, Mapping), "$.histograms", "must be an object")
    for name, hist in hists.items():
        hp = f"$.histograms.{name}"
        _require(isinstance(hist, Mapping), hp, "must be an object")
        for fld in ("count", "sum"):
            _require(isinstance(hist.get(fld), _NUMBER), hp, f"{fld} must be a number")
        _require(isinstance(hist.get("buckets"), Mapping), hp, "buckets must be an object")
    spans = doc.get("spans")
    _require(isinstance(spans, list), "$.spans", "must be a list")
    for i, root in enumerate(spans):
        _check_span(root, f"$.spans[{i}]")


#: Solver counters every bench unit entry must break out explicitly.
SOLVER_COUNTER_FIELDS = (
    "solves",
    "decisions",
    "propagations",
    "conflicts",
    "restarts",
)


def validate_bench_document(doc: Any) -> None:
    """Validate a bench baseline (``repro.obs.bench/v1``); raise on violation."""
    _require(isinstance(doc, Mapping), "$", "document must be an object")
    _require(
        doc.get("schema") == BENCH_SCHEMA,
        "$.schema",
        f"expected {BENCH_SCHEMA!r}, got {doc.get('schema')!r}",
    )
    _require(isinstance(doc.get("suite"), str), "$.suite", "must be a string")
    comparison = doc.get("comparison")
    if comparison is not None:
        _require(
            isinstance(comparison, Mapping),
            "$.comparison",
            "must be an object",
        )
        for key, value in comparison.items():
            _require(
                isinstance(value, _NUMBER),
                f"$.comparison.{key}",
                "comparison values must be numbers",
            )
    units = doc.get("units")
    _require(isinstance(units, list) and units, "$.units", "must be a non-empty list")
    for i, entry in enumerate(units):
        path = f"$.units[{i}]"
        _require(isinstance(entry, Mapping), path, "must be an object")
        _require(isinstance(entry.get("unit"), str), path, "unit must be a string")
        _require(isinstance(entry.get("method"), str), path, "method must be a string")
        _require(
            isinstance(entry.get("backend"), str) and entry.get("backend"),
            path,
            "backend must be a non-empty string (the SAT backend the "
            "row was measured under; see repro.sat.backend)",
        )
        for fld in ("cost", "gates"):
            _require(isinstance(entry.get(fld), int), path, f"{fld} must be an int")
        _require(
            isinstance(entry.get("runtime_s"), _NUMBER),
            path,
            "runtime_s must be a number",
        )
        _require(
            isinstance(entry.get("verified"), bool), path, "verified must be a bool"
        )
        phases = entry.get("phases")
        _require(isinstance(phases, Mapping), path, "phases must be an object")
        for name, secs in phases.items():
            _require(
                isinstance(secs, _NUMBER),
                f"{path}.phases.{name}",
                "phase times must be numbers",
            )
        passes = entry.get("passes")
        _require(isinstance(passes, Mapping), path, "passes must be an object")
        for name, secs in passes.items():
            _require(
                isinstance(secs, _NUMBER),
                f"{path}.passes.{name}",
                "pass times must be numbers",
            )
            _require(
                phases.get("engine." + name) == secs,
                f"{path}.passes.{name}",
                "pass time must mirror the engine.<pass> phase entry",
            )
        _check_counters(entry.get("counters"), f"{path}.counters")
        solver = entry.get("solver")
        _require(isinstance(solver, Mapping), path, "solver must be an object")
        for fld in SOLVER_COUNTER_FIELDS:
            _require(
                isinstance(solver.get(fld), _NUMBER),
                f"{path}.solver",
                f"{fld} must be a number",
            )
        memo = entry.get("memo")
        if memo is not None:
            _require(isinstance(memo, Mapping), path, "memo must be an object")
            for name, rate in memo.items():
                _require(
                    isinstance(rate, _NUMBER) and 0.0 <= rate <= 1.0,
                    f"{path}.memo.{name}",
                    "memo hit-rates must be numbers in [0, 1]",
                )
    context = doc.get("context")
    if context is not None:
        _require(isinstance(context, Mapping), "$.context", "must be an object")
        jobs = context.get("jobs")
        if jobs is not None:
            _require(
                isinstance(jobs, int) and jobs >= 1,
                "$.context.jobs",
                "must be a positive int",
            )
    if comparison is not None:
        _check_comparison_consistency(comparison, units)


def _close(a: float, b: float, rel: float = 1e-3, abs_tol: float = 1e-3) -> bool:
    return abs(a - b) <= max(abs_tol, rel * max(abs(a), abs(b)))


def _check_comparison_consistency(comparison: Mapping, units: list) -> None:
    """A ``comparison`` block must agree with the document it sits in.

    ``after_total_runtime_s`` is the aggregate of the recorded unit
    rows and ``speedup`` is ``before/after``; a block violating either
    is stale — carried over from an earlier generation of the file —
    and would silently misreport the suite's performance.  Tolerances
    absorb the per-row rounding of ``runtime_s``.
    """
    after = comparison.get("after_total_runtime_s")
    before = comparison.get("before_total_runtime_s")
    speedup = comparison.get("speedup")
    if after is not None:
        total = sum(float(entry.get("runtime_s", 0.0)) for entry in units)
        _require(
            _close(float(after), total),
            "$.comparison.after_total_runtime_s",
            f"stale: recorded {after} but unit rows sum to {total:.6f}",
        )
    if speedup is not None and before is not None and after is not None:
        _require(
            float(after) > 0,
            "$.comparison.after_total_runtime_s",
            "must be positive when speedup is recorded",
        )
        expected = float(before) / float(after)
        _require(
            _close(float(speedup), expected, rel=1e-3, abs_tol=5e-4),
            "$.comparison.speedup",
            f"stale: recorded {speedup} but"
            f" before/after = {expected:.4f}",
        )


def document_keys(doc: Mapping) -> List[str]:
    """Every telemetry key present in a validated export.

    For a profile export: counter names, histogram names, and span names
    (recursively).  For a bench document: the union over unit entries of
    counter names and phase (span) names.  Used by
    :mod:`repro.obs.validate` to diff an export against the
    ``docs/OBSERVABILITY.md`` catalogue.
    """
    keys: set = set()
    if doc.get("schema") == TELEMETRY_SCHEMA:
        keys.update(doc.get("counters", {}))
        keys.update(doc.get("histograms", {}))

        def walk(node: Mapping) -> None:
            keys.add(node["name"])
            for child in node.get("children", []):
                walk(child)

        for root in doc.get("spans", []):
            walk(root)
    elif doc.get("schema") == BENCH_SCHEMA:
        for entry in doc.get("units", []):
            keys.update(entry.get("counters", {}))
            keys.update(entry.get("phases", {}))
            keys.update("engine." + k for k in entry.get("passes", {}))
    else:
        raise TelemetrySchemaError(
            f"$.schema: unknown telemetry schema {doc.get('schema')!r}"
        )
    return sorted(keys)
