"""Observability: tracing spans, counters, histograms, and exporters.

``repro.obs`` is the measurement substrate for the whole engine.  A
process-wide :class:`Registry` collects

* hierarchical **spans** — wall-clock-timed sections (``engine.run`` >
  ``engine.feasibility`` > ...) forming a tree per top-level operation;
* monotonic **counters** — event totals (``sat.conflicts``,
  ``engine.fallback.*``);
* **histograms** — value distributions summarized as
  count/sum/min/max plus power-of-two buckets (``sat.solve_time``).

The registry is *disabled by default* and every instrumentation point
is written so the disabled path costs one attribute load and one branch
(spans become a shared no-op singleton, counter bumps return
immediately).  Enable it around a region of interest::

    from repro import obs

    obs.reset()
    obs.enable()
    engine.run(instance)
    doc = obs.snapshot()                    # plain-dict telemetry
    print(obs.export_json())                # schema-tagged JSON

Every span name and counter key emitted by the repo is catalogued in
``docs/OBSERVABILITY.md``; :mod:`repro.obs.validate` cross-checks an
export against that catalogue (CI runs it on every push).
"""

from .core import (
    DEFAULT,
    Histogram,
    Registry,
    SpanRecord,
    annotate,
    disable,
    enable,
    enabled,
    get_registry,
    inc,
    observe,
    reset,
    snapshot,
    span,
)
from .export import (
    BENCH_SCHEMA,
    TELEMETRY_SCHEMA,
    TelemetrySchemaError,
    export_csv,
    export_json,
    format_spans,
    validate_bench_document,
    validate_telemetry,
)

__all__ = [
    "DEFAULT",
    "Histogram",
    "Registry",
    "SpanRecord",
    "BENCH_SCHEMA",
    "TELEMETRY_SCHEMA",
    "TelemetrySchemaError",
    "annotate",
    "disable",
    "enable",
    "enabled",
    "export_csv",
    "export_json",
    "format_spans",
    "get_registry",
    "inc",
    "observe",
    "reset",
    "snapshot",
    "span",
    "validate_bench_document",
    "validate_telemetry",
]
