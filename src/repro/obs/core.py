"""Registry, spans, counters, and histograms.

Design constraints (see ISSUE 3):

* **near-zero overhead when disabled** — every public entry point
  checks ``self.enabled`` first and bails out; ``span()`` returns a
  shared no-op singleton so the common ``with obs.span(...)`` pattern
  allocates nothing on the disabled path;
* **hierarchical spans** — an explicit stack tracks the open span;
  closing a span attaches its record to the parent (or to the
  registry's root list), so exports preserve nesting;
* **process-wide default** — a module-level :data:`DEFAULT` registry
  plus free functions, mirroring the ``logging`` module's shape.  Code
  under test can still construct private registries.

The engine is single-threaded; no locking is attempted.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

Number = Union[int, float]


@dataclass
class SpanRecord:
    """One completed (or still-open) traced section."""

    name: str
    start: float
    duration: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def walk(self):
        """Yield this record and every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()


class Histogram:
    """Streaming summary: count/sum/min/max plus power-of-two buckets.

    Bucket ``e`` counts observations ``v`` with ``2**(e-1) < v <= 2**e``
    (``frexp`` exponent); zero and negative values land in the ``None``
    bucket key ``"zero"``.  Good enough to see solve-time and DB-size
    distributions without storing samples.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[str, int] = {}

    def observe(self, value: Number) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        key = "zero" if v <= 0.0 else str(math.frexp(v)[1])
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self.buckets),
        }


class _Span:
    """Context manager recording one :class:`SpanRecord`."""

    __slots__ = ("_registry", "record")

    def __init__(self, registry: "Registry", name: str, attrs: Dict[str, Any]) -> None:
        self._registry = registry
        self.record = SpanRecord(name=name, start=0.0, attrs=attrs)

    def annotate(self, key: str, value: Any) -> None:
        self.record.attrs[key] = value

    def __enter__(self) -> "_Span":
        self._registry._stack.append(self.record)
        self.record.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        rec = self.record
        rec.duration = time.perf_counter() - rec.start
        stack = self._registry._stack
        # tolerate a reset() that happened inside the span
        if stack and stack[-1] is rec:
            stack.pop()
        if exc_type is not None:
            rec.attrs["error"] = exc_type.__name__
        if stack:
            stack[-1].children.append(rec)
        else:
            self._registry.roots.append(rec)


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()

    def annotate(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Registry:
    """Collects spans, counters, and histograms for one process."""

    __slots__ = ("enabled", "counters", "histograms", "roots", "_stack")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Dict[str, Number] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.roots: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []

    # -- lifecycle ------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected data (the enabled flag is kept)."""
        self.counters = {}
        self.histograms = {}
        self.roots = []
        self._stack = []

    # -- instruments ----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a traced section; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def inc(self, name: str, delta: Number = 1) -> None:
        """Bump a monotonic counter (created at 0 on first touch)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    def observe(self, name: str, value: Number) -> None:
        """Record one histogram observation."""
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def annotate(self, key: str, value: Any) -> None:
        """Attach an attribute to the innermost open span (if any)."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].attrs[key] = value

    # -- queries --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of everything collected (schema-tagged)."""
        return {
            "schema": "repro.obs/v1",
            "counters": dict(self.counters),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
            "spans": [r.to_dict() for r in self.roots],
        }

    def phase_times(self) -> Dict[str, float]:
        """Total duration per span name, aggregated over the whole tree."""
        out: Dict[str, float] = {}
        for root in self.roots:
            for rec in root.walk():
                out[rec.name] = out.get(rec.name, 0.0) + rec.duration
        return out


#: The process-wide default registry (disabled until :func:`enable`).
DEFAULT = Registry()


def get_registry() -> Registry:
    return DEFAULT


def enable() -> None:
    DEFAULT.enable()


def disable() -> None:
    DEFAULT.disable()


def enabled() -> bool:
    return DEFAULT.enabled


def reset() -> None:
    DEFAULT.reset()


def span(name: str, **attrs: Any):
    return DEFAULT.span(name, **attrs)


def inc(name: str, delta: Number = 1) -> None:
    DEFAULT.inc(name, delta)


def observe(name: str, value: Number) -> None:
    DEFAULT.observe(name, value)


def annotate(key: str, value: Any) -> None:
    DEFAULT.annotate(key, value)


def snapshot() -> Dict[str, Any]:
    return DEFAULT.snapshot()
