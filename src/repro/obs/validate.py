"""Cross-check a telemetry export against ``docs/OBSERVABILITY.md``.

The observability catalogue documents every span name and counter key
in Markdown tables whose first column is the backticked key and whose
last column states the key's *presence* contract:

* ``always`` — the key must appear in every engine-run export; its
  absence fails the check (CI runs this on the bench subset);
* ``conditional`` — emitted only under specific configurations; its
  absence is fine.

Conversely, an exported key that the catalogue does not document at all
is reported as an error: new instrumentation must be documented.

Usage::

    python -m repro.obs.validate BENCH_table1.json [--docs docs/OBSERVABILITY.md]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Mapping, Tuple

from .export import (
    BENCH_SCHEMA,
    TELEMETRY_SCHEMA,
    document_keys,
    validate_bench_document,
    validate_telemetry,
)

#: table row: | `key` | kind | ... | always/conditional |
_ROW_RE = re.compile(
    r"^\|\s*`(?P<key>[^`]+)`\s*\|(?P<middle>.*)\|\s*(?P<presence>always|conditional)\s*\|\s*$"
)


def parse_catalogue(markdown: str) -> Dict[str, str]:
    """Extract ``{key: presence}`` from the catalogue's tables.

    A key ending in ``.*`` or ``*`` is a prefix pattern (e.g.
    ``engine.fallback.*``) matching any exported key with that prefix.
    """
    out: Dict[str, str] = {}
    for line in markdown.splitlines():
        m = _ROW_RE.match(line.strip())
        if m:
            out[m.group("key")] = m.group("presence")
    return out


def _matches(key: str, pattern: str) -> bool:
    if pattern.endswith("*"):
        return key.startswith(pattern[:-1])
    return key == pattern


def check_export(
    doc: Mapping, catalogue: Dict[str, str]
) -> Tuple[List[str], List[str]]:
    """Diff an export against the catalogue.

    Returns ``(missing, undocumented)``: ``always`` keys absent from the
    export, and exported keys no catalogue row covers.
    """
    exported = document_keys(doc)
    missing = [
        key
        for key, presence in sorted(catalogue.items())
        if presence == "always"
        and not key.endswith("*")
        and key not in exported
    ]
    undocumented = [
        key
        for key in exported
        if not any(_matches(key, pattern) for pattern in catalogue)
    ]
    return missing, undocumented


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="schema-validate a telemetry export and diff its keys "
        "against the docs/OBSERVABILITY.md catalogue",
    )
    parser.add_argument("export", help="telemetry JSON file")
    parser.add_argument(
        "--docs",
        default="docs/OBSERVABILITY.md",
        help="catalogue path (default: docs/OBSERVABILITY.md)",
    )
    args = parser.parse_args(argv)

    with open(args.export, "r", encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema == BENCH_SCHEMA:
        validate_bench_document(doc)
    elif schema == TELEMETRY_SCHEMA:
        validate_telemetry(doc)
    else:
        print(f"error: unknown telemetry schema {schema!r}", file=sys.stderr)
        return 2
    print(f"{args.export}: schema {schema} OK")

    with open(args.docs, "r", encoding="utf-8") as f:
        catalogue = parse_catalogue(f.read())
    if not catalogue:
        print(f"error: no catalogue rows found in {args.docs}", file=sys.stderr)
        return 2
    missing, undocumented = check_export(doc, catalogue)
    for key in missing:
        print(f"MISSING   {key}  (documented 'always' but absent from export)")
    for key in undocumented:
        print(f"UNDOCUMENTED  {key}  (exported but not in {args.docs})")
    if missing or undocumented:
        return 1
    print(
        f"{len(catalogue)} catalogued keys checked against "
        f"{len(document_keys(doc))} exported keys: OK"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
