"""Dinic max-flow and minimum node cuts.

``CEGAR_min`` (Section 3.6.3) re-expresses a structural patch on a
minimum-weight cut of signals that have functional equivalents in the
implementation.  Node capacities are handled with the standard
node-splitting construction; the min cut is recovered from the residual
graph reachability after the max flow saturates.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set, Tuple

INF = float("inf")


class FlowNetwork:
    """A directed flow network with Dinic's algorithm."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._names: List[Hashable] = []
        # adjacency: per node, list of edge ids; edges stored as flat arrays
        self._adj: List[List[int]] = []
        self._to: List[int] = []
        self._cap: List[float] = []

    def _node(self, name: Hashable) -> int:
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._names)
            self._index[name] = idx
            self._names.append(name)
            self._adj.append([])
        return idx

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> None:
        """Add a directed edge with the given capacity (reverse cap 0)."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        ui, vi = self._node(u), self._node(v)
        self._adj[ui].append(len(self._to))
        self._to.append(vi)
        self._cap.append(capacity)
        self._adj[vi].append(len(self._to))
        self._to.append(ui)
        self._cap.append(0.0)

    def max_flow(self, source: Hashable, sink: Hashable) -> float:
        """Run Dinic; returns the max-flow value (capacities mutate)."""
        s, t = self._node(source), self._node(sink)
        flow = 0.0
        while True:
            level = self._bfs_levels(s, t)
            if level[t] < 0:
                return flow
            it = [0] * len(self._adj)
            while True:
                pushed = self._dfs(s, t, INF, level, it)
                if pushed <= 0:
                    break
                flow += pushed

    def _bfs_levels(self, s: int, t: int) -> List[int]:
        level = [-1] * len(self._adj)
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in self._adj[u]:
                v = self._to[eid]
                if self._cap[eid] > 1e-12 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level

    def _dfs(
        self, s: int, t: int, pushed: float, level: List[int], it: List[int]
    ) -> float:
        """One augmenting path in the level graph (iterative DFS)."""
        path: List[int] = []  # edge ids along the current path
        u = s
        while True:
            if u == t:
                bottleneck = min(self._cap[eid] for eid in path)
                for eid in path:
                    self._cap[eid] -= bottleneck
                    self._cap[eid ^ 1] += bottleneck
                return bottleneck
            advanced = False
            while it[u] < len(self._adj[u]):
                eid = self._adj[u][it[u]]
                v = self._to[eid]
                if self._cap[eid] > 1e-12 and level[v] == level[u] + 1:
                    path.append(eid)
                    u = v
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            if not path:
                return 0.0
            # dead end: retreat and advance the parent's iterator
            level[u] = -1  # prune this vertex for the rest of the phase
            eid = path.pop()
            u = self._to[eid ^ 1]
            it[u] += 1

    def min_cut_reachable(self, source: Hashable) -> Set[Hashable]:
        """Nodes reachable from the source in the residual graph.

        Call after :meth:`max_flow`; edges from this set to its
        complement form a minimum cut.
        """
        s = self._node(source)
        seen = {s}
        stack = [s]
        while stack:
            u = stack.pop()
            for eid in self._adj[u]:
                v = self._to[eid]
                if self._cap[eid] > 1e-12 and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return {self._names[i] for i in seen}


def min_node_cut(
    edges: Iterable[Tuple[Hashable, Hashable]],
    sources: Iterable[Hashable],
    sink: Hashable,
    node_weights: Dict[Hashable, float],
) -> Tuple[float, Set[Hashable]]:
    """Minimum-weight node cut separating ``sources`` from ``sink``.

    Every node ``v`` with a finite weight may be cut at cost
    ``node_weights[v]``; nodes missing from the map are uncuttable
    (infinite capacity).  Returns ``(cut_weight, cut_nodes)``.

    Node splitting: each node v becomes v_in → v_out with the node's
    capacity; structural edges (u, v) become u_out → v_in with effective
    infinity.  When every source-sink path crosses an uncuttable node,
    the returned weight is ``float('inf')`` and the cut set is empty.
    """
    net = FlowNetwork()
    nodes: Set[Hashable] = set()
    edge_list = list(edges)
    for u, v in edge_list:
        nodes.add(u)
        nodes.add(v)
    sources = list(sources)
    nodes.update(sources)
    nodes.add(sink)
    # effective infinity: strictly above any all-finite cut, and finite
    # so residual arithmetic stays exact
    finite_total = sum(
        w for w in node_weights.values() if w != INF and w == w
    )
    big = finite_total + 1.0
    for v in nodes:
        cap = node_weights.get(v, INF)
        if cap == INF or cap != cap:
            cap = big
        net.add_edge(("in", v), ("out", v), cap)
    for u, v in edge_list:
        net.add_edge(("out", u), ("in", v), big)
    super_source = ("super", "source")
    for srt in sources:
        net.add_edge(super_source, ("in", srt), big)
    flow = net.max_flow(super_source, ("out", sink))
    if flow >= big:
        return INF, set()
    reach = net.min_cut_reachable(super_source)
    cut = {
        v
        for v in nodes
        if ("in", v) in reach and ("out", v) not in reach
    }
    return flow, cut
