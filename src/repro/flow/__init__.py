"""Max-flow / min-cut substrate used by CEGAR_min."""

from .maxflow import FlowNetwork, min_node_cut

__all__ = ["FlowNetwork", "min_node_cut"]
