"""Candidate-divisor collection with cost annotation.

Structural pruning (Section 3.3) yields the raw candidate list; this
module attaches the contest weights, orders candidates by preference
(cheapest first), and optionally caps the candidate count — window PIs
are always retained because they alone guarantee a patch exists whenever
the step is feasible (Section 2.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..network.network import Network
from ..network.traversal import levels
from ..network.window import Window, compute_window
from .pipeline import Pass, PassOutcome, contract

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


@dataclass
class DivisorSet:
    """Ordered candidate divisors for one ECO instance.

    Attributes:
        ids: implementation node ids, cheapest first.
        cost: node id → resource cost.
        names: node id → signal name.
    """

    ids: List[int]
    cost: Dict[int, int]
    names: Dict[int, str]

    def cost_of(self, nid: int) -> int:
        return self.cost[nid]

    def total_cost(self, nids: Sequence[int]) -> int:
        """Sum of costs over *distinct* divisors (contest metric)."""
        return sum(self.cost[n] for n in set(nids))


def collect_divisors(
    impl: Network,
    window: Window,
    weights: Dict[str, int],
    default_weight: int = 1,
    max_divisors: Optional[int] = None,
) -> DivisorSet:
    """Build the cost-ordered divisor set from a pruning window.

    ``weights`` maps signal names to costs (unlisted names get
    ``default_weight``).  ``max_divisors`` caps the number of *internal*
    candidates (cheapest kept); window PIs always survive the cap.
    """
    pi_set = set(window.impl_window_pis)
    lev = levels(impl)
    cost: Dict[int, int] = {}
    names: Dict[int, str] = {}
    internal: List[int] = []
    pis: List[int] = []
    for nid in window.divisors:
        node = impl.node(nid)
        name = node.name or f"n{nid}"
        cost[nid] = weights.get(name, default_weight)
        names[nid] = name
        if nid in pi_set:
            pis.append(nid)
        else:
            internal.append(nid)
    # preference on cost ties: deeper signals first — they encode more
    # logic per unit cost, which keeps the enumerated patches small
    def order_key(n: int):
        return (cost[n], -lev[n], n)

    internal.sort(key=order_key)
    if max_divisors is not None and len(internal) > max_divisors:
        internal = internal[:max_divisors]
    ids = sorted(pis + internal, key=order_key)
    return DivisorSet(ids=ids, cost=cost, names=names)


class WindowPass(Pass):
    """Structural pruning window over the targets' fanout (Section 3.3)."""

    name = "window"
    contract = contract(
        reads=("instance", "base_impl", "spec"),
        writes=("target_ids", "window"),
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        ctx.target_ids = [
            ctx.base_impl.node_by_name(t) for t in ctx.instance.targets
        ]
        ctx.window = compute_window(ctx.base_impl, ctx.spec, ctx.target_ids)
        ctx.stats.window_pos = len(ctx.window.po_indices)
        return PassOutcome(detail=f"{len(ctx.window.po_indices)} POs")


class DivisorsPass(Pass):
    """Cost-annotated candidate-divisor collection (Sections 3.3, 2.5.2)."""

    name = "divisors"
    contract = contract(
        reads=("instance", "base_impl", "window"),
        writes=("divisors",),
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        ctx.divisors = collect_divisors(
            ctx.base_impl,
            ctx.window,
            ctx.instance.weights,
            ctx.instance.default_weight,
            ctx.config.max_divisors,
        )
        ctx.stats.divisor_candidates = len(ctx.divisors.ids)
        return PassOutcome(detail=f"{len(ctx.divisors.ids)} candidates")
