"""Candidate-divisor collection with cost annotation.

Structural pruning (Section 3.3) yields the raw candidate list; this
module attaches the contest weights, orders candidates by preference
(cheapest first), and optionally caps the candidate count — window PIs
are always retained because they alone guarantee a patch exists whenever
the step is feasible (Section 2.5.2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..network.network import Network
from ..network.traversal import levels
from ..network.window import Window, compute_window
from .pipeline import Pass, PassOutcome, contract

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


@dataclass
class DivisorSet:
    """Ordered candidate divisors for one ECO instance.

    Attributes:
        ids: implementation node ids, cheapest first.
        cost: node id → resource cost.
        names: node id → signal name.
    """

    ids: List[int]
    cost: Dict[int, int]
    names: Dict[int, str]

    def cost_of(self, nid: int) -> int:
        return self.cost[nid]

    def total_cost(self, nids: Sequence[int]) -> int:
        """Sum of costs over *distinct* divisors (contest metric)."""
        return sum(self.cost[n] for n in set(nids))


def collect_divisors(
    impl: Network,
    window: Window,
    weights: Dict[str, int],
    default_weight: int = 1,
    max_divisors: Optional[int] = None,
) -> DivisorSet:
    """Build the cost-ordered divisor set from a pruning window.

    ``weights`` maps signal names to costs (unlisted names get
    ``default_weight``).  ``max_divisors`` caps the number of *internal*
    candidates (cheapest kept); window PIs always survive the cap.
    """
    pi_set = set(window.impl_window_pis)
    lev = levels(impl)
    cost: Dict[int, int] = {}
    names: Dict[int, str] = {}
    internal: List[int] = []
    pis: List[int] = []
    for nid in window.divisors:
        node = impl.node(nid)
        name = node.name or f"n{nid}"
        cost[nid] = weights.get(name, default_weight)
        names[nid] = name
        if nid in pi_set:
            pis.append(nid)
        else:
            internal.append(nid)
    # preference on cost ties: deeper signals first — they encode more
    # logic per unit cost, which keeps the enumerated patches small
    def order_key(n: int):
        return (cost[n], -lev[n], n)

    internal.sort(key=order_key)
    if max_divisors is not None and len(internal) > max_divisors:
        internal = internal[:max_divisors]
    ids = sorted(pis + internal, key=order_key)
    return DivisorSet(ids=ids, cost=cost, names=names)


# ---------------------------------------------------------------------------
# extraction memo
# ---------------------------------------------------------------------------
#
# The prologue's window/divisor extraction is pure in (impl, spec,
# targets, weights): the benchmark suite runs every unit once per
# preset, and retries/chaos re-runs repeat the same instance — each
# repetition used to pay the full structural walk again.  Both results
# carry raw node ids, so a hit is only sound when the id spaces are
# interchangeable: keys use Network.structural_hash() and the memo is
# bypassed unless both netlists have a canonical id layout (always true
# for clone() outputs; see Network.has_canonical_layout).  Bounded LRU,
# process-local; copies are returned so callers cannot poison entries.

_MEMO_CAPACITY = 64
_WindowKey = Tuple[int, int, Tuple[str, ...]]
_DivisorKey = Tuple[
    int, int, Tuple[str, ...], Tuple[Tuple[str, int], ...], int, Optional[int]
]
_window_memo: "OrderedDict[_WindowKey, Window]" = OrderedDict()
_divisor_memo: "OrderedDict[_DivisorKey, DivisorSet]" = OrderedDict()


def clear_extraction_memo() -> None:
    """Drop every memoized window/divisor extraction (tests, tooling)."""
    _window_memo.clear()
    _divisor_memo.clear()


def set_extraction_memo_capacity(capacity: int) -> int:
    """Resize both extraction memos (``EcoConfig.memo_capacity``).

    Returns the previous capacity; shrinking evicts LRU entries
    immediately.  Capacities below 1 are clamped to 1.
    """
    global _MEMO_CAPACITY
    previous = _MEMO_CAPACITY
    _MEMO_CAPACITY = max(1, capacity)
    for memo in (_window_memo, _divisor_memo):
        while len(memo) > _MEMO_CAPACITY:
            memo.popitem(last=False)
    return previous


def extraction_memo_capacity() -> int:
    """The extraction memos' current per-memo entry bound."""
    return _MEMO_CAPACITY


def _memo_lookup(memo: "OrderedDict", key: object) -> Optional[object]:
    hit = memo.get(key)
    if hit is not None:
        memo.move_to_end(key)  # LRU touch
    return hit


def _memo_store(memo: "OrderedDict", key: object, value: object) -> None:
    memo[key] = value
    while len(memo) > _MEMO_CAPACITY:
        memo.popitem(last=False)


def _copy_window(w: Window) -> Window:
    return replace(
        w,
        po_indices=list(w.po_indices),
        impl_window_pis=list(w.impl_window_pis),
        spec_window_pis=list(w.spec_window_pis),
        divisors=list(w.divisors),
        target_tfo=set(w.target_tfo),
    )


def _copy_divisor_set(d: DivisorSet) -> DivisorSet:
    return DivisorSet(ids=list(d.ids), cost=dict(d.cost), names=dict(d.names))


def _memo_usable(ctx: "EcoContext") -> bool:
    return bool(
        getattr(ctx.config, "memoize_extraction", False)
        and ctx.base_impl.has_canonical_layout()
        and ctx.spec.has_canonical_layout()
    )


class WindowPass(Pass):
    """Structural pruning window over the targets' fanout (Section 3.3)."""

    name = "window"
    contract = contract(
        reads=("instance", "base_impl", "spec"),
        writes=("target_ids", "window"),
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        ctx.target_ids = [
            ctx.base_impl.node_by_name(t) for t in ctx.instance.targets
        ]
        memoize = _memo_usable(ctx)
        if memoize:
            key: _WindowKey = (
                ctx.base_impl.structural_hash(),
                ctx.spec.structural_hash(),
                tuple(ctx.instance.targets),
            )
            hit = _memo_lookup(_window_memo, key)
            if hit is not None:
                obs.inc("engine.window_memo_hit")
                ctx.window = _copy_window(hit)  # type: ignore[arg-type]
                ctx.stats.window_pos = len(ctx.window.po_indices)
                return PassOutcome(
                    detail=f"{len(ctx.window.po_indices)} POs (memo)"
                )
            obs.inc("engine.window_memo_miss")
        ctx.window = compute_window(ctx.base_impl, ctx.spec, ctx.target_ids)
        if memoize:
            _memo_store(_window_memo, key, _copy_window(ctx.window))
        ctx.stats.window_pos = len(ctx.window.po_indices)
        return PassOutcome(detail=f"{len(ctx.window.po_indices)} POs")


class DivisorsPass(Pass):
    """Cost-annotated candidate-divisor collection (Sections 3.3, 2.5.2)."""

    name = "divisors"
    contract = contract(
        # spec feeds the memo key only (hash lookup, never traversed)
        reads=("instance", "base_impl", "spec", "window"),
        writes=("divisors",),
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        memoize = _memo_usable(ctx)
        if memoize:
            key: _DivisorKey = (
                ctx.base_impl.structural_hash(),
                ctx.spec.structural_hash(),
                tuple(ctx.instance.targets),
                tuple(sorted(ctx.instance.weights.items())),
                ctx.instance.default_weight,
                ctx.config.max_divisors,
            )
            hit = _memo_lookup(_divisor_memo, key)
            if hit is not None:
                obs.inc("engine.divisors_memo_hit")
                ctx.divisors = _copy_divisor_set(hit)  # type: ignore[arg-type]
                ctx.stats.divisor_candidates = len(ctx.divisors.ids)
                return PassOutcome(
                    detail=f"{len(ctx.divisors.ids)} candidates (memo)"
                )
            obs.inc("engine.divisors_memo_miss")
        ctx.divisors = collect_divisors(
            ctx.base_impl,
            ctx.window,
            ctx.instance.weights,
            ctx.instance.default_weight,
            ctx.config.max_divisors,
        )
        if memoize:
            _memo_store(_divisor_memo, key, _copy_divisor_set(ctx.divisors))
        ctx.stats.divisor_candidates = len(ctx.divisors.ids)
        return PassOutcome(detail=f"{len(ctx.divisors.ids)} candidates")
