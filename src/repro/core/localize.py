"""Target-point localization (the paper's Section 5 future work).

The engine assumes the target nodes are given; the paper's concluding
future work is "an integrated ECO flow ... which detects a set of
target nodes, followed by applying the proposed patch computation."
This module implements that detection for combinational netlists:

1. **Simulation ranking** — random patterns where the implementation
   and specification disagree are replayed; a node is *suspicious* when
   flipping its value (while keeping every other node's function)
   repairs all observed mismatched outputs for many failing patterns.
   This is the classic single-fix sensitization test, done bit-parallel.
2. **Exact confirmation** — the top-ranked candidates are confirmed
   with the Section 3.2 feasibility check (``∃x ∀n M(n, x)`` UNSAT);
   only provably sufficient target sets are returned.
3. **Multi-target search** — when no single node suffices, greedy
   set growth over the ranked candidates is used, each step confirmed
   by the exact check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.network import Network
from ..network.node import eval_gate
from ..network.simulate import Simulator
from ..network.traversal import tfo
from .feasibility import check_feasibility
from .miter import build_miter


@dataclass
class LocalizationResult:
    """Outcome of target localization.

    Attributes:
        targets: a confirmed-sufficient set of target node names
            (empty when the netlists are already equivalent).
        ranked: candidate names with suspicion scores, best first.
        checks: number of exact feasibility checks spent.
    """

    targets: List[str]
    ranked: List[Tuple[str, float]] = field(default_factory=list)
    checks: int = 0


def _failing_patterns(
    impl: Network, spec: Network, sim_patterns: int, seed: int
) -> Tuple[Simulator, Dict[int, int], int]:
    """Simulate both netlists on shared patterns; returns the failing mask.

    The returned simulator is bound to ``impl``; ``spec_values`` maps the
    spec's nodes; the mask has a 1 for every pattern with a PO mismatch.
    """
    sim = Simulator(impl, nbits=sim_patterns, seed=seed)
    spec_inputs = {
        pi: sim.pi_patterns[impl.node_by_name(spec.node(pi).name)]
        for pi in spec.pis
    }
    spec_values = spec.evaluate(spec_inputs, sim.mask)
    impl_pos = dict(impl.pos)
    spec_pos = dict(spec.pos)
    fail = 0
    for name, impl_nid in impl_pos.items():
        fail |= sim.values()[impl_nid] ^ spec_values[spec_pos[name]]
    return sim, spec_values, fail & sim.mask


def rank_single_fix_candidates(
    impl: Network,
    spec: Network,
    sim_patterns: int = 256,
    seed: int = 2018,
) -> List[Tuple[str, float]]:
    """Rank implementation nodes by single-fix repair power.

    For each failing pattern, a candidate scores when flipping its value
    corrects *every* mismatched output of that pattern without breaking
    a correct one.  Scores are normalized to [0, 1] over the failing
    patterns; nodes that cannot reach any failing output score 0.
    """
    sim, spec_values, fail = _failing_patterns(impl, spec, sim_patterns, seed)
    if fail == 0:
        return []
    mask = sim.mask
    impl_values = sim.values()
    impl_pos = dict(impl.pos)
    spec_pos = dict(spec.pos)
    fail_count = bin(fail).count("1")

    from ..network.traversal import levels

    lev = levels(impl)
    scores: List[Tuple[str, float]] = []
    level_of: Dict[str, int] = {}
    for node in impl.topo_order():
        if not node.is_gate or not node.name:
            continue
        flipped = _propagate_flip(impl, node.nid, impl_values, mask)
        repaired = fail
        broken = 0
        for name, impl_nid in impl_pos.items():
            new_out = flipped.get(impl_nid, impl_values[impl_nid])
            diff = new_out ^ spec_values[spec_pos[name]]
            repaired &= ~diff & mask
            broken |= diff & ~fail & mask
        good = repaired & ~broken & mask
        score = bin(good & fail).count("1") / fail_count
        if score > 0:
            scores.append((node.name, score))
            level_of[node.name] = lev[node.nid]
    # ties: prefer shallow nodes — a flip-equivalent dominator chain
    # always includes the actual culprit at its lowest level
    scores.sort(key=lambda kv: (-kv[1], level_of[kv[0]], kv[0]))
    return scores


def _propagate_flip(
    impl: Network, nid: int, base: Dict[int, int], mask: int
) -> Dict[int, int]:
    """Re-simulate the TFO of ``nid`` with its output complemented."""
    cone = tfo(impl, [nid])
    out: Dict[int, int] = {nid: ~base[nid] & mask}
    for node in impl.topo_order():
        if node.nid == nid or node.nid not in cone:
            continue
        ins = [out.get(f, base[f]) for f in node.fanins]
        out[node.nid] = eval_gate(node.gtype, ins, mask)
    return out


def localize_targets(
    impl: Network,
    spec: Network,
    max_targets: int = 4,
    max_checks: int = 32,
    sim_patterns: int = 256,
    seed: int = 2018,
    budget_conflicts: Optional[int] = 200000,
) -> LocalizationResult:
    """Find a provably sufficient target set for an ECO.

    Tries the ranked single-fix candidates first, then grows the set
    greedily.  Raises nothing on failure: an empty ``targets`` with a
    non-empty ``ranked`` list means no set was confirmed within the
    budgets.
    """
    ranked = rank_single_fix_candidates(impl, spec, sim_patterns, seed)
    result = LocalizationResult(targets=[], ranked=ranked)
    if not ranked:
        return result  # already equivalent

    def sufficient(names: Sequence[str]) -> bool:
        result.checks += 1
        ids = [impl.node_by_name(n) for n in names]
        miter = build_miter(impl, spec, ids)
        feas = check_feasibility(
            miter, method="auto", budget_conflicts=budget_conflicts
        )
        return feas.feasible is True

    # single-fix candidates, best first
    for name, _score in ranked[:max_checks]:
        if sufficient([name]):
            result.targets = [name]
            return result

    # greedy growth: start from the best candidate, add the next-ranked
    # candidate outside the current set's TFO region
    chosen: List[str] = [ranked[0][0]]
    for name, _score in ranked[1:]:
        if result.checks >= max_checks or len(chosen) >= max_targets:
            break
        chosen.append(name)
        if sufficient(chosen):
            result.targets = list(chosen)
            return result
    return result
