"""Patch support computation (Section 3.4.1).

The centerpiece is ``minimize_assumptions`` (Algorithm 1): a divide-and-
conquer minimization of an assumption set that keeps a SAT instance
UNSAT, closely related to LEXUNSAT [19].  Applied to cost-ordered
divisor selector literals it returns a *minimal* support whose cost is
locally minimum (no member can be swapped for a cheaper unused one —
enforced exactly by the optional last-gasp pass).

Also provided: the naive one-at-a-time linear minimization (the O(N)
reference the paper's complexity claim is measured against) and the
``analyze_final`` core extraction used by the paper's baseline columns.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..sat.solver import SatBudgetExceeded, Solver
from ..sat.tseitin import add_equality
from ..sat.types import mklit
from .pipeline import EcoEngineError, Pass, PassOutcome, contract
from .quantify import QMITER_PO

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


@dataclass
class SupportStats:
    """Instrumentation shared by the support-minimization routines."""

    sat_calls: int = 0
    conflicts_start: int = 0

    def reset(self) -> None:
        self.sat_calls = 0


class AssumptionMinimizer:
    """Runs Algorithm 1 against a solver and a base assumption set.

    ``base`` assumptions are always asserted; the candidate literals are
    minimized.  The instance must be UNSAT under ``base + candidates``.
    """

    def __init__(
        self,
        solver: Solver,
        base: Sequence[int],
        budget_conflicts: Optional[int] = None,
        stats: Optional[SupportStats] = None,
    ) -> None:
        self.solver = solver
        self.base = list(base)
        self.budget = budget_conflicts
        self.stats = stats if stats is not None else SupportStats()
        self._active: List[int] = []

    def _solve(self, extra: Sequence[int]) -> bool:
        self.stats.sat_calls += 1
        return self.solver.solve(
            self.base + self._active + list(extra),
            budget_conflicts=self.budget,
        )

    def minimize(self, candidates: Sequence[int], check: bool = True) -> List[int]:
        """Return the minimized subset (in final array order).

        The candidate order encodes preference: earlier literals are
        preferred for retention (pass them cost-ascending).  ``check``
        may be disabled when the caller has already established that the
        instance is UNSAT under ``base + candidates``.
        """
        array = list(candidates)
        if check and self._solve(array):
            raise ValueError(
                "instance is SAT under all candidate assumptions; "
                "nothing to minimize"
            )
        size = self._minimize(array)
        return array[:size]

    def _minimize(self, array: List[int]) -> int:
        """Algorithm 1: returns S; array reordered so array[:S] is chosen."""
        if not array:
            return 0
        if len(array) == 1:
            if not self._solve([]):
                return 0  # this assumption is not needed
            return 1
        mid = (len(array) + 1) // 2
        low = array[:mid]
        high = array[mid:]
        # try the lower (preferred) part without the higher part
        if not self._solve(low):
            s_low = self._minimize(low)
            array[:] = low + high
            return s_low
        # find solution for the higher part while assuming the lower part
        self._active.extend(low)
        s_high = self._minimize(high)
        del self._active[len(self._active) - len(low):]
        # find solution for the lower part assuming the kept higher part
        self._active.extend(high[:s_high])
        s_low = self._minimize(low)
        del self._active[len(self._active) - s_high:]
        array[:] = high[:s_high] + low[:s_low] + low[s_low:] + high[s_high:]
        return s_high + s_low


def minimize_assumptions(
    solver: Solver,
    base: Sequence[int],
    candidates: Sequence[int],
    budget_conflicts: Optional[int] = None,
    stats: Optional[SupportStats] = None,
) -> List[int]:
    """Functional wrapper around :class:`AssumptionMinimizer`."""
    return AssumptionMinimizer(solver, base, budget_conflicts, stats).minimize(
        candidates
    )


def minimize_linear(
    solver: Solver,
    base: Sequence[int],
    candidates: Sequence[int],
    budget_conflicts: Optional[int] = None,
    stats: Optional[SupportStats] = None,
) -> List[int]:
    """Naive O(N) minimization: drop candidates one at a time.

    Kept as the complexity reference for benchmark E2; produces a
    minimal set with the same preference order semantics as Algorithm 1.
    """
    stats = stats if stats is not None else SupportStats()
    kept: List[int] = []
    rest = list(candidates)
    for i in range(len(rest)):
        trial = kept + rest[i + 1 :]
        stats.sat_calls += 1
        if solver.solve(list(base) + trial, budget_conflicts=budget_conflicts):
            kept.append(rest[i])  # needed
    return kept


def analyze_final_core(
    solver: Solver,
    base: Sequence[int],
    candidates: Sequence[int],
    budget_conflicts: Optional[int] = None,
    stats: Optional[SupportStats] = None,
) -> List[int]:
    """Support via the solver's final-conflict core (the paper's baseline).

    One SAT call; the returned subset is whatever the proof happened to
    touch — sufficient but in general far from minimal, which is exactly
    the effect Table 1 columns 7-9 quantify.
    """
    stats = stats if stats is not None else SupportStats()
    stats.sat_calls += 1
    if solver.solve(list(base) + list(candidates), budget_conflicts=budget_conflicts):
        raise ValueError("instance is SAT under all candidate assumptions")
    core = solver.core
    return [lit for lit in candidates if lit in core]


def last_gasp_improvement(
    is_feasible: Callable[[Sequence[int]], bool],
    selected: List[int],
    unused: Sequence[int],
    cost_of: Dict[int, int],
    max_swaps: int = 256,
) -> List[int]:
    """Greedy single-swap improvement (end of Section 3.4.1).

    Tries to replace each selected literal with a cheaper unused one
    while the ECO stays feasible.  ``is_feasible(lits)`` must report
    whether the given selector set still admits a patch.
    """
    current = list(selected)
    swaps = 0
    improved = True
    while improved and swaps < max_swaps:
        improved = False
        order = sorted(range(len(current)), key=lambda i: -cost_of[current[i]])
        for i in order:
            victim = current[i]
            cheaper = [
                u
                for u in unused
                if u not in current and cost_of[u] < cost_of[victim]
            ]
            cheaper.sort(key=lambda u: cost_of[u])
            for candidate in cheaper:
                if swaps >= max_swaps:
                    return current
                trial = current[:i] + current[i + 1 :] + [candidate]
                swaps += 1
                if is_feasible(trial):
                    current = trial
                    improved = True
                    break
            if improved:
                break
    return current


# ---------------------------------------------------------------------------
# support-results memo
# ---------------------------------------------------------------------------
#
# The minimized support for one target is pure in (quantified-miter
# structure, cost-ordered divisor list, method knobs): batch runs and
# retries repeat structurally identical queries, each paying the full
# minimization solve loop again.  Same key contract as the extraction
# and template memos (``structural_hash`` + canonical layout), but this
# memo is *opt-in* (``EcoConfig.memoize_support``): a hit skips the
# initial UNSAT-establishing solve and the minimization, which leaves
# the shared per-target solver with a different learned-clause state —
# downstream solver counters (and potentially cube enumeration order)
# diverge from a cold run.  The selector plumbing and the
# ``feasible_ids`` oracle are still built on a hit; only the solves are
# skipped.

_SUPPORT_MEMO_CAPACITY = 64
_SupportKey = Tuple[int, Tuple[int, ...], Tuple[int, ...], str, bool]
_support_memo: "OrderedDict[_SupportKey, List[int]]" = OrderedDict()


def clear_support_memo() -> None:
    """Drop every memoized support result (tests, tooling)."""
    _support_memo.clear()


def set_support_memo_capacity(capacity: int) -> int:
    """Resize the bounded support memo (``EcoConfig.memo_capacity``).

    Returns the previous capacity; shrinking evicts LRU entries
    immediately.  Capacities below 1 are clamped to 1.
    """
    global _SUPPORT_MEMO_CAPACITY
    previous = _SUPPORT_MEMO_CAPACITY
    _SUPPORT_MEMO_CAPACITY = max(1, capacity)
    while len(_support_memo) > _SUPPORT_MEMO_CAPACITY:
        _support_memo.popitem(last=False)
    return previous


def support_memo_capacity() -> int:
    """The support memo's current entry bound."""
    return _SUPPORT_MEMO_CAPACITY


class SupportPass(Pass):
    """Expression (2) + support minimization for the current target.

    Adds selector-guarded divisor equalities over the two quantified-
    miter stamps of the target's shared solver, establishes that the
    full divisor set admits a patch (UNSAT), then minimizes the selector
    assumptions with the configured method (``analyze_final`` cores or
    Algorithm 1, optionally followed by last-gasp swaps).  Leaves the
    chosen divisor ids in ``ctx.target.support_ids`` — in algorithm
    output order, *not* cost-sorted; downstream passes sort — and the
    subset-feasibility oracle in ``ctx.target.feasible_ids`` for the
    ``satprune`` refinement pass.
    """

    name = "support"
    contract = contract(
        reads=("target.qm", "target.divisors", "target.sat"),
        writes=("target.support_ids",),
        # the oracle has a consumer only when satprune is configured
        writes_optional=("target.feasible_ids",),
        uses_solver=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        cfg = ctx.config
        tgt = ctx.target
        assert tgt is not None and tgt.qm is not None and tgt.sat is not None
        qm, divisors, sat = tgt.qm, tgt.divisors, tgt.sat
        solver, vars1, vars2 = sat.solver, sat.vars1, sat.vars2
        budget = ctx.budget

        po_node = dict(qm.net.pos)[QMITER_PO]
        m1, m2 = vars1[po_node], vars2[po_node]
        n1, n2 = vars1[qm.target_pi], vars2[qm.target_pi]
        selectors: Dict[int, int] = {}
        for nid in divisors.ids:
            dnode = qm.divisor_nodes[nid]
            s = solver.new_var()
            selectors[nid] = s
            add_equality(solver, vars1[dnode], vars2[dnode], mklit(s))

        base = [mklit(n1, True), mklit(m1), mklit(n2), mklit(m2)]
        ordered = list(divisors.ids)  # already cost-ascending
        all_lits = [mklit(selectors[n]) for n in ordered]
        lit_of = {nid: mklit(selectors[nid]) for nid in ordered}
        id_of = {lit: nid for nid, lit in lit_of.items()}

        def feasible_ids(ids: Sequence[int]) -> bool:
            # called from last-gasp here and from the satprune pass
            # later; charged to the run budget by the enclosing
            # metered region (the budget's conflict tally is global)
            try:
                return not solver.solve(
                    base + [lit_of[i] for i in ids],
                    budget_conflicts=budget.remaining,
                )
            except SatBudgetExceeded:
                return False

        sstats = SupportStats()
        memo_key: Optional[_SupportKey] = None
        if getattr(cfg, "memoize_support", False) and qm.net.has_canonical_layout():
            memo_key = (
                qm.net.structural_hash(),
                tuple(ordered),
                tuple(divisors.cost[n] for n in ordered),
                cfg.support_method,
                cfg.use_last_gasp,
            )
            hit = _support_memo.get(memo_key)
            if hit is not None:
                _support_memo.move_to_end(memo_key)  # LRU touch
                obs.inc("engine.support_memo_hit")
                tgt.support_ids = list(hit)
                tgt.feasible_ids = feasible_ids
                obs.annotate("support_size", len(hit))
                return PassOutcome(detail=f"{len(hit)} divisors (memo)")
            obs.inc("engine.support_memo_miss")
        with budget.metered() as cap:
            if solver.solve(base + all_lits, budget_conflicts=cap):
                raise EcoEngineError(
                    "divisor set cannot express a patch for this target "
                    "(insufficient expansion or over-restricted candidates)"
                )

            if cfg.support_method == "analyze_final":
                core = solver.core
                chosen = [nid for nid in ordered if lit_of[nid] in core]
            elif cfg.support_method in ("minassump", "satprune"):
                minimizer = AssumptionMinimizer(solver, base, cap, sstats)
                kept = minimizer.minimize(all_lits, check=False)
                chosen = [id_of[lit] for lit in kept]
                if cfg.use_last_gasp:
                    improved = last_gasp_improvement(
                        lambda lits: feasible_ids([id_of[l] for l in lits]),
                        [lit_of[n] for n in chosen],
                        [lit_of[n] for n in ordered],
                        {lit_of[n]: divisors.cost[n] for n in ordered},
                    )
                    chosen = [id_of[lit] for lit in improved]
            else:
                raise ValueError(
                    f"unknown support method {cfg.support_method!r}"
                )

        if memo_key is not None:
            _support_memo[memo_key] = list(chosen)
            while len(_support_memo) > _SUPPORT_MEMO_CAPACITY:
                _support_memo.popitem(last=False)
        tgt.support_ids = chosen
        tgt.feasible_ids = feasible_ids
        ctx.stats.bump("support_sat_calls", sstats.sat_calls)
        obs.inc("engine.support_sat_calls", sstats.sat_calls)
        obs.annotate("support_size", len(chosen))
        return PassOutcome(detail=f"{len(chosen)} divisors")
