"""SAT-based functional resubstitution of internal divisors (§3.6.3).

Given a patch expressed over primary inputs, resubstitution re-expresses
it over internal implementation signals.  Only the implementation (not
the whole ECO miter) is involved, so the SAT queries are simpler than
during patch-support computation — exactly the observation the paper
makes.  The machinery mirrors the main flow: two implementation copies
with selector-guarded divisor equalities choose a support, then cube
enumeration on a single copy rebuilds the function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..network.network import Network
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.tseitin import add_equality, encode_network
from ..sat.types import mklit
from ..sop.sop import Sop
from .patch import Patch
from .patchfunc import (
    EnumerationStats,
    PatchEnumerationError,
    enumerate_patch_sop,
    shrink_sop,
)
from .pipeline import Pass, PassOutcome, contract
from .support import AssumptionMinimizer, SupportStats

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


@dataclass
class ResubResult:
    """Outcome of a resubstitution attempt."""

    sop: Sop
    divisor_ids: List[int]
    sat_calls: int


def resubstitute(
    impl: Network,
    patch: Network,
    divisor_ids: Sequence[int],
    divisor_order_cost: Dict[int, int],
    budget_conflicts: Optional[int] = None,
    max_cubes: int = 2000,
) -> Optional[ResubResult]:
    """Re-express ``patch`` over implementation divisors.

    Args:
        impl: the implementation netlist.
        patch: single-PO network over implementation PI names.
        divisor_ids: allowed implementation support nodes.
        divisor_order_cost: id → cost (drives retention preference).
        budget_conflicts / max_cubes: resource limits.

    Returns:
        the new SOP over the chosen divisors, or None when the divisors
        cannot express the patch (or a budget was exhausted).
    """
    if patch.num_pos != 1:
        raise ValueError("resubstitute expects a single-PO patch")
    ordered = sorted(divisor_ids, key=lambda n: (divisor_order_cost.get(n, 1), n))

    # --- support selection: two copies, selector-guarded equalities ----
    sel_solver = solver_for(QueryTraits(incremental=True))
    impl_vars_1 = encode_network(sel_solver, impl)
    impl_vars_2 = encode_network(sel_solver, impl)
    patch_vars_1 = encode_network(
        sel_solver,
        patch,
        {
            pi: impl_vars_1[impl.node_by_name(patch.node(pi).name)]
            for pi in patch.pis
        },
    )
    patch_vars_2 = encode_network(
        sel_solver,
        patch,
        {
            pi: impl_vars_2[impl.node_by_name(patch.node(pi).name)]
            for pi in patch.pis
        },
    )
    p1 = patch_vars_1[patch.pos[0][1]]
    p2 = patch_vars_2[patch.pos[0][1]]
    selectors: Dict[int, int] = {}
    for nid in ordered:
        s = sel_solver.new_var()
        selectors[nid] = s
        add_equality(sel_solver, impl_vars_1[nid], impl_vars_2[nid], mklit(s))

    base = [mklit(p1), mklit(p2, True)]  # P(x1)=1 & P(x2)=0
    stats = SupportStats()
    try:
        if sel_solver.solve(
            base + [mklit(selectors[n]) for n in ordered],
            budget_conflicts=budget_conflicts,
        ):
            return None  # divisors cannot distinguish on/off sets
        minimizer = AssumptionMinimizer(sel_solver, base, budget_conflicts, stats)
        chosen_lits = minimizer.minimize(
            [mklit(selectors[n]) for n in ordered], check=False
        )
    except SatBudgetExceeded:
        return None
    lit_to_id = {mklit(s): nid for nid, s in selectors.items()}
    support = [lit_to_id[lit] for lit in chosen_lits]
    support.sort(key=lambda n: (divisor_order_cost.get(n, 1), n))

    # --- function construction: cube enumeration on one copy -----------
    fun_solver = solver_for(QueryTraits(incremental=True))
    impl_vars = encode_network(fun_solver, impl)
    patch_vars = encode_network(
        fun_solver,
        patch,
        {
            pi: impl_vars[impl.node_by_name(patch.node(pi).name)]
            for pi in patch.pis
        },
    )
    p = patch_vars[patch.pos[0][1]]
    estats = EnumerationStats()
    try:
        sop = enumerate_patch_sop(
            fun_solver,
            onset_base=[mklit(p)],
            offset_base=[mklit(p, True)],
            divisor_vars=[impl_vars[n] for n in support],
            blocking_extra=[mklit(p, True)],
            mode="minassump",
            max_cubes=max_cubes,
            budget_conflicts=budget_conflicts,
            stats=estats,
        )
    except (PatchEnumerationError, SatBudgetExceeded):
        return None
    return ResubResult(
        sop=sop,
        divisor_ids=support,
        sat_calls=stats.sat_calls + estats.onset_calls + estats.offset_calls
        + estats.minimize_sat_calls,
    )


class ResubPass(Pass):
    """§3.6.3, SAT variant: re-express a PI-level structural patch over
    internal divisors.  Only the implementation is involved, so the
    queries are lighter than the full support computation.  The candidate
    replaces the patch only when it is cheaper and not grossly larger.
    """

    name = "resub"
    optional = True
    contract = contract(
        reads=("current", "divisors", "target.patch"),
        writes=("target.patch",),
        uses_solver=True,
        optional=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        from ..sop.synth import sop_to_network

        cfg = ctx.config
        tgt = ctx.target
        assert tgt is not None and tgt.patch is not None
        patch = tgt.patch
        divisors = ctx.divisors
        with ctx.budget.metered() as cap:
            rr = resubstitute(
                ctx.current,
                patch.network,
                divisors.ids,
                divisors.cost,
                budget_conflicts=cap,
                max_cubes=cfg.max_cubes,
            )
        if rr is None:
            return PassOutcome(detail="not expressible")
        used = sorted({p for cube in rr.sop for p in cube.literals()})
        kept = [rr.divisor_ids[p] for p in used]
        new_cost = sum(divisors.cost[i] for i in kept)
        if new_cost >= patch.cost:
            return PassOutcome(detail="no cost improvement")
        shrunk = shrink_sop(rr.sop, used, rr.divisor_ids)[0]
        names = [divisors.names[i] for i in kept]
        candidate = sop_to_network(shrunk, names, patch.target)
        if candidate.num_gates > max(patch.gate_count, 1) * 4:
            return PassOutcome(detail="candidate too large")
        tgt.patch = Patch(
            target=patch.target,
            network=candidate,
            support=names,
            cost=new_cost,
            gate_count=candidate.num_gates,
            method="resub",
        )
        return PassOutcome(detail=f"cost {patch.cost} -> {new_cost}")
