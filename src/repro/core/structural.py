"""Structural patch computation (Section 3.6).

When SAT-based support/function computation times out, the patch is
derived structurally, in terms of primary inputs:

* **single target** — the negative cofactor M(0, x) of the (quantified)
  miter is itself an interpolant of the feasibility pair, so the
  cofactored miter circuit, re-synthesized, *is* the patch (§3.6.1);
* **multiple targets** — either the naive sequential construction
  (cofactoring target-by-target; 2^k − 1 miter copies for k targets) or
  the QBF-certificate construction of §3.6.2: a MUX cascade over the m
  CEGAR countermoves, selecting per input x the first countermove whose
  cofactor matches the spec, needing only m copies (the paper's
  255 → 40 example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..network.network import Network
from ..network.strash import AigBuilder, cofactor_network, strash_into
from .miter import EcoMiter, build_miter
from .patch import Patch, apply_patch
from .pipeline import Pass, Strategy, TargetState, contract
from .quantify import QMITER_PO, QuantifiedMiter, build_quantified_miter

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext, PassManager


@dataclass
class StructuralPatchInfo:
    """A structural patch network plus its construction statistics."""

    network: Network
    miter_copies: int


def structural_patch_single(qm: QuantifiedMiter, patch_name: str) -> StructuralPatchInfo:
    """Cofactor patch for the current target of a quantified miter.

    The patch is ``M_i(0, x)``: the quantified miter with the current
    target fixed to 0, strashed.  The PO is renamed to ``patch_name``;
    unused PIs are swept from the interface.
    """
    if qm.target_pi is None:
        raise ValueError("quantified miter has no current target")
    cof = cofactor_network(qm.net, {qm.target_pi: 0})
    patch = _extract_output(cof, QMITER_PO, patch_name)
    return StructuralPatchInfo(network=patch, miter_copies=qm.num_copies)


def certificate_patches(
    miter: EcoMiter,
    countermoves: Sequence[Dict[int, int]],
    target_names: Sequence[str],
) -> Tuple[List[StructuralPatchInfo], int]:
    """Simultaneous patches for all targets from QBF countermoves.

    Given the countermoves a_1..a_m whose cofactor conjunction is UNSAT
    (the CEGAR certificate that the ECO is feasible), every input x has
    some j with M(x, a_j) = 0; each target's patch is the MUX cascade
    ``if ¬M(x, a_1) then a_1[i] elif ¬M(x, a_2) then a_2[i] ...``.

    Returns per-target patches (POs named by ``target_names``) and the
    total number of miter copies used (= m, shared across all targets).
    """
    if not countermoves:
        raise ValueError("certificate construction needs at least one countermove")
    if len(target_names) != len(miter.target_pis):
        raise ValueError("target_names must match the miter's targets")
    builder = AigBuilder()
    x_lits = {pi: builder.add_pi() for pi in miter.x_pis}
    po_node = miter.net.pos[0][1]
    selectors: List[int] = []
    for move in countermoves:
        pi_lits = dict(x_lits)
        for t in miter.target_pis:
            pi_lits[t] = AigBuilder.CONST1 if move.get(t, 0) else AigBuilder.CONST0
        litmap = strash_into(builder, miter.net, pi_lits)
        selectors.append(builder.lit_not(litmap[po_node]))

    outputs: List[Tuple[str, int]] = []
    for i, (t, name) in enumerate(zip(miter.target_pis, target_names)):
        values = [
            AigBuilder.CONST1 if move.get(t, 0) else AigBuilder.CONST0
            for move in countermoves
        ]
        acc = values[-1]  # default branch: never reached when cert valid
        for j in range(len(countermoves) - 2, -1, -1):
            acc = builder.mux_(selectors[j], acc, values[j])
        outputs.append((name, acc))

    pi_names = [miter.net.node(pi).name for pi in miter.x_pis]
    combined, litmap = builder.to_network(outputs, pi_names, name="cert_patches")
    patches: List[StructuralPatchInfo] = []
    for i, name in enumerate(target_names):
        patch = _extract_output(combined, name, name)
        patches.append(
            StructuralPatchInfo(network=patch, miter_copies=len(countermoves))
        )
    return patches, len(countermoves)


class _StructuralStrategyBase(Strategy):
    """Shared finishing logic of the two structural strategies.

    Each raw (PI-expressed) patch network runs through the configured
    finishing passes (``resub``, ``cegar_min``) before being spliced in;
    the run's method string reflects whether ``cegar_min`` participated.
    """

    def __init__(self, finish_passes: Sequence[Pass] = ()) -> None:
        self.finish_passes = list(finish_passes)

    def _finish_and_apply(
        self,
        ctx: "EcoContext",
        manager: "PassManager",
        index: int,
        tname: str,
        patch_net: Network,
    ) -> None:
        instance = ctx.instance
        support = [patch_net.node(pi).name for pi in patch_net.pis]
        cost = sum(
            instance.weights.get(s, instance.default_weight) for s in support
        )
        ctx.target = TargetState(name=tname, index=index)
        ctx.target.patch = Patch(
            target=tname,
            network=patch_net,
            support=support,
            cost=cost,
            gate_count=patch_net.num_gates,
            method="structural",
        )
        try:
            for p in self.finish_passes:
                manager.run_pass(p, ctx)
            patch = ctx.target.patch
        finally:
            ctx.target = None
        apply_patch(ctx.current, patch)
        ctx.patches.append(patch)

    def _set_method(self, ctx: "EcoContext") -> None:
        ctx.method = "structural"
        if any(p.name == "cegar_min" for p in self.finish_passes):
            ctx.method = "structural+cegar_min"


class CertificateStrategy(_StructuralStrategyBase):
    """QBF-certificate construction of §3.6.2: one MUX cascade over the
    m CEGAR countermoves yields all targets' patches from m miter copies
    (instead of the 2^k − 1 of the sequential construction)."""

    name = "certificate"
    contract = contract(
        reads=("instance", "spec", "window", "current"),
        # gated by ``applicable``; absent countermoves mean not-run
        reads_optional=("countermoves_by_name",),
        reads_late=("target.patch",),
        writes=("target.patch", "patches", "method"),
        mutates_network=True,
    )

    def applicable(self, ctx: "EcoContext") -> bool:
        return len(ctx.instance.targets) > 1 and bool(ctx.countermoves_by_name)

    def run(self, ctx: "EcoContext", manager: "PassManager") -> None:
        instance = ctx.instance
        current = ctx.current
        target_ids = [current.node_by_name(t) for t in instance.targets]
        miter = build_miter(
            current, ctx.spec, target_ids, ctx.window.po_indices
        )
        moves = [
            {
                pi: move.get(instance.targets[i], 0)
                for i, pi in enumerate(miter.target_pis)
            }
            for move in ctx.countermoves_by_name
        ]
        infos, copies = certificate_patches(
            miter, moves, list(instance.targets)
        )
        for idx, (tname, info) in enumerate(zip(instance.targets, infos)):
            self._finish_and_apply(ctx, manager, idx, tname, info.network)
        ctx.stats.structural_miter_copies = copies
        self._set_method(ctx)


class StructuralFallbackStrategy(_StructuralStrategyBase):
    """Sequential cofactor construction (§3.6.1): target-by-target, each
    patch applied before the next miter is built."""

    name = "structural"
    contract = contract(
        reads=("instance", "spec", "window", "current"),
        reads_late=("target.patch",),
        writes=("target.patch", "patches", "method"),
        mutates_network=True,
    )

    def run(self, ctx: "EcoContext", manager: "PassManager") -> None:
        instance = ctx.instance
        current = ctx.current
        copies_total = 0
        for idx, tname in enumerate(instance.targets):
            remaining = instance.targets[idx:]
            remaining_ids = [current.node_by_name(t) for t in remaining]
            miter = build_miter(
                current, ctx.spec, remaining_ids, ctx.window.po_indices
            )
            qm = build_quantified_miter(miter, miter.target_pis[0])
            info = structural_patch_single(qm, tname)
            copies_total += info.miter_copies
            self._finish_and_apply(ctx, manager, idx, tname, info.network)
        ctx.stats.structural_miter_copies = copies_total
        self._set_method(ctx)


def _extract_output(net: Network, po_name: str, new_po_name: str) -> Network:
    """Standalone single-output cone of ``po_name``, unused PIs dropped."""
    po_map = dict(net.pos)
    if po_name not in po_map:
        raise ValueError(f"no PO named {po_name!r}")
    builder = AigBuilder()
    pi_lits: Dict[int, int] = {pi: builder.add_pi() for pi in net.pis}
    litmap = strash_into(builder, net, pi_lits)
    out_lit = litmap[po_map[po_name]]
    # keep only PIs in the cone's structural support
    used = _aig_support(builder, out_lit)
    keep_pis = [pi for pi in net.pis if (pi_lits[pi] >> 1) in used]
    sub = AigBuilder()
    sub_pi_lits = {}
    for pi in keep_pis:
        sub_pi_lits[pi_lits[pi] >> 1] = sub.add_pi()
    rebuilt = _copy_aig(builder, sub, out_lit, sub_pi_lits)
    names = [net.node(pi).name for pi in keep_pis]
    out, _ = sub.to_network([(new_po_name, rebuilt)], names, name="patch")
    return out


def _aig_support(builder: AigBuilder, lit: int) -> set:
    """Leaf (PI) node set in the cone of ``lit``."""
    seen = set()
    support = set()
    stack = [lit >> 1]
    while stack:
        nid = stack.pop()
        if nid in seen or nid == 0:
            continue
        seen.add(nid)
        fan = builder._fanins[nid]
        if fan is None:
            support.add(nid)
        else:
            stack.extend(f >> 1 for f in fan)
    return support


def _copy_aig(
    src: AigBuilder, dst: AigBuilder, lit: int, leaf_map: Dict[int, int]
) -> int:
    """Copy the cone of ``lit`` from ``src`` into ``dst``.

    ``leaf_map`` maps src PI node ids to dst literals.
    """
    cache: Dict[int, int] = {0: 0}
    cache.update({nid: l for nid, l in leaf_map.items()})
    order: List[int] = []
    seen = set(cache)
    stack = [lit >> 1]
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        order.append(nid)
        fan = src._fanins[nid]
        if fan is not None:
            stack.extend(f >> 1 for f in fan)
    for nid in sorted(order):
        fan = src._fanins[nid]
        if fan is None:
            raise ValueError("unmapped leaf in AIG copy")
        a = cache[fan[0] >> 1] ^ (fan[0] & 1)
        b = cache[fan[1] >> 1] ^ (fan[1] & 1)
        cache[nid] = dst.and_(a, b)
    return cache[lit >> 1] ^ (lit & 1)
