"""Combinational equivalence checking of the patched implementation.

Every ECO run ends with a full CEC of the patched netlist against the
specification (Figure 2, "Verify patch"); the same check powers the
test-suite oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..network.network import Network
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import SatBudgetExceeded
from ..sat.tseitin import encode_network
from ..sat.types import mklit
from .miter import MITER_PO, build_miter
from .pipeline import EcoEngineError, Pass, PassOutcome, contract

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import EcoContext


@dataclass
class CecResult:
    """Equivalence verdict with an optional counterexample.

    ``equivalent`` is None when the SAT budget ran out.
    """

    equivalent: Optional[bool]
    counterexample: Optional[Dict[str, int]] = None


def cec(
    impl: Network,
    spec: Network,
    budget_conflicts: Optional[int] = None,
    po_indices=None,
    preprocess: bool = False,
) -> CecResult:
    """Prove or refute PO-by-PO equivalence (matched by name).

    ``po_indices`` restricts the comparison to a subset of outputs.
    With ``preprocess`` the CNF is simplified (unit propagation,
    subsumption, bounded variable elimination) before solving; the PI
    variables stay frozen so counterexamples survive.
    """
    miter = build_miter(impl, spec, targets=[], po_indices=po_indices)
    out_node = dict(miter.net.pos)[MITER_PO]
    if preprocess:
        from ..sat.simplify import ClauseCollector, Preprocessor

        collector = ClauseCollector()
        varmap = encode_network(collector, miter.net)
        frozen = {varmap[pi] for pi in miter.x_pis}
        frozen.add(varmap[out_node])
        pre = Preprocessor(collector.nvars, frozen=frozen)
        for clause in collector.clause_list:
            pre.add_clause(clause)
        solver = solver_for(QueryTraits(incremental=False))
        solver.new_vars(collector.nvars)
        if not pre.run():
            return CecResult(equivalent=True)  # CNF UNSAT: no mismatch
        ok = True
        for clause in pre.clauses():
            if not solver.add_clause(clause):
                ok = False
                break
        if not ok:
            return CecResult(equivalent=True)
    else:
        solver = solver_for(QueryTraits(incremental=False))
        varmap = encode_network(solver, miter.net)
    out_var = varmap[out_node]
    try:
        sat = solver.solve([mklit(out_var)], budget_conflicts=budget_conflicts)
    except SatBudgetExceeded:
        return CecResult(equivalent=None)
    if not sat:
        return CecResult(equivalent=True)
    cex = {
        miter.net.node(pi).name: solver.model_value(mklit(varmap[pi]))
        for pi in miter.x_pis
    }
    return CecResult(equivalent=False, counterexample=cex)


class VerifyPass(Pass):
    """Figure 2 "Verify patch": full CEC of the patched implementation.

    Deliberately budget-free — correctness must not degrade with the
    run's conflict budget.  A refuted equivalence raises
    :class:`EcoEngineError` out of the pipeline (every strategy already
    had its chance by the time the epilogue runs).
    """

    name = "verify"
    contract = contract(
        reads=("instance", "current", "spec"),
        writes=("verified",),
        uses_solver=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        result = cec(ctx.current, ctx.spec, budget_conflicts=None)
        ctx.verified = bool(result.equivalent)
        if not ctx.verified:
            raise EcoEngineError(
                f"{ctx.instance.name}: patched implementation is not "
                f"equivalent to the specification "
                f"(cex={result.counterexample})"
            )
        return PassOutcome(detail="equivalent")


class CertificateCheckPass(Pass):
    """Independent re-check of the assembled :class:`EcoResult` with
    :func:`repro.check.certificate.certify` (fresh solver, divisor-set
    membership, cost/gate accounting).  Runs as a finalizer — it needs
    the result object, not just the context."""

    name = "certificate_check"
    contract = contract(
        reads=("instance", "result"),
        uses_solver=True,
    )

    def run(self, ctx: "EcoContext") -> PassOutcome:
        # deferred import: repro.check imports from repro.core
        from ..check.certificate import CertificateError, certify

        try:
            certify(ctx.instance, ctx.result)
        except CertificateError as exc:
            raise EcoEngineError(str(exc)) from exc
        ctx.stats.certificate_checked = 1
        return PassOutcome(detail="certified")
