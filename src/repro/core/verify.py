"""Combinational equivalence checking of the patched implementation.

Every ECO run ends with a full CEC of the patched netlist against the
specification (Figure 2, "Verify patch"); the same check powers the
test-suite oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..network.network import Network
from ..sat.solver import SatBudgetExceeded, Solver
from ..sat.tseitin import encode_network
from ..sat.types import mklit
from .miter import MITER_PO, build_miter


@dataclass
class CecResult:
    """Equivalence verdict with an optional counterexample.

    ``equivalent`` is None when the SAT budget ran out.
    """

    equivalent: Optional[bool]
    counterexample: Optional[Dict[str, int]] = None


def cec(
    impl: Network,
    spec: Network,
    budget_conflicts: Optional[int] = None,
    po_indices=None,
    preprocess: bool = False,
) -> CecResult:
    """Prove or refute PO-by-PO equivalence (matched by name).

    ``po_indices`` restricts the comparison to a subset of outputs.
    With ``preprocess`` the CNF is simplified (unit propagation,
    subsumption, bounded variable elimination) before solving; the PI
    variables stay frozen so counterexamples survive.
    """
    miter = build_miter(impl, spec, targets=[], po_indices=po_indices)
    out_node = dict(miter.net.pos)[MITER_PO]
    if preprocess:
        from ..sat.simplify import ClauseCollector, Preprocessor

        collector = ClauseCollector()
        varmap = encode_network(collector, miter.net)
        frozen = {varmap[pi] for pi in miter.x_pis}
        frozen.add(varmap[out_node])
        pre = Preprocessor(collector.nvars, frozen=frozen)
        for clause in collector.clause_list:
            pre.add_clause(clause)
        solver = Solver()
        solver.new_vars(collector.nvars)
        if not pre.run():
            return CecResult(equivalent=True)  # CNF UNSAT: no mismatch
        ok = True
        for clause in pre.clauses():
            if not solver.add_clause(clause):
                ok = False
                break
        if not ok:
            return CecResult(equivalent=True)
    else:
        solver = Solver()
        varmap = encode_network(solver, miter.net)
    out_var = varmap[out_node]
    try:
        sat = solver.solve([mklit(out_var)], budget_conflicts=budget_conflicts)
    except SatBudgetExceeded:
        return CecResult(equivalent=None)
    if not sat:
        return CecResult(equivalent=True)
    cex = {
        miter.net.node(pi).name: solver.model_value(mklit(varmap[pi]))
        for pi in miter.x_pis
    }
    return CecResult(equivalent=False, counterexample=cex)
