"""Engine configuration and pipeline assembly (paper Figure 2).

The flow itself lives in :mod:`repro.core.pipeline` (the framework) and
in the phase modules (the pass bodies: ``FeasibilityPass`` in
:mod:`repro.core.feasibility`, ``SupportPass`` in
:mod:`repro.core.support`, ...).  This module owns what remains:

* :class:`EcoConfig` — the knobs, with the three Table 1 presets
  :func:`baseline_config`, :func:`contest_config`, :func:`best_config`;
* :func:`pipeline_stages` / :func:`build_pipeline` — the declarative
  mapping from a configuration (plus an optional ``--passes``
  selection) to the pass list the :class:`~repro.core.pipeline.PassManager`
  executes;
* :class:`EcoEngine` — the thin entry point: build an
  :class:`~repro.core.pipeline.EcoContext`, run the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

from .. import obs
from ..io.weights import EcoInstance
from ..resilience import EngineFault, RetryPolicy
from ..sat.backend import (
    BackendError,
    BackendSelector,
    get_backend,
    install_selector,
)
from ..sat.template import set_template_memo_capacity
from .cegarmin import CegarMinPass
from .divisors import DivisorsPass, WindowPass, set_extraction_memo_capacity
from .feasibility import FeasibilityPass
from .patch import EcoResult
from .patchfunc import PatchFunctionPass
from .pipeline import (
    ConflictBudget,
    EcoContext,
    EcoEngineError,
    EngineStats,
    PassManager,
    PassSelection,
    Pipeline,
    SatFlowStrategy,
    parse_pass_selection,
)
from .resub import ResubPass
from .satprune import SatPrunePass
from .structural import CertificateStrategy, StructuralFallbackStrategy
from .support import SupportPass, set_support_memo_capacity
from .verify import CertificateCheckPass, VerifyPass

__all__ = [
    "EcoConfig",
    "EcoEngine",
    "EcoEngineError",
    "baseline_config",
    "best_config",
    "build_pipeline",
    "contest_config",
    "pipeline_stages",
]


@dataclass
class EcoConfig:
    """Knobs of the ECO engine.

    Attributes:
        support_method: ``"minassump"`` (Algorithm 1), ``"analyze_final"``
            (baseline cores), or ``"satprune"`` (exact minimum cost).
        enumeration_mode: prime-cube expansion mode in Section 3.5
            (``"minassump"`` or ``"analyze_final"``).
        use_cegar_min: apply max-flow re-support to structural patches.
        use_last_gasp: greedy divisor-swap improvement after support
            minimization.
        structural_only: skip the SAT-based flow entirely.
        feasibility_method: ``"expansion"``, ``"qbf"``, or ``"auto"``.
        max_expansion_targets: largest *remaining-target* count expanded
            exhaustively (2^k cofactor copies); beyond it the expansion
            uses the QBF countermoves.
        max_divisors: cap on internal divisor candidates.
        memoize_extraction: reuse window/divisor extraction results
            across runs of structurally identical instances (bounded
            process-local memo keyed by ``Network.structural_hash``;
            see :mod:`repro.core.divisors`).
        memoize_templates: reuse compiled :class:`CnfTemplate` encodings
            across structurally identical quantified miters (same memo
            contract; see :func:`repro.sat.template.template_for`).
            Solver-counter-safe: a hit stamps byte-identical clauses.
        memoize_support: reuse support-minimization results across
            structurally identical per-target queries.  *Not*
            counter-safe — a hit skips the minimization solves, so the
            shared solver reaches the patch-function pass with a
            different learned-clause state; off by default (see
            docs/BATCH.md, determinism contract).
        budget_conflicts: *run-level* SAT conflict budget (None = no
            limit).  Charged once per conflict across the whole run via
            :class:`~repro.core.pipeline.ConflictBudget`; exhaustion
            makes the current strategy fall back to the next one in the
            chain instead of erroring the run.
        budget_seconds: optional wall-clock deadline for the run; past
            it, optional improvement passes are skipped and the SAT flow
            yields to the structural fallback.
        max_cubes: cube-enumeration cap per patch.
        sim_patterns: simulation width for CEGAR_min filtering.
        verify: run the final CEC.
        verify_certificates: independently re-check the result with
            :func:`repro.check.certificate.certify` (fresh solver,
            divisor-set membership, cost/gate accounting) before
            returning it.
        seed: randomization seed (simulation).
        backend: registered SAT backend name every query is routed to
            (see :mod:`repro.sat.backend`); ``"native"`` — the
            in-process CDCL solver — is the default and the only
            backend that serves every query shape.  The engine
            installs the corresponding selector for the duration of
            the run and restores the previous one afterwards; being a
            plain string field, the choice survives pickling into
            batch pool workers.
        backend_policy: per-query selection policy: ``"fixed"``
            (default — every query goes to ``backend``, falling back
            to ``native`` only when the traits are unsupported) or
            ``"traits"`` (route each query to the first registered
            backend supporting its declared traits, preferring
            ``backend``).
        memo_capacity: entry bound shared by the bounded LRU memos
            (window/divisor extraction, compiled templates, opt-in
            support results); 64 matches the historical hardcoded
            capacity.  Applied process-globally for the duration of
            the run.
        retry_policy: optional
            :class:`~repro.resilience.retry.RetryPolicy` — bounded
            retries with budget escalation and exponential backoff when
            a strategy fails with transient conflict-budget exhaustion,
            before the fallback chain advances.
        faults: optional :class:`~repro.resilience.faultplan.EngineFault`
            — deterministic fault injection for this run (chaos
            testing); ``None`` in production.
    """

    support_method: str = "minassump"
    enumeration_mode: str = "minassump"
    patch_function_method: str = "cubes"  # "cubes" | "interpolation"
    use_isop_refine: bool = False  # don't-care-aware SOP re-minimization
    isop_refine_max_support: int = 12
    use_resub: bool = False  # SAT resubstitution of structural patches
    amortize_shared_support: bool = False  # reuse-aware multi-target costs
    use_cegar_min: bool = False
    use_last_gasp: bool = True
    structural_only: bool = False
    feasibility_method: str = "auto"
    max_expansion_targets: int = 6
    max_divisors: Optional[int] = 96
    memoize_extraction: bool = True  # reuse window/divisor extraction
    memoize_templates: bool = True  # reuse compiled CNF templates
    memoize_support: bool = False  # reuse support results (opt-in)
    budget_conflicts: Optional[int] = 200000
    budget_seconds: Optional[float] = None
    max_cubes: int = 2000
    sim_patterns: int = 256
    verify: bool = True
    verify_certificates: bool = False
    seed: int = 2018
    satprune_max_checks: int = 4000
    satprune_grow: bool = True
    backend: str = "native"  # SAT backend queries are routed to
    backend_policy: str = "fixed"  # "fixed" | "traits"
    memo_capacity: int = 64  # LRU bound for extraction/template/support memos
    retry_policy: Optional[RetryPolicy] = None
    faults: Optional[EngineFault] = None


def baseline_config() -> EcoConfig:
    """Table 1 columns 7-9: no ``minimize_assumptions``; analyze_final."""
    return EcoConfig(
        support_method="analyze_final",
        enumeration_mode="analyze_final",
        use_last_gasp=False,
        use_cegar_min=False,
    )


def contest_config() -> EcoConfig:
    """Table 1 columns 10-12: the contest-winning configuration."""
    return EcoConfig(
        support_method="minassump",
        enumeration_mode="minassump",
        use_last_gasp=True,
        use_cegar_min=False,
    )


def best_config() -> EcoConfig:
    """Table 1 columns 13-15: SAT_prune + CEGAR_min."""
    return EcoConfig(
        support_method="satprune",
        enumeration_mode="minassump",
        use_last_gasp=True,
        use_cegar_min=True,
    )


# ---------------------------------------------------------------------------
# declarative assembly
# ---------------------------------------------------------------------------


def pipeline_stages(cfg: EcoConfig) -> Tuple[str, ...]:
    """The stage names a configuration maps to, in execution order.

    This is the declarative form of the pipeline: the three Table 1
    presets differ only in this list (plus per-pass knobs).  ``--passes``
    selections filter it (see
    :func:`repro.core.pipeline.parse_pass_selection`).
    """
    stages = ["window", "divisors", "feasibility"]
    if not cfg.structural_only:
        stages.append("sat_flow")
        stages.append("support")
        if cfg.support_method == "satprune":
            stages.append("satprune")
        stages.append("patch_function")
    stages.append("certificate")
    stages.append("structural")
    if cfg.use_resub:
        stages.append("resub")
    if cfg.use_cegar_min:
        stages.append("cegar_min")
    if cfg.verify:
        stages.append("verify")
    if cfg.verify_certificates:
        stages.append("certificate_check")
    return tuple(stages)


_PASS_FACTORY = {
    "window": WindowPass,
    "divisors": DivisorsPass,
    "feasibility": FeasibilityPass,
    "support": SupportPass,
    "satprune": SatPrunePass,
    "patch_function": PatchFunctionPass,
    "resub": ResubPass,
    "cegar_min": CegarMinPass,
    "verify": VerifyPass,
    "certificate_check": CertificateCheckPass,
}


def build_pipeline(
    cfg: EcoConfig, selection: Optional[PassSelection] = None
) -> Pipeline:
    """Assemble the executable :class:`Pipeline` for a configuration.

    The fallback chain is ``sat_flow → certificate → structural``: the
    certificate construction (§3.6.2) is preferred over the sequential
    cofactor fallback whenever QBF countermoves are available (it is the
    construction the paper's multi-target structural results use), and
    is gated by ``applicable`` to multi-target instances that have them.
    """
    stages = pipeline_stages(cfg)
    if selection is not None:
        stages = tuple(selection.apply(stages))
    chosen = set(stages)

    # the SAT flow needs both of its per-target stages
    sat_flow_ok = (
        "sat_flow" in chosen
        and "support" in chosen
        and "patch_function" in chosen
    )

    prologue = [_PASS_FACTORY[n]() for n in stages if n in
                ("window", "divisors", "feasibility")]

    target_passes = []
    if sat_flow_ok:
        target_passes.append(SupportPass())
        if "satprune" in chosen:
            target_passes.append(SatPrunePass())
        target_passes.append(PatchFunctionPass())

    finish_passes = []
    if "resub" in chosen:
        finish_passes.append(ResubPass())
    if "cegar_min" in chosen:
        finish_passes.append(CegarMinPass())

    strategies = []
    if sat_flow_ok:
        strategies.append(SatFlowStrategy(target_passes))
    if "certificate" in chosen:
        strategies.append(CertificateStrategy(finish_passes))
    if "structural" in chosen:
        strategies.append(StructuralFallbackStrategy(finish_passes))

    epilogue = [VerifyPass()] if "verify" in chosen else []
    finalizers = (
        [CertificateCheckPass()] if "certificate_check" in chosen else []
    )
    return Pipeline(
        prologue=prologue,
        strategies=strategies,
        epilogue=epilogue,
        finalizers=finalizers,
    )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


class EcoEngine:
    """Runs the complete ECO flow for an :class:`EcoInstance`.

    ``passes`` optionally overrides the configuration-derived pipeline:
    a :class:`PassSelection` or a ``--passes`` spec string (e.g.
    ``"-cegar_min"`` to drop a stage, ``"feasibility,sat_flow,support,
    patch_function"`` to keep only those stages).  Every assembled
    pipeline is statically verified against the passes' declared
    contracts before execution (see :mod:`repro.analyze`);
    ``enforce_contracts=True`` additionally cross-checks the
    declarations against actual attribute access at runtime.
    """

    def __init__(
        self,
        config: Optional[EcoConfig] = None,
        passes: Union[None, str, PassSelection] = None,
        enforce_contracts: bool = False,
        pipeline_factory: Optional[
            Callable[[EcoConfig, Optional[PassSelection]], Pipeline]
        ] = None,
    ) -> None:
        self.config = config or EcoConfig()
        if isinstance(passes, str):
            passes = parse_pass_selection(passes)
        self.selection = passes
        self.enforce_contracts = enforce_contracts
        #: assembles the executable pipeline; the batch front-end swaps
        #: in :func:`repro.batch.schedule.wave_pipeline` here
        self.pipeline_factory = pipeline_factory or build_pipeline

    def run(self, instance: EcoInstance) -> EcoResult:
        """Compute, insert, and verify patches for every target.

        Raises :class:`EcoInfeasibleError` when the targets provably
        cannot rectify the implementation, and :class:`EcoEngineError`
        when every strategy failed within its budget.
        """
        cfg = self.config
        t_start = time.perf_counter()
        pipeline = self.pipeline_factory(cfg, self.selection)
        # deferred: repro.analyze imports repro.core
        from ..analyze.verifier import verify_pipeline

        analysis = verify_pipeline(pipeline)
        if not analysis.ok:
            raise EcoEngineError(
                "invalid pipeline:\n"
                + "\n".join(f.format() for f in analysis.report.errors)
            )
        budget_limit = cfg.budget_conflicts
        if cfg.faults is not None and cfg.faults.exhaust_conflicts_at is not None:
            # injected exhaustion: cap the run budget at the planned
            # conflict count so the *real* SatBudgetExceeded path fires
            cap = cfg.faults.exhaust_conflicts_at
            budget_limit = cap if budget_limit is None else min(budget_limit, cap)
            obs.inc("resilience.injected.budget_cap")
        ctx = EcoContext(
            instance=instance,
            config=cfg,
            stats=EngineStats(),
            budget=ConflictBudget(budget_limit),
            t_start=t_start,
            base_impl=instance.impl.clone(),
            spec=instance.spec,
            deadline=(
                t_start + cfg.budget_seconds
                if cfg.budget_seconds is not None
                else None
            ),
        )
        # route every SAT query of this run through the configured
        # backend; the selector and the memo bounds are process-global
        # ambient state (like set_solve_deadline), so restore them even
        # when a strategy errors out of the pipeline
        try:
            get_backend(cfg.backend)
            selector = BackendSelector(
                backend=cfg.backend, policy=cfg.backend_policy
            )
        except BackendError as exc:
            raise EcoEngineError(str(exc)) from None
        prev_selector = install_selector(selector)
        prev_extraction = set_extraction_memo_capacity(cfg.memo_capacity)
        prev_template = set_template_memo_capacity(cfg.memo_capacity)
        prev_support = set_support_memo_capacity(cfg.memo_capacity)
        try:
            obs.inc("engine.runs")
            with obs.span("engine.run", unit=instance.name):
                manager = PassManager(enforce_contracts=self.enforce_contracts)
                return manager.execute(ctx, pipeline)
        finally:
            install_selector(prev_selector)
            set_extraction_memo_capacity(prev_extraction)
            set_template_memo_capacity(prev_template)
            set_support_memo_capacity(prev_support)
