"""The top-level ECO engine (paper Figure 2).

``EcoEngine`` orchestrates the full flow: target-sufficiency check,
structural pruning, the per-target loop (quantify the remaining targets,
compute a minimal-cost support, enumerate the patch function, splice it
in), the structural fallback with optional ``CEGAR_min``, and the final
equivalence check.

Three preset configurations reproduce the three method columns of
Table 1: :func:`baseline_config` (``analyze_final`` cores, no
Algorithm 1), :func:`contest_config` (``minimize_assumptions`` — the
contest-winning setup), and :func:`best_config`
(``SAT_prune`` + ``CEGAR_min``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..io.weights import EcoInstance
from ..network.network import Network
from ..network.window import Window, compute_window
from ..sat.solver import SatBudgetExceeded, Solver
from ..sat.template import CnfTemplate
from ..sat.tseitin import add_equality
from ..sat.types import mklit
from ..sop.sop import Sop
from ..sop.synth import sop_to_network
from .cegarmin import cegar_min
from .divisors import DivisorSet, collect_divisors
from .feasibility import EcoInfeasibleError, check_feasibility
from .miter import build_miter
from .patch import EcoResult, Patch, apply_patch
from .patchfunc import (
    EnumerationStats,
    PatchEnumerationError,
    enumerate_patch_sop,
)
from .quantify import QMITER_PO, build_quantified_miter
from .satprune import SatPruneStats, sat_prune
from .structural import certificate_patches, structural_patch_single
from .support import AssumptionMinimizer, SupportStats, last_gasp_improvement
from .verify import cec


class EcoEngineError(Exception):
    """Raised when no patch could be produced within the configuration."""


@dataclass
class EcoConfig:
    """Knobs of the ECO engine.

    Attributes:
        support_method: ``"minassump"`` (Algorithm 1), ``"analyze_final"``
            (baseline cores), or ``"satprune"`` (exact minimum cost).
        enumeration_mode: prime-cube expansion mode in Section 3.5
            (``"minassump"`` or ``"analyze_final"``).
        use_cegar_min: apply max-flow re-support to structural patches.
        use_last_gasp: greedy divisor-swap improvement after support
            minimization.
        structural_only: skip the SAT-based flow entirely.
        feasibility_method: ``"expansion"``, ``"qbf"``, or ``"auto"``.
        max_expansion_targets: largest *remaining-target* count expanded
            exhaustively (2^k cofactor copies); beyond it the expansion
            uses the QBF countermoves.
        max_divisors: cap on internal divisor candidates.
        budget_conflicts: per-SAT-call conflict budget (None = no limit).
        max_cubes: cube-enumeration cap per patch.
        sim_patterns: simulation width for CEGAR_min filtering.
        verify: run the final CEC.
        verify_certificates: independently re-check the result with
            :func:`repro.check.certificate.certify` (fresh solver,
            divisor-set membership, cost/gate accounting) before
            returning it.
        seed: randomization seed (simulation).
    """

    support_method: str = "minassump"
    enumeration_mode: str = "minassump"
    patch_function_method: str = "cubes"  # "cubes" | "interpolation"
    use_isop_refine: bool = False  # don't-care-aware SOP re-minimization
    isop_refine_max_support: int = 12
    use_resub: bool = False  # SAT resubstitution of structural patches
    amortize_shared_support: bool = False  # reuse-aware multi-target costs
    use_cegar_min: bool = False
    use_last_gasp: bool = True
    structural_only: bool = False
    feasibility_method: str = "auto"
    max_expansion_targets: int = 6
    max_divisors: Optional[int] = 96
    budget_conflicts: Optional[int] = 200000
    max_cubes: int = 2000
    sim_patterns: int = 256
    verify: bool = True
    verify_certificates: bool = False
    seed: int = 2018
    satprune_max_checks: int = 4000
    satprune_grow: bool = True


def baseline_config() -> EcoConfig:
    """Table 1 columns 7-9: no ``minimize_assumptions``; analyze_final."""
    return EcoConfig(
        support_method="analyze_final",
        enumeration_mode="analyze_final",
        use_last_gasp=False,
        use_cegar_min=False,
    )


def contest_config() -> EcoConfig:
    """Table 1 columns 10-12: the contest-winning configuration."""
    return EcoConfig(
        support_method="minassump",
        enumeration_mode="minassump",
        use_last_gasp=True,
        use_cegar_min=False,
    )


def best_config() -> EcoConfig:
    """Table 1 columns 13-15: SAT_prune + CEGAR_min."""
    return EcoConfig(
        support_method="satprune",
        enumeration_mode="minassump",
        use_last_gasp=True,
        use_cegar_min=True,
    )


@dataclass
class _SatContext:
    """Shared incremental-SAT state for one target iteration.

    One solver holds two template stamps of the quantified miter; the
    support computation and the patch-function enumeration both run on
    it.  Reuse is sound because every support-phase constraint is
    assumption-scoped (base literals and selector-guarded equalities)
    and enumeration blocking clauses live in retractable groups.
    """

    solver: Solver
    template: CnfTemplate
    vars1: Dict[int, int]
    vars2: Dict[int, int]


class EcoEngine:
    """Runs the complete ECO flow for an :class:`EcoInstance`."""

    def __init__(self, config: Optional[EcoConfig] = None) -> None:
        self.config = config or EcoConfig()

    # ------------------------------------------------------------------

    def run(self, instance: EcoInstance) -> EcoResult:
        """Compute, insert, and verify patches for every target.

        Raises :class:`EcoInfeasibleError` when the targets provably
        cannot rectify the implementation, and :class:`EcoEngineError`
        when every strategy failed within its budget.
        """
        cfg = self.config
        t_start = time.perf_counter()
        stats: Dict[str, Union[int, float]] = {}
        obs.inc("engine.runs")
        with obs.span("engine.run", unit=instance.name):
            return self._run_phases(instance, cfg, stats, t_start)

    def _run_phases(
        self,
        instance: EcoInstance,
        cfg: "EcoConfig",
        stats: Dict[str, Union[int, float]],
        t_start: float,
    ) -> EcoResult:
        base_impl = instance.impl.clone()
        spec = instance.spec
        target_ids = [base_impl.node_by_name(t) for t in instance.targets]
        with obs.span("engine.window"):
            window = compute_window(base_impl, spec, target_ids)
        with obs.span("engine.divisors"):
            divisors = collect_divisors(
                base_impl,
                window,
                instance.weights,
                instance.default_weight,
                cfg.max_divisors,
            )
        stats["window_pos"] = len(window.po_indices)
        stats["divisor_candidates"] = len(divisors.ids)
        obs.annotate("window_pos", len(window.po_indices))
        obs.annotate("divisor_candidates", len(divisors.ids))

        # --- Section 3.2: are the targets sufficient? -------------------
        # outputs outside the window cannot be influenced by any patch,
        # so they must already match — otherwise no target set suffices
        with obs.span("engine.feasibility"):
            non_window = [
                i
                for i in range(base_impl.num_pos)
                if i not in set(window.po_indices)
            ]
            if non_window:
                outside = cec(
                    base_impl,
                    spec,
                    budget_conflicts=cfg.budget_conflicts,
                    po_indices=non_window,
                )
                if outside.equivalent is False:
                    raise EcoInfeasibleError(
                        f"{instance.name}: outputs outside the targets' fanout "
                        f"already differ (cex={outside.counterexample})"
                    )
            miter0 = build_miter(base_impl, spec, target_ids, window.po_indices)
            feas = check_feasibility(
                miter0,
                method=cfg.feasibility_method,
                budget_conflicts=cfg.budget_conflicts,
                max_expansion_targets=cfg.max_expansion_targets,
            )
        if feas.feasible is False:
            raise EcoInfeasibleError(
                f"{instance.name}: targets cannot rectify the implementation"
            )
        stats["feasibility_copies"] = feas.copies
        if feas.feasible is None:
            # budget ran out: assume feasibility and go structural (§3.2)
            stats["feasibility_unknown"] = (
                stats.get("feasibility_unknown", 0) + 1
            )
            obs.inc("engine.feasibility_unknown")
        countermoves_by_name = [
            {
                instance.targets[i]: move.get(pi, 0)
                for i, pi in enumerate(miter0.target_pis)
            }
            for move in feas.countermoves
        ]

        patches: Optional[List[Patch]] = None
        method = "sat"
        patched: Optional[Network] = None
        if not cfg.structural_only and feas.feasible:
            try:
                with obs.span("engine.sat_flow"):
                    patched, patches = self._sat_flow(
                        instance, spec, window, divisors, countermoves_by_name, stats
                    )
            except (SatBudgetExceeded, PatchEnumerationError, EcoEngineError) as exc:
                # increment, never assign: a run can fall back repeatedly
                # (e.g. per-target retries) and every event must be kept
                stats["sat_flow_fallback"] = stats.get("sat_flow_fallback", 0) + 1
                reason_key = "fallback_reason_" + type(exc).__name__
                stats[reason_key] = stats.get(reason_key, 0) + 1
                obs.inc("engine.sat_flow_fallback")
                obs.inc("engine.fallback." + type(exc).__name__)
                patches = None
        if patches is None:
            method = "structural"
            with obs.span("engine.structural"):
                patched, patches = self._structural_flow(
                    instance, spec, window, divisors, countermoves_by_name, stats
                )
            if cfg.use_cegar_min:
                method = "structural+cegar_min"

        assert patched is not None
        verified = True
        if cfg.verify:
            with obs.span("engine.verify"):
                result = cec(patched, spec, budget_conflicts=None)
            verified = bool(result.equivalent)
            if not verified:
                raise EcoEngineError(
                    f"{instance.name}: patched implementation is not "
                    f"equivalent to the specification (cex={result.counterexample})"
                )

        support_names = sorted(
            {name for p in patches for name in p.support}
        )
        total_cost = sum(
            instance.weights.get(n, instance.default_weight)
            for n in support_names
        )
        total_gates = sum(p.gate_count for p in patches)
        result = EcoResult(
            instance_name=instance.name,
            patches=patches,
            cost=total_cost,
            gate_count=total_gates,
            verified=verified,
            runtime_seconds=time.perf_counter() - t_start,
            method=method,
            stats=stats,
        )
        if cfg.verify_certificates:
            # deferred import: repro.check imports from repro.core
            from ..check.certificate import CertificateError, certify

            try:
                certify(instance, result)
            except CertificateError as exc:
                raise EcoEngineError(str(exc)) from exc
            stats["certificate_checked"] = 1
        return result

    # ------------------------------------------------------------------
    # SAT-based flow: one target at a time (Sections 3.1, 3.4, 3.5)
    # ------------------------------------------------------------------

    def _sat_flow(
        self,
        instance: EcoInstance,
        spec: Network,
        window: Window,
        divisors: DivisorSet,
        countermoves: List[Dict[str, int]],
        stats: Dict[str, float],
    ) -> Tuple[Network, List[Patch]]:
        cfg = self.config
        current = instance.impl.clone()
        patches: List[Patch] = []
        copies_total = 0
        used_names: set = set()
        for idx, tname in enumerate(instance.targets):
            remaining = instance.targets[idx:]
            remaining_ids = [current.node_by_name(t) for t in remaining]
            miter = build_miter(current, spec, remaining_ids, window.po_indices)
            current_pi = miter.target_pis[0]
            others = miter.target_pis[1:]
            assignments = None
            if len(others) > cfg.max_expansion_targets:
                assignments = _project_countermoves(
                    countermoves, remaining[1:], others
                )
                if not assignments:
                    raise EcoEngineError(
                        "too many targets for expansion and no QBF "
                        "countermoves available"
                    )
            div_map = {nid: miter.impl_map[nid] for nid in divisors.ids}
            qm = build_quantified_miter(miter, current_pi, assignments, div_map)
            copies_total += qm.num_copies

            # reuse-aware costs: divisors earlier patches already read
            # are free for the contest's distinct-signal cost metric
            step_divisors = divisors
            if cfg.amortize_shared_support and used_names:
                step_divisors = _amortized_divisors(divisors, used_names)
            # compile the quantified miter once; both phases stamp/reuse it
            template = CnfTemplate(qm.net)
            solver = Solver()
            ctx = _SatContext(
                solver=solver,
                template=template,
                vars1=template.stamp(solver),
                vars2=template.stamp(solver),
            )
            with obs.span("engine.support", target=tname):
                support_ids = self._compute_support(qm, step_divisors, stats, ctx)
            with obs.span("engine.patch_function", target=tname):
                patch = self._compute_patch_function(
                    qm, step_divisors, support_ids, tname, instance, stats, ctx
                )
            apply_patch(current, patch)
            patches.append(patch)
            used_names.update(patch.support)
        stats["sat_miter_copies"] = copies_total
        return current, patches

    def _compute_support(
        self,
        qm,
        divisors: DivisorSet,
        stats: Dict[str, float],
        ctx: _SatContext,
    ) -> List[int]:
        """Expression (2) + support minimization; returns divisor ids."""
        cfg = self.config
        solver = ctx.solver
        vars1 = ctx.vars1
        vars2 = ctx.vars2
        po_node = dict(qm.net.pos)[QMITER_PO]
        m1, m2 = vars1[po_node], vars2[po_node]
        n1, n2 = vars1[qm.target_pi], vars2[qm.target_pi]
        selectors: Dict[int, int] = {}
        for nid in divisors.ids:
            dnode = qm.divisor_nodes[nid]
            s = solver.new_var()
            selectors[nid] = s
            add_equality(solver, vars1[dnode], vars2[dnode], mklit(s))

        base = [mklit(n1, True), mklit(m1), mklit(n2), mklit(m2)]
        ordered = list(divisors.ids)  # already cost-ascending
        all_lits = [mklit(selectors[n]) for n in ordered]
        sstats = SupportStats()
        if solver.solve(
            base + all_lits, budget_conflicts=cfg.budget_conflicts
        ):
            raise EcoEngineError(
                "divisor set cannot express a patch for this target "
                "(insufficient expansion or over-restricted candidates)"
            )

        lit_of = {nid: mklit(selectors[nid]) for nid in ordered}
        id_of = {lit: nid for nid, lit in lit_of.items()}

        def feasible_ids(ids: Sequence[int]) -> bool:
            try:
                return not solver.solve(
                    base + [lit_of[i] for i in ids],
                    budget_conflicts=cfg.budget_conflicts,
                )
            except SatBudgetExceeded:
                return False

        if cfg.support_method == "analyze_final":
            core = solver.core
            chosen = [nid for nid in ordered if lit_of[nid] in core]
        elif cfg.support_method in ("minassump", "satprune"):
            minimizer = AssumptionMinimizer(
                solver, base, cfg.budget_conflicts, sstats
            )
            kept = minimizer.minimize(all_lits, check=False)
            chosen = [id_of[lit] for lit in kept]
            if cfg.use_last_gasp:
                improved = last_gasp_improvement(
                    lambda lits: feasible_ids([id_of[l] for l in lits]),
                    [lit_of[n] for n in chosen],
                    [lit_of[n] for n in ordered],
                    {lit_of[n]: divisors.cost[n] for n in ordered},
                )
                chosen = [id_of[lit] for lit in improved]
            if cfg.support_method == "satprune":
                pstats = SatPruneStats()
                best = sat_prune(
                    ordered,
                    divisors.cost,
                    feasible_ids,
                    initial_solution=chosen,
                    grow=cfg.satprune_grow,
                    max_checks=cfg.satprune_max_checks,
                    stats=pstats,
                )
                stats["satprune_checks"] = stats.get(
                    "satprune_checks", 0
                ) + pstats.feasibility_checks
                if best is not None:
                    chosen = list(best)
        else:
            raise ValueError(f"unknown support method {cfg.support_method!r}")

        stats["support_sat_calls"] = stats.get("support_sat_calls", 0) + sstats.sat_calls
        obs.inc("engine.support_sat_calls", sstats.sat_calls)
        obs.annotate("support_size", len(chosen))
        chosen.sort(key=lambda n: (divisors.cost[n], n))
        return chosen

    def _compute_patch_function(
        self,
        qm,
        divisors: DivisorSet,
        support_ids: List[int],
        target_name: str,
        instance: EcoInstance,
        stats: Dict[str, float],
        ctx: _SatContext,
    ) -> Patch:
        """Section 3.5: cube enumeration over the chosen support.

        Runs on the support phase's solver (first stamp): the learned
        clauses carry over and the blocking clauses are group-retracted
        afterwards.  With ``patch_function_method="interpolation"`` the
        pre-paper proof-interpolation route ([15], expression (3)) is
        used instead.
        """
        cfg = self.config
        if cfg.patch_function_method == "interpolation":
            from .interp import interpolation_patch

            result = interpolation_patch(
                qm,
                support_ids,
                divisors.names,
                budget_conflicts=cfg.budget_conflicts,
            )
            net = result.network
            net.rename_po(0, target_name)
            kept = [
                i for i in support_ids if divisors.names[i] in set(result.support)
            ]
            return Patch(
                target=target_name,
                network=net,
                support=result.support,
                cost=sum(divisors.cost[i] for i in kept),
                gate_count=result.gate_count,
                method="interpolation",
            )
        solver = ctx.solver
        varmap = ctx.vars1
        po_node = dict(qm.net.pos)[QMITER_PO]
        m = varmap[po_node]
        n = varmap[qm.target_pi]
        divisor_vars = [varmap[qm.divisor_nodes[i]] for i in support_ids]
        obs.inc("engine.patch_solver_reuse")
        estats = EnumerationStats()
        group = solver.new_group()
        try:
            sop = enumerate_patch_sop(
                solver,
                onset_base=[mklit(m), mklit(n, True)],
                offset_base=[mklit(m), mklit(n)],
                divisor_vars=divisor_vars,
                blocking_extra=[mklit(n)],
                mode=cfg.enumeration_mode,
                max_cubes=cfg.max_cubes,
                budget_conflicts=cfg.budget_conflicts,
                stats=estats,
                blocking_group=group,
            )
        finally:
            solver.release_group(group)
        stats["cubes"] = stats.get("cubes", 0) + estats.cubes
        obs.inc("engine.cubes", estats.cubes)

        if (
            cfg.use_isop_refine
            and 0 < len(support_ids) <= cfg.isop_refine_max_support
        ):
            # enumerate the offset cover too, then re-minimize between
            # the bounds with ISOP (everything else is don't-care); the
            # onset blocking clauses were just retracted with their
            # group, so the offset-side checks run on the same solver
            from ..sop.isop import isop_refine

            group2 = solver.new_group()
            try:
                offset_sop = enumerate_patch_sop(
                    solver,
                    onset_base=[mklit(m), mklit(n)],
                    offset_base=[mklit(m), mklit(n, True)],
                    divisor_vars=divisor_vars,
                    blocking_extra=[mklit(n, True)],
                    mode=cfg.enumeration_mode,
                    max_cubes=cfg.max_cubes,
                    budget_conflicts=cfg.budget_conflicts,
                    blocking_group=group2,
                )
            finally:
                solver.release_group(group2)
            sop = isop_refine(sop, offset_sop)

        used_positions = sorted(
            {pos for cube in sop for pos in cube.literals()}
        )
        shrunk, kept_ids = _shrink_sop(sop, used_positions, support_ids)
        names = [divisors.names[i] for i in kept_ids]
        net = sop_to_network(shrunk, names, output_name=target_name)
        cost = sum(divisors.cost[i] for i in kept_ids)
        return Patch(
            target=target_name,
            network=net,
            support=names,
            cost=cost,
            gate_count=net.num_gates,
            method="sat",
        )

    # ------------------------------------------------------------------
    # structural fallback (Section 3.6)
    # ------------------------------------------------------------------

    def _structural_flow(
        self,
        instance: EcoInstance,
        spec: Network,
        window: Window,
        divisors: DivisorSet,
        countermoves: List[Dict[str, int]],
        stats: Dict[str, float],
    ) -> Tuple[Network, List[Patch]]:
        current = instance.impl.clone()
        patches: List[Patch] = []
        copies_total = 0

        use_certificate = len(instance.targets) > 1 and countermoves
        if use_certificate:
            target_ids = [current.node_by_name(t) for t in instance.targets]
            miter = build_miter(current, spec, target_ids, window.po_indices)
            moves = [
                {
                    pi: move.get(instance.targets[i], 0)
                    for i, pi in enumerate(miter.target_pis)
                }
                for move in countermoves
            ]
            infos, copies = certificate_patches(
                miter, moves, list(instance.targets)
            )
            copies_total += copies
            raw = [(t, info.network) for t, info in zip(instance.targets, infos)]
        else:
            raw = []
            for idx, tname in enumerate(instance.targets):
                remaining = instance.targets[idx:]
                remaining_ids = [current.node_by_name(t) for t in remaining]
                miter = build_miter(
                    current, spec, remaining_ids, window.po_indices
                )
                qm = build_quantified_miter(miter, miter.target_pis[0])
                info = structural_patch_single(qm, tname)
                copies_total += info.miter_copies
                raw.append((tname, info.network))
                patch = self._finish_structural_patch(
                    current, tname, info.network, divisors, instance, stats
                )
                apply_patch(current, patch)
                patches.append(patch)
            stats["structural_miter_copies"] = copies_total
            return current, patches

        for tname, net in raw:
            patch = self._finish_structural_patch(
                current, tname, net, divisors, instance, stats
            )
            apply_patch(current, patch)
            patches.append(patch)
        stats["structural_miter_copies"] = copies_total
        return current, patches

    def _finish_structural_patch(
        self,
        current: Network,
        target_name: str,
        patch_net: Network,
        divisors: DivisorSet,
        instance: EcoInstance,
        stats: Dict[str, float],
    ) -> Patch:
        cfg = self.config
        method = "structural"
        support = [patch_net.node(pi).name for pi in patch_net.pis]
        cost = sum(
            instance.weights.get(s, instance.default_weight) for s in support
        )
        gate_count = patch_net.num_gates
        if cfg.use_resub:
            # §3.6.3, SAT variant: re-express the PI patch over internal
            # divisors; only the implementation is involved, so the
            # queries are lighter than the full support computation
            from ..sop.synth import sop_to_network
            from .resub import resubstitute

            with obs.span("engine.resub", target=target_name):
                rr = resubstitute(
                    current,
                    patch_net,
                    divisors.ids,
                    divisors.cost,
                    budget_conflicts=cfg.budget_conflicts,
                    max_cubes=cfg.max_cubes,
                )
            if rr is not None:
                used = sorted(
                    {p for cube in rr.sop for p in cube.literals()}
                )
                kept = [rr.divisor_ids[p] for p in used]
                new_cost = sum(divisors.cost[i] for i in kept)
                if new_cost < cost:
                    shrunk = _shrink_sop(rr.sop, used, rr.divisor_ids)[0]
                    names = [divisors.names[i] for i in kept]
                    candidate = sop_to_network(shrunk, names, target_name)
                    if candidate.num_gates <= max(gate_count, 1) * 4:
                        patch_net = candidate
                        support = names
                        cost = new_cost
                        gate_count = candidate.num_gates
                        method = "resub"
        if cfg.use_cegar_min:
            with obs.span("engine.cegar_min", target=target_name):
                result = cegar_min(
                    current,
                    patch_net,
                    candidate_ids=divisors.ids,
                    weight_of=divisors.cost,
                    sim_patterns=cfg.sim_patterns,
                    seed=cfg.seed,
                    budget_conflicts=cfg.budget_conflicts,
                )
            stats["cegarmin_sat_calls"] = stats.get(
                "cegarmin_sat_calls", 0
            ) + result.sat_calls
            if result.cost < cost or (
                result.cost == cost and result.gate_count < gate_count
            ):
                patch_net = result.network
                support = result.support
                cost = result.cost
                gate_count = result.gate_count
                method = "cegar_min"
        return Patch(
            target=target_name,
            network=patch_net,
            support=support,
            cost=cost,
            gate_count=gate_count,
            method=method,
        )


def _amortized_divisors(divisors: DivisorSet, used_names: set) -> DivisorSet:
    """Copy of a divisor set with already-used signals costed at zero.

    Divisor *ordering* (retention preference) is recomputed so the free
    signals come first; the patch-level cost bookkeeping then naturally
    charges each distinct signal once across the whole run.
    """
    cost = {
        nid: (0 if divisors.names[nid] in used_names else c)
        for nid, c in divisors.cost.items()
    }
    order = {nid: i for i, nid in enumerate(divisors.ids)}
    ids = sorted(divisors.ids, key=lambda n: (cost[n], order[n]))
    return DivisorSet(ids=ids, cost=cost, names=dict(divisors.names))


def _project_countermoves(
    countermoves: List[Dict[str, int]],
    names: Sequence[str],
    pis: Sequence[int],
) -> List[Dict[int, int]]:
    """Convert name-keyed countermoves to PI-keyed expansion assignments."""
    out: List[Dict[int, int]] = []
    seen = set()
    for move in countermoves:
        proj = {pi: move.get(name, 0) for name, pi in zip(names, pis)}
        key = tuple(sorted(proj.items()))
        if key not in seen:
            seen.add(key)
            out.append(proj)
    return out


def _shrink_sop(
    sop: Sop, used_positions: List[int], support_ids: List[int]
) -> Tuple[Sop, List[int]]:
    """Restrict an SOP to the positions that actually appear in cubes."""
    from ..sop.cube import Cube

    index = {pos: i for i, pos in enumerate(used_positions)}
    out = Sop(len(used_positions))
    for cube in sop:
        out.add(
            Cube.from_literals(
                len(used_positions),
                {index[p]: v for p, v in cube.literals().items()},
            )
        )
    kept_ids = [support_ids[p] for p in used_positions]
    return out, kept_ids
