"""Patch objects and patch insertion.

A :class:`Patch` is a self-contained network whose PIs are named after
implementation signals and whose single PO is the new function of one
target.  Applying a patch splices that network into the implementation
and redrives the target node with its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .pipeline import EngineStats

from ..network.network import Network
from ..network.node import GateType


@dataclass
class Patch:
    """One target's replacement function.

    Attributes:
        target: name of the implementation node being re-driven.
        network: single-PO network; PI names refer to implementation
            signals (PIs or internal nodes outside every target's TFO).
        support: the PI names of :attr:`network` (patch inputs).
        cost: total resource cost of the support signals.
        gate_count: gates in :attr:`network`.
        method: provenance tag (``"sat"``, ``"structural"``,
            ``"cegar_min"``, ``"interpolation"``, ...).
    """

    target: str
    network: Network
    support: List[str]
    cost: int
    gate_count: int
    method: str = "sat"


@dataclass
class EcoResult:
    """Outcome of a full ECO run (one Table 1 cell group).

    ``cost`` counts each distinct support signal once across all patch
    functions (the contest metric); ``gate_count`` sums patch gates.
    """

    instance_name: str
    patches: List[Patch]
    cost: int
    gate_count: int
    verified: bool
    runtime_seconds: float
    method: str
    #: per-run summary counters; int-valued event counts and float-valued
    #: measurements share the mapping (times live in ``repro.obs`` spans).
    #: Derived from :attr:`engine_stats` via ``EngineStats.to_dict()`` when
    #: the run went through the pass pipeline; kept as the stable
    #: backward-compatible surface (bench rows, ``stats.get(...)`` users).
    stats: Dict[str, Union[int, float]] = field(default_factory=dict)
    #: the typed statistics object the pipeline accumulated (None for
    #: synthetic results such as degraded harness placeholder rows)
    engine_stats: Optional["EngineStats"] = None

    @property
    def support(self) -> List[str]:
        names = []
        for p in self.patches:
            names.extend(p.support)
        return sorted(set(names))


def apply_patch(impl: Network, patch: Patch) -> int:
    """Splice ``patch`` into ``impl``; returns the patch output node id.

    The target node keeps its id and name but becomes a buffer of the
    patch output, so every fanout (and PO) of the target sees the new
    function.
    """
    target_id = impl.node_by_name(patch.target)
    input_map: Dict[int, int] = {}
    for pi in patch.network.pis:
        name = patch.network.node(pi).name
        if not impl.has_name(name):
            raise ValueError(f"patch input {name!r} not found in implementation")
        input_map[pi] = impl.node_by_name(name)
    mapping = impl.append(patch.network, input_map)
    po_node = mapping[patch.network.pos[0][1]]
    if po_node == target_id:
        return po_node
    impl.set_fanins(target_id, GateType.BUF, [po_node])
    return po_node


def apply_patches(impl: Network, patches: Sequence[Patch]) -> Network:
    """Return a patched *clone* of ``impl`` with all patches applied."""
    out = impl.clone()
    for patch in patches:
        apply_patch(out, patch)
    return out
