"""Pass-pipeline engine: the Figure 2 flow as composable passes.

The ECO flow is a staged pipeline (feasibility → structural prune →
per-target support/patch-function → structural fallback → CEGAR_min →
verify).  This module provides the framework that executes it:

* :class:`EcoContext` — the typed state shared by every pass: the
  instance, working networks, the run-level :class:`ConflictBudget`,
  the typed :class:`EngineStats`, and the per-target
  :class:`TargetState` (quantified miter + shared incremental-SAT
  :class:`SatContext`);
* :class:`Pass` — the protocol each stage implements (``name`` +
  ``run(ctx) -> PassOutcome``); pass bodies live next to the algorithms
  they wrap (``FeasibilityPass`` in :mod:`repro.core.feasibility`,
  ``SupportPass`` in :mod:`repro.core.support`, ...);
* :class:`PassManager` — executes a declarative :class:`Pipeline`:
  prologue passes, then a fallback *chain* of strategies
  (``sat_flow → certificate → structural``) where a strategy failing
  with a budget/enumeration/engine error advances the chain instead of
  raising out of ``run()``, then epilogue passes, and finally result
  finalizers.  Every stage runs under a uniform ``engine.<name>``
  observability span, which is where the per-pass wall-time columns of
  ``BENCH_table1.json`` come from.

Pipeline *assembly* (which passes a configuration maps to) lives in
:mod:`repro.core.engine`; this module deliberately imports no phase
module except for the two fallback-signal exception types.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from .. import obs
from ..sat.backend import QueryTraits, solver_for
from ..sat.solver import (
    SatBudgetExceeded,
    SatDeadlineExceeded,
    Solver,
    conflict_tally,
    set_solve_deadline,
)
from ..sat.template import CnfTemplate, template_for
from .miter import build_miter
from .patch import EcoResult, Patch, apply_patch
from .quantify import build_quantified_miter

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..io.weights import EcoInstance
    from ..network.network import Network
    from ..network.window import Window
    from ..resilience.faultplan import FaultInjector
    from ..resilience.retry import RetryPolicy
    from .divisors import DivisorSet
    from .engine import EcoConfig
    from .feasibility import FeasibilityResult
    from .quantify import QuantifiedMiter


class EcoEngineError(Exception):
    """Raised when no strategy could produce a patch within its budget."""


# ---------------------------------------------------------------------------
# pass contracts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PassContract:
    """Declared dataflow of one pipeline stage over the shared context.

    Field names refer to :class:`EcoContext` dataclass fields
    (``"window"``, ``"divisors"``, ...) or, with a ``target.`` prefix,
    to :class:`TargetState` fields (``"target.support_ids"``).  Ambient
    plumbing fields (``config``, ``stats``, ``budget``, ``trace``,
    ``t_start``, ``deadline``) are implicit and must not be declared.

    Attributes:
        reads: fields the stage requires; an earlier stage (or the
            framework) must have written them or the static verifier
            reports ``PA001``.
        writes: fields the stage produces for downstream consumers.
        reads_optional: fields the stage uses only when present (it
            tolerates their default value), e.g. the certificate
            strategy's QBF countermoves.
        reads_late: fields the stage reads *after* its nested passes
            ran, e.g. a strategy collecting ``target.patch`` from its
            per-target passes.
        writes_optional: byproduct writes that need no downstream
            consumer (exempt from ``PA002`` dead-write detection).
        uses_solver: the stage issues SAT queries.
        mutates_network: the stage splices logic into a working network
            (two such stages can never share one network copy).
        optional: mirrors :attr:`Pass.optional` (deadline-skippable);
            the verifier flags a mismatch between the two declarations.
    """

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    reads_optional: FrozenSet[str] = frozenset()
    reads_late: FrozenSet[str] = frozenset()
    writes_optional: FrozenSet[str] = frozenset()
    uses_solver: bool = False
    mutates_network: bool = False
    optional: bool = False

    def all_reads(self) -> FrozenSet[str]:
        """Every field the stage may look at (any read category)."""
        return self.reads | self.reads_optional | self.reads_late

    def all_writes(self) -> FrozenSet[str]:
        """Every field the stage may assign (required + byproduct)."""
        return self.writes | self.writes_optional

    def conflicts_with(self, other: "PassContract") -> bool:
        """True when the two stages cannot run concurrently.

        Write/write and read/write overlaps conflict; so do two stages
        that both mutate a working network (they'd race on the splice).
        """
        if self.mutates_network and other.mutates_network:
            return True
        if self.all_writes() & other.all_writes():
            return True
        if self.all_writes() & other.all_reads():
            return True
        if other.all_writes() & self.all_reads():
            return True
        return False


def contract(
    reads: Iterable[str] = (),
    writes: Iterable[str] = (),
    reads_optional: Iterable[str] = (),
    reads_late: Iterable[str] = (),
    writes_optional: Iterable[str] = (),
    uses_solver: bool = False,
    mutates_network: bool = False,
    optional: bool = False,
) -> PassContract:
    """Readable constructor for :class:`PassContract` declarations."""
    return PassContract(
        reads=frozenset(reads),
        writes=frozenset(writes),
        reads_optional=frozenset(reads_optional),
        reads_late=frozenset(reads_late),
        writes_optional=frozenset(writes_optional),
        uses_solver=uses_solver,
        mutates_network=mutates_network,
        optional=optional,
    )


#: Context fields every stage may touch without declaring them:
#: configuration, accounting, and framework plumbing.
AMBIENT_FIELDS: FrozenSet[str] = frozenset(
    {
        "config",
        "stats",
        "budget",
        "trace",
        "t_start",
        "deadline",
        "target",
        # target identity plumbing, set by the enclosing strategy
        "target.name",
        "target.index",
    }
)

#: Fields populated by :class:`EcoEngine` before the pipeline starts.
INITIAL_FIELDS: FrozenSet[str] = frozenset({"instance", "base_impl", "spec"})

#: Fields the strategy-chain framework provides to every strategy
#: (a pristine working clone and an empty patch list).
CHAIN_PROVIDED_FIELDS: FrozenSet[str] = frozenset({"current", "patches"})

#: Fields consumed by result assembly after the pipeline: writes that
#: land here are never "dead".
SINK_FIELDS: FrozenSet[str] = frozenset(
    {"current", "patches", "method", "verified", "result"}
)


# ---------------------------------------------------------------------------
# typed statistics
# ---------------------------------------------------------------------------


@dataclass
class EngineStats:
    """Typed per-run statistics (replaces the ad-hoc ``stats[...]`` keys).

    Fields default to ``None`` when the corresponding stage may not run;
    :meth:`to_dict` emits only touched fields, reproducing the exact key
    set the string-keyed dict used to carry (``bench_table1.py`` rows,
    committed ``BENCH_table1.json`` fields, and ``res.stats.get(...)``
    call sites stay backward-compatible).
    """

    window_pos: int = 0
    divisor_candidates: int = 0
    feasibility_copies: int = 0
    feasibility_unknown: Optional[int] = None
    sat_flow_fallback: Optional[int] = None
    #: exception class name → count, exported as ``fallback_reason_<Name>``
    fallback_reasons: Dict[str, int] = field(default_factory=dict)
    #: ordered ``"strategy:ExceptionName"`` entries, one per chain advance
    fallback_chain: List[str] = field(default_factory=list)
    sat_miter_copies: Optional[int] = None
    structural_miter_copies: Optional[int] = None
    support_sat_calls: Optional[int] = None
    satprune_checks: Optional[int] = None
    cubes: Optional[int] = None
    cegarmin_sat_calls: Optional[int] = None
    certificate_checked: Optional[int] = None
    budget_conflicts_spent: Optional[int] = None
    #: transient-exhaustion retries taken by the RetryPolicy (per run)
    retries: Optional[int] = None
    #: ConflictBudget limit escalations performed by those retries
    budget_escalations: Optional[int] = None

    _OPTIONAL = (
        "feasibility_unknown",
        "sat_flow_fallback",
        "sat_miter_copies",
        "structural_miter_copies",
        "support_sat_calls",
        "satprune_checks",
        "cubes",
        "cegarmin_sat_calls",
        "certificate_checked",
        "budget_conflicts_spent",
        "retries",
        "budget_escalations",
    )

    def bump(self, name: str, delta: int = 1) -> None:
        """Increment a counter field, initializing it from ``None``."""
        setattr(self, name, (getattr(self, name) or 0) + delta)

    def record_fallback(self, strategy: str, exc: BaseException) -> None:
        """One chain advance: ``strategy`` failed with ``exc``."""
        reason = type(exc).__name__
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        self.fallback_chain.append(f"{strategy}:{reason}")
        if strategy == "sat_flow":
            self.bump("sat_flow_fallback")

    def to_dict(self) -> Dict[str, Any]:
        """Backward-compatible flat mapping (the old ``stats`` dict)."""
        out: Dict[str, Any] = {
            "window_pos": self.window_pos,
            "divisor_candidates": self.divisor_candidates,
            "feasibility_copies": self.feasibility_copies,
        }
        for name in self._OPTIONAL:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        for reason, count in self.fallback_reasons.items():
            out[f"fallback_reason_{reason}"] = count
        return out


# ---------------------------------------------------------------------------
# run-level conflict budget
# ---------------------------------------------------------------------------


class ConflictBudget:
    """Run-level SAT conflict budget with decrement-on-use accounting.

    ``EcoConfig.budget_conflicts`` used to be re-passed verbatim at every
    solver call site, making the "budget" per-call rather than global.
    A :class:`ConflictBudget` is created once per engine run and carried
    on the :class:`EcoContext`; passes wrap their SAT work in
    :meth:`metered`, which yields the per-call cap (the remaining global
    budget) and charges every conflict analyzed inside the region —
    including those of internal solvers the region constructs — against
    the run total via the process-wide :func:`repro.sat.solver.conflict_tally`.

    When the budget is exhausted the cap drops to 0: conflict-free
    queries still succeed, anything harder raises
    :class:`~repro.sat.solver.SatBudgetExceeded`, which the
    :class:`PassManager` turns into a fallback-chain advance instead of
    an error out of ``run()``.
    """

    __slots__ = ("limit", "spent", "_depth")

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self.spent = 0
        self._depth = 0

    @property
    def remaining(self) -> Optional[int]:
        """Conflicts left, or ``None`` when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.spent)

    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit

    def escalate(self, factor: float) -> bool:
        """Grow the limit for a retry; ``False`` when unlimited.

        An unlimited budget cannot be escalated — exhaustion under it
        came from somewhere harder than the budget (so a retry with
        "more budget" would re-run the exact same failure).
        """
        if self.limit is None:
            return False
        self.limit = max(self.limit + 1, int(self.limit * factor))
        return True

    def metered(self) -> "_MeteredRegion":
        """Context manager: yields the per-call cap, charges on exit.

        Regions nest safely: only the outermost region charges, so a
        pass may wrap its whole body while helpers it calls meter their
        own solver work.  The cap is the remaining budget at entry of
        the outermost open region (solver calls inside a region each see
        that cap, matching the old per-call semantics within a phase).
        """
        return _MeteredRegion(self)


class _MeteredRegion:
    __slots__ = ("_budget", "_mark", "_outermost")

    def __init__(self, budget: ConflictBudget) -> None:
        self._budget = budget
        self._mark = 0
        self._outermost = False

    def __enter__(self) -> Optional[int]:
        self._outermost = self._budget._depth == 0
        self._budget._depth += 1
        if self._outermost:
            self._mark = conflict_tally()
        return self._budget.remaining

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._budget._depth -= 1
        if self._outermost:
            self._budget.spent += conflict_tally() - self._mark


# ---------------------------------------------------------------------------
# shared context
# ---------------------------------------------------------------------------


@dataclass
class SatContext:
    """Shared incremental-SAT state for one target iteration.

    One solver holds two template stamps of the quantified miter; the
    support computation and the patch-function enumeration both run on
    it.  Reuse is sound because every support-phase constraint is
    assumption-scoped (base literals and selector-guarded equalities)
    and enumeration blocking clauses live in retractable groups.
    """

    solver: Solver
    template: CnfTemplate
    vars1: Dict[int, int]
    vars2: Dict[int, int]


@dataclass
class TargetState:
    """Per-target scratch state threaded through the per-target passes.

    The SAT flow populates ``qm``/``sat``/``divisors`` during setup;
    ``SupportPass`` fills ``support_ids`` and the ``feasible_ids``
    oracle (consumed by ``SatPrunePass``); ``PatchFunctionPass`` — or a
    structural strategy — leaves the finished candidate in ``patch`` for
    the finishing passes (``ResubPass``, ``CegarMinPass``) to improve.
    """

    name: str
    index: int
    qm: Optional["QuantifiedMiter"] = None
    divisors: Optional["DivisorSet"] = None
    sat: Optional[SatContext] = None
    support_ids: List[int] = field(default_factory=list)
    #: subset-feasibility oracle over divisor ids (set by SupportPass)
    feasible_ids: Optional[Callable[[Sequence[int]], bool]] = None
    patch: Optional[Patch] = None


@dataclass
class EcoContext:
    """Everything ``EcoEngine._run_phases`` used to thread by hand."""

    instance: "EcoInstance"
    config: "EcoConfig"
    stats: EngineStats
    budget: ConflictBudget
    t_start: float
    base_impl: "Network"
    spec: "Network"
    target_ids: List[int] = field(default_factory=list)
    window: Optional["Window"] = None
    divisors: Optional["DivisorSet"] = None
    feasibility: Optional["FeasibilityResult"] = None
    #: QBF countermoves re-keyed by target name (certificate material)
    countermoves_by_name: List[Dict[str, int]] = field(default_factory=list)
    #: working network of the active strategy (fresh clone per strategy)
    current: Optional["Network"] = None
    patches: List[Patch] = field(default_factory=list)
    method: str = "sat"
    verified: bool = True
    target: Optional[TargetState] = None
    #: wall-clock deadline (perf_counter seconds); optional passes are
    #: skipped and the SAT flow yields to structural once it has passed
    deadline: Optional[float] = None
    #: ordered ``(stage_name, outcome)`` trace of executed stages
    trace: List[Tuple[str, str]] = field(default_factory=list)
    result: Optional[EcoResult] = None

    def past_deadline(self) -> bool:
        return self.deadline is not None and time.perf_counter() > self.deadline


# ---------------------------------------------------------------------------
# pass protocol
# ---------------------------------------------------------------------------

OK = "ok"
SKIPPED = "skipped"


@dataclass
class PassOutcome:
    """What one pass execution did (``ok`` or ``skipped`` + detail)."""

    status: str = OK
    detail: str = ""


class Pass:
    """Base class for pipeline stages.

    Subclasses set ``name`` (the stage's identity: CLI ``--passes``
    selector, ``engine.<name>`` span key, and ``BENCH_table1.json``
    per-pass column) and implement :meth:`run`.  ``optional`` marks
    improvement passes that may be skipped past the wall-clock deadline.
    ``contract`` declares the stage's dataflow over the shared context
    (see :class:`PassContract`); :mod:`repro.analyze` verifies any
    pipeline against these declarations before execution, and
    :class:`PassManager` can cross-check them against actual attribute
    access at runtime (``enforce_contracts=True``).
    """

    name: str = "pass"
    optional: bool = False
    #: declared dataflow; ``None`` means undeclared (the static
    #: verifier reports PA003 for undeclared stages)
    contract: Optional[PassContract] = None

    def span_attrs(self, ctx: EcoContext) -> Dict[str, Any]:
        """Attributes for the ``engine.<name>`` span (e.g. the target)."""
        if ctx.target is not None:
            return {"target": ctx.target.name}
        return {}

    def run(self, ctx: EcoContext) -> PassOutcome:  # pragma: no cover
        raise NotImplementedError


# ---------------------------------------------------------------------------
# strategies (the fallback chain)
# ---------------------------------------------------------------------------


class Strategy:
    """One entry of the fallback chain.

    A strategy owns a whole patch-producing flow.  ``applicable`` gates
    it on the context (e.g. the certificate construction needs QBF
    countermoves); ``run`` must leave ``ctx.patches`` / ``ctx.current``
    / ``ctx.method`` populated or raise one of
    :data:`FALLBACK_EXCEPTIONS` to advance the chain.
    """

    name: str = "strategy"
    #: declared dataflow (same protocol as :attr:`Pass.contract`)
    contract: Optional[PassContract] = None

    def applicable(self, ctx: EcoContext) -> bool:
        return True

    def run(self, ctx: EcoContext, manager: "PassManager") -> None:
        raise NotImplementedError  # pragma: no cover


def _lazy_fallback_exceptions() -> Tuple[type, ...]:
    # deferred: feasibility/patchfunc are phase modules; importing them
    # at module load would be fine today but keeps the framework honest
    from .feasibility import EcoInfeasibleError
    from .patchfunc import PatchEnumerationError

    return (
        SatBudgetExceeded,
        PatchEnumerationError,
        EcoEngineError,
        EcoInfeasibleError,
    )


def _is_transient(exc: BaseException) -> bool:
    """Whether a fallback exception is worth retrying with more budget.

    Only genuine conflict-budget exhaustion qualifies: a bigger budget
    can change its outcome.  Deadline exhaustion
    (:class:`SatDeadlineExceeded`) is excluded — wall-clock does not
    come back — as is every structural/enumeration failure.
    """
    return isinstance(exc, SatBudgetExceeded) and not isinstance(
        exc, SatDeadlineExceeded
    )


class SatFlowStrategy(Strategy):
    """The SAT-based flow: one target at a time (Sections 3.1, 3.4, 3.5).

    Per target: build the (partially expanded) quantified miter, compile
    its CNF template once, stamp it twice into one shared solver, then
    run the configured per-target passes (``support`` [→ ``satprune``]
    → ``patch_function``) and splice the resulting patch in.
    """

    name = "sat_flow"
    contract = contract(
        reads=("instance", "spec", "window", "divisors", "current"),
        reads_optional=("feasibility", "countermoves_by_name"),
        reads_late=("target.patch",),
        writes=("target.qm", "target.divisors", "target.sat",
                "patches", "method"),
        uses_solver=True,
        mutates_network=True,
    )

    def __init__(self, target_passes: Sequence[Pass]) -> None:
        self.target_passes = list(target_passes)

    def applicable(self, ctx: EcoContext) -> bool:
        if ctx.config.structural_only:
            return False
        # ctx.feasibility is None when the feasibility pass was skipped
        # via --passes: feasibility is then *assumed*.  A FeasibilityResult
        # with feasible=None means the budget ran out — the paper assumes
        # feasibility there too but goes straight to the structural patch.
        if ctx.feasibility is not None and ctx.feasibility.feasible is not True:
            return False
        if ctx.past_deadline():
            return False
        return True

    def run(self, ctx: EcoContext, manager: "PassManager") -> None:
        cfg = ctx.config
        instance = ctx.instance
        current = ctx.current
        assert current is not None and ctx.window is not None
        assert ctx.divisors is not None
        copies_total = 0
        used_names: set = set()
        pending: List[Tuple[int, Patch]] = []
        for idx, tname in enumerate(instance.targets):
            remaining = instance.targets[idx:]
            remaining_ids = [current.node_by_name(t) for t in remaining]
            miter = build_miter(
                current, ctx.spec, remaining_ids, ctx.window.po_indices
            )
            current_pi = miter.target_pis[0]
            others = miter.target_pis[1:]
            assignments = None
            if len(others) > cfg.max_expansion_targets:
                assignments = _project_countermoves(
                    ctx.countermoves_by_name, remaining[1:], others
                )
                if not assignments:
                    raise EcoEngineError(
                        "too many targets for expansion and no QBF "
                        "countermoves available"
                    )
            div_map = {
                nid: miter.impl_map[nid] for nid in ctx.divisors.ids
            }
            qm = build_quantified_miter(miter, current_pi, assignments, div_map)
            copies_total += qm.num_copies

            # reuse-aware costs: divisors earlier patches already read
            # are free for the contest's distinct-signal cost metric
            step_divisors = ctx.divisors
            if cfg.amortize_shared_support and used_names:
                step_divisors = _amortized_divisors(ctx.divisors, used_names)
            # compile the quantified miter once; both phases stamp/reuse
            # it — structurally repeated miters come from the template
            # memo (or, inside batch workers, the shared-memory arena)
            template = template_for(
                qm.net, getattr(cfg, "memoize_templates", True)
            )
            solver = solver_for(
                QueryTraits(incremental=True, needs_groups=True)
            )
            ctx.target = TargetState(
                name=tname,
                index=idx,
                qm=qm,
                divisors=step_divisors,
                sat=SatContext(
                    solver=solver,
                    template=template,
                    vars1=template.stamp(solver),
                    vars2=template.stamp(solver),
                ),
            )
            try:
                self._run_target_passes(ctx, manager)
                patch = ctx.target.patch
                if patch is None:
                    raise EcoEngineError(
                        f"per-target passes produced no patch for {tname!r}"
                    )
            finally:
                ctx.target = None
            apply_patch(current, patch)
            pending.append((idx, patch))
            used_names.update(patch.support)
        # deferred composition: patches land in ctx.patches in target
        # order through one deterministic merge, independent of how the
        # per-target passes were executed (see repro.batch.schedule)
        pending.sort(key=lambda entry: entry[0])
        ctx.patches.extend(patch for _, patch in pending)
        ctx.stats.sat_miter_copies = copies_total
        ctx.method = "sat"

    def _run_target_passes(self, ctx: EcoContext, manager: "PassManager") -> None:
        """Execute the per-target chain; the batch scheduler's subclass
        replaces this with the analyzer's wave partition order."""
        for p in self.target_passes:
            manager.run_pass(p, ctx)


# ---------------------------------------------------------------------------
# pipeline + manager
# ---------------------------------------------------------------------------


@dataclass
class Pipeline:
    """A declarative phase graph: what runs, in which order.

    ``prologue`` passes run once and populate shared context;
    ``strategies`` form the fallback chain (first applicable one that
    completes wins); ``epilogue`` passes run on the winning result
    (verification); ``finalizers`` run after the :class:`EcoResult` has
    been assembled (independent certificate checking).
    """

    prologue: List[Pass] = field(default_factory=list)
    strategies: List[Strategy] = field(default_factory=list)
    epilogue: List[Pass] = field(default_factory=list)
    finalizers: List[Pass] = field(default_factory=list)

    def stage_names(self) -> List[str]:
        names = [p.name for p in self.prologue]
        for strat in self.strategies:
            names.append(strat.name)
            for p in getattr(strat, "target_passes", []):
                if p.name not in names:
                    names.append(p.name)
            for p in getattr(strat, "finish_passes", []):
                if p.name not in names:
                    names.append(p.name)
        names.extend(p.name for p in self.epilogue)
        names.extend(p.name for p in self.finalizers)
        return names


class PassManager:
    """Executes a :class:`Pipeline` over an :class:`EcoContext`.

    Uniform per-stage behavior lives here, not in the passes: the
    ``engine.<name>`` span, deadline-based skipping of optional passes,
    fallback accounting (``EngineStats`` + ``engine.fallback.*``
    counters), and the per-strategy fresh working clone.

    With ``enforce_contracts=True`` every pass runs against an
    access-recording view of the context and its observed reads/writes
    are cross-checked against the pass's declared
    :class:`PassContract`; an undeclared access raises
    :class:`repro.analyze.enforce.ContractViolationError`.  This is the
    opt-in dynamic complement of the static verifier, meant for tests.
    """

    def __init__(self, enforce_contracts: bool = False) -> None:
        self.enforce_contracts = enforce_contracts
        #: armed fault-injection state (``EcoConfig.faults``), one per run
        self._injector: Optional["FaultInjector"] = None

    def run_pass(self, p: Pass, ctx: EcoContext) -> PassOutcome:
        if p.optional and ctx.past_deadline():
            ctx.trace.append((p.name, SKIPPED))
            obs.inc("engine.pass_deadline_skipped")
            return PassOutcome(SKIPPED, "deadline exceeded")
        # span_attrs builds a dict per pass execution; skip it entirely
        # when telemetry is off (the common production case) so the hot
        # per-target loop pays only the null-span check
        attrs = p.span_attrs(ctx) if obs.enabled() else {}
        with obs.span(f"engine.{p.name}", **attrs):
            if self._injector is not None:
                self._injector.check(
                    p.name, ctx.target.name if ctx.target is not None else None
                )
            if self.enforce_contracts:
                # deferred: repro.analyze imports from this module
                from ..analyze.enforce import ContextMonitor

                monitor = ContextMonitor(ctx)
                outcome = p.run(monitor.view())  # type: ignore[arg-type]
                monitor.check(p)
            else:
                outcome = p.run(ctx)
        if outcome is None:
            outcome = PassOutcome()
        ctx.trace.append((p.name, outcome.status))
        return outcome

    def execute(self, ctx: EcoContext, pipeline: Pipeline) -> EcoResult:
        faults = getattr(ctx.config, "faults", None)
        if faults is not None and faults.active():
            # deferred: repro.resilience is a leaf layer, but the
            # framework only pays the import when injection is armed
            from ..resilience.faultplan import FaultInjector

            self._injector = FaultInjector(faults)
        for p in pipeline.prologue:
            self.run_pass(p, ctx)
        # window/divisor figures annotate the enclosing engine.run span,
        # exactly where the pre-pipeline engine recorded them
        obs.annotate("window_pos", ctx.stats.window_pos)
        obs.annotate("divisor_candidates", ctx.stats.divisor_candidates)

        self._run_chain(ctx, pipeline.strategies)

        for p in pipeline.epilogue:
            self.run_pass(p, ctx)

        ctx.result = self._assemble_result(ctx)
        for p in pipeline.finalizers:
            self.run_pass(p, ctx)
        # finalizers may touch stats (e.g. certificate_checked);
        # re-derive the compat dict so the result reflects them
        ctx.result.stats = ctx.stats.to_dict()
        return ctx.result

    # -- fallback chain -------------------------------------------------

    def _run_chain(self, ctx: EcoContext, strategies: List[Strategy]) -> None:
        runnable = [s for s in strategies if s.applicable(ctx)]
        if not runnable:
            raise EcoEngineError(
                f"{ctx.instance.name}: no applicable strategy "
                f"(chain: {[s.name for s in strategies]})"
            )
        policy: Optional["RetryPolicy"] = getattr(
            ctx.config, "retry_policy", None
        )
        # the in-solver watchdog is scoped to the fallback chain: the
        # prologue (feasibility) and epilogue (verification) must run
        # to completion, and the last-resort strategy must produce
        # *some* result — so a passed deadline degrades to the
        # structural answer (its optional passes are still
        # deadline-skipped) instead of raising SatDeadlineExceeded out
        # of the whole run
        # lazy-clone bookkeeping, scoped to this chain run: the working
        # clone and its pristine version number (Network.version right
        # after cloning).  Chain-local on purpose — not an EcoContext
        # field, so pass contracts are unaffected.
        clone_state: Dict[str, Any] = {"net": None, "version": -1}
        try:
            for pos, strat in enumerate(runnable):
                is_last = pos == len(runnable) - 1
                if ctx.deadline is not None:
                    set_solve_deadline(None if is_last else ctx.deadline)
                if self._chain_body(ctx, strat, is_last, policy, clone_state):
                    return
        finally:
            set_solve_deadline(None)

    def _chain_body(
        self,
        ctx: EcoContext,
        strat: Strategy,
        is_last: bool,
        policy: Optional["RetryPolicy"],
        clone_state: Dict[str, Any],
    ) -> bool:
        """One strategy's attempt loop; True when it produced a result."""
        fallback_excs = _lazy_fallback_exceptions()
        attempts = 0
        while True:
            # every attempt starts from a pristine implementation: a
            # failed SAT flow may have spliced partial patches into its
            # working clone.  Clone *lazily*: reuse the standing clone
            # when no prior attempt mutated it (tracked by the network's
            # version counter), so the common clean first-try success
            # pays for exactly one copy instead of one per strategy.
            cur = ctx.current
            if (
                cur is None
                or cur is not clone_state["net"]
                or cur.version != clone_state["version"]
            ):
                cur = ctx.instance.impl.clone()
                obs.inc("engine.clones")
                ctx.current = cur
                clone_state["net"] = cur
                clone_state["version"] = cur.version
            ctx.patches = []
            try:
                with obs.span(f"engine.{strat.name}"):
                    if self._injector is not None:
                        self._injector.check(strat.name, None)
                    strat.run(ctx, self)
                ctx.trace.append((strat.name, OK))
                return True
            except fallback_excs as exc:
                if (
                    policy is not None
                    and attempts < policy.max_retries
                    and _is_transient(exc)
                    and ctx.budget.escalate(policy.budget_escalation)
                ):
                    attempts += 1
                    ctx.stats.bump("retries")
                    ctx.stats.bump("budget_escalations")
                    obs.inc("engine.retry")
                    ctx.trace.append(
                        (strat.name, f"retry:{type(exc).__name__}")
                    )
                    delay = policy.backoff_seconds(attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                ctx.stats.record_fallback(strat.name, exc)
                obs.inc(f"engine.fallback.{type(exc).__name__}")
                if strat.name == "sat_flow":
                    obs.inc("engine.sat_flow_fallback")
                ctx.trace.append(
                    (strat.name, f"fallback:{type(exc).__name__}")
                )
                if is_last:
                    raise
                return False

    # -- result assembly ------------------------------------------------

    def _assemble_result(self, ctx: EcoContext) -> EcoResult:
        instance = ctx.instance
        if ctx.budget.limit is not None:
            ctx.stats.budget_conflicts_spent = ctx.budget.spent
        support_names = sorted(
            {name for p in ctx.patches for name in p.support}
        )
        total_cost = sum(
            instance.weights.get(n, instance.default_weight)
            for n in support_names
        )
        total_gates = sum(p.gate_count for p in ctx.patches)
        return EcoResult(
            instance_name=instance.name,
            patches=ctx.patches,
            cost=total_cost,
            gate_count=total_gates,
            verified=ctx.verified,
            runtime_seconds=time.perf_counter() - ctx.t_start,
            method=ctx.method,
            stats=ctx.stats.to_dict(),
            engine_stats=ctx.stats,
        )


# ---------------------------------------------------------------------------
# CLI pass selection
# ---------------------------------------------------------------------------

#: Stages that must always run (everything downstream consumes them).
MANDATORY_STAGES = ("window", "divisors")

#: Every selectable stage name, in canonical pipeline order.
STAGE_NAMES = (
    "window",
    "divisors",
    "feasibility",
    "sat_flow",
    "support",
    "satprune",
    "patch_function",
    "certificate",
    "structural",
    "resub",
    "cegar_min",
    "verify",
    "certificate_check",
)


@dataclass
class PassSelection:
    """A parsed ``--passes`` directive.

    ``only`` (non-empty) keeps exactly the named optional stages (the
    mandatory ones always run); ``skip`` drops stages from whatever the
    configuration would otherwise assemble.  Both may be combined.
    """

    only: frozenset = frozenset()
    skip: frozenset = frozenset()

    def apply(self, stages: Sequence[str]) -> List[str]:
        """Filter a config-derived stage list; preserves order."""
        out = []
        for name in stages:
            if name in MANDATORY_STAGES:
                out.append(name)
                continue
            if self.only and name not in self.only:
                continue
            if name in self.skip:
                continue
            out.append(name)
        return out


def parse_pass_selection(spec: str) -> PassSelection:
    """Parse ``--passes`` syntax: ``a,b`` keeps only a+b; ``-c`` skips c.

    Bare names form a whitelist of the stages to keep; ``-``-prefixed
    names are removed from the default pipeline.  Names must come from
    :data:`STAGE_NAMES`; mandatory stages cannot be skipped; a stage
    may be named at most once (``a,a`` and ``a,-a`` are both rejected).
    """
    only, skip = set(), set()
    seen: set = set()
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            continue
        negated = token.startswith("-")
        name = token[1:] if negated else token
        if name not in STAGE_NAMES:
            raise ValueError(
                f"unknown pass {name!r}; choose from {', '.join(STAGE_NAMES)}"
            )
        if name in seen:
            raise ValueError(f"pass {name!r} named more than once in {spec!r}")
        seen.add(name)
        if negated:
            if name in MANDATORY_STAGES:
                raise ValueError(f"pass {name!r} is mandatory and cannot be skipped")
            skip.add(name)
        else:
            only.add(name)
    return PassSelection(only=frozenset(only), skip=frozenset(skip))


# ---------------------------------------------------------------------------
# helpers shared by strategies
# ---------------------------------------------------------------------------


def _amortized_divisors(divisors: "DivisorSet", used_names: set) -> "DivisorSet":
    """Copy of a divisor set with already-used signals costed at zero.

    Divisor *ordering* (retention preference) is recomputed so the free
    signals come first; the patch-level cost bookkeeping then naturally
    charges each distinct signal once across the whole run.
    """
    from .divisors import DivisorSet

    cost = {
        nid: (0 if divisors.names[nid] in used_names else c)
        for nid, c in divisors.cost.items()
    }
    order = {nid: i for i, nid in enumerate(divisors.ids)}
    ids = sorted(divisors.ids, key=lambda n: (cost[n], order[n]))
    return DivisorSet(ids=ids, cost=cost, names=dict(divisors.names))


def _project_countermoves(
    countermoves: List[Dict[str, int]],
    names: Sequence[str],
    pis: Sequence[int],
) -> List[Dict[int, int]]:
    """Convert name-keyed countermoves to PI-keyed expansion assignments."""
    out: List[Dict[int, int]] = []
    seen = set()
    for move in countermoves:
        proj = {pi: move.get(name, 0) for name, pi in zip(names, pis)}
        key = tuple(sorted(proj.items()))
        if key not in seen:
            seen.add(key)
            out.append(proj)
    return out
